// Live execution on the thread-based message-passing runtime: every process
// is a real thread, migrated task batches travel as real messages, and each
// BSP iteration ends in a real barrier + allreduce. This is the in-repository
// analogue of running the rebalanced application under Chameleon on MPI —
// useful to convince yourself the plans survive actual concurrency.
//
// Run: ./build/examples/live_mpi_execution

#include <iostream>

#include "lrp/kselect.hpp"
#include "lrp/quantum_solver.hpp"
#include "lrp/solver.hpp"
#include "mpirt/lb_driver.hpp"
#include "mpirt/reactive.hpp"
#include "util/table.hpp"
#include "workloads/scenarios.hpp"

int main() {
  using namespace qulrb;

  const auto scenario = workloads::scenarios::imbalance_levels()[4];  // Imb.4
  const auto& problem = scenario.problem;
  const lrp::KSelection k = lrp::select_k(problem);

  std::cout << "Launching " << problem.num_processes()
            << " ranks (threads), n = " << problem.tasks_on(0)
            << " tasks each, baseline R_imb = " << problem.imbalance_ratio()
            << "\n\n";

  mpirt::LiveExecConfig config;
  config.iterations = 3;
  config.work_scale = 0.0;  // accounting-only tasks; set > 0 for a stress run

  util::Table table({"Plan", "# mig.", "virtual makespan (ms)", "measured R_imb",
                     "wall (ms)"});

  auto run_with = [&](const std::string& label, const lrp::MigrationPlan& plan) {
    const mpirt::LiveExecResult r = mpirt::run_live(problem, plan, config);
    table.add_row({label, util::Table::integer(r.tasks_migrated),
                   util::Table::num(r.virtual_makespan_ms, 2),
                   util::Table::num(r.measured_imbalance, 5),
                   util::Table::num(r.wall_ms, 2)});
  };

  run_with("(none)", lrp::MigrationPlan::identity(problem));

  lrp::ProactLbSolver proactlb;
  run_with("ProactLB", proactlb.solve(problem).plan);

  lrp::QcqmOptions options;
  options.variant = lrp::CqmVariant::kReduced;
  options.k = k.k1;
  options.hybrid.sweeps = 3000;
  options.hybrid.seed = 17;
  lrp::QcqmSolver qcqm(options);
  run_with("Q_CQM1_k1", qcqm.solve(problem).plan);

  // Reactive offloading (no plan at all): tasks move in response to live
  // REQUEST/REPLY messages instead of a precomputed matrix.
  {
    const mpirt::ReactiveResult r = mpirt::run_reactive(problem);
    table.add_row({"reactive offload", util::Table::integer(r.tasks_offloaded),
                   util::Table::num(r.virtual_makespan_ms, 2),
                   util::Table::num(r.measured_imbalance, 5),
                   util::Table::num(r.wall_ms, 2)});
  }

  table.print(std::cout);
  std::cout << "\nEvery row executed " << problem.total_tasks()
            << " tasks through real threads, mailboxes, barriers and "
               "reductions;\nthe measured imbalance is computed from the "
               "per-rank compute times the ranks\nreported via allreduce.\n";
  return 0;
}
