// Quickstart: rebalance one imbalanced task-parallel run with every method
// the paper compares — Greedy, Karmarkar-Karp, ProactLB, and the hybrid
// classical-quantum CQM formulations Q_CQM1/Q_CQM2 under both migration
// bounds k1 (ProactLB's count) and k2 (Greedy's count).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <iostream>
#include <memory>

#include "lrp/kselect.hpp"
#include "lrp/problem.hpp"
#include "lrp/quantum_solver.hpp"
#include "lrp/solver.hpp"
#include "util/table.hpp"

int main() {
  using namespace qulrb;

  // Figure 7 of the paper: 4 MPI processes, 5 tasks each, uniform per-process
  // task loads of 1.87 / 1.97 / 3.12 / 2.81 ms. Process 3 is the straggler.
  const lrp::LrpProblem problem = lrp::LrpProblem::uniform({1.87, 1.97, 3.12, 2.81}, 5);

  std::cout << "Baseline: L_max = " << problem.max_load()
            << " ms, L_avg = " << problem.average_load()
            << " ms, R_imb = " << problem.imbalance_ratio() << "\n\n";

  // The paper's protocol: classical methods run first; their migration counts
  // become the quantum methods' bounds k1 (frugal) and k2 (relaxed).
  const lrp::KSelection k = lrp::select_k(problem);
  std::cout << "Migration bounds: k1 = " << k.k1 << " (ProactLB), k2 = " << k.k2
            << " (Greedy)\n\n";

  auto make_qcqm = [&](lrp::CqmVariant variant, std::int64_t bound) {
    lrp::QcqmOptions options;
    options.variant = variant;
    options.k = bound;
    options.hybrid.seed = 42;
    return std::make_unique<lrp::QcqmSolver>(options);
  };

  std::vector<std::unique_ptr<lrp::RebalanceSolver>> solvers;
  solvers.push_back(std::make_unique<lrp::GreedySolver>());
  solvers.push_back(std::make_unique<lrp::KkSolver>());
  solvers.push_back(std::make_unique<lrp::ProactLbSolver>());
  solvers.push_back(make_qcqm(lrp::CqmVariant::kReduced, k.k1));
  solvers.push_back(make_qcqm(lrp::CqmVariant::kReduced, k.k2));
  solvers.push_back(make_qcqm(lrp::CqmVariant::kFull, k.k1));
  solvers.push_back(make_qcqm(lrp::CqmVariant::kFull, k.k2));
  const std::vector<std::string> labels = {
      "Greedy", "KK", "ProactLB", "Q_CQM1_k1", "Q_CQM1_k2", "Q_CQM2_k1", "Q_CQM2_k2"};

  util::Table table({"Algorithm", "R_imb", "Speedup", "# mig. tasks", "CPU (ms)"});
  for (std::size_t s = 0; s < solvers.size(); ++s) {
    const lrp::SolverReport report = lrp::run_and_evaluate(*solvers[s], problem);
    table.add_row({labels[s], util::Table::num(report.metrics.imbalance_after, 5),
                   util::Table::num(report.metrics.speedup, 4),
                   util::Table::integer(report.metrics.total_migrated),
                   util::Table::num(report.output.cpu_ms, 3)});
  }
  table.print(std::cout);
  std::cout << "\nAll methods balance the load; the CQM methods under k1 do it "
               "with as few migrations as ProactLB.\n";
  return 0;
}
