// The paper's realistic use case end to end: generate the sam(oa)^2-like
// oscillating-lake AMR workload (adaptive quadtree refined around the moving
// wet/dry front, Hilbert-curve-ordered sections, ADER-DG limiter cost),
// write the imbalance input in the paper's Appendix-B CSV format, rebalance
// with ProactLB and Q_CQM1, and write the Appendix-B output tables.
//
// Run: ./build/examples/samoa_oscillating_lake [output-dir]

#include <filesystem>
#include <iostream>

#include "io/lrp_io.hpp"
#include "lrp/kselect.hpp"
#include "lrp/quantum_solver.hpp"
#include "lrp/solver.hpp"
#include "util/table.hpp"
#include "workloads/samoa.hpp"

int main(int argc, char** argv) {
  using namespace qulrb;
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "samoa_out";
  std::filesystem::create_directories(out_dir);

  // --- 1. generate the AMR workload ----------------------------------------
  workloads::SamoaConfig config;  // paper defaults: 32 nodes, 208 sections
  const workloads::SamoaWorkload workload = workloads::make_samoa_workload(config);
  const lrp::LrpProblem& problem = workload.problem;

  std::cout << "Oscillating-lake mesh: " << workload.total_cells << " cells, "
            << workload.limited_cells << " with the a-posteriori limiter active\n"
            << "LRP input: M = " << problem.num_processes()
            << ", n = " << problem.tasks_on(0)
            << ", baseline R_imb = " << problem.imbalance_ratio() << "\n";

  const auto input_path = out_dir / "input_lrp.csv";
  io::write_input_file(input_path.string(), problem);
  std::cout << "wrote " << input_path.string() << " (Appendix-B input format)\n\n";

  // --- 2. rebalance ----------------------------------------------------------
  const lrp::KSelection k = lrp::select_k(problem);
  std::cout << "k1 = " << k.k1 << " (ProactLB), k2 = " << k.k2 << " (Greedy)\n\n";

  util::Table table({"Algorithm", "R_imb", "Speedup", "# mig. tasks", "output file"});

  lrp::ProactLbSolver proactlb;
  {
    const auto report = lrp::run_and_evaluate(proactlb, problem);
    const auto path = out_dir / "output_proactlb.csv";
    io::write_output_file(path.string(), problem, report.output.plan);
    table.add_row({"ProactLB", util::Table::num(report.metrics.imbalance_after, 5),
                   util::Table::num(report.metrics.speedup, 4),
                   util::Table::integer(report.metrics.total_migrated),
                   path.filename().string()});
  }

  {
    lrp::QcqmOptions options;
    options.variant = lrp::CqmVariant::kReduced;
    options.k = k.k1;
    options.hybrid.sweeps = 2000;
    options.hybrid.num_restarts = 2;
    options.hybrid.seed = 2024;
    lrp::QcqmSolver solver(options);
    const auto report = lrp::run_and_evaluate(solver, problem);
    const auto path = out_dir / "output_qcqm1_k1.csv";
    io::write_output_file(path.string(), problem, report.output.plan);
    table.add_row({"Q_CQM1_k1", util::Table::num(report.metrics.imbalance_after, 5),
                   util::Table::num(report.metrics.speedup, 4),
                   util::Table::integer(report.metrics.total_migrated),
                   path.filename().string()});
  }

  table.print(std::cout);
  std::cout << "\nThe CQM method balances the lake with ~1/4 of the migrations a "
               "from-scratch\nrepartitioning would need (paper Table V).\n";
  return 0;
}
