// End-to-end execution simulation (the paper's Figure 1 BSP model plus the
// Chameleon execution flow of Figure 2): run an imbalanced task-parallel
// application through the discrete-event BSP simulator, with and without
// rebalancing, and account for migration traffic explicitly. This surfaces
// the paper's core motivation — a rebalancer that migrates fewer tasks pays
// less overhead for the same balance.
//
// Run: ./build/examples/runtime_simulation

#include <iostream>

#include "lrp/kselect.hpp"
#include "lrp/quantum_solver.hpp"
#include "lrp/solver.hpp"
#include "runtime/chameleon.hpp"
#include "util/table.hpp"
#include "workloads/scenarios.hpp"

int main() {
  using namespace qulrb;

  // The severe MxM imbalance case on 8 nodes: 4 compute threads per node, a
  // dedicated communication thread (Chameleon style), 20 BSP iterations.
  const auto scenario = workloads::scenarios::imbalance_levels()[4];
  runtime::BspConfig config;
  config.comp_threads = 4;
  config.iterations = 20;
  config.overlap_migration = true;

  runtime::MiniChameleon app(scenario.problem.num_processes(), config);
  for (std::size_t p = 0; p < scenario.problem.num_processes(); ++p) {
    app.add_tasks(p, scenario.problem.tasks_on(p), scenario.problem.task_load(p));
  }

  std::cout << "BSP application: M = " << scenario.problem.num_processes()
            << ", n = " << scenario.problem.tasks_on(0)
            << ", R_imb = " << scenario.problem.imbalance_ratio() << ", "
            << config.iterations << " iterations, " << config.comp_threads
            << " compute threads/node\n\n";

  const lrp::KSelection k = lrp::select_k(scenario.problem);

  lrp::GreedySolver greedy;
  lrp::KkSolver kk;
  lrp::ProactLbSolver proactlb;
  lrp::QcqmOptions options;
  options.variant = lrp::CqmVariant::kReduced;
  options.k = k.k1;
  options.hybrid.sweeps = 3000;
  options.hybrid.seed = 5;
  lrp::QcqmSolver qcqm(options);

  util::Table table({"Rebalancer", "# mig.", "1st iter (ms)", "steady iter (ms)",
                     "mig. overhead (ms)", "total (ms)", "speedup vs baseline",
                     "parallel eff."});

  double baseline_total = 0.0;
  for (lrp::RebalanceSolver* solver : std::initializer_list<lrp::RebalanceSolver*>{
           nullptr, &greedy, &kk, &proactlb, &qcqm}) {
    if (solver == nullptr) {
      // Baseline: no rebalancing.
      const auto baseline =
          runtime::BspSimulator(config).run_baseline(scenario.problem);
      baseline_total = baseline.total_ms;
      table.add_row({"(none)", "0", util::Table::num(baseline.first_iteration_ms, 2),
                     util::Table::num(baseline.steady_iteration_ms, 2), "0.00",
                     util::Table::num(baseline.total_ms, 1), "1.0000",
                     util::Table::num(baseline.parallel_efficiency, 3)});
      continue;
    }
    const auto report = app.distributed_taskwait(*solver);
    const auto& sim = report.rebalanced;
    table.add_row({solver->name(),
                   util::Table::integer(report.metrics.total_migrated),
                   util::Table::num(sim.first_iteration_ms, 2),
                   util::Table::num(sim.steady_iteration_ms, 2),
                   util::Table::num(sim.migration_overhead_ms, 2),
                   util::Table::num(sim.total_ms, 1),
                   util::Table::num(baseline_total / sim.total_ms, 4),
                   util::Table::num(sim.parallel_efficiency, 3)});
  }
  table.print(std::cout);

  std::cout << "\nPer-process view of the rebalanced first iteration (Q_CQM1_k1):\n";
  const auto report = app.distributed_taskwait(qcqm);
  util::Table procs({"Process", "compute (ms)", "sent", "received", "idle (ms)"});
  for (std::size_t p = 0; p < report.rebalanced.processes.size(); ++p) {
    const auto& trace = report.rebalanced.processes[p];
    procs.add_row({"P" + std::to_string(p + 1), util::Table::num(trace.compute_ms, 2),
                   util::Table::integer(trace.tasks_sent),
                   util::Table::integer(trace.tasks_received),
                   util::Table::num(trace.idle_ms, 2)});
  }
  procs.print(std::cout);
  return 0;
}
