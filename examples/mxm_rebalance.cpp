// MxM rebalancing walkthrough: calibrates the cost model with the *real*
// blocked matrix-multiply kernel, builds the paper's synthetic imbalance
// scenario from it, selects the migration bounds k1/k2 from the classical
// methods, and compares all rebalancing strategies — including a sweep of the
// migration bound k, the knob the paper highlights as the key trade-off.
//
// Run: ./build/examples/mxm_rebalance

#include <iostream>
#include <tuple>

#include "lrp/kselect.hpp"
#include "lrp/quantum_solver.hpp"
#include "lrp/solver.hpp"
#include "util/table.hpp"
#include "workloads/mxm.hpp"
#include "workloads/mxm_kernel.hpp"

int main() {
  using namespace qulrb;

  // --- 1. calibrate the cost model on this machine --------------------------
  std::cout << "Calibrating MxM kernel (blocked dgemm, size 192)...\n";
  const double gflops = workloads::calibrate_gflops(192);
  workloads::MxmCostModel model;
  model.gflops = gflops;
  std::cout << "  sustained rate: " << gflops << " GFLOP/s\n"
            << "  predicted task times: 128 -> " << model.task_ms(128)
            << " ms, 512 -> " << model.task_ms(512) << " ms\n\n";

  // --- 2. build an imbalanced run -------------------------------------------
  // 8 nodes, 50 tasks each; the per-node matrix size spread creates the
  // imbalance (tasks within a node are uniform, exactly the paper's setup).
  const std::vector<int> sizes = {128, 128, 192, 256, 320, 384, 448, 512};
  const lrp::LrpProblem problem = workloads::make_mxm_problem(sizes, 50, model);
  std::cout << "Imbalanced MxM run: M = 8, n = 50, R_imb = "
            << problem.imbalance_ratio() << "\n\n";

  // --- 3. classical methods first (they also set k1/k2) ---------------------
  const lrp::KSelection k = lrp::select_k(problem);
  std::cout << "Migration bounds from the classical runs: k1 = " << k.k1
            << " (ProactLB), k2 = " << k.k2 << " (Greedy)\n\n";

  auto qcqm = [&](lrp::CqmVariant variant, std::int64_t bound) {
    lrp::QcqmOptions options;
    options.variant = variant;
    options.k = bound;
    options.hybrid.sweeps = 4000;
    options.hybrid.num_restarts = 3;
    options.hybrid.seed = 7;
    return lrp::QcqmSolver(options);
  };

  util::Table table({"Algorithm", "R_imb", "Speedup", "# mig. tasks"});
  lrp::GreedySolver greedy;
  lrp::KkSolver kk;
  lrp::ProactLbSolver proactlb;
  for (lrp::RebalanceSolver* solver :
       std::initializer_list<lrp::RebalanceSolver*>{&greedy, &kk, &proactlb}) {
    const auto report = lrp::run_and_evaluate(*solver, problem);
    table.add_row({solver->name(), util::Table::num(report.metrics.imbalance_after, 5),
                   util::Table::num(report.metrics.speedup, 4),
                   util::Table::integer(report.metrics.total_migrated)});
  }
  for (const auto& [variant, bound, label] :
       {std::tuple{lrp::CqmVariant::kReduced, k.k1, "Q_CQM1_k1"},
        std::tuple{lrp::CqmVariant::kReduced, k.k2, "Q_CQM1_k2"},
        std::tuple{lrp::CqmVariant::kFull, k.k2, "Q_CQM2_k2"}}) {
    auto solver = qcqm(variant, bound);
    const auto report = lrp::run_and_evaluate(solver, problem);
    table.add_row({label, util::Table::num(report.metrics.imbalance_after, 5),
                   util::Table::num(report.metrics.speedup, 4),
                   util::Table::integer(report.metrics.total_migrated)});
  }
  table.print(std::cout);

  // --- 4. the k trade-off ----------------------------------------------------
  std::cout << "\nSweeping the migration bound k (Q_CQM1):\n";
  util::Table sweep({"k", "R_imb", "# mig. tasks"});
  for (const std::int64_t bound :
       {std::int64_t{0}, k.k1 / 2, k.k1, k.k1 * 2, k.k2}) {
    auto solver = qcqm(lrp::CqmVariant::kReduced, bound);
    const auto report = lrp::run_and_evaluate(solver, problem);
    sweep.add_row({util::Table::integer(bound),
                   util::Table::num(report.metrics.imbalance_after, 5),
                   util::Table::integer(report.metrics.total_migrated)});
  }
  sweep.print(std::cout);
  std::cout << "\nBalance saturates near k1: migrating more than the minimum "
               "needed buys nothing.\n";
  return 0;
}
