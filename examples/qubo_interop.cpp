// QUBO interop walkthrough: build the paper's CQM for a small LRP, convert
// it to an ancilla-free penalty QUBO, export it in the qbsolv text format
// (the annealing ecosystem's interchange format), reload the file, solve it
// with plain simulated annealing, and decode the result back into a
// migration plan. This is the workflow for handing qulrb models to external
// samplers — hardware or software.
//
// Run: ./build/examples/qubo_interop [path.qubo]

#include <iostream>

#include "anneal/sa.hpp"
#include "io/qubo_file.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/kselect.hpp"
#include "lrp/metrics.hpp"
#include "lrp/quantum_solver.hpp"
#include "model/cqm_to_qubo.hpp"
#include "model/lp_format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qulrb;
  const std::string path = argc > 1 ? argv[1] : "lrp_model.qubo";

  // A small instance so the exported file is human-readable.
  const lrp::LrpProblem problem = lrp::LrpProblem::uniform({3.0, 1.5, 1.0}, 8);
  const lrp::KSelection k = lrp::select_k(problem);
  std::cout << "LRP: M = 3, n = 8, R_imb = " << problem.imbalance_ratio()
            << ", k2 = " << k.k2 << "\n\n";

  // 1. The CQM, printed in LP-like form for inspection.
  const lrp::LrpCqm cqm(problem, lrp::CqmVariant::kReduced, k.k2);
  std::cout << "--- CQM (LP view, first lines) ---\n";
  const std::string lp = model::to_lp_string(cqm.cqm());
  std::cout << lp.substr(0, lp.find("Subject To")) << "...\n\n";

  // 2. Ancilla-free penalty QUBO, exported to disk.
  model::PenaltyOptions penalty;
  penalty.inequality = model::InequalityMethod::kUnbalanced;
  const model::QuboConversion conv = model::cqm_to_qubo(cqm.cqm(), penalty);
  io::write_qubo_file(path, conv.qubo);
  std::cout << "exported " << conv.qubo.num_variables() << "-variable QUBO ("
            << conv.qubo.num_interactions() << " couplers) to " << path << "\n";

  // 3. Reload (as an external sampler would) and solve with plain SA.
  const model::QuboModel reloaded = io::read_qubo_file(path);
  anneal::SaParams params;
  params.sweeps = 4000;
  params.num_reads = 8;
  params.seed = 3;
  const auto set = anneal::SimulatedAnnealer(params).sample(reloaded);

  // 4. Decode the best CQM-feasible read into a migration plan.
  util::Table table({"read", "QUBO energy", "CQM feasible", "R_imb after"});
  lrp::MigrationPlan best_plan = lrp::MigrationPlan::identity(problem);
  double best_imbalance = problem.imbalance_ratio();
  for (std::size_t s = 0; s < set.size() && s < 8; ++s) {
    const model::State projected = conv.project(set.at(s).state);
    const bool feasible = cqm.cqm().is_feasible(projected, 1e-6);
    lrp::MigrationPlan plan = cqm.decode(projected);
    lrp::repair_plan(problem, plan);
    const auto metrics = lrp::evaluate_plan(problem, plan);
    table.add_row({util::Table::integer(static_cast<long long>(s)),
                   util::Table::num(set.at(s).energy, 3), feasible ? "yes" : "no",
                   util::Table::num(metrics.imbalance_after, 5)});
    // Decoded samples are repaired to validity either way; keep the plan
    // with the best resulting balance (the role a post-processing layer
    // plays when an external sampler returns soft-penalty solutions).
    if (metrics.imbalance_after < best_imbalance) {
      best_imbalance = metrics.imbalance_after;
      best_plan = plan;
    }
  }
  table.print(std::cout);

  const auto metrics = lrp::evaluate_plan(problem, best_plan);
  std::cout << "\nbest decoded plan: R_imb " << problem.imbalance_ratio() << " -> "
            << metrics.imbalance_after << " with " << metrics.total_migrated
            << " migrations\n";
  return 0;
}
