#include "common.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>

#include "lrp/cqm_builder.hpp"
#include "lrp/solver.hpp"

namespace qulrb::bench {

QuantumBudget QuantumBudget::from_env() {
  QuantumBudget budget;
  if (const char* sweeps = std::getenv("QULRB_BENCH_SWEEPS")) {
    budget.sweeps = static_cast<std::size_t>(std::strtoull(sweeps, nullptr, 10));
  }
  if (const char* restarts = std::getenv("QULRB_BENCH_RESTARTS")) {
    budget.restarts = static_cast<std::size_t>(std::strtoull(restarts, nullptr, 10));
  }
  if (const char* seed = std::getenv("QULRB_BENCH_SEED")) {
    budget.seed = std::strtoull(seed, nullptr, 10);
  }
  return budget;
}

lrp::QcqmOptions make_qcqm_options(lrp::CqmVariant variant, std::int64_t k,
                                   const QuantumBudget& budget,
                                   std::size_t model_variables) {
  lrp::QcqmOptions options;
  options.variant = variant;
  options.k = k;
  options.hybrid.num_restarts = budget.restarts;
  std::size_t sweeps = budget.sweeps;
  if (model_variables > 0 && model_variables < 4096) {
    const std::size_t boost = std::min<std::size_t>(16, 4096 / model_variables);
    sweeps *= std::max<std::size_t>(1, boost);
  }
  options.hybrid.sweeps = sweeps;
  options.hybrid.max_penalty_rounds = 2;
  options.hybrid.seed = budget.seed;
  return options;
}

const std::vector<std::string>& algorithm_labels() {
  static const std::vector<std::string> labels = {
      "Greedy", "KK", "ProactLB", "Q_CQM1_k1", "Q_CQM1_k2", "Q_CQM2_k1",
      "Q_CQM2_k2"};
  return labels;
}

ScenarioResult run_all_solvers(const std::string& scenario_name,
                               const lrp::LrpProblem& problem,
                               const QuantumBudget& budget) {
  ScenarioResult result;
  result.scenario = scenario_name;
  result.k = lrp::select_k(problem);

  auto run_one = [&](lrp::RebalanceSolver& solver, const std::string& label) {
    const lrp::SolverReport report = lrp::run_and_evaluate(solver, problem);
    result.rows.push_back(
        {label, report.metrics, report.output.cpu_ms, report.output.qpu_ms});
  };

  lrp::GreedySolver greedy;
  lrp::KkSolver kk;
  lrp::ProactLbSolver proactlb;
  run_one(greedy, "Greedy");
  run_one(kk, "KK");
  run_one(proactlb, "ProactLB");

  const struct {
    lrp::CqmVariant variant;
    std::int64_t k;
    const char* label;
  } quantum_runs[] = {
      {lrp::CqmVariant::kReduced, result.k.k1, "Q_CQM1_k1"},
      {lrp::CqmVariant::kReduced, result.k.k2, "Q_CQM1_k2"},
      {lrp::CqmVariant::kFull, result.k.k1, "Q_CQM2_k1"},
      {lrp::CqmVariant::kFull, result.k.k2, "Q_CQM2_k2"},
  };
  for (const auto& run : quantum_runs) {
    const std::size_t vars =
        lrp::LrpCqm::predicted_qubits(run.variant, problem.num_processes(),
                                      problem.tasks_on(0));
    lrp::QcqmSolver solver(make_qcqm_options(run.variant, run.k, budget, vars));
    run_one(solver, run.label);
  }
  return result;
}

namespace {

util::Table make_metric_table(const std::vector<ScenarioResult>& results,
                              const std::function<std::string(const Row&)>& cell) {
  std::vector<std::string> header = {"Algorithm"};
  for (const auto& r : results) header.push_back(r.scenario);
  util::Table table(std::move(header));
  for (std::size_t a = 0; a < algorithm_labels().size(); ++a) {
    std::vector<std::string> row = {algorithm_labels()[a]};
    for (const auto& r : results) row.push_back(cell(r.rows.at(a)));
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace

util::Table make_imbalance_table(const std::vector<ScenarioResult>& results) {
  return make_metric_table(results, [](const Row& row) {
    return util::Table::num(row.metrics.imbalance_after, 5);
  });
}

util::Table make_speedup_table(const std::vector<ScenarioResult>& results) {
  return make_metric_table(results, [](const Row& row) {
    return util::Table::num(row.metrics.speedup, 4);
  });
}

util::Table make_migration_table(const std::vector<ScenarioResult>& results) {
  return make_metric_table(results, [](const Row& row) {
    return util::Table::integer(row.metrics.total_migrated);
  });
}

}  // namespace qulrb::bench
