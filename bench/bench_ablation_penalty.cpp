// Ablation on the QUBO path (the paper's Section IV pointer to Glover et al.
// and Montañez-Barrera et al.): convert a small LRP CQM to an unconstrained
// QUBO with (a) slack-bit penalties and (b) unbalanced penalization, then
// solve with plain simulated annealing and with path-integral (simulated
// quantum) annealing. Compares qubit counts, feasibility and solution
// quality — the trade the paper cites when it says inequality constraints
// need no extra ancillas under unbalanced penalization.

#include <iostream>

#include "anneal/pimc.hpp"
#include "anneal/sa.hpp"
#include "common.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/metrics.hpp"
#include "lrp/quantum_solver.hpp"
#include "model/cqm_to_qubo.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workloads/mxm.hpp"

int main() {
  using namespace qulrb;

  // Small instance so the expanded QUBO stays dense-friendly: M = 4, n = 8.
  const std::vector<int> sizes = {128, 192, 320, 448};
  const lrp::LrpProblem problem = workloads::make_mxm_problem(sizes, 8);
  const lrp::KSelection k = lrp::select_k(problem);
  const lrp::LrpCqm lrp_cqm(problem, lrp::CqmVariant::kReduced, k.k2);

  std::cout << "LRP instance: M = 4, n = 8, baseline R_imb = "
            << problem.imbalance_ratio() << ", k = " << k.k2 << "\n"
            << "CQM: " << lrp_cqm.num_binary_variables() << " variables, "
            << lrp_cqm.cqm().num_constraints() << " constraints\n\n";

  util::Table table({"Penalty method", "Sampler", "QUBO vars", "slack vars",
                     "feasible", "R_imb", "# mig.", "time (ms)"});

  for (const auto method : {model::InequalityMethod::kSlackBits,
                            model::InequalityMethod::kUnbalanced}) {
    model::PenaltyOptions options;
    options.inequality = method;
    const model::QuboConversion conv = model::cqm_to_qubo(lrp_cqm.cqm(), options);
    const char* method_name =
        method == model::InequalityMethod::kSlackBits ? "slack bits" : "unbalanced";

    // (a) classical simulated annealing on the QUBO.
    {
      anneal::SaParams params;
      params.sweeps = 4000;
      params.num_reads = 8;
      params.seed = 7;
      util::WallTimer timer;
      const auto set = anneal::SimulatedAnnealer(params).sample(conv.qubo);
      const double ms = timer.elapsed_ms();
      const auto best = set.best();
      const model::State projected = conv.project(best->state);
      lrp::MigrationPlan plan = lrp_cqm.decode(projected);
      const bool feasible = lrp_cqm.cqm().is_feasible(projected, 1e-6);
      lrp::repair_plan(problem, plan);
      const auto metrics = lrp::evaluate_plan(problem, plan);
      table.add_row({method_name, "SA",
                     util::Table::integer(static_cast<long long>(conv.qubo.num_variables())),
                     util::Table::integer(static_cast<long long>(conv.num_slack_variables)),
                     feasible ? "yes" : "no",
                     util::Table::num(metrics.imbalance_after, 5),
                     util::Table::integer(metrics.total_migrated),
                     util::Table::num(ms, 1)});
    }

    // (b) path-integral Monte-Carlo simulated quantum annealing.
    {
      anneal::PimcParams params;
      params.sweeps = 1500;
      params.trotter_slices = 12;
      params.seed = 11;
      util::WallTimer timer;
      const auto best = anneal::PimcAnnealer(params).sample_qubo(conv.qubo);
      const double ms = timer.elapsed_ms();
      const model::State projected = conv.project(best.state);
      lrp::MigrationPlan plan = lrp_cqm.decode(projected);
      const bool feasible = lrp_cqm.cqm().is_feasible(projected, 1e-6);
      lrp::repair_plan(problem, plan);
      const auto metrics = lrp::evaluate_plan(problem, plan);
      table.add_row({method_name, "PIMC-SQA",
                     util::Table::integer(static_cast<long long>(conv.qubo.num_variables())),
                     util::Table::integer(static_cast<long long>(conv.num_slack_variables)),
                     feasible ? "yes" : "no",
                     util::Table::num(metrics.imbalance_after, 5),
                     util::Table::integer(metrics.total_migrated),
                     util::Table::num(ms, 1)});
    }
  }

  std::cout << "=== Ablation: inequality-constraint penalty encodings ===\n";
  table.print(std::cout);
  std::cout << "\nUnbalanced penalization keeps the qubit count at the CQM's "
               "variable count\n(no slack ancillas) at the cost of a mild bias; "
               "slack bits are exact but\ngrow the model.\n";
  return 0;
}
