// Table V reproduction: the realistic sam(oa)^2 oscillating-lake use case —
// 32 compute nodes, 208 uniform sections per node, baseline R_imb = 4.1994.
// Prints R_imb, speedup, migrated tasks and CPU/QPU runtimes per method with
// the paper's reported values alongside.

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"
#include "workloads/samoa.hpp"

int main() {
  using namespace qulrb;
  const bench::QuantumBudget budget = bench::QuantumBudget::from_env();

  const workloads::SamoaWorkload workload = workloads::make_samoa_workload();
  const auto& problem = workload.problem;
  std::cout << "sam(oa)^2-like oscillating lake: " << workload.total_cells
            << " cells (" << workload.limited_cells
            << " limited), baseline R_imb = " << problem.imbalance_ratio()
            << "\n\n";

  const bench::ScenarioResult result =
      bench::run_all_solvers("samoa", problem, budget);

  util::Table table({"Algorithm", "R_imb", "Speedup", "# mig. tasks", "CPU (ms)",
                     "QPU (ms)", "paper: R_imb", "paper: # mig."});
  const struct {
    const char* rimb;
    const char* mig;
  } paper[] = {
      {"0.00007", "6447"},  // Greedy
      {"0.00001", "6447"},  // KK
      {"0.00944", "1568"},  // ProactLB
      {"0.0001", "1567"},   // Q_CQM1_k1
      {"0.0001", "6418"},   // Q_CQM1_k2
      {"2.3192", "1550"},   // Q_CQM2_k1 (the paper's unstable case)
      {"0.0001", "6440"},   // Q_CQM2_k2
  };
  table.add_row({"Baseline", util::Table::num(problem.imbalance_ratio(), 5), "1.0",
                 "-", "-", "-", "4.19940", "-"});
  for (std::size_t a = 0; a < bench::algorithm_labels().size(); ++a) {
    const auto& row = result.rows[a];
    table.add_row({row.algorithm, util::Table::num(row.metrics.imbalance_after, 5),
                   util::Table::num(row.metrics.speedup, 4),
                   util::Table::integer(row.metrics.total_migrated),
                   util::Table::num(row.cpu_ms, 2),
                   row.qpu_ms > 0.0 ? util::Table::num(row.qpu_ms, 1) : "-",
                   paper[a].rimb, paper[a].mig});
  }
  table.print(std::cout);

  std::cout << "\nk1 = " << result.k.k1 << " (paper: 1568), k2 = " << result.k.k2
            << " (paper: 6447).\n"
               "Headline: the CQM methods balance the load with ~1/4 of the "
               "migrations of Greedy/KK.\n"
               "Paper runtime context: Q_* CPU times were ~19.3 s including "
               "D-Wave Leap cloud latency;\nour stand-in reports local solver "
               "time plus the constant simulated QPU access share.\n";
  return 0;
}
