// Router hot-path micro-benchmarks: policy pick cost per kind, consistent-
// hash ring rebuild and lookup, coalescer join/complete bookkeeping, and the
// per-response string surgery (id rewrite, raw-field splice). These are the
// operations the router pays per routed request on top of the backend's
// solve, so they bound the front door's overhead. Exported to
// BENCH_router.json by bench/export_bench_json.sh.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "router/coalesce.hpp"
#include "router/policy.hpp"
#include "router/router.hpp"
#include "service/protocol.hpp"

namespace {

using namespace qulrb;

std::vector<router::BackendView> fleet_views(std::size_t n) {
  std::vector<router::BackendView> views(n);
  for (std::size_t i = 0; i < n; ++i) {
    views[i].queue_depth = (i * 7) % 5;
    views[i].inflight = (i * 3) % 4;
    views[i].cache_hit_rate = 0.5;
  }
  return views;
}

// ------------------------------------------------------------ policy pick ---

void BM_PolicyPick(benchmark::State& state, router::PolicyKind kind) {
  auto policy = router::make_policy(kind);
  const auto views = fleet_views(8);
  std::uint64_t topo = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->pick(router::mix64(topo++), views));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_PolicyPick, random, router::PolicyKind::kRandom);
BENCHMARK_CAPTURE(BM_PolicyPick, round_robin, router::PolicyKind::kRoundRobin);
BENCHMARK_CAPTURE(BM_PolicyPick, shortest_queue,
                  router::PolicyKind::kShortestQueue);
BENCHMARK_CAPTURE(BM_PolicyPick, shortest_queue_stale,
                  router::PolicyKind::kShortestQueueStale);
BENCHMARK_CAPTURE(BM_PolicyPick, cache_affinity,
                  router::PolicyKind::kCacheAffinity);

// -------------------------------------------------------------- hash ring ---

void BM_HashRingRebuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = i;
  router::HashRing ring(64);
  for (auto _ : state) {
    ring.rebuild(members);
    benchmark::DoNotOptimize(ring.empty());
  }
}
BENCHMARK(BM_HashRingRebuild)->Arg(4)->Arg(16)->Arg(64);

void BM_HashRingOwner(benchmark::State& state) {
  std::vector<std::size_t> members(16);
  for (std::size_t i = 0; i < members.size(); ++i) members[i] = i;
  router::HashRing ring(64);
  ring.rebuild(members);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.owner(router::mix64(key++)));
  }
}
BENCHMARK(BM_HashRingOwner);

// -------------------------------------------------------------- coalescer ---

// Leader path: open a group, complete it, deliver to the sole waiter. The
// cost every un-shared request pays for coalescing eligibility.
void BM_CoalescerJoinComplete(benchmark::State& state) {
  router::Coalescer coalescer;
  const std::string key = "canonical-solve-body";
  std::size_t delivered = 0;
  for (auto _ : state) {
    const auto join =
        coalescer.join(key, 1, [&](const std::string&) { ++delivered; });
    auto waiters = coalescer.complete(join.group);
    for (auto& w : waiters) w.deliver(key);
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoalescerJoinComplete);

// Follower path: ride an existing group and detach — the marginal cost of a
// coalesced duplicate.
void BM_CoalescerFollowerJoinDetach(benchmark::State& state) {
  router::Coalescer coalescer;
  const std::string key = "canonical-solve-body";
  const auto leader = coalescer.join(key, 1, [](const std::string&) {});
  std::uint64_t client = 2;
  for (auto _ : state) {
    const auto join = coalescer.join(key, client, [](const std::string&) {});
    benchmark::DoNotOptimize(coalescer.detach(join.group, client));
    ++client;
  }
  coalescer.complete(leader.group);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoalescerFollowerJoinDetach);

// -------------------------------------------------------- response surgery ---

void BM_RewriteResponseId(benchmark::State& state) {
  const std::string line =
      R"({"id":184467,"outcome":"ok","feasible":true,"cache_hit":true,)"
      R"("retargeted":false,"imbalance_before":1.5,"imbalance_after":0.125,)"
      R"("migrated":6,"queue_ms":0.5,"solve_ms":2.25,"total_ms":2.75})";
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router::rewrite_response_id(line, ++id));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RewriteResponseId);

void BM_ExtractRawField(benchmark::State& state) {
  const std::string line =
      R"({"stats":{"submitted":120,"completed":118,"queue_depth":2,)"
      R"("inflight":1,"cache_hit_rate":0.83,"cache":{"exact_hits":70,)"
      R"("retarget_hits":28,"misses":20},"solve_ms":{"count":118,)"
      R"("mean":1.9}}})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(router::extract_raw_field(line, "stats"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExtractRawField);

// ---------------------------------------------------------- topology hash ---

void BM_RouterTopologyHash(benchmark::State& state) {
  service::RebalanceRequest request;
  request.task_counts.assign(64, 16);
  request.task_loads.assign(64, 1.0);
  request.k = 16;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    ++seq;
    request.task_counts[seq % 64] = 16 + static_cast<std::int64_t>(seq % 3);
    benchmark::DoNotOptimize(router::Router::topology_hash(request));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RouterTopologyHash);

}  // namespace
