// Figure 5 + Table IV reproduction: M = 8 nodes, tasks per node scaled over
// {8, 16, ..., 2048} with a fixed matrix-size spread. Prints the
// imbalance/speedup series (Figure 5) and the migration-count table
// (Table IV) with the paper's values alongside.

#include <iostream>

#include "common.hpp"
#include "workloads/scenarios.hpp"

int main() {
  using namespace qulrb;
  const bench::QuantumBudget budget = bench::QuantumBudget::from_env();

  std::vector<bench::ScenarioResult> results;
  for (std::int64_t n : workloads::scenarios::task_scaling_counts()) {
    const auto scenario = workloads::scenarios::task_scaling(n);
    std::cout << "running " << scenario.name << " ...\n";
    results.push_back(
        bench::run_all_solvers(std::to_string(n), scenario.problem, budget));
  }

  std::cout << "\n=== Figure 5 (left): imbalance ratio after rebalancing ===\n";
  bench::make_imbalance_table(results).print(std::cout);

  std::cout << "\n=== Figure 5 (right): speedup ===\n";
  bench::make_speedup_table(results).print(std::cout);

  std::cout << "\n=== Table IV: total migrated tasks per tasks-per-node count ===\n";
  bench::make_migration_table(results).print(std::cout);

  std::cout << "\nPaper Table IV reference (8 .. 2048 tasks/node):\n"
               "  Greedy    56 112 224 448 896 1792 3584 7168 14336\n"
               "  KK        56 112 224 448 896 1792 3584 7168 14336\n"
               "  ProactLB  11  53  43  87 196  349  696 1407  2800\n"
               "  Q_CQM1_k1 11  53  43  87 196  349  696 1407  2800\n"
               "  Q_CQM1_k2 54 102 211 447 855 1781 3501 7049 14248\n"
               "  Q_CQM2_k1 11  51  43  76 194  333  694 1405  2758\n"
               "  Q_CQM2_k2 54 107 206 414 809 1584 3365 6657 11473\n"
               "Shape: k1 runs track ProactLB exactly; k2 runs land slightly "
               "below Greedy/KK;\nQ_CQM2_k1 is the unstable one.\n";
  return 0;
}
