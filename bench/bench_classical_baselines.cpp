// Classical partitioner study: quality (makespan over the L_avg lower bound)
// and runtime of every classical method in the repository — Greedy/LPT, KK,
// local-search polish, recursive number partitioning (the Rathore et al.
// scheme), complete KK (2-way), and the exact oracle where affordable. This
// contextualizes the baselines the paper compares its CQM methods against.

#include <iostream>

#include "classical/ckk.hpp"
#include "classical/exact.hpp"
#include "classical/greedy.hpp"
#include "classical/kk.hpp"
#include "classical/local_search.hpp"
#include "classical/rnp.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace qulrb;

  const struct {
    std::size_t items;
    std::size_t bins;
  } cases[] = {{16, 4}, {64, 8}, {256, 8}, {1024, 16}, {4096, 32}};

  util::Table table({"N items", "M bins", "Algorithm", "makespan / LB",
                     "time (ms)"});

  util::Rng rng(2024);
  for (const auto& c : cases) {
    std::vector<double> items(c.items);
    double total = 0.0;
    for (auto& w : items) {
      w = 1.0 + rng.next_double() * 99.0;
      total += w;
    }
    const double lower_bound = total / static_cast<double>(c.bins);

    auto add = [&](const char* name, auto&& runner) {
      util::WallTimer timer;
      const classical::PartitionResult result = runner();
      const double ms = timer.elapsed_ms();
      table.add_row({util::Table::integer(static_cast<long long>(c.items)),
                     util::Table::integer(static_cast<long long>(c.bins)), name,
                     util::Table::num(result.makespan() / lower_bound, 6),
                     util::Table::num(ms, 3)});
    };

    add("Greedy/LPT", [&] { return classical::greedy_partition(items, c.bins); });
    add("KK", [&] { return classical::kk_partition(items, c.bins); });
    add("LPT + local search",
        [&] { return classical::local_search_partition(items, c.bins); });
    add("RNP (CKK bisection)", [&] {
      classical::RnpParams params;
      // Anytime budget: shrink the per-split search on large instances.
      params.ckk_node_limit = c.items >= 1024 ? 20'000 : 200'000;
      return classical::rnp_partition(items, c.bins, params);
    });
    if (c.items <= 16) {
      add("Exact (B&B)",
          [&] { return classical::exact_partition(items, c.bins).partition; });
    }
  }
  std::cout << "=== Classical multiway partitioners: quality vs runtime ===\n";
  table.print(std::cout);
  std::cout << "\nmakespan / LB = 1.0 would be a perfect split; LPT's Graham "
               "bound guarantees <= 4/3 - 1/(3M).\n";
  return 0;
}
