// Ablation: plan-based rebalancing (this paper's approach) versus reactive
// work stealing (the classical DLB baseline from the related-work section),
// plus the periodic-rebalancing loop under cost drift. Work stealing needs no
// load model but pays its communication on the critical path; plan-based
// methods pay one bulk migration and then run balanced.

#include <iostream>

#include "common.hpp"
#include "lrp/iterative.hpp"
#include "lrp/kselect.hpp"
#include "lrp/quantum_solver.hpp"
#include "lrp/solver.hpp"
#include "runtime/bsp_sim.hpp"
#include "runtime/work_stealing.hpp"
#include "util/table.hpp"
#include "workloads/samoa.hpp"
#include "workloads/scenarios.hpp"

int main() {
  using namespace qulrb;
  const bench::QuantumBudget budget = bench::QuantumBudget::from_env();

  const auto scenario = workloads::scenarios::imbalance_levels()[4];  // Imb.4
  const auto& problem = scenario.problem;
  const lrp::KSelection k = lrp::select_k(problem);

  std::cout << "Instance: M = 8, n = 50, baseline R_imb = "
            << problem.imbalance_ratio() << "\n\n";

  // --- one-iteration view: stealing vs plans ---------------------------------
  runtime::BspConfig bsp;
  bsp.comp_threads = 1;
  bsp.iterations = 1;
  bsp.overlap_migration = false;  // expose every communication cost
  const runtime::BspSimulator sim(bsp);
  const auto baseline = sim.run_baseline(problem);

  runtime::WorkStealingConfig ws;
  ws.comp_threads = 1;
  const auto stealing = runtime::WorkStealingSimulator(ws).run(problem);

  util::Table table({"Strategy", "makespan (ms)", "speedup", "tasks moved",
                     "comm on critical path"});
  table.add_row({"none (baseline)", util::Table::num(baseline.first_iteration_ms, 2),
                 "1.0000", "0", "-"});
  table.add_row({"work stealing", util::Table::num(stealing.makespan_ms, 2),
                 util::Table::num(baseline.first_iteration_ms / stealing.makespan_ms, 4),
                 util::Table::integer(stealing.tasks_stolen),
                 util::Table::num(stealing.total_steal_wait_ms, 2) + " ms"});

  lrp::ProactLbSolver proactlb;
  lrp::QcqmOptions options = bench::make_qcqm_options(
      lrp::CqmVariant::kReduced, k.k1, budget,
      lrp::LrpCqm::predicted_qubits(lrp::CqmVariant::kReduced, 8, 50));
  lrp::QcqmSolver qcqm(options);
  for (lrp::RebalanceSolver* solver :
       std::initializer_list<lrp::RebalanceSolver*>{&proactlb, &qcqm}) {
    const auto output = solver->solve(problem);
    const auto run = sim.run(problem, output.plan);
    table.add_row({solver->name() + " (plan)",
                   util::Table::num(run.first_iteration_ms, 2),
                   util::Table::num(baseline.first_iteration_ms / run.first_iteration_ms, 4),
                   util::Table::integer(output.plan.total_migrated()),
                   util::Table::num(run.first_iteration_ms - run.steady_iteration_ms, 2) +
                       " ms"});
  }
  std::cout << "=== One BSP iteration: reactive stealing vs plan-based ===\n";
  table.print(std::cout);

  // --- periodic rebalancing under drift --------------------------------------
  std::cout << "\n=== Periodic rebalancing under cost drift (10 epochs, "
               "sigma = 0.15) ===\n";
  util::Table drift_table({"Rebalancer", "mean R_imb after", "total migrated"});
  lrp::DriftModel drift;
  drift.relative_sigma = 0.15;
  drift.seed = 3;
  lrp::GreedySolver greedy;
  for (lrp::RebalanceSolver* solver :
       std::initializer_list<lrp::RebalanceSolver*>{&greedy, &proactlb, &qcqm}) {
    const lrp::IterativeRebalancer loop(*solver, drift);
    const auto result = loop.run(problem, 10);
    drift_table.add_row({solver->name(),
                         util::Table::num(result.mean_imbalance_after, 5),
                         util::Table::integer(result.total_migrated)});
  }
  drift_table.print(std::cout);
  std::cout << "\nGreedy re-partitions from scratch every epoch (huge cumulative "
               "migration volume);\nProactLB and the CQM method maintain the "
               "same balance while moving a fraction of the tasks.\n";

  // --- the oscillating lake as a *time series* -------------------------------
  // The refined/limited front moves between output steps; each step is a
  // fresh imbalance the rebalancer must absorb.
  std::cout << "\n=== sam(oa)^2-like time series (front moves; rebalance each output step) ===\n";
  workloads::SamoaConfig samoa;
  samoa.num_processes = 8;
  samoa.sections_per_process = 32;
  samoa.base_depth = 5;
  samoa.max_depth = 8;
  samoa.target_imbalance = 2.5;
  samoa.limiter_cost_factor = 120.0;
  samoa.front_width = 0.01;
  const auto series = workloads::make_samoa_time_series(samoa, 5);

  util::Table series_table({"step", "baseline R_imb", "ProactLB R_imb/mig",
                            "Q_CQM1_k1 R_imb/mig"});
  for (std::size_t step = 0; step < series.size(); ++step) {
    const auto& step_problem = series[step].problem;
    const lrp::KSelection step_k = lrp::select_k(step_problem);
    const auto pl = lrp::run_and_evaluate(proactlb, step_problem);
    lrp::QcqmOptions step_options = bench::make_qcqm_options(
        lrp::CqmVariant::kReduced, step_k.k1, budget,
        lrp::LrpCqm::predicted_qubits(lrp::CqmVariant::kReduced, 8, 32));
    lrp::QcqmSolver step_qcqm(step_options);
    const auto qr = lrp::run_and_evaluate(step_qcqm, step_problem);
    series_table.add_row(
        {util::Table::integer(static_cast<long long>(step)),
         util::Table::num(step_problem.imbalance_ratio(), 4),
         util::Table::num(pl.metrics.imbalance_after, 4) + " / " +
             util::Table::integer(pl.metrics.total_migrated),
         util::Table::num(qr.metrics.imbalance_after, 4) + " / " +
             util::Table::integer(qr.metrics.total_migrated)});
  }
  series_table.print(std::cout);
  return 0;
}
