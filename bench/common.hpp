#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lrp/kselect.hpp"
#include "lrp/metrics.hpp"
#include "lrp/problem.hpp"
#include "lrp/quantum_solver.hpp"
#include "util/table.hpp"

namespace qulrb::bench {

/// One algorithm's result on one scenario.
struct Row {
  std::string algorithm;
  lrp::RebalanceMetrics metrics;
  double cpu_ms = 0.0;
  double qpu_ms = 0.0;
};

/// All seven methods the paper compares, in the paper's order.
struct ScenarioResult {
  std::string scenario;
  lrp::KSelection k;
  std::vector<Row> rows;  // Greedy, KK, ProactLB, Q_CQM1_k1, Q_CQM1_k2,
                          // Q_CQM2_k1, Q_CQM2_k2
};

/// Anneal budget scaled to the instance so the harness stays tractable on a
/// laptop while keeping the paper's relative shapes. `QULRB_BENCH_SWEEPS`
/// overrides the per-restart sweep count; `QULRB_BENCH_RESTARTS` the restart
/// count (the paper ran each CQM >= 3 times and kept the best).
struct QuantumBudget {
  std::size_t sweeps = 1200;
  std::size_t restarts = 3;
  std::uint64_t seed = 2024;

  static QuantumBudget from_env();
};

/// Budget is adaptive: small models get proportionally more sweeps (they are
/// cheap), capped at 16x the base budget, so small-scale results approach the
/// quality a production hybrid service delivers.
lrp::QcqmOptions make_qcqm_options(lrp::CqmVariant variant, std::int64_t k,
                                   const QuantumBudget& budget,
                                   std::size_t model_variables = 0);

/// Run the full comparison (3 classical + 4 quantum) on one problem.
ScenarioResult run_all_solvers(const std::string& scenario_name,
                               const lrp::LrpProblem& problem,
                               const QuantumBudget& budget);

/// Paper-order algorithm labels.
const std::vector<std::string>& algorithm_labels();

/// Render a "R_imb / speedup" figure-style table for a batch of scenarios.
util::Table make_imbalance_table(const std::vector<ScenarioResult>& results);
util::Table make_speedup_table(const std::vector<ScenarioResult>& results);
util::Table make_migration_table(const std::vector<ScenarioResult>& results);

}  // namespace qulrb::bench
