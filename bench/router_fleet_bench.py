#!/usr/bin/env python3
"""Fleet-level router benchmark: real qulrb_serve backends behind a real
qulrb_router, driven closed-loop by qulrb_loadgen.

Measures the two claims the sharded serving tier makes:

  1. Scale-out beats one backend. Each backend's SessionCache is capacity-
     bounded (--cache 4 here, 16-topology Zipf universe), so a single
     backend thrashes: most requests pay the cold model-build path. Four
     affinity-sharded backends hold the whole working set in aggregate.
     Reported as throughput_rps_1_backend vs throughput_rps_4_backends.
  2. Cache-affinity beats random on hit rate. Random routing sprays the
     same Zipf stream over every shard (each sees all 16 topologies, holds
     4); consistent-hash affinity partitions the universe so each shard
     serves only its own keys. Reported as server-side hit rates, summed
     across the fleet through the router's aggregated stats.

Writes a JSON fragment (summary numbers only) to the output path; the
export script merges it with the bench_router_policy micro rows into
BENCH_router.json.

Usage: router_fleet_bench.py <build-dir> <out.json> [requests] [concurrency]
"""

import json
import signal
import socket
import subprocess
import sys
import tempfile
import time

BASE_PORT = 18470
CACHE_PER_BACKEND = 4
ZIPF_S = 1.1


def connect(port, attempts=100):
    for _ in range(attempts):
        try:
            return socket.create_connection(("127.0.0.1", port), timeout=10)
        except OSError:
            time.sleep(0.1)
    raise SystemExit("could not connect to port %d" % port)


def ask(port, line):
    s = connect(port)
    try:
        s.sendall(line.encode())
        return json.loads(s.makefile("rb").readline())
    finally:
        s.close()


class Fleet:
    """N backends behind one router, torn down on exit."""

    def __init__(self, build, backends, policy, seed):
        serve = build + "/tools/qulrb_serve"
        router = build + "/tools/qulrb_router"
        self.front = BASE_PORT
        self.procs = []
        ports = [str(BASE_PORT + 1 + i) for i in range(backends)]
        for port in ports:
            self.procs.append(
                subprocess.Popen(
                    [serve, "--port", port, "--workers", "1",
                     "--cache", str(CACHE_PER_BACKEND), "--quiet"],
                    stdout=subprocess.DEVNULL,
                )
            )
        self.procs.append(
            subprocess.Popen(
                [router, "--port", str(self.front),
                 "--backends", ",".join(ports),
                 "--policy", policy, "--probe-ms", "25",
                 "--seed", str(seed), "--quiet"]
            )
        )
        deadline = time.time() + 15
        while time.time() < deadline:
            try:
                if ask(self.front, '{"op":"stats"}\n')["stats"]["healthy"] == backends:
                    return
            except (OSError, SystemExit):
                pass
            time.sleep(0.1)
        raise SystemExit("fleet never became healthy")

    def stop(self):
        for p in self.procs:
            if p.poll() is None:
                p.send_signal(signal.SIGTERM)
        for p in self.procs:
            try:
                p.wait(timeout=10)
            except subprocess.TimeoutExpired:
                p.kill()


def run_scenario(build, backends, policy, requests, concurrency, label):
    fleet = Fleet(build, backends, policy, seed=7)
    try:
        with tempfile.NamedTemporaryFile(suffix=".json") as out:
            subprocess.run(
                [build + "/tools/qulrb_loadgen",
                 "--connect", str(fleet.front),
                 "--requests", str(requests),
                 "--concurrency", str(concurrency),
                 "--topo-zipf", str(ZIPF_S),
                 "--seed", "11",
                 "--label", label,
                 "--json", out.name],
                check=True,
                stdout=subprocess.DEVNULL,
            )
            summary = json.load(open(out.name))
    finally:
        fleet.stop()
    assert summary["outcomes"]["failed"] == 0, summary
    return summary


def main():
    build, out_path = sys.argv[1], sys.argv[2]
    requests = int(sys.argv[3]) if len(sys.argv) > 3 else 800
    concurrency = int(sys.argv[4]) if len(sys.argv) > 4 else 8

    one = run_scenario(build, 1, "cache-affinity", requests, concurrency,
                       "1-backend")
    four = run_scenario(build, 4, "cache-affinity", requests, concurrency,
                        "4-backend-affinity")
    rand = run_scenario(build, 4, "random", requests, concurrency,
                        "4-backend-random")

    summary = {
        "workload": {
            "requests": requests,
            "concurrency": concurrency,
            "topo_zipf": ZIPF_S,
            "topology_universe": 16,
            "cache_per_backend": CACHE_PER_BACKEND,
        },
        "throughput_rps_1_backend": round(one["throughput_rps"], 1),
        "throughput_rps_4_backends": round(four["throughput_rps"], 1),
        "fleet_speedup": round(
            four["throughput_rps"] / one["throughput_rps"], 3
        ),
        "hit_rate_1_backend": round(one["server_cache"]["hit_rate"], 4),
        "hit_rate_4_random": round(rand["server_cache"]["hit_rate"], 4),
        "hit_rate_4_cache_affinity": round(
            four["server_cache"]["hit_rate"], 4
        ),
        "latency_p50_ms_4_backends": round(four["latency_ms"]["p50"], 3),
        "latency_p99_ms_4_backends": round(four["latency_ms"]["p99"], 3),
    }
    with open(out_path, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")
    for key, value in summary.items():
        if not isinstance(value, dict):
            print("%s: %s" % (key, value))
    return 0


if __name__ == "__main__":
    sys.exit(main())
