// Service-level benchmarks: per-request latency with and without the session
// cache, checkout cost by hit kind, and closed-loop throughput at several
// concurrency levels. Exported to BENCH_service.json by
// bench/export_bench_json.sh.

#include <benchmark/benchmark.h>

#include <future>
#include <vector>

#include "service/rebalance_service.hpp"
#include "service/session_cache.hpp"

namespace {

using namespace qulrb;

service::RebalanceRequest request_for(std::uint64_t seq, bool drift) {
  service::RebalanceRequest request;
  request.task_counts.assign(8, 8);
  request.task_loads.assign(8, 1.0);
  request.task_loads[drift ? seq % 8 : 0] =
      8.0 + (drift ? 0.05 * static_cast<double>(seq % 17) : 0.0);
  request.k = 8;
  request.hybrid.sweeps = 50;
  request.hybrid.num_restarts = 1;
  request.hybrid.seed = seq + 1;
  return request;
}

lrp::LrpProblem problem_for(std::uint64_t seq, bool drift) {
  const service::RebalanceRequest r = request_for(seq, drift);
  return lrp::LrpProblem(r.task_loads, r.task_counts);
}

// ------------------------------------------------------- request latency -----

// cache_capacity = 0: every request rebuilds model, presolve, and pair index.
void BM_ServiceSolveCold(benchmark::State& state) {
  service::ServiceParams params;
  params.num_workers = 1;
  params.cache_capacity = 0;
  service::RebalanceService svc(params);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.submit(request_for(seq++, false)).get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServiceSolveCold);

// Same topology and loads every time: exact hits, everything reused.
void BM_ServiceSolveWarmExact(benchmark::State& state) {
  service::RebalanceService svc({.num_workers = 1});
  svc.submit(request_for(0, false)).get();  // populate the cache
  std::uint64_t seq = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.submit(request_for(seq++, false)).get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServiceSolveWarmExact);

// Same topology, drifting loads: the retarget path (in-place coefficient
// rewrite + presolve/pair refresh, no model rebuild).
void BM_ServiceSolveWarmRetarget(benchmark::State& state) {
  service::RebalanceService svc({.num_workers = 1});
  svc.submit(request_for(0, true)).get();
  std::uint64_t seq = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.submit(request_for(seq++, true)).get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServiceSolveWarmRetarget);

// ------------------------------------------------------- checkout by kind -----

void BM_SessionCheckoutCold(benchmark::State& state) {
  service::SessionCache cache(0);  // capacity 0: give_back discards
  const lrp::CqmBuildOptions options;
  for (auto _ : state) {
    auto checkout = cache.checkout(problem_for(0, false),
                                   lrp::CqmVariant::kReduced, 8, options);
    benchmark::DoNotOptimize(checkout.session.get());
    cache.give_back(std::move(checkout));
  }
}
BENCHMARK(BM_SessionCheckoutCold);

void BM_SessionCheckoutExact(benchmark::State& state) {
  service::SessionCache cache(4);
  const lrp::CqmBuildOptions options;
  cache.give_back(cache.checkout(problem_for(0, false),
                                 lrp::CqmVariant::kReduced, 8, options));
  for (auto _ : state) {
    auto checkout = cache.checkout(problem_for(0, false),
                                   lrp::CqmVariant::kReduced, 8, options);
    benchmark::DoNotOptimize(checkout.session.get());
    cache.give_back(std::move(checkout));
  }
}
BENCHMARK(BM_SessionCheckoutExact);

void BM_SessionCheckoutRetarget(benchmark::State& state) {
  service::SessionCache cache(4);
  const lrp::CqmBuildOptions options;
  cache.give_back(cache.checkout(problem_for(0, true),
                                 lrp::CqmVariant::kReduced, 8, options));
  std::uint64_t seq = 1;
  for (auto _ : state) {
    auto checkout = cache.checkout(problem_for(seq++, true),
                                   lrp::CqmVariant::kReduced, 8, options);
    benchmark::DoNotOptimize(checkout.session.get());
    cache.give_back(std::move(checkout));
  }
}
BENCHMARK(BM_SessionCheckoutRetarget);

// ------------------------------------------------------------ throughput -----

// Closed loop with `concurrency` requests in flight; reports req/s as
// items_per_second.
void BM_ServiceThroughput(benchmark::State& state) {
  const auto concurrency = static_cast<std::size_t>(state.range(0));
  service::ServiceParams params;
  params.max_pending = 2 * concurrency + 8;
  service::RebalanceService svc(params);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    std::vector<std::future<service::RebalanceResponse>> inflight;
    inflight.reserve(concurrency);
    for (std::size_t c = 0; c < concurrency; ++c) {
      inflight.push_back(svc.submit(request_for(seq++, false)));
    }
    for (auto& f : inflight) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(concurrency));
}
BENCHMARK(BM_ServiceThroughput)->Arg(1)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
