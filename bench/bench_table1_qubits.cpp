// Table I reproduction: complexity overview and logical-qubit counts of every
// method, across the experiment configurations used in the paper.
//
// The paper states Q_CQM1 uses (M-1)^2 * (floor(log2 n) + 1) variables; the
// literal construction (inferring only the diagonal x_{j,j}) leaves
// M * (M-1) * (floor(log2 n) + 1) binary variables, so both numbers are
// reported ("paper formula" vs "built model").

#include <iostream>

#include "common.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/encoding.hpp"
#include "util/table.hpp"

int main() {
  using namespace qulrb;

  std::cout << "=== Table I (part 1): worst-case complexity ===\n";
  util::Table complexity({"Algorithm", "Complexity"});
  complexity.add_row({"Greedy", "O(N log N) .. O(2^N)"});
  complexity.add_row({"KK", "O(N log N) .. O(2^N)"});
  complexity.add_row({"ProactLB", "O(M^2 K)"});
  complexity.add_row({"Q_CQM1_k1,_k2", "(M-1)^2 (floor(log2 n)+1) logical qubits"});
  complexity.add_row({"Q_CQM2_k1,_k2", "M^2 (floor(log2 n)+1) logical qubits"});
  complexity.print(std::cout);

  std::cout << "\n=== Table I (part 2): logical qubits per experiment setup ===\n";
  util::Table qubits({"Setup (M x n)", "Q_CQM1 paper", "Q_CQM1 built", "Q_CQM2"});
  const struct {
    std::size_t m;
    std::int64_t n;
  } setups[] = {
      {8, 50},    // Fig. 3 / Table II
      {4, 100},   {8, 100}, {16, 100}, {32, 100}, {64, 100},  // Fig. 4 / III
      {8, 8},     {8, 2048},                                  // Fig. 5 / IV ends
      {32, 208},  // Table V (sam(oa)^2)
  };
  for (const auto& s : setups) {
    const std::size_t paper_formula =
        lrp::LrpCqm::predicted_qubits(lrp::CqmVariant::kReduced, s.m, s.n);
    const std::size_t full =
        lrp::LrpCqm::predicted_qubits(lrp::CqmVariant::kFull, s.m, s.n);
    // Build a tiny-but-real model only when affordable; otherwise compute the
    // built-variable count directly (M(M-1) * bits).
    const std::size_t bits = lrp::bits_per_count(s.n);
    const std::size_t built = s.m * (s.m - 1) * bits;
    qubits.add_row({std::to_string(s.m) + " x " + std::to_string(s.n),
                    util::Table::integer(static_cast<long long>(paper_formula)),
                    util::Table::integer(static_cast<long long>(built)),
                    util::Table::integer(static_cast<long long>(full))});
  }
  qubits.print(std::cout);

  std::cout << "\nNote: 'built' infers only the diagonal counts, as Section IV "
               "describes; the\npaper's (M-1)^2 formula is reported alongside "
               "for direct comparison.\n";
  return 0;
}
