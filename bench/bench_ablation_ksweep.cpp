// Ablation: sweep of the migration bound k — the parameter study the paper
// defers to future work ("the impact of the upper bound k of migrated
// tasks"). Interpolates k between 0 and k2 on the severe imbalance case and
// reports the balance/migration trade-off curve.

#include <iostream>

#include "common.hpp"
#include "lrp/solver.hpp"
#include "runtime/bsp_sim.hpp"
#include "util/table.hpp"
#include "workloads/scenarios.hpp"

int main() {
  using namespace qulrb;
  const bench::QuantumBudget budget = bench::QuantumBudget::from_env();

  const auto scenario = workloads::scenarios::imbalance_levels()[4];  // Imb.4
  const lrp::KSelection sel = lrp::select_k(scenario.problem);
  std::cout << "Imb.4 (M = 8, n = 50): baseline R_imb = "
            << scenario.problem.imbalance_ratio() << ", k1 = " << sel.k1
            << ", k2 = " << sel.k2 << "\n\n";

  // 0, k1/2, k1, 2*k1, ..., up to k2.
  std::vector<std::int64_t> ks = {0, sel.k1 / 2, sel.k1, sel.k1 * 3 / 2,
                                  sel.k1 * 2, sel.k1 * 3, sel.k2};
  std::erase_if(ks, [&](std::int64_t k) { return k > sel.k2; });

  runtime::BspConfig sim_config;
  sim_config.iterations = 10;
  sim_config.overlap_migration = false;  // expose migration cost end to end
  const runtime::BspSimulator sim(sim_config);
  const auto baseline = sim.run_baseline(scenario.problem);

  util::Table table({"k", "R_imb", "speedup (analytic)", "# mig.",
                     "sim. total (ms)", "sim. speedup incl. overhead"});
  for (const std::int64_t k : ks) {
    lrp::QcqmSolver solver(
        bench::make_qcqm_options(lrp::CqmVariant::kReduced, k, budget));
    const lrp::SolverReport report = lrp::run_and_evaluate(solver, scenario.problem);
    const auto simulated = sim.run(scenario.problem, report.output.plan);
    table.add_row({util::Table::integer(k),
                   util::Table::num(report.metrics.imbalance_after, 5),
                   util::Table::num(report.metrics.speedup, 4),
                   util::Table::integer(report.metrics.total_migrated),
                   util::Table::num(simulated.total_ms, 1),
                   util::Table::num(baseline.total_ms / simulated.total_ms, 4)});
  }
  std::cout << "=== Ablation: migration bound k sweep (Q_CQM1) ===\n";
  table.print(std::cout);
  std::cout << "\nThe curve shows diminishing returns: balance saturates near "
               "k1 (the minimum\nmigration volume); beyond it extra budget "
               "buys little balance but keeps costing\nmigration overhead in "
               "the simulated end-to-end run.\n";
  return 0;
}
