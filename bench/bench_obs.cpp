// Observability overhead benchmarks: the same annealer hot loop with
// recording off (null Recorder pointer, the production default) and on
// (spans + incumbent timeline + sweep counter). The acceptance bar is <2%
// on BM_CqmAnnealSweep-shaped work at m=32; the primitive costs (counter
// increment, histogram observe) are tracked separately.

#include <benchmark/benchmark.h>

#include <vector>

#include "anneal/cqm_anneal.hpp"
#include "lrp/cqm_builder.hpp"
#include "model/expr.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "util/rng.hpp"
#include "workloads/scenarios.hpp"

namespace {

using namespace qulrb;

// ----- primitives -----------------------------------------------------------

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) counter.inc();
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::LogHistogram hist;
  double v = 0.125;
  for (auto _ : state) {
    hist.observe(v);
    v += 0.001;
    if (v > 100.0) v = 0.125;
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_FlightRecord(benchmark::State& state) {
  // One seqlock ring write: the cost every flight-instrumented call site
  // pays when the recorder is attached.
  obs::FlightRecorder flight(4096);
  const std::uint16_t name = flight.intern("bench");
  std::uint64_t rid = 0;
  for (auto _ : state) {
    flight.record(name, obs::FlightKind::kInstant, 0, ++rid, 1.0, 0.0, 0.0);
  }
  benchmark::DoNotOptimize(flight.total_records());
}
BENCHMARK(BM_FlightRecord);

void BM_ObsNullSpan(benchmark::State& state) {
  // The disabled path every instrumented call site pays when no recorder is
  // attached: one pointer test, no allocation, no lock.
  for (auto _ : state) {
    obs::Recorder::Span span(nullptr, "noop", "bench", 0);
    span.close();
  }
}
BENCHMARK(BM_ObsNullSpan);

// ----- annealer sweep, recording off vs on ----------------------------------

struct SweepFixture {
  explicit SweepFixture(std::size_t m)
      : scenario(workloads::scenarios::node_scaling(m)),
        cqm(scenario.problem, lrp::CqmVariant::kReduced, 500),
        penalties(cqm.cqm().num_constraints(), 1.0),
        pairs(anneal::PairMoveIndex::build(cqm.cqm())) {}

  workloads::scenarios::Scenario scenario;
  lrp::LrpCqm cqm;
  std::vector<double> penalties;
  anneal::PairMoveIndex pairs;
};

void BM_CqmAnnealSweepObsOff(benchmark::State& state) {
  const SweepFixture fx(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(5);
  anneal::CqmAnnealParams params;
  params.sweeps = 1;
  const anneal::CqmAnnealer annealer(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(annealer.anneal_once(fx.cqm.cqm(), fx.penalties,
                                                  rng, {}, nullptr, &fx.pairs));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fx.cqm.num_binary_variables()));
}
BENCHMARK(BM_CqmAnnealSweepObsOff)->Arg(8)->Arg(32);

void BM_CqmAnnealSweepObsOn(benchmark::State& state) {
  const SweepFixture fx(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(5);
  obs::Recorder recorder("bench");
  obs::MetricsRegistry registry;
  anneal::CqmAnnealParams params;
  params.sweeps = 1;
  params.recorder = &recorder;
  params.sweep_counter = &registry.counter("qulrb_solver_sweeps_total", "");
  const anneal::CqmAnnealer annealer(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(annealer.anneal_once(fx.cqm.cqm(), fx.penalties,
                                                  rng, {}, nullptr, &fx.pairs));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fx.cqm.num_binary_variables()));
}
BENCHMARK(BM_CqmAnnealSweepObsOn)->Arg(8)->Arg(32);

void BM_CqmAnnealSweepFlightOn(benchmark::State& state) {
  // The always-on serving configuration: no span recorder, but every
  // anneal_once drops one compact record into the flight ring. The
  // acceptance bar is <2% over BM_CqmAnnealSweepObsOff at m=32.
  const SweepFixture fx(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(5);
  obs::FlightRecorder flight;
  anneal::CqmAnnealParams params;
  params.sweeps = 1;
  params.flight = &flight;
  params.flight_name = flight.intern("anneal_once");
  params.flight_rid = 1;
  const anneal::CqmAnnealer annealer(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(annealer.anneal_once(fx.cqm.cqm(), fx.penalties,
                                                  rng, {}, nullptr, &fx.pairs));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fx.cqm.num_binary_variables()));
}
BENCHMARK(BM_CqmAnnealSweepFlightOn)->Arg(8)->Arg(32);

void BM_CqmAnnealSweepProfOn(benchmark::State& state) {
  // The continuous-profiling configuration: a 99 Hz SIGPROF sampler walks
  // this thread's stack while the sweep runs. The steady-state cost is the
  // signal delivery plus the frame-pointer unwind, amortised over ~10 ms of
  // kernel work per sample. The acceptance bar is <1% over
  // BM_CqmAnnealSweepObsOff at m=32.
  const SweepFixture fx(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(5);
  obs::Profiler profiler;
  const bool sampling = profiler.start();
  if (!sampling) state.SkipWithError("profiler slot already taken");
  anneal::CqmAnnealParams params;
  params.sweeps = 1;
  const anneal::CqmAnnealer annealer(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(annealer.anneal_once(fx.cqm.cqm(), fx.penalties,
                                                  rng, {}, nullptr, &fx.pairs));
  }
  if (sampling) profiler.stop();
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fx.cqm.num_binary_variables()));
}
BENCHMARK(BM_CqmAnnealSweepProfOn)->Arg(8)->Arg(32);

}  // namespace
