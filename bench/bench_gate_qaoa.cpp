// Gate-based extension study (paper Section VI): on LRP instances small
// enough for state-vector simulation, compare the QAOA gate path against the
// annealing-based samplers on the *same* ancilla-free penalty QUBO, plus the
// hybrid CQM solver as the reference. This is the experiment the paper
// defers to future work on the Munich Quantum Software Stack.

#include <iostream>

#include "anneal/pimc.hpp"
#include "anneal/sa.hpp"
#include "common.hpp"
#include "lrp/gate_solver.hpp"
#include "lrp/kselect.hpp"
#include "lrp/qubo_solver.hpp"
#include "lrp/quantum_solver.hpp"
#include "lrp/solver.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workloads/mxm.hpp"

int main() {
  using namespace qulrb;

  // Instances sized for <= 20 qubits under Q_CQM1 + unbalanced penalties.
  const struct {
    std::vector<int> sizes;
    std::int64_t n;
  } cases[] = {
      {{256, 128}, 4},       // M=2, n=4: 6 qubits under Q_CQM1
      {{320, 192, 128}, 2},  // M=3, n=2: 12 qubits
  };

  util::Table table({"Instance", "Solver", "qubits", "R_imb", "# mig.",
                     "feasible", "time (ms)"});

  for (const auto& c : cases) {
    const lrp::LrpProblem problem = workloads::make_mxm_problem(c.sizes, c.n);
    const lrp::KSelection k = lrp::select_k(problem);
    const std::string name =
        "M=" + std::to_string(c.sizes.size()) + ",n=" + std::to_string(c.n);

    auto add_row = [&](const std::string& solver_name, lrp::RebalanceSolver& solver,
                       std::size_t qubits) {
      util::WallTimer timer;
      const lrp::SolverReport report = lrp::run_and_evaluate(solver, problem);
      table.add_row({name, solver_name,
                     util::Table::integer(static_cast<long long>(qubits)),
                     util::Table::num(report.metrics.imbalance_after, 5),
                     util::Table::integer(report.metrics.total_migrated),
                     report.output.feasible ? "yes" : "no",
                     util::Table::num(timer.elapsed_ms(), 1)});
    };

    // Gate path: QAOA on the state-vector simulator.
    {
      lrp::GateSolverOptions options;
      options.k = k.k2;
      options.qaoa.layers = 3;
      options.qaoa.seed = 11;
      options.qaoa.samples = 1024;
      options.qaoa.optimizer_evals = 900;
      lrp::GateQaoaSolver solver(options);
      const lrp::SolverReport report = lrp::run_and_evaluate(solver, problem);
      table.add_row(
          {name, "QAOA (p=3)",
           util::Table::integer(
               static_cast<long long>(solver.last_diagnostics()->num_qubits)),
           util::Table::num(report.metrics.imbalance_after, 5),
           util::Table::integer(report.metrics.total_migrated),
           solver.last_diagnostics()->sample_feasible ? "yes" : "no",
           util::Table::num(report.output.cpu_ms, 1)});
    }

    // Annealing paths on the same ancilla-free QUBO.
    {
      lrp::QuboSolverOptions options;
      options.k = k.k2;
      options.penalty.inequality = model::InequalityMethod::kUnbalanced;
      options.sa.sweeps = 3000;
      options.sa.num_reads = 8;
      options.sa.seed = 3;
      lrp::QuboAnnealSolver solver(options);
      const lrp::LrpCqm cqm(problem, lrp::CqmVariant::kReduced, k.k2);
      add_row("QUBO + SA", solver, cqm.num_binary_variables());
    }

    // The paper's hybrid CQM reference.
    {
      lrp::QcqmOptions options;
      options.variant = lrp::CqmVariant::kReduced;
      options.k = k.k2;
      options.hybrid.sweeps = 3000;
      options.hybrid.seed = 5;
      lrp::QcqmSolver solver(options);
      const lrp::LrpCqm cqm(problem, lrp::CqmVariant::kReduced, k.k2);
      add_row("Hybrid CQM", solver, cqm.num_binary_variables());
    }
  }

  std::cout << "=== Gate-based extension: QAOA vs annealing on tiny LRP ===\n";
  table.print(std::cout);
  std::cout << "\nAt today's simulable sizes all three paths balance the toy "
               "instances; the\ngate path's cost is the variational loop "
               "(hundreds of circuit evaluations).\n";
  return 0;
}
