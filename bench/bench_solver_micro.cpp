// Micro-benchmarks (google-benchmark): the algorithm-runtime column of
// Table II (classical methods on the 8-node / 50-task setting) plus the
// throughput of the solver building blocks (CQM flip evaluation, annealer
// sweeps, QUBO energy, PIMC sweeps).

#include <benchmark/benchmark.h>

#include <chrono>

#include "anneal/cqm_anneal.hpp"
#include "anneal/pimc.hpp"
#include "anneal/replica_bank.hpp"
#include "anneal/sa.hpp"
#include "anneal/simd.hpp"
#include "classical/greedy.hpp"
#include "classical/kk.hpp"
#include "classical/proactlb.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/kselect.hpp"
#include "lrp/solver.hpp"
#include "model/cqm_to_qubo.hpp"
#include "util/rng.hpp"
#include "workloads/mxm.hpp"
#include "workloads/scenarios.hpp"

namespace {

using namespace qulrb;

// Record which delta-evaluation kernel this run dispatched to, so exported
// bench JSON is comparable across builds (context.qulrb_simd_level).
const bool g_simd_context_registered = [] {
  benchmark::AddCustomContext(
      "qulrb_simd_level", anneal::simd::level_name(anneal::simd::active_level()));
  return true;
}();

const lrp::LrpProblem& table2_problem() {
  static const lrp::LrpProblem problem =
      workloads::scenarios::imbalance_levels()[4].problem;  // M=8, n=50
  return problem;
}

// ----- Table II runtime column: classical algorithms ------------------------

void BM_Table2_Greedy(benchmark::State& state) {
  const auto items = table2_problem().flatten_tasks();
  for (auto _ : state) {
    benchmark::DoNotOptimize(classical::greedy_partition(items, 8));
  }
}
BENCHMARK(BM_Table2_Greedy);

void BM_Table2_KK(benchmark::State& state) {
  const auto items = table2_problem().flatten_tasks();
  for (auto _ : state) {
    benchmark::DoNotOptimize(classical::kk_partition(items, 8));
  }
}
BENCHMARK(BM_Table2_KK);

void BM_Table2_ProactLB(benchmark::State& state) {
  const classical::UniformLoads input{table2_problem().task_loads(),
                                      table2_problem().task_counts()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(classical::proactlb(input));
  }
}
BENCHMARK(BM_Table2_ProactLB);

// ----- solver building blocks ------------------------------------------------

void BM_CqmBuild(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto scenario = workloads::scenarios::node_scaling(m);
  for (auto _ : state) {
    const lrp::LrpCqm cqm(scenario.problem, lrp::CqmVariant::kReduced, 100);
    benchmark::DoNotOptimize(cqm.num_binary_variables());
  }
}
BENCHMARK(BM_CqmBuild)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_CqmFlipDelta(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto scenario = workloads::scenarios::node_scaling(m);
  const lrp::LrpCqm cqm(scenario.problem, lrp::CqmVariant::kReduced, 100);
  const std::vector<double> penalties(cqm.cqm().num_constraints(), 1.0);
  anneal::CqmIncrementalState walk(
      cqm.cqm(), model::State(cqm.num_binary_variables(), 0), penalties);
  util::Rng rng(3);
  const auto n = cqm.num_binary_variables();
  for (auto _ : state) {
    const auto v = static_cast<model::VarId>(rng.next_below(n));
    benchmark::DoNotOptimize(walk.flip_delta(v));
  }
}
BENCHMARK(BM_CqmFlipDelta)->Arg(8)->Arg(32)->Arg(64);

void BM_CqmAnnealSweep(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto scenario = workloads::scenarios::node_scaling(m);
  const lrp::LrpCqm cqm(scenario.problem, lrp::CqmVariant::kReduced, 500);
  const std::vector<double> penalties(cqm.cqm().num_constraints(), 1.0);
  // The production sweep path: 8 replicas anneal in lockstep over one
  // CqmReplicaBank (shared-proposal mode), with delta evaluation and commit
  // running through the batched across-lane kernels. Reported time is per
  // replica, comparable against the single-chain baseline in
  // bench/baseline_kernel_seed.json.
  constexpr std::size_t kLanes = 8;
  std::vector<util::Rng> rngs;
  rngs.reserve(kLanes);
  for (std::size_t r = 0; r < kLanes; ++r) rngs.emplace_back(5 + r);
  util::Rng proposal(5);
  anneal::BatchedCqmAnnealParams params;
  params.sweeps = 1;
  const anneal::BatchedCqmAnnealer annealer(params);
  // The pair-move index depends only on the model; every production caller
  // (hybrid portfolio, tempering) builds it once per solve and shares it
  // across restarts, so the sweep benchmark measures that hot path. The
  // one-time build cost is tracked separately by BM_CqmPairIndexBuild.
  const auto pairs = anneal::PairMoveIndex::build(cqm.cqm());
  std::vector<anneal::BatchedLaneSpec> specs(kLanes);
  for (std::size_t r = 0; r < kLanes; ++r) {
    specs[r].rng = &rngs[r];
    specs[r].penalties = &penalties;
  }
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    auto out = annealer.anneal_lanes(cqm.cqm(), specs, &pairs, &proposal);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(out);
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count() /
                           static_cast<double>(kLanes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cqm.num_binary_variables()));
}
BENCHMARK(BM_CqmAnnealSweep)->Arg(8)->Arg(32)->UseManualTime();

void BM_CqmPairIndexBuild(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto scenario = workloads::scenarios::node_scaling(m);
  const lrp::LrpCqm cqm(scenario.problem, lrp::CqmVariant::kReduced, 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anneal::PairMoveIndex::build(cqm.cqm()));
  }
}
BENCHMARK(BM_CqmPairIndexBuild)->Arg(8)->Arg(32);

void BM_QuboEnergy(benchmark::State& state) {
  const std::vector<int> sizes = {128, 192, 320, 448};
  const lrp::LrpProblem problem = workloads::make_mxm_problem(sizes, 8);
  const lrp::LrpCqm cqm(problem, lrp::CqmVariant::kReduced, 16);
  const auto conv = model::cqm_to_qubo(cqm.cqm());
  model::State s(conv.qubo.num_variables(), 0);
  util::Rng rng(9);
  for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_below(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.qubo.energy(s));
  }
}
BENCHMARK(BM_QuboEnergy);

void BM_PimcSweep(benchmark::State& state) {
  const std::vector<int> sizes = {128, 192, 320, 448};
  const lrp::LrpProblem problem = workloads::make_mxm_problem(sizes, 8);
  const lrp::LrpCqm cqm(problem, lrp::CqmVariant::kReduced, 16);
  const auto conv = model::cqm_to_qubo(cqm.cqm());
  anneal::PimcParams params;
  params.sweeps = 1;
  params.trotter_slices = 8;
  const anneal::PimcAnnealer annealer(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(annealer.sample_qubo(conv.qubo));
  }
}
BENCHMARK(BM_PimcSweep);

void BM_KSelect(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lrp::select_k(table2_problem()));
  }
}
BENCHMARK(BM_KSelect);

}  // namespace
