// Ablation: Q_CQM1 (qubit-reduced, all-inequality) vs Q_CQM2 (full, with
// equality constraints) at an identical annealing budget, across both k
// bounds and three instance sizes. Isolates the paper's discussion-section
// observation that fewer qubits + inequality constraints generally win, and
// that CQM2 with tight k1 is the fragile combination.

#include <iostream>

#include "common.hpp"
#include "lrp/solver.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workloads/scenarios.hpp"

int main() {
  using namespace qulrb;
  const bench::QuantumBudget budget = bench::QuantumBudget::from_env();

  const workloads::scenarios::Scenario cases[] = {
      workloads::scenarios::imbalance_levels()[4],  // M=8, n=50, severe
      workloads::scenarios::node_scaling(16),       // M=16, n=100
      workloads::scenarios::task_scaling(512),      // M=8, n=512
  };

  util::Table table({"Scenario", "k", "Variant", "#vars", "R_imb", "# mig.",
                     "feasible", "time (ms)"});
  for (const auto& scenario : cases) {
    const lrp::KSelection k = lrp::select_k(scenario.problem);
    for (const std::int64_t bound : {k.k1, k.k2}) {
      for (const auto variant : {lrp::CqmVariant::kReduced, lrp::CqmVariant::kFull}) {
        lrp::QcqmSolver solver(bench::make_qcqm_options(variant, bound, budget));
        util::WallTimer timer;
        const lrp::SolverReport report =
            lrp::run_and_evaluate(solver, scenario.problem);
        const auto& diag = solver.last_diagnostics();
        table.add_row(
            {scenario.name, util::Table::integer(bound),
             lrp::to_string(variant),
             util::Table::integer(static_cast<long long>(diag->num_variables)),
             util::Table::num(report.metrics.imbalance_after, 5),
             util::Table::integer(report.metrics.total_migrated),
             diag->sample_feasible ? "yes" : "no",
             util::Table::num(timer.elapsed_ms(), 1)});
      }
    }
  }
  std::cout << "=== Ablation: formulation variant at a fixed anneal budget ===\n";
  table.print(std::cout);
  std::cout << "\nExpected shape (paper Section VI): the reduced all-inequality "
               "formulation\nreaches better balance at the same budget; the "
               "equality-constrained full form\nsuffers most under the tight "
               "k1 bound.\n";
  return 0;
}
