// Robustness study beyond the paper's palette: Pareto (heavy-tailed)
// per-process loads, the pathological shape adaptive codes produce when a
// few partitions concentrate almost all cost. Sweeps the tail exponent and
// compares every method's balance and migration volume, with a distribution
// snapshot of the worst case.

#include <iostream>

#include "common.hpp"
#include "util/histogram.hpp"
#include "workloads/mxm.hpp"

int main() {
  using namespace qulrb;
  const bench::QuantumBudget budget = bench::QuantumBudget::from_env();

  std::cout << "=== Heavy-tailed load robustness (M = 16, n = 64) ===\n\n";
  std::vector<bench::ScenarioResult> results;
  for (const double alpha : {3.0, 1.5, 1.0}) {
    const lrp::LrpProblem problem =
        workloads::make_heavy_tail_problem(16, 64, alpha, 2024);
    const std::string name = "alpha=" + util::Table::num(alpha, 1) + " (R_imb " +
                             util::Table::num(problem.imbalance_ratio(), 2) + ")";
    std::cout << "running " << name << " ...\n";
    results.push_back(bench::run_all_solvers(name, problem, budget));
  }

  std::cout << "\n--- imbalance after rebalancing ---\n";
  bench::make_imbalance_table(results).print(std::cout);
  std::cout << "\n--- migrated tasks ---\n";
  bench::make_migration_table(results).print(std::cout);

  // Distribution snapshot of the hardest instance.
  const lrp::LrpProblem worst = workloads::make_heavy_tail_problem(16, 64, 1.0, 2024);
  std::vector<double> loads(worst.num_processes());
  for (std::size_t i = 0; i < worst.num_processes(); ++i) loads[i] = worst.load(i);
  std::cout << "\nPer-process load distribution at alpha = 1.0:\n";
  util::Histogram::from_data(loads, 8).print(std::cout, 30);

  std::cout << "\nThe paper's shapes persist under heavy tails: Q_*_k1 track "
               "ProactLB's minimal\nmigrations; the capacity-bounded CQM stays "
               "feasible even when one process holds\nmost of the load.\n";
  return 0;
}
