// Figure 4 + Table III reproduction: n = 100 MxM tasks per node, node count
// scaled over {4, 8, 16, 32, 64}. Prints imbalance/speedup (Figure 4) and the
// migration-count table (Table III) with the paper's values alongside.
//
// The 64-node Q_CQM models hold ~28k binary variables — the structured CQM
// annealer keeps each flip O(1), so this completes in minutes on a laptop.
// Set QULRB_BENCH_MAX_NODES=32 to skip the largest scale.

#include <cstdlib>
#include <iostream>

#include "common.hpp"
#include "workloads/scenarios.hpp"

int main() {
  using namespace qulrb;
  const bench::QuantumBudget budget = bench::QuantumBudget::from_env();

  std::size_t max_nodes = 64;
  if (const char* env = std::getenv("QULRB_BENCH_MAX_NODES")) {
    max_nodes = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }

  std::vector<bench::ScenarioResult> results;
  for (std::size_t nodes : workloads::scenarios::node_scaling_counts()) {
    if (nodes > max_nodes) continue;
    const auto scenario = workloads::scenarios::node_scaling(nodes);
    std::cout << "running " << scenario.name
              << " (baseline R_imb = " << scenario.problem.imbalance_ratio()
              << ") ...\n";
    results.push_back(
        bench::run_all_solvers(scenario.name, scenario.problem, budget));
  }

  std::cout << "\n=== Figure 4 (left): imbalance ratio after rebalancing ===\n";
  bench::make_imbalance_table(results).print(std::cout);

  std::cout << "\n=== Figure 4 (right): speedup ===\n";
  bench::make_speedup_table(results).print(std::cout);

  std::cout << "\n=== Table III: total migrated tasks per node scale ===\n";
  bench::make_migration_table(results).print(std::cout);

  std::cout << "\nPaper Table III reference:\n"
               "  Greedy   300 / 700 / 1499 / 3105 / 6302\n"
               "  KK       300 / 700 / 1501 / 3098 / 6302\n"
               "  ProactLB  90 / 163 /  350 /  644 / 2353\n"
               "  Q_CQM1_k1 89 / 163 /  350 /  644 / 2353\n"
               "  Q_CQM1_k2 285 / 681 / 1482 / 3053 / 6298\n"
               "  Q_CQM2_k1 79 / 163 /  338 /  644 / 2353\n"
               "  Q_CQM2_k2 284 / 634 / 1434 / 3084 / 6300\n"
               "Shape: Greedy/KK migrate ~N(M-1)/M; Q_*_k1 track ProactLB; "
               "Q_CQM2_k1 degrades as M grows.\n";
  return 0;
}
