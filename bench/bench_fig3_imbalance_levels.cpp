// Figure 3 + Table II reproduction: M = 8 nodes, n = 50 MxM tasks per node,
// five imbalance levels (Imb.0 balanced .. Imb.4 severe). Prints the
// imbalance-ratio and speedup series of Figure 3 and the migration/runtime
// summary of Table II, with the paper's reported values alongside.

#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"
#include "workloads/scenarios.hpp"

int main() {
  using namespace qulrb;
  const bench::QuantumBudget budget = bench::QuantumBudget::from_env();

  std::vector<bench::ScenarioResult> results;
  for (const auto& scenario : workloads::scenarios::imbalance_levels()) {
    std::cout << "running " << scenario.name
              << " (baseline R_imb = " << scenario.problem.imbalance_ratio()
              << ") ...\n";
    results.push_back(
        bench::run_all_solvers(scenario.name, scenario.problem, budget));
  }

  std::cout << "\n=== Figure 3 (left): imbalance ratio after rebalancing ===\n";
  bench::make_imbalance_table(results).print(std::cout);

  std::cout << "\n=== Figure 3 (right): speedup (L_max before / after) ===\n";
  bench::make_speedup_table(results).print(std::cout);

  std::cout << "\n=== Table II: averages over the five imbalance levels ===\n";
  util::Table table({"Algorithm", "# total mig. tasks (avg)",
                     "# mig. tasks per process (avg)", "Runtime (ms)",
                     "paper: total mig."});
  const std::vector<std::string> paper_mig = {"351.8", "351.4", "60.4", "60.4",
                                              "316.0", "60.4", "316.0"};
  for (std::size_t a = 0; a < bench::algorithm_labels().size(); ++a) {
    util::RunningStats migrated, per_process, runtime;
    for (const auto& r : results) {
      migrated.add(static_cast<double>(r.rows[a].metrics.total_migrated));
      per_process.add(r.rows[a].metrics.migrated_per_process);
      runtime.add(r.rows[a].cpu_ms + r.rows[a].qpu_ms);
    }
    table.add_row({bench::algorithm_labels()[a], util::Table::num(migrated.mean(), 1),
                   util::Table::num(per_process.mean(), 2),
                   util::Table::num(runtime.mean(), 4), paper_mig[a]});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: Greedy ~= KK >> ProactLB = Q_*_k1; Q_*_k2 slightly "
               "below Greedy;\nall methods reach R_imb ~ 0 and equal speedups "
               "(Imb.0 requires no migration).\n";
  return 0;
}
