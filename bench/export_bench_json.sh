#!/usr/bin/env sh
# Export the kernel and service benchmarks as machine-readable JSON.
#
# Runs bench_solver_micro (google-benchmark JSON format), joins the results
# against the checked-in pre-CSR seed baseline (bench/baseline_kernel_seed.json,
# re-measure with QULRB_BASELINE_JSON=<file> to swap it), and writes
# BENCH_kernel.json at the repository root with before/after times and
# speedups per benchmark. Then runs bench_service and writes
# BENCH_service.json with request latency cold vs cached (and the implied
# cache speedup), per-kind session-checkout cost, and closed-loop throughput
# by concurrency. Finally runs bench_obs and writes BENCH_obs.json with the
# recording-on vs recording-off annealer sweep times and the implied
# observability overhead (the acceptance bar is <2% at m=32).
#
# Usage: bench/export_bench_json.sh [build-dir]   (default: ./build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench_bin="$build_dir/bench/bench_solver_micro"
bank_bin="$build_dir/bench/bench_replica_bank"
baseline=${QULRB_BASELINE_JSON:-"$repo_root/bench/baseline_kernel_seed.json"}
out="$repo_root/BENCH_kernel.json"
min_time=${QULRB_BENCH_MIN_TIME:-0.3}
filter=${QULRB_BENCH_FILTER:-'BM_CqmFlipDelta|BM_CqmAnnealSweep|BM_CqmPairIndexBuild|BM_QuboEnergy|BM_PimcSweep'}
bank_filter=${QULRB_BANK_BENCH_FILTER:-'BM_ReplicaBank'}

if [ ! -x "$bench_bin" ]; then
  echo "error: $bench_bin not found or not executable (build with -DQULRB_BUILD_BENCHES=ON)" >&2
  exit 1
fi

tmp=$(mktemp)
bank_tmp=$(mktemp)
trap 'rm -f "$tmp" "$bank_tmp"' EXIT

"$bench_bin" \
  --benchmark_filter="$filter" \
  --benchmark_min_time="$min_time" \
  --benchmark_format=json > "$tmp"

# Replica-bank R-sweep rides along in the same kernel document (the SIMD
# dispatch level each binary ran with is in context.qulrb_simd_level).
if [ -x "$bank_bin" ]; then
  "$bank_bin" \
    --benchmark_filter="$bank_filter" \
    --benchmark_min_time="$min_time" \
    --benchmark_format=json > "$bank_tmp"
else
  echo "warning: $bank_bin not found; BENCH_kernel.json will lack BM_ReplicaBank rows" >&2
  printf '{"benchmarks": []}\n' > "$bank_tmp"
fi

python3 - "$tmp" "$bank_tmp" "$baseline" "$out" <<'PY'
import json
import sys

current_path, bank_path, baseline_path, out_path = (sys.argv[1], sys.argv[2],
                                                    sys.argv[3], sys.argv[4])

with open(current_path) as f:
    current = json.load(f)

with open(bank_path) as f:
    bank = json.load(f)
current.setdefault("benchmarks", []).extend(bank.get("benchmarks", []))

try:
    with open(baseline_path) as f:
        baseline = json.load(f)
except FileNotFoundError:
    baseline = {"benchmarks": []}

def times(report):
    # Manually timed benchmarks (the lockstep replica sweeps report wall time
    # per replica) get a "/manual_time" suffix from google-benchmark; strip it
    # so names stay stable against pre-manual-time baselines.
    def clean(name):
        suffix = "/manual_time"
        return name[: -len(suffix)] if name.endswith(suffix) else name

    return {
        clean(b["name"]): {"real_time_ns": b["real_time"], "cpu_time_ns": b["cpu_time"]}
        for b in report.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }

before = times(baseline)
after = times(current)

rows = {}
for name, cur in sorted(after.items()):
    row = {"after": cur}
    base = before.get(name)
    if base:
        row["before"] = base
        row["speedup"] = round(base["real_time_ns"] / cur["real_time_ns"], 3)
    rows[name] = row

result = {
    "bench": "bench_solver_micro",
    "baseline": {
        "source": baseline_path,
        "note": baseline.get("note", "pre-CSR seed layout, same machine"),
        "context": baseline.get("context", {}),
    },
    "context": current.get("context", {}),
    "benchmarks": rows,
}

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

for name, row in rows.items():
    speedup = f'  {row["speedup"]:.2f}x' if "speedup" in row else ""
    print(f'{name}: {row["after"]["real_time_ns"]:.1f} ns{speedup}')
print(f"wrote {out_path}")
PY

# ----------------------------------------------------------- service bench ---
service_bin="$build_dir/bench/bench_service"
service_out="$repo_root/BENCH_service.json"
service_min_time=${QULRB_SERVICE_BENCH_MIN_TIME:-0.2}

run_obs_bench() {
  obs_bin="$build_dir/bench/bench_obs"
  obs_out="$repo_root/BENCH_obs.json"
  obs_min_time=${QULRB_OBS_BENCH_MIN_TIME:-0.3}

  if [ ! -x "$obs_bin" ]; then
    echo "warning: $obs_bin not found; skipping BENCH_obs.json" >&2
    return 0
  fi

  obs_tmp=$(mktemp)
  "$obs_bin" \
    --benchmark_min_time="$obs_min_time" \
    --benchmark_repetitions="${QULRB_OBS_BENCH_REPS:-3}" \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json > "$obs_tmp"

  python3 - "$obs_tmp" "$obs_out" <<'PY'
import json
import sys

current_path, out_path = sys.argv[1], sys.argv[2]

with open(current_path) as f:
    report = json.load(f)

rows = {}
for b in report.get("benchmarks", []):
    # With repetitions we keep the median aggregate; without, the iteration.
    if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
        continue
    name = b.get("run_name", b["name"])
    rows[name] = {
        "real_time": b["real_time"],
        "cpu_time": b["cpu_time"],
        "time_unit": b.get("time_unit", "ns"),
    }

summary = {}
for m in (8, 32):
    off = rows.get(f"BM_CqmAnnealSweepObsOff/{m}")
    on = rows.get(f"BM_CqmAnnealSweepObsOn/{m}")
    if off and on:
        overhead = on["real_time"] / off["real_time"] - 1.0
        summary[f"sweep_overhead_pct_m{m}"] = round(100.0 * overhead, 2)
    flight = rows.get(f"BM_CqmAnnealSweepFlightOn/{m}")
    if off and flight:
        overhead = flight["real_time"] / off["real_time"] - 1.0
        summary[f"flight_overhead_pct_m{m}"] = round(100.0 * overhead, 2)
    prof = rows.get(f"BM_CqmAnnealSweepProfOn/{m}")
    if off and prof:
        overhead = prof["real_time"] / off["real_time"] - 1.0
        summary[f"profiler_overhead_pct_m{m}"] = round(100.0 * overhead, 2)
for prim in ("BM_ObsCounterInc", "BM_ObsHistogramObserve", "BM_ObsNullSpan",
             "BM_FlightRecord"):
    if prim in rows:
        summary[f"{prim}_ns"] = round(rows[prim]["real_time"], 2)

result = {
    "bench": "bench_obs",
    "note": "recording-on, flight-ring-on, and 99 Hz profiler-on vs "
            "recording-off annealer sweep; overhead bars <2% (recording, "
            "flight) and <1% (profiler) at m=32",
    "context": report.get("context", {}),
    "summary": summary,
    "benchmarks": rows,
}

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

for key, value in summary.items():
    print(f"{key}: {value}")
print(f"wrote {out_path}")
PY
  rm -f "$obs_tmp"
}

run_router_bench() {
  router_bin="$build_dir/bench/bench_router_policy"
  router_out="$repo_root/BENCH_router.json"
  router_min_time=${QULRB_ROUTER_BENCH_MIN_TIME:-0.2}

  if [ ! -x "$router_bin" ]; then
    echo "warning: $router_bin not found; skipping BENCH_router.json" >&2
    return 0
  fi

  router_tmp=$(mktemp)
  fleet_tmp=$(mktemp)
  "$router_bin" \
    --benchmark_min_time="$router_min_time" \
    --benchmark_format=json > "$router_tmp"

  # Fleet measurement (real backends + router + loadgen). Skippable for
  # micro-only refreshes with QULRB_SKIP_FLEET_BENCH=1.
  if [ "${QULRB_SKIP_FLEET_BENCH:-0}" = "1" ]; then
    printf '{}\n' > "$fleet_tmp"
  else
    python3 "$repo_root/bench/router_fleet_bench.py" "$build_dir" "$fleet_tmp" \
      "${QULRB_FLEET_REQUESTS:-800}" "${QULRB_FLEET_CONCURRENCY:-8}"
  fi

  python3 - "$router_tmp" "$fleet_tmp" "$router_out" <<'PY'
import json
import sys

current_path, fleet_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]

with open(current_path) as f:
    report = json.load(f)
with open(fleet_path) as f:
    fleet = json.load(f)

rows = {}
for b in report.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    row = {
        "real_time": b["real_time"],
        "cpu_time": b["cpu_time"],
        "time_unit": b.get("time_unit", "ns"),
    }
    if "items_per_second" in b:
        row["items_per_second"] = round(b["items_per_second"], 1)
    rows[b["name"]] = row

summary = {}
for name in ("random", "round_robin", "shortest_queue",
             "shortest_queue_stale", "cache_affinity"):
    row = rows.get(f"BM_PolicyPick/{name}")
    if row:
        summary[f"pick_ns_{name}"] = round(row["real_time"], 1)
if fleet:
    summary["fleet"] = fleet

result = {
    "bench": "bench_router_policy",
    "note": ("router hot-path micro costs plus fleet-level sharding: "
             "bounded per-backend caches, 16-topology Zipf universe — "
             "scale-out grows aggregate cache capacity, cache-affinity "
             "keeps each shard's working set resident"),
    "context": report.get("context", {}),
    "summary": summary,
    "benchmarks": rows,
}

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

for key, value in summary.items():
    if not isinstance(value, dict):
        print(f"{key}: {value}")
print(f"wrote {out_path}")
PY
  rm -f "$router_tmp" "$fleet_tmp"
}

if [ ! -x "$service_bin" ]; then
  echo "warning: $service_bin not found; skipping BENCH_service.json" >&2
  run_obs_bench
  run_router_bench
  exit 0
fi

service_tmp=$(mktemp)
trap 'rm -f "$tmp" "$service_tmp"' EXIT

"$service_bin" \
  --benchmark_min_time="$service_min_time" \
  --benchmark_format=json > "$service_tmp"

python3 - "$service_tmp" "$service_out" <<'PY'
import json
import sys

current_path, out_path = sys.argv[1], sys.argv[2]

with open(current_path) as f:
    report = json.load(f)

rows = {}
for b in report.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    row = {
        "real_time": b["real_time"],
        "cpu_time": b["cpu_time"],
        "time_unit": b.get("time_unit", "ns"),
    }
    if "items_per_second" in b:
        row["items_per_second"] = round(b["items_per_second"], 1)
    rows[b["name"]] = row

def ms(name):
    row = rows.get(name)
    if not row:
        return None
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[row["time_unit"]]
    return row["real_time"] * scale

summary = {}
cold, exact, retarget = (ms("BM_ServiceSolveCold"), ms("BM_ServiceSolveWarmExact"),
                         ms("BM_ServiceSolveWarmRetarget"))
if cold and exact:
    summary["request_ms_cold"] = round(cold, 4)
    summary["request_ms_warm_exact"] = round(exact, 4)
    summary["cache_speedup_exact"] = round(cold / exact, 3)
if cold and retarget:
    summary["request_ms_warm_retarget"] = round(retarget, 4)
    summary["cache_speedup_retarget"] = round(cold / retarget, 3)
throughput = {
    name.split("/")[1].split(":")[0]: row["items_per_second"]
    for name, row in rows.items()
    if name.startswith("BM_ServiceThroughput/") and "items_per_second" in row
}
if throughput:
    summary["throughput_req_per_s_by_concurrency"] = throughput

result = {
    "bench": "bench_service",
    "context": report.get("context", {}),
    "summary": summary,
    "benchmarks": rows,
}

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

for key, value in summary.items():
    print(f"{key}: {value}")
print(f"wrote {out_path}")
PY

# --------------------------------------------------------------- obs bench ---
run_obs_bench

# ------------------------------------------------------------ router bench ---
run_router_bench
