// Replica-bank throughput: per-replica lockstep sweep time as a function of
// the bank width R, for the dispatched SIMD kernels and the forced-scalar
// fallback. The R=1 column is the amortisation floor (all bank overhead, no
// sharing); R=8/16 show the across-lane win. Times are per replica (manual
// timing divides the lockstep wall time by R), so every row is directly
// comparable to the single-chain BM_CqmAnnealSweep baseline.

#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "anneal/cqm_anneal.hpp"
#include "anneal/replica_bank.hpp"
#include "anneal/simd.hpp"
#include "lrp/cqm_builder.hpp"
#include "util/rng.hpp"
#include "workloads/scenarios.hpp"

namespace {

using namespace qulrb;

const bool g_simd_context_registered = [] {
  benchmark::AddCustomContext(
      "qulrb_simd_level", anneal::simd::level_name(anneal::simd::active_level()));
  return true;
}();

void run_bank_sweep(benchmark::State& state, anneal::simd::Level level) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const auto scenario = workloads::scenarios::node_scaling(32);
  const lrp::LrpCqm cqm(scenario.problem, lrp::CqmVariant::kReduced, 500);
  const std::vector<double> penalties(cqm.cqm().num_constraints(), 1.0);
  const auto pairs = anneal::PairMoveIndex::build(cqm.cqm());

  const auto saved = anneal::simd::active_level();
  anneal::simd::set_active_level(level);

  std::vector<util::Rng> rngs;
  rngs.reserve(lanes);
  for (std::size_t r = 0; r < lanes; ++r) rngs.emplace_back(5 + r);
  util::Rng proposal(5);
  anneal::BatchedCqmAnnealParams params;
  params.sweeps = 1;
  const anneal::BatchedCqmAnnealer annealer(params);
  std::vector<anneal::BatchedLaneSpec> specs(lanes);
  for (std::size_t r = 0; r < lanes; ++r) {
    specs[r].rng = &rngs[r];
    specs[r].penalties = &penalties;
  }

  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    auto out = annealer.anneal_lanes(cqm.cqm(), specs, &pairs, &proposal);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(out);
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count() /
                           static_cast<double>(lanes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cqm.num_binary_variables()));

  anneal::simd::set_active_level(saved);
}

void BM_ReplicaBankSweep(benchmark::State& state) {
  run_bank_sweep(state, anneal::simd::detected_level());
}
BENCHMARK(BM_ReplicaBankSweep)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->UseManualTime();

void BM_ReplicaBankSweepScalar(benchmark::State& state) {
  run_bank_sweep(state, anneal::simd::Level::kScalar);
}
BENCHMARK(BM_ReplicaBankSweepScalar)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->UseManualTime();

// Bank construction alone (the all-lane evaluation kernel): what a hybrid
// restart chunk pays up front before sweeping.
void run_bank_construct(benchmark::State& state, anneal::simd::Level level) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const auto scenario = workloads::scenarios::node_scaling(32);
  const lrp::LrpCqm cqm(scenario.problem, lrp::CqmVariant::kReduced, 500);
  const std::size_t n = cqm.num_binary_variables();

  const auto saved = anneal::simd::active_level();
  anneal::simd::set_active_level(level);

  util::Rng rng(11);
  std::vector<model::State> states(lanes);
  for (auto& s : states) {
    s.resize(n);
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_below(2));
  }
  const std::vector<std::vector<double>> penalties(
      lanes, std::vector<double>(cqm.cqm().num_constraints(), 1.0));

  for (auto _ : state) {
    anneal::CqmReplicaBank bank(cqm.cqm(), states, penalties);
    benchmark::DoNotOptimize(bank.objective(lanes - 1));
  }

  anneal::simd::set_active_level(saved);
}

void BM_ReplicaBankConstruct(benchmark::State& state) {
  run_bank_construct(state, anneal::simd::detected_level());
}
BENCHMARK(BM_ReplicaBankConstruct)->Arg(8);

void BM_ReplicaBankConstructScalar(benchmark::State& state) {
  run_bank_construct(state, anneal::simd::Level::kScalar);
}
BENCHMARK(BM_ReplicaBankConstructScalar)->Arg(8);

}  // namespace
