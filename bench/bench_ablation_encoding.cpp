// Ablation: the paper's non-standard coefficient set (sums to exactly n)
// versus plain clamped binary encoding, at identical solver budgets. The
// coefficient set guarantees "all bits on == all n tasks", which tightens the
// model; this bench quantifies the quality difference.

#include <iostream>

#include "common.hpp"
#include "lrp/encoding.hpp"
#include "lrp/solver.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workloads/scenarios.hpp"

int main() {
  using namespace qulrb;
  const bench::QuantumBudget budget = bench::QuantumBudget::from_env();

  std::cout << "=== Encoding sizes: |C| per n ===\n";
  util::Table sizes({"n", "paper set", "standard binary", "paper set contents"});
  for (std::int64_t n : {8, 13, 50, 100, 208, 2048}) {
    const auto paper = lrp::coefficient_set(n);
    std::string contents;
    for (std::size_t i = 0; i < paper.size(); ++i) {
      if (i) contents += ",";
      contents += std::to_string(paper[i]);
    }
    sizes.add_row({util::Table::integer(n),
                   util::Table::integer(static_cast<long long>(paper.size())),
                   util::Table::integer(
                       static_cast<long long>(lrp::standard_binary_set(n).size())),
                   contents});
  }
  sizes.print(std::cout);

  std::cout << "\n=== Solution quality: paper set vs standard binary ===\n";
  util::Table table({"Scenario", "k", "Encoding", "#vars", "R_imb", "# mig.",
                     "time (ms)"});
  const workloads::scenarios::Scenario cases[] = {
      workloads::scenarios::imbalance_levels()[3],
      workloads::scenarios::task_scaling(256),
  };
  for (const auto& scenario : cases) {
    const lrp::KSelection k = lrp::select_k(scenario.problem);
    for (const bool use_paper : {true, false}) {
      lrp::QcqmOptions options =
          bench::make_qcqm_options(lrp::CqmVariant::kReduced, k.k2, budget);
      options.build.use_paper_coefficient_set = use_paper;
      lrp::QcqmSolver solver(options);
      util::WallTimer timer;
      const lrp::SolverReport report = lrp::run_and_evaluate(solver, scenario.problem);
      const auto& diag = solver.last_diagnostics();
      table.add_row({scenario.name, util::Table::integer(k.k2),
                     use_paper ? "paper set" : "standard binary",
                     util::Table::integer(static_cast<long long>(diag->num_variables)),
                     util::Table::num(report.metrics.imbalance_after, 5),
                     util::Table::integer(report.metrics.total_migrated),
                     util::Table::num(timer.elapsed_ms(), 1)});
    }
  }
  table.print(std::cout);
  return 0;
}
