#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace qulrb::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must not be empty");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "Table: row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(long long v) { return std::to_string(v); }

namespace {

std::vector<std::size_t> column_widths(const std::vector<std::string>& header,
                                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

void print_separator(std::ostream& os, const std::vector<std::size_t>& widths) {
  os << '+';
  for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
  os << '\n';
}

void print_cells(std::ostream& os, const std::vector<std::string>& cells,
                 const std::vector<std::size_t>& widths) {
  os << '|';
  for (std::size_t c = 0; c < cells.size(); ++c) {
    os << ' ' << cells[c] << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
  }
  os << '\n';
}

}  // namespace

void Table::print(std::ostream& os) const {
  const auto widths = column_widths(header_, rows_);
  print_separator(os, widths);
  print_cells(os, header_, widths);
  print_separator(os, widths);
  for (const auto& row : rows_) print_cells(os, row, widths);
  print_separator(os, widths);
}

void Table::print_markdown(std::ostream& os) const {
  os << '|';
  for (const auto& h : header_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (const auto& cell : row) os << ' ' << cell << " |";
    os << '\n';
  }
}

}  // namespace qulrb::util
