#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace qulrb::util {

/// splitmix64: used to seed the main generator and to derive independent
/// stream seeds from a single user seed. Reference: Steele, Lea, Flood,
/// "Fast splittable pseudorandom number generators" (OOPSLA'14).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Deterministic, fast, and good enough
/// statistically for Monte-Carlo annealing. Satisfies UniformRandomBitGenerator
/// so it can be used with <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Standard normal via Box-Muller (no cached spare; simple & deterministic).
  double next_normal() noexcept;

  /// Derive an independent child generator (for per-thread streams).
  Rng split() noexcept { return Rng(next_u64() ^ 0xA5A5A5A5DEADBEEFULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace qulrb::util
