#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace qulrb::util {

struct NelderMeadParams {
  std::size_t max_evaluations = 2000;
  double initial_step = 0.5;       ///< simplex edge length around the start
  double tolerance = 1e-7;         ///< stop when the simplex f-spread is below
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t evaluations = 0;
  bool converged = false;
};

/// Derivative-free downhill-simplex minimization (Nelder & Mead 1965). Used
/// for the variational parameter loop of the QAOA solver, where gradients of
/// the simulated expectation value are unavailable.
NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> start,
                             const NelderMeadParams& params = {});

}  // namespace qulrb::util
