#include "util/nelder_mead.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qulrb::util {

NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> start,
                             const NelderMeadParams& params) {
  const std::size_t dim = start.size();
  require(dim > 0, "nelder_mead: need at least one dimension");

  NelderMeadResult result;

  // Initial simplex: start plus one vertex per axis.
  std::vector<std::vector<double>> simplex;
  simplex.reserve(dim + 1);
  simplex.push_back(start);
  for (std::size_t d = 0; d < dim; ++d) {
    auto vertex = start;
    vertex[d] += params.initial_step;
    simplex.push_back(std::move(vertex));
  }

  std::vector<double> values(dim + 1);
  for (std::size_t i = 0; i <= dim; ++i) {
    values[i] = f(simplex[i]);
    ++result.evaluations;
  }

  auto order = [&] {
    std::vector<std::size_t> idx(dim + 1);
    for (std::size_t i = 0; i <= dim; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    return idx;
  };

  while (result.evaluations < params.max_evaluations) {
    const auto idx = order();
    const std::size_t best = idx[0];
    const std::size_t worst = idx[dim];
    const std::size_t second_worst = idx[dim - 1];

    if (std::abs(values[worst] - values[best]) < params.tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(dim, 0.0);
    for (std::size_t i = 0; i <= dim; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < dim; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(dim);

    auto blend = [&](double coeff) {
      std::vector<double> point(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        point[d] = centroid[d] + coeff * (simplex[worst][d] - centroid[d]);
      }
      return point;
    };

    // Reflection.
    const auto reflected = blend(-params.reflection);
    const double fr = f(reflected);
    ++result.evaluations;

    if (fr < values[best]) {
      // Expansion.
      const auto expanded = blend(-params.expansion);
      const double fe = f(expanded);
      ++result.evaluations;
      if (fe < fr) {
        simplex[worst] = expanded;
        values[worst] = fe;
      } else {
        simplex[worst] = reflected;
        values[worst] = fr;
      }
      continue;
    }
    if (fr < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = fr;
      continue;
    }

    // Contraction (toward the better of worst/reflected).
    const bool outside = fr < values[worst];
    const auto contracted = blend(outside ? -params.contraction : params.contraction);
    const double fc = f(contracted);
    ++result.evaluations;
    if (fc < std::min(fr, values[worst])) {
      simplex[worst] = contracted;
      values[worst] = fc;
      continue;
    }

    // Shrink toward the best vertex.
    for (std::size_t i = 0; i <= dim; ++i) {
      if (i == best) continue;
      for (std::size_t d = 0; d < dim; ++d) {
        simplex[i][d] =
            simplex[best][d] + params.shrink * (simplex[i][d] - simplex[best][d]);
      }
      values[i] = f(simplex[i]);
      ++result.evaluations;
      if (result.evaluations >= params.max_evaluations) break;
    }
  }

  const auto idx = order();
  result.x = simplex[idx[0]];
  result.value = values[idx[0]];
  return result;
}

}  // namespace qulrb::util
