#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qulrb::util {

/// Minimal fixed-size thread pool for embarrassingly parallel solver restarts
/// (multi-start annealing, parallel tempering replicas). Tasks may not throw;
/// wrap user work in try/catch at the submission site if it can.
class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task. Safe to call from multiple threads.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  /// Run fn(i) for i in [0, count) across the pool and wait for completion.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace qulrb::util
