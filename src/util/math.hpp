#pragma once

#include <cstdint>
#include <span>

namespace qulrb::util {

/// floor(log2(n)) for n >= 1. Precondition: n > 0.
int ilog2_floor(std::uint64_t n) noexcept;

/// ceil(log2(n)) for n >= 1. Precondition: n > 0.
int ilog2_ceil(std::uint64_t n) noexcept;

/// ceil(a / b) for non-negative integers, b > 0.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

/// True if |a - b| <= atol + rtol * max(|a|, |b|).
bool approx_equal(double a, double b, double rtol = 1e-9, double atol = 1e-12) noexcept;

/// Kahan-compensated sum, for long load accumulations.
double kahan_sum(std::span<const double> xs) noexcept;

}  // namespace qulrb::util
