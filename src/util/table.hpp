#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace qulrb::util {

/// Lightweight ASCII table formatter used by the benchmark harnesses to print
/// paper-style tables. Column widths auto-fit; numeric cells are supplied by
/// the caller already formatted.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 4);
  static std::string integer(long long v);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return header_.size(); }

  /// Render with box-drawing separators; suitable for terminal output.
  void print(std::ostream& os) const;

  /// Render as a GitHub-flavoured markdown table (for EXPERIMENTS.md).
  void print_markdown(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qulrb::util
