#pragma once

#include <stdexcept>
#include <string>

namespace qulrb::util {

/// Thrown when a caller violates an API precondition (bad model, bad plan,
/// malformed input file, ...). Callers that construct models from untrusted
/// input should catch this.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is broken; indicates a library bug.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Precondition check that is always on (cheap checks on public API
/// boundaries). Use plain assert() for hot inner-loop invariants.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

inline void ensure(bool condition, const std::string& message) {
  if (!condition) throw InternalError(message);
}

}  // namespace qulrb::util
