#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace qulrb::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

double median(std::vector<double> xs) noexcept { return quantile(std::move(xs), 0.5); }

double quantile(std::vector<double> xs, double q) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace qulrb::util
