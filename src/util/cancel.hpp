#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

namespace qulrb::util {

/// Cooperative cancellation handle shared between a solve and its controller
/// (the rebalancing service, a deadline watchdog, a client disconnect).
///
/// A token combines two independent triggers:
///  * an explicit cancel *flag*, shared by every copy of the token — calling
///    cancel() on any copy trips all of them;
///  * an optional *deadline* on the monotonic clock, carried per copy so a
///    callee can tighten its own budget (with_deadline_ms) without affecting
///    the caller's token.
///
/// Default-constructed tokens are inert: expired() is a two-load fast path
/// that never touches the clock, so solver inner loops can poll a token
/// unconditionally. Samplers are expected to poll once per sweep and, when
/// expired, return their best incumbent so far — cancellation is a budget,
/// not an abort.
class CancelToken {
 public:
  /// Inert token: never expires, cancel() is a no-op.
  CancelToken() = default;

  /// A token that can be cancelled explicitly via cancel().
  static CancelToken cancellable() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// Copy of this token whose deadline is `budget_ms` from now, or the
  /// current deadline if that is sooner. The cancel flag stays shared.
  CancelToken with_deadline_ms(double budget_ms) const {
    CancelToken token = *this;
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(budget_ms));
    if (!token.has_deadline_ || deadline < token.deadline_) {
      token.deadline_ = deadline;
      token.has_deadline_ = true;
    }
    return token;
  }

  /// Trip the shared flag. No-op on an inert token (no flag allocated).
  void cancel() const noexcept {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancel_requested() const noexcept {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  /// True once the flag is tripped or the deadline has passed. This is the
  /// poll solvers place in their sweep loops.
  bool expired() const noexcept {
    if (flag_ && flag_->load(std::memory_order_relaxed)) return true;
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Milliseconds until the deadline (+inf when none; <= 0 when passed).
  double remaining_ms() const noexcept {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(deadline_ - Clock::now())
        .count();
  }

  bool has_deadline() const noexcept { return has_deadline_; }
  /// True when some trigger exists (flag or deadline) — i.e. polling can
  /// ever return true.
  bool can_expire() const noexcept { return flag_ != nullptr || has_deadline_; }

 private:
  using Clock = std::chrono::steady_clock;

  std::shared_ptr<std::atomic<bool>> flag_;  ///< null on inert tokens
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace qulrb::util
