#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace qulrb::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  require(bins >= 1, "Histogram: need at least one bin");
  require(hi > lo, "Histogram: need hi > lo");
}

Histogram Histogram::from_data(std::span<const double> xs, std::size_t bins) {
  double lo = 0.0, hi = 1.0;
  if (!xs.empty()) {
    lo = *std::min_element(xs.begin(), xs.end());
    hi = *std::max_element(xs.begin(), xs.end());
    if (hi <= lo) hi = lo + 1.0;  // degenerate data: one unit-wide range
  }
  Histogram h(lo, hi, bins);
  h.add_all(xs);
  return h;
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  const auto bins = static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor(t * bins));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t bin) const {
  require(bin < counts_.size(), "Histogram: bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

void Histogram::print(std::ostream& os, std::size_t width) const {
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  const double bin_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double bin_lo = lo_ + static_cast<double>(b) * bin_width;
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / peak;
    os << "[" << bin_lo << ", " << bin_lo + bin_width << ") "
       << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
}

std::string Histogram::to_string(std::size_t width) const {
  std::ostringstream os;
  print(os, width);
  return os.str();
}

}  // namespace qulrb::util
