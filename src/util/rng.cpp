#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#ifdef __SIZEOF_INT128__
__extension__ typedef unsigned __int128 uint128;
#endif

namespace qulrb::util {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
#ifdef __SIZEOF_INT128__
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  uint128 m = static_cast<uint128>(x) * static_cast<uint128>(bound);
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = next_u64();
      m = static_cast<uint128>(x) * static_cast<uint128>(bound);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
#else
  // Rejection sampling fallback.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % bound;
#endif
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_normal() noexcept {
  // Box-Muller; guard against log(0).
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace qulrb::util
