#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace qulrb::util {

/// Streaming mean/variance accumulator (Welford's algorithm). Numerically
/// stable for long Monte-Carlo runs.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs) noexcept;
double stddev(std::span<const double> xs) noexcept;
/// Median; copies the input (caller keeps ordering).
double median(std::vector<double> xs) noexcept;
/// Linear-interpolated quantile, q in [0,1].
double quantile(std::vector<double> xs, double q) noexcept;

}  // namespace qulrb::util
