#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace qulrb::util {

/// Fixed-bin histogram over a [lo, hi] range, with ASCII rendering — used to
/// inspect sample-energy and load distributions from the solvers without
/// external plotting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Build with bounds taken from the data (degenerate data gets one bin).
  static Histogram from_data(std::span<const double> xs, std::size_t bins);

  void add(double x) noexcept;  ///< values outside [lo, hi] clamp to edge bins
  void add_all(std::span<const double> xs) noexcept;

  std::size_t num_bins() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const noexcept { return total_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

  /// Center value of a bin.
  double bin_center(std::size_t bin) const;

  /// Render as rows of "[lo, hi) ####  count", scaled to `width` characters.
  void print(std::ostream& os, std::size_t width = 40) const;
  std::string to_string(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace qulrb::util
