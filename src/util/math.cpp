#include "util/math.hpp"

#include <bit>
#include <cassert>
#include <cmath>

namespace qulrb::util {

int ilog2_floor(std::uint64_t n) noexcept {
  assert(n > 0);
  return 63 - std::countl_zero(n);
}

int ilog2_ceil(std::uint64_t n) noexcept {
  assert(n > 0);
  const int f = ilog2_floor(n);
  return std::has_single_bit(n) ? f : f + 1;
}

bool approx_equal(double a, double b, double rtol, double atol) noexcept {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

double kahan_sum(std::span<const double> xs) noexcept {
  double sum = 0.0;
  double c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace qulrb::util
