#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "anneal/sampleset.hpp"
#include "anneal/schedule.hpp"
#include "model/qubo.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {

struct SaParams {
  std::size_t sweeps = 1000;
  std::size_t num_reads = 8;  ///< independent restarts, one sample kept per read
  ScheduleKind schedule = ScheduleKind::kGeometric;
  /// Optional explicit beta range; unset derives it from the model scale.
  std::optional<double> beta_hot;
  std::optional<double> beta_cold;
  std::uint64_t seed = 1;
  /// Polled once per sweep (and between reads); when expired the best
  /// incumbent so far is returned. Inert by default.
  util::CancelToken cancel;
  /// Optional trace sink: one span per read plus a sampled incumbent-energy
  /// timeline. Consumes no RNG; output is bitwise identical with it on/off.
  obs::Recorder* recorder = nullptr;
  std::uint32_t trace_track = 0;
  /// Optional metrics sink: bumped by sweeps executed, once per read.
  obs::Counter* sweep_counter = nullptr;
};

/// Plain single-flip Metropolis simulated annealing over a QUBO, with O(deg)
/// incremental energy updates. This is the workhorse behind both the QUBO
/// path (ablations, penalty studies) and the test oracles.
class SimulatedAnnealer {
 public:
  explicit SimulatedAnnealer(SaParams params = {}) : params_(params) {}

  /// Run num_reads independent anneals; each read contributes its best-seen
  /// state (not the final state) to the sample set.
  SampleSet sample(const model::QuboModel& qubo) const;

  /// Single anneal starting from `initial` (random when empty).
  Sample anneal_once(const model::QuboModel& qubo, util::Rng& rng,
                     const model::State& initial = {}) const;

 private:
  BetaSchedule make_schedule(const model::QuboModel& qubo) const;

  SaParams params_;
};

}  // namespace qulrb::anneal
