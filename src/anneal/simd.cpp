#include "anneal/simd.hpp"

#include <atomic>

namespace qulrb::anneal::simd {

namespace {

Level probe() noexcept {
#if QULRB_HAVE_AVX2
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
#endif
  return Level::kScalar;
}

std::atomic<Level>& active_slot() noexcept {
  static std::atomic<Level> level{probe()};
  return level;
}

}  // namespace

Level detected_level() noexcept {
  static const Level detected = probe();
  return detected;
}

Level active_level() noexcept {
  return active_slot().load(std::memory_order_relaxed);
}

Level set_active_level(Level level) noexcept {
  if (level > detected_level()) level = detected_level();
  active_slot().store(level, std::memory_order_relaxed);
  return level;
}

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
  }
  return "unknown";
}

}  // namespace qulrb::anneal::simd
