#pragma once

#include <cstddef>
#include <vector>

namespace qulrb::anneal {

enum class ScheduleKind { kGeometric, kLinear };

/// Inverse-temperature (beta) schedule for simulated annealing.
class BetaSchedule {
 public:
  BetaSchedule(double beta_hot, double beta_cold, std::size_t sweeps,
               ScheduleKind kind = ScheduleKind::kGeometric);

  /// Beta for sweep s in [0, sweeps).
  double at(std::size_t sweep) const noexcept;

  std::size_t sweeps() const noexcept { return sweeps_; }
  double beta_hot() const noexcept { return beta_hot_; }
  double beta_cold() const noexcept { return beta_cold_; }

  /// Pick a beta range from the energy scale of a model: at beta_hot a move
  /// of size `max_delta` is accepted with ~50% probability; at beta_cold a
  /// move of size `min_delta` is accepted with probability ~exp(-10).
  static BetaSchedule for_energy_scale(double min_delta, double max_delta,
                                       std::size_t sweeps,
                                       ScheduleKind kind = ScheduleKind::kGeometric);

 private:
  double beta_hot_;
  double beta_cold_;
  std::size_t sweeps_;
  ScheduleKind kind_;
};

}  // namespace qulrb::anneal
