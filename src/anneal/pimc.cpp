#include "anneal/pimc.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {

using model::VarId;

namespace {

/// Local fields h_i + sum_j J_ij s_j for one spin configuration, maintained
/// incrementally: reading a candidate flip is O(1), committing one is
/// O(deg). Field storage is borrowed from the caller, so all Trotter slices
/// can share one contiguous P x n buffer (structure-of-arrays, slice-major)
/// instead of P separately allocated vectors; the quench lends a slice-sized
/// buffer of its own for the readout configuration.
class FieldCache {
 public:
  FieldCache(const model::IsingModel& ising, std::span<const std::int8_t> spins,
             std::span<double> field)
      : adjacency_(&ising.adjacency()), field_(field) {
    for (VarId i = 0; i < field_.size(); ++i) {
      field_[i] = ising.local_field(spins, i);
    }
  }

  double at(VarId i) const noexcept { return field_[i]; }

  /// Negate spin i in `spins` and propagate to the neighbours' fields.
  void flip(std::span<std::int8_t> spins, VarId i) noexcept {
    spins[i] = static_cast<std::int8_t>(-spins[i]);
    const double two_s = 2.0 * spins[i];
    for (const auto& nb : (*adjacency_)[i]) {
      field_[nb.other] += two_s * nb.coupling;
    }
  }

 private:
  const model::CsrRows<model::IsingModel::Neighbor>* adjacency_;
  std::span<double> field_;
};

}  // namespace

Sample PimcAnnealer::sample_ising(const model::IsingModel& ising) const {
  const std::size_t n = ising.num_spins();
  const std::size_t P = params_.trotter_slices;
  util::require(P >= 2, "PimcAnnealer: need at least 2 Trotter slices");
  util::require(params_.beta > 0.0, "PimcAnnealer: beta must be positive");

  util::Rng rng(params_.seed);

  if (n == 0) {
    return {model::State{}, ising.offset(), 0.0, true};
  }

  // Slice-major SoA storage: spin (k, i) lives at spins_flat[k * n + i] and
  // its local field at fields_flat[k * n + i] — one allocation each instead
  // of P, and slice k is the contiguous span [k * n, (k + 1) * n).
  std::vector<std::int8_t> spins_flat(P * n);
  for (auto& s : spins_flat) {
    s = rng.next_bool(0.5) ? std::int8_t{1} : std::int8_t{-1};
  }
  std::vector<double> fields_flat(P * n);
  auto spins = [&](std::size_t k) {
    return std::span<std::int8_t>(spins_flat.data() + k * n, n);
  };

  std::vector<FieldCache> fields;
  fields.reserve(P);
  for (std::size_t k = 0; k < P; ++k) {
    fields.emplace_back(ising, spins(k),
                        std::span<double>(fields_flat.data() + k * n, n));
  }

  std::vector<double> slice_energy(P);
  for (std::size_t k = 0; k < P; ++k) slice_energy[k] = ising.energy(spins(k));

  double best_energy = slice_energy[0];
  std::vector<std::int8_t> best_spins(spins(0).begin(), spins(0).end());
  for (std::size_t k = 1; k < P; ++k) {
    if (slice_energy[k] < best_energy) {
      best_energy = slice_energy[k];
      best_spins.assign(spins(k).begin(), spins(k).end());
    }
  }

  const double beta = params_.beta;
  const double Pd = static_cast<double>(P);

  obs::Recorder::Span evolve_span(params_.recorder, "pimc-evolve", "sampler",
                                  params_.trace_track);
  const std::size_t sample_every = std::max<std::size_t>(1, params_.sweeps / 64);
  std::size_t sweeps_done = 0;

  for (std::size_t sweep = 0; sweep < params_.sweeps; ++sweep) {
    if (params_.cancel.expired()) break;
    const double t = params_.sweeps == 1
                         ? 1.0
                         : static_cast<double>(sweep) /
                               static_cast<double>(params_.sweeps - 1);
    const double gamma =
        params_.gamma_initial +
        t * (params_.gamma_final - params_.gamma_initial);
    // Ferromagnetic inter-slice coupling strength; diverges as gamma -> 0,
    // freezing the slices together (the classical limit).
    const double arg = std::tanh(beta * gamma / Pd);
    const double j_perp = arg > 0.0 ? -0.5 * Pd / beta * std::log(arg) : 1e12;

    // Local moves: one Metropolis pass over every (slice, spin) pair.
    for (std::size_t k = 0; k < P; ++k) {
      const std::size_t up = (k + 1) % P;
      const std::size_t down = (k + P - 1) % P;
      for (std::size_t step = 0; step < n; ++step) {
        const auto i = static_cast<VarId>(rng.next_below(n));
        const double h_local = fields[k].at(i);
        const double s = spins_flat[k * n + i];
        // Problem part is scaled by 1/P in the Trotter decomposition.
        const double delta = 2.0 * s * h_local / Pd +
                             2.0 * s * j_perp *
                                 (spins_flat[up * n + i] + spins_flat[down * n + i]);
        if (delta <= 0.0 || rng.next_double() < std::exp(-beta * delta)) {
          fields[k].flip(spins(k), i);
          slice_energy[k] += 2.0 * (-s) * h_local;  // flip changes E by -2 s h
          if (slice_energy[k] < best_energy) {
            best_energy = slice_energy[k];
            best_spins.assign(spins(k).begin(), spins(k).end());
          }
        }
      }
    }

    // Global move: flip spin i in every slice simultaneously (the inter-slice
    // term is invariant, only the problem energy changes).
    for (std::size_t g = 0; g < n; ++g) {
      const auto i = static_cast<VarId>(rng.next_below(n));
      double delta = 0.0;
      for (std::size_t k = 0; k < P; ++k) {
        delta += 2.0 * spins_flat[k * n + i] * fields[k].at(i) / Pd;
      }
      if (delta <= 0.0 || rng.next_double() < std::exp(-beta * delta)) {
        for (std::size_t k = 0; k < P; ++k) {
          const double s = spins_flat[k * n + i];
          const double h_local = fields[k].at(i);
          fields[k].flip(spins(k), i);
          slice_energy[k] += 2.0 * (-s) * h_local;
          if (slice_energy[k] < best_energy) {
            best_energy = slice_energy[k];
            best_spins.assign(spins(k).begin(), spins(k).end());
          }
        }
      }
    }
    ++sweeps_done;
    if (params_.recorder != nullptr &&
        (sweep % sample_every == 0 || sweep + 1 == params_.sweeps)) {
      params_.recorder->sample("incumbent_energy", params_.trace_track,
                               best_energy);
    }
  }
  evolve_span.close();
  if (params_.sweep_counter != nullptr && sweeps_done > 0) {
    params_.sweep_counter->inc(sweeps_done);
  }

  // Zero-temperature quench of the best slice: accept all non-increasing
  // flips (plateau walks let residual domain walls diffuse and annihilate),
  // mirroring the classical readout quench of SQA implementations.
  {
    obs::Recorder::Span quench_span(params_.recorder, "pimc-quench", "sampler",
                                    params_.trace_track);
    std::vector<double> quench_field(n);
    FieldCache quench_fields(ising, best_spins, quench_field);
    double energy = ising.energy(best_spins);
    for (std::size_t pass = 0; pass < 20 * n; ++pass) {
      const auto i = static_cast<VarId>(rng.next_below(n));
      const double delta = -2.0 * best_spins[i] * quench_fields.at(i);
      if (delta <= 0.0) {
        quench_fields.flip(best_spins, i);
        energy += delta;
        if (energy < best_energy) best_energy = energy;
      }
    }
    // The plateau walk may end above the best point it visited; re-descend.
    bool improved = true;
    while (improved) {
      improved = false;
      for (VarId i = 0; i < n; ++i) {
        const double delta = -2.0 * best_spins[i] * quench_fields.at(i);
        if (delta < -1e-15) {
          quench_fields.flip(best_spins, i);
          improved = true;
        }
      }
    }
    best_energy = std::min(best_energy, ising.energy(best_spins));
  }

  return {model::spins_to_state(best_spins), best_energy, 0.0, true};
}

Sample PimcAnnealer::sample_qubo(const model::QuboModel& qubo) const {
  const model::IsingModel ising = model::qubo_to_ising(qubo);
  Sample s = sample_ising(ising);
  s.energy = qubo.energy(s.state);
  return s;
}

}  // namespace qulrb::anneal
