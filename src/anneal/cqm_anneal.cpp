#include "anneal/cqm_anneal.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace qulrb::anneal {

using model::CqmModel;
using model::Sense;
using model::VarId;

CqmIncrementalState::CqmIncrementalState(const CqmModel& cqm, model::State initial,
                                         std::vector<double> penalties)
    : cqm_(&cqm), state_(std::move(initial)) {
  util::require(state_.size() == cqm.num_variables(),
                "CqmIncrementalState: state size mismatch");
  util::require(penalties.size() == cqm.num_constraints(),
                "CqmIncrementalState: penalty count mismatch");

  // Bind the model's flat kernel views once so flip paths are allocation-free
  // contiguous scans.
  group_kernel_ = &cqm.group_kernel();
  group_inc_ = &cqm.group_incidence();
  con_inc_ = &cqm.constraint_incidence();
  quad_inc_ = &cqm.quadratic_incidence();
  linear_ = cqm.objective_linear();
  group_weights_ = cqm.group_weight_flat();

  const auto groups = cqm.squared_groups();
  group_values_.resize(groups.size());
  objective_ = cqm.objective_offset();
  for (VarId v = 0; v < linear_.size(); ++v) {
    if (state_[v]) objective_ += linear_[v];
  }
  for (const auto& q : cqm.objective_quadratic()) {
    if (state_[q.i] && state_[q.j]) objective_ += q.coeff;
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_values_[g] = groups[g].expr.evaluate(state_);
    objective_ += groups[g].weight * group_values_[g] * group_values_[g];
  }

  const auto constraints = cqm.constraints();
  cons_.resize(constraints.size());
  penalty_ = 0.0;
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    auto& slot = cons_[c];
    slot.activity = constraints[c].lhs.evaluate(state_);
    slot.rhs = constraints[c].rhs;
    slot.penalty = penalties[c];
    slot.sense = constraints[c].sense;
    penalty_ += penalty_of(slot, slot.activity);
  }
}

double CqmIncrementalState::total_violation() const noexcept {
  double v = 0.0;
  for (const auto& slot : cons_) {
    v += CqmModel::violation_of(slot.sense, slot.activity, slot.rhs);
  }
  return v;
}

bool CqmIncrementalState::feasible(double tol) const noexcept {
  for (const auto& slot : cons_) {
    if (CqmModel::violation_of(slot.sense, slot.activity, slot.rhs) > tol) {
      return false;
    }
  }
  return true;
}

CqmIncrementalState::FlipDelta CqmIncrementalState::flip_delta_parts(
    VarId v) const noexcept {
  const double sign = state_[v] ? -1.0 : 1.0;
  FlipDelta delta;
  double obj = sign * linear_[v];

  for (const auto& nb : (*quad_inc_)[v]) {
    if (state_[nb.other]) obj += sign * nb.coeff;
  }
  for (const auto& t : (*group_kernel_)[v]) {
    obj += sign * t.alpha * group_values_[t.index] + t.beta;
  }

  double pen = 0.0;
  for (const auto& inc : (*con_inc_)[v]) {
    const ConSlot& slot = cons_[inc.index];
    pen += penalty_of(slot, slot.activity + sign * inc.coeff) -
           penalty_of(slot, slot.activity);
  }
  delta.objective = obj;
  delta.penalty = pen;
  return delta;
}

CqmIncrementalState::FlipDelta CqmIncrementalState::pair_delta_parts(
    VarId a, VarId b) const noexcept {
  const double sign_a = state_[a] ? -1.0 : 1.0;
  const double sign_b = state_[b] ? -1.0 : 1.0;
  FlipDelta delta;
  double obj = sign_a * linear_[a] + sign_b * linear_[b];

  // Quadratic couplers: both rows at current state; the (a, b) coupler (if
  // any) appears once in each row and needs the joint product change.
  for (const auto& nb : (*quad_inc_)[a]) {
    if (nb.other == b) {
      const double before = state_[a] && state_[b] ? 1.0 : 0.0;
      const double after = !state_[a] && !state_[b] ? 1.0 : 0.0;
      obj += nb.coeff * (after - before);
    } else if (state_[nb.other]) {
      obj += sign_a * nb.coeff;
    }
  }
  for (const auto& nb : (*quad_inc_)[b]) {
    if (nb.other != a && state_[nb.other]) obj += sign_b * nb.coeff;
  }

  // Squared groups: merge the two sorted incidence rows; a group containing
  // both variables sees the combined step d = s_a*c_a + s_b*c_b.
  {
    const auto row_a = (*group_inc_)[a];
    const auto row_b = (*group_inc_)[b];
    std::size_t ia = 0;
    std::size_t ib = 0;
    while (ia < row_a.size() || ib < row_b.size()) {
      std::uint32_t g;
      double d;
      if (ib == row_b.size() ||
          (ia < row_a.size() && row_a[ia].index < row_b[ib].index)) {
        g = row_a[ia].index;
        d = sign_a * row_a[ia].coeff;
        ++ia;
      } else if (ia == row_a.size() || row_b[ib].index < row_a[ia].index) {
        g = row_b[ib].index;
        d = sign_b * row_b[ib].coeff;
        ++ib;
      } else {
        g = row_a[ia].index;
        d = sign_a * row_a[ia].coeff + sign_b * row_b[ib].coeff;
        ++ia;
        ++ib;
      }
      const double gv = group_values_[g];
      obj += group_weights_[g] * (2.0 * gv * d + d * d);
    }
  }

  // Constraints: same merge; a shared constraint sees both activity steps at
  // once (this is exactly what makes matched pair moves penalty-neutral).
  double pen = 0.0;
  {
    const auto row_a = (*con_inc_)[a];
    const auto row_b = (*con_inc_)[b];
    std::size_t ia = 0;
    std::size_t ib = 0;
    while (ia < row_a.size() || ib < row_b.size()) {
      std::uint32_t c;
      double d;
      if (ib == row_b.size() ||
          (ia < row_a.size() && row_a[ia].index < row_b[ib].index)) {
        c = row_a[ia].index;
        d = sign_a * row_a[ia].coeff;
        ++ia;
      } else if (ia == row_a.size() || row_b[ib].index < row_a[ia].index) {
        c = row_b[ib].index;
        d = sign_b * row_b[ib].coeff;
        ++ib;
      } else {
        c = row_a[ia].index;
        d = sign_a * row_a[ia].coeff + sign_b * row_b[ib].coeff;
        ++ia;
        ++ib;
      }
      const ConSlot& slot = cons_[c];
      pen += penalty_of(slot, slot.activity + d) - penalty_of(slot, slot.activity);
    }
  }
  delta.objective = obj;
  delta.penalty = pen;
  return delta;
}

void CqmIncrementalState::apply_flip(VarId v) noexcept {
  const double sign = state_[v] ? -1.0 : 1.0;
  objective_ += sign * linear_[v];

  for (const auto& nb : (*quad_inc_)[v]) {
    if (state_[nb.other]) objective_ += sign * nb.coeff;
  }

  for (const auto& t : (*group_kernel_)[v]) {
    double& gv = group_values_[t.index];
    objective_ += sign * t.alpha * gv + t.beta;
    gv += sign * t.coeff;
  }

  for (const auto& inc : (*con_inc_)[v]) {
    ConSlot& slot = cons_[inc.index];
    const double nact = slot.activity + sign * inc.coeff;
    penalty_ += penalty_of(slot, nact) - penalty_of(slot, slot.activity);
    slot.activity = nact;
  }

  state_[v] ^= 1u;
}

void CqmIncrementalState::set_penalties(std::vector<double> penalties) {
  util::require(penalties.size() == cqm_->num_constraints(),
                "CqmIncrementalState: penalty count mismatch");
  penalty_ = 0.0;
  for (std::size_t c = 0; c < cons_.size(); ++c) {
    cons_[c].penalty = penalties[c];
    penalty_ += penalty_of(cons_[c], cons_[c].activity);
  }
}

PairMoveIndex PairMoveIndex::build(const CqmModel& cqm) {
  PairMoveIndex index;
  index.class_offsets_.push_back(0);
  // Group each constraint's variables by |coefficient| (exact bit match — the
  // LRP coefficients are integers scaled by task loads, so equality is
  // meaningful; near-equal floats simply land in separate classes). Grouping
  // uses a linear-probe table keyed on the coefficient's bit pattern instead
  // of a comparison sort: O(terms) per constraint, and the scratch buffers
  // are reused across constraints so build cost stays linear in the model.
  // Classes come out in first-occurrence order and members in term order,
  // both of which are deterministic model insertion orders.
  constexpr std::uint32_t kFree = 0xFFFFFFFFu;
  std::vector<std::uint64_t> slot_key;
  std::vector<std::uint32_t> slot_class;
  std::vector<std::uint32_t> term_class;
  std::vector<std::uint32_t> counts;
  std::vector<std::size_t> cursor;
  for (const auto& con : cqm.constraints()) {
    const auto terms = con.lhs.terms();
    if (terms.size() < 2) continue;
    std::size_t cap = 2;
    while (cap < 2 * terms.size()) cap <<= 1;
    const std::size_t mask = cap - 1;
    slot_key.assign(cap, 0);
    slot_class.assign(cap, kFree);
    term_class.resize(terms.size());
    counts.clear();
    for (std::size_t t = 0; t < terms.size(); ++t) {
      std::uint64_t bits;
      const double mag = std::abs(terms[t].coeff);
      static_assert(sizeof(bits) == sizeof(mag));
      std::memcpy(&bits, &mag, sizeof(bits));
      std::uint64_t h = bits * 0x9E3779B97F4A7C15ull;
      h ^= h >> 32;
      std::size_t s = static_cast<std::size_t>(h) & mask;
      while (slot_class[s] != kFree && slot_key[s] != bits) s = (s + 1) & mask;
      if (slot_class[s] == kFree) {
        slot_key[s] = bits;
        slot_class[s] = static_cast<std::uint32_t>(counts.size());
        counts.push_back(0);
      }
      term_class[t] = slot_class[s];
      ++counts[term_class[t]];
    }
    // Lay out classes of size >= 2 contiguously, in discovery order.
    cursor.assign(counts.size(), static_cast<std::size_t>(-1));
    std::size_t base = index.members_.size();
    for (std::size_t c = 0; c < counts.size(); ++c) {
      if (counts[c] < 2) continue;
      cursor[c] = base;
      base += counts[c];
      index.class_offsets_.push_back(base);
    }
    index.members_.resize(base);
    for (std::size_t t = 0; t < terms.size(); ++t) {
      auto& at = cursor[term_class[t]];
      if (at != static_cast<std::size_t>(-1)) index.members_[at++] = terms[t].var;
    }
  }
  return index;
}

std::size_t PairMoveIndex::pair_scan_cost() const noexcept {
  std::size_t cost = 0;
  for (std::size_t c = 0; c + 1 < class_offsets_.size(); ++c) {
    const std::size_t size = class_offsets_[c + 1] - class_offsets_[c];
    cost += size * size;
  }
  return cost;
}

Sample CqmAnnealer::anneal_once(const CqmModel& cqm, std::vector<double> penalties,
                                util::Rng& rng, const model::State& initial,
                                AnnealTrace* trace,
                                const PairMoveIndex* pairs) const {
  const std::size_t n = cqm.num_variables();
  util::require(initial.empty() || initial.size() == n,
                "CqmAnnealer: initial state size mismatch");

  model::State start(n);
  if (initial.empty()) {
    for (auto& b : start) b = static_cast<std::uint8_t>(rng.next_below(2));
  } else {
    start = initial;
  }

  CqmIncrementalState walk(cqm, std::move(start), std::move(penalties));
  if (n == 0) {
    return {walk.state(), walk.objective(), walk.total_violation(), walk.feasible()};
  }

  // Temperature range: hot end covers the full (objective + penalty) move
  // scale so constraints can be escaped early; cold end resolves moves on the
  // *objective* scale so the final refinement is not left at an effectively
  // infinite temperature when penalties dwarf the objective.
  BetaSchedule schedule = [&] {
    if (params_.beta_hot && params_.beta_cold) {
      return BetaSchedule(*params_.beta_hot, *params_.beta_cold, params_.sweeps,
                          params_.schedule);
    }
    double max_abs_total = 1e-9;
    double max_abs_obj = 1e-9;
    const std::size_t probes = std::min<std::size_t>(n, 512);
    for (std::size_t p = 0; p < probes; ++p) {
      const auto v = static_cast<VarId>(rng.next_below(n));
      const auto d = walk.flip_delta_parts(v);
      max_abs_total = std::max(max_abs_total, std::abs(d.total()));
      max_abs_obj = std::max(max_abs_obj, std::abs(d.objective));
    }
    if (params_.refinement) {
      // Anneal on the objective scale only (feasibility is enforced by the
      // move filter, not the temperature).
      return BetaSchedule::for_energy_scale(max_abs_obj * 1e-7, max_abs_obj,
                                            params_.sweeps, params_.schedule);
    }
    return BetaSchedule::for_energy_scale(max_abs_obj * 1e-6, max_abs_total,
                                          params_.sweeps, params_.schedule);
  }();

  Sample best{walk.state(), walk.objective(), walk.total_violation(), walk.feasible()};

  // Explicit profiler phase (not via the Span, which only pushes when a
  // recorder is attached): the sweep loop is where serving CPU goes, and it
  // must be attributable in always-on profiles with tracing off.
  obs::prof::PhaseScope anneal_phase(params_.refinement ? "refine" : "anneal");
  obs::Recorder::Span anneal_span(params_.recorder,
                                  params_.refinement ? "refine" : "anneal",
                                  "sampler", params_.trace_track);
  const double flight_start_us =
      params_.flight != nullptr ? params_.flight->now_us() : 0.0;
  const std::size_t sample_every = std::max<std::size_t>(1, params_.sweeps / 64);
  std::size_t sweeps_done = 0;

  const PairMoveIndex local_pairs =
      (pairs == nullptr && params_.pair_move_prob > 0.0) ? PairMoveIndex::build(cqm)
                                                         : PairMoveIndex{};
  const PairMoveIndex& pair_index = pairs != nullptr ? *pairs : local_pairs;
  const bool use_pairs = params_.pair_move_prob > 0.0 && !pair_index.empty();

  for (std::size_t sweep = 0; sweep < schedule.sweeps(); ++sweep) {
    if (params_.cancel.expired()) break;
    const double beta = schedule.at(sweep);
    bool improved = false;
    for (std::size_t step = 0; step < n; ++step) {
      if (use_pairs && rng.next_bool(params_.pair_move_prob)) {
        const bool accepted = pair_index.attempt(walk, rng, beta, params_.refinement);
        improved = accepted || improved;
        if (trace != nullptr) {
          ++trace->pair_attempts;
          if (accepted) ++trace->pair_accepts;
        }
        continue;
      }
      const auto v = static_cast<VarId>(rng.next_below(n));
      if (trace != nullptr) ++trace->flip_attempts;
      const auto d = walk.flip_delta_parts(v);
      if (params_.refinement && d.penalty > 0.0) continue;  // keep feasibility
      const double criterion = params_.refinement ? d.objective : d.total();
      if (criterion <= 0.0 || rng.next_double() < std::exp(-beta * criterion)) {
        walk.apply_flip(v);
        improved = true;
        if (trace != nullptr) ++trace->flip_accepts;
      }
    }
    if (improved) {
      Sample current{{}, walk.objective(), walk.total_violation(), walk.feasible()};
      if (current.better_than(best)) {
        current.state = walk.state();
        best = std::move(current);
      }
    }
    if (trace != nullptr) {
      trace->best_energy_per_sweep.push_back(best.energy + best.violation);
      trace->violation_per_sweep.push_back(walk.total_violation());
    }
    ++sweeps_done;
    if (params_.recorder != nullptr &&
        (sweep % sample_every == 0 || sweep + 1 == schedule.sweeps())) {
      params_.recorder->sample("incumbent_energy", params_.trace_track,
                               best.energy + best.violation);
      params_.recorder->sample("incumbent_violation", params_.trace_track,
                               best.violation);
    }
  }
  if (params_.sweep_counter != nullptr && sweeps_done > 0) {
    params_.sweep_counter->inc(sweeps_done);
  }
  if (params_.flight != nullptr) {
    const double end_us = params_.flight->now_us();
    params_.flight->record(params_.flight_name, obs::FlightKind::kSpan,
                           params_.trace_track, params_.flight_rid, end_us,
                           end_us - flight_start_us,
                           static_cast<double>(sweeps_done));
  }
  return best;
}

}  // namespace qulrb::anneal
