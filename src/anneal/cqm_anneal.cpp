#include "anneal/cqm_anneal.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace qulrb::anneal {

using model::CqmModel;
using model::Sense;
using model::VarId;

CqmIncrementalState::CqmIncrementalState(const CqmModel& cqm, model::State initial,
                                         std::vector<double> penalties)
    : cqm_(&cqm), state_(std::move(initial)), penalties_(std::move(penalties)) {
  util::require(state_.size() == cqm.num_variables(),
                "CqmIncrementalState: state size mismatch");
  util::require(penalties_.size() == cqm.num_constraints(),
                "CqmIncrementalState: penalty count mismatch");

  // Touch incidence caches once so flip paths are allocation-free.
  (void)cqm.group_incidence();
  (void)cqm.constraint_incidence();
  (void)cqm.quadratic_incidence();

  const auto groups = cqm.squared_groups();
  group_values_.resize(groups.size());
  objective_ = cqm.objective_offset();
  const auto linear = cqm.objective_linear();
  for (VarId v = 0; v < linear.size(); ++v) {
    if (state_[v]) objective_ += linear[v];
  }
  for (const auto& q : cqm.objective_quadratic()) {
    if (state_[q.i] && state_[q.j]) objective_ += q.coeff;
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_values_[g] = groups[g].expr.evaluate(state_);
    objective_ += groups[g].weight * group_values_[g] * group_values_[g];
  }

  const auto constraints = cqm.constraints();
  activities_.resize(constraints.size());
  penalty_ = 0.0;
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    activities_[c] = constraints[c].lhs.evaluate(state_);
    penalty_ += penalty_of_activity(c, activities_[c]);
  }
}

double CqmIncrementalState::penalty_of_activity(std::size_t c,
                                                double activity) const noexcept {
  const auto& con = cqm_->constraints()[c];
  return penalties_[c] * CqmModel::violation_of(con.sense, activity, con.rhs);
}

double CqmIncrementalState::total_violation() const noexcept {
  double v = 0.0;
  const auto constraints = cqm_->constraints();
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    v += CqmModel::violation_of(constraints[c].sense, activities_[c],
                                constraints[c].rhs);
  }
  return v;
}

bool CqmIncrementalState::feasible(double tol) const noexcept {
  const auto constraints = cqm_->constraints();
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    if (CqmModel::violation_of(constraints[c].sense, activities_[c],
                               constraints[c].rhs) > tol) {
      return false;
    }
  }
  return true;
}

CqmIncrementalState::FlipDelta CqmIncrementalState::flip_delta_parts(
    VarId v) const noexcept {
  const double sign = state_[v] ? -1.0 : 1.0;
  const auto linear = cqm_->objective_linear();
  FlipDelta delta;
  delta.objective = sign * linear[v];

  for (const auto& nb : cqm_->quadratic_incidence()[v]) {
    if (state_[nb.other]) delta.objective += sign * nb.coeff;
  }

  const auto groups = cqm_->squared_groups();
  for (const auto& inc : cqm_->group_incidence()[v]) {
    const double gv = group_values_[inc.index];
    const double nv = gv + sign * inc.coeff;
    delta.objective += groups[inc.index].weight * (nv * nv - gv * gv);
  }

  for (const auto& inc : cqm_->constraint_incidence()[v]) {
    const double act = activities_[inc.index];
    const double nact = act + sign * inc.coeff;
    delta.penalty += penalty_of_activity(inc.index, nact) -
                     penalty_of_activity(inc.index, act);
  }
  return delta;
}

void CqmIncrementalState::apply_flip(VarId v) noexcept {
  const double sign = state_[v] ? -1.0 : 1.0;
  const auto linear = cqm_->objective_linear();
  objective_ += sign * linear[v];

  for (const auto& nb : cqm_->quadratic_incidence()[v]) {
    if (state_[nb.other]) objective_ += sign * nb.coeff;
  }

  const auto groups = cqm_->squared_groups();
  for (const auto& inc : cqm_->group_incidence()[v]) {
    double& gv = group_values_[inc.index];
    const double nv = gv + sign * inc.coeff;
    objective_ += groups[inc.index].weight * (nv * nv - gv * gv);
    gv = nv;
  }

  for (const auto& inc : cqm_->constraint_incidence()[v]) {
    double& act = activities_[inc.index];
    const double nact = act + sign * inc.coeff;
    penalty_ += penalty_of_activity(inc.index, nact) -
                penalty_of_activity(inc.index, act);
    act = nact;
  }

  state_[v] ^= 1u;
}

void CqmIncrementalState::set_penalties(std::vector<double> penalties) {
  util::require(penalties.size() == cqm_->num_constraints(),
                "CqmIncrementalState: penalty count mismatch");
  penalties_ = std::move(penalties);
  penalty_ = 0.0;
  for (std::size_t c = 0; c < activities_.size(); ++c) {
    penalty_ += penalty_of_activity(c, activities_[c]);
  }
}

PairMoveIndex PairMoveIndex::build(const CqmModel& cqm) {
  PairMoveIndex index;
  for (const auto& con : cqm.constraints()) {
    // Group this constraint's variables by |coefficient| (exact match — the
    // LRP coefficients are integers scaled by task loads, so equality is
    // meaningful; near-equal floats simply land in separate classes).
    std::vector<std::pair<double, VarId>> by_coeff;
    by_coeff.reserve(con.lhs.size());
    for (const auto& t : con.lhs.terms()) {
      by_coeff.emplace_back(std::abs(t.coeff), t.var);
    }
    std::sort(by_coeff.begin(), by_coeff.end());
    std::size_t start = 0;
    for (std::size_t i = 1; i <= by_coeff.size(); ++i) {
      if (i == by_coeff.size() || by_coeff[i].first != by_coeff[start].first) {
        if (i - start >= 2) {
          std::vector<VarId> members;
          members.reserve(i - start);
          for (std::size_t p = start; p < i; ++p) members.push_back(by_coeff[p].second);
          index.classes_.push_back(std::move(members));
        }
        start = i;
      }
    }
  }
  return index;
}

bool PairMoveIndex::attempt(CqmIncrementalState& walk, util::Rng& rng, double beta,
                            bool feasible_only) const {
  if (classes_.empty()) return false;
  const auto& members =
      classes_[static_cast<std::size_t>(rng.next_below(classes_.size()))];
  // Find a (set, clear) pair by rejection sampling.
  VarId set_var = 0;
  VarId clear_var = 0;
  bool found = false;
  for (int attempt_i = 0; attempt_i < 8 && !found; ++attempt_i) {
    const VarId a = members[static_cast<std::size_t>(rng.next_below(members.size()))];
    const VarId b = members[static_cast<std::size_t>(rng.next_below(members.size()))];
    if (a == b) continue;
    const bool sa = walk.state()[a] != 0;
    const bool sb = walk.state()[b] != 0;
    if (sa == sb) continue;
    set_var = sa ? a : b;
    clear_var = sa ? b : a;
    found = true;
  }
  if (!found) return false;

  CqmIncrementalState::FlipDelta delta = walk.flip_delta_parts(set_var);
  walk.apply_flip(set_var);
  const auto second = walk.flip_delta_parts(clear_var);
  delta.objective += second.objective;
  delta.penalty += second.penalty;

  const double criterion = feasible_only ? delta.objective : delta.total();
  const bool vetoed = feasible_only && delta.penalty > 0.0;
  if (!vetoed &&
      (criterion <= 0.0 || rng.next_double() < std::exp(-beta * criterion))) {
    walk.apply_flip(clear_var);
    return true;
  }
  walk.apply_flip(set_var);  // revert
  return false;
}

Sample CqmAnnealer::anneal_once(const CqmModel& cqm, std::vector<double> penalties,
                                util::Rng& rng, const model::State& initial,
                                AnnealTrace* trace) const {
  const std::size_t n = cqm.num_variables();
  util::require(initial.empty() || initial.size() == n,
                "CqmAnnealer: initial state size mismatch");

  model::State start(n);
  if (initial.empty()) {
    for (auto& b : start) b = static_cast<std::uint8_t>(rng.next_below(2));
  } else {
    start = initial;
  }

  CqmIncrementalState walk(cqm, std::move(start), std::move(penalties));
  if (n == 0) {
    return {walk.state(), walk.objective(), walk.total_violation(), walk.feasible()};
  }

  // Temperature range: hot end covers the full (objective + penalty) move
  // scale so constraints can be escaped early; cold end resolves moves on the
  // *objective* scale so the final refinement is not left at an effectively
  // infinite temperature when penalties dwarf the objective.
  BetaSchedule schedule = [&] {
    if (params_.beta_hot && params_.beta_cold) {
      return BetaSchedule(*params_.beta_hot, *params_.beta_cold, params_.sweeps,
                          params_.schedule);
    }
    double max_abs_total = 1e-9;
    double max_abs_obj = 1e-9;
    const std::size_t probes = std::min<std::size_t>(n, 512);
    for (std::size_t p = 0; p < probes; ++p) {
      const auto v = static_cast<VarId>(rng.next_below(n));
      const auto d = walk.flip_delta_parts(v);
      max_abs_total = std::max(max_abs_total, std::abs(d.total()));
      max_abs_obj = std::max(max_abs_obj, std::abs(d.objective));
    }
    if (params_.refinement) {
      // Anneal on the objective scale only (feasibility is enforced by the
      // move filter, not the temperature).
      return BetaSchedule::for_energy_scale(max_abs_obj * 1e-7, max_abs_obj,
                                            params_.sweeps, params_.schedule);
    }
    return BetaSchedule::for_energy_scale(max_abs_obj * 1e-6, max_abs_total,
                                          params_.sweeps, params_.schedule);
  }();

  Sample best{walk.state(), walk.objective(), walk.total_violation(), walk.feasible()};

  const PairMoveIndex pairs = params_.pair_move_prob > 0.0
                                  ? PairMoveIndex::build(cqm)
                                  : PairMoveIndex{};

  for (std::size_t sweep = 0; sweep < schedule.sweeps(); ++sweep) {
    const double beta = schedule.at(sweep);
    bool improved = false;
    for (std::size_t step = 0; step < n; ++step) {
      if (!pairs.empty() && rng.next_bool(params_.pair_move_prob)) {
        const bool accepted = pairs.attempt(walk, rng, beta, params_.refinement);
        improved = accepted || improved;
        if (trace != nullptr) {
          ++trace->pair_attempts;
          if (accepted) ++trace->pair_accepts;
        }
        continue;
      }
      const auto v = static_cast<VarId>(rng.next_below(n));
      if (trace != nullptr) ++trace->flip_attempts;
      const auto d = walk.flip_delta_parts(v);
      if (params_.refinement && d.penalty > 0.0) continue;  // keep feasibility
      const double criterion = params_.refinement ? d.objective : d.total();
      if (criterion <= 0.0 || rng.next_double() < std::exp(-beta * criterion)) {
        walk.apply_flip(v);
        improved = true;
        if (trace != nullptr) ++trace->flip_accepts;
      }
    }
    if (improved) {
      Sample current{{}, walk.objective(), walk.total_violation(), walk.feasible()};
      if (current.better_than(best)) {
        current.state = walk.state();
        best = std::move(current);
      }
    }
    if (trace != nullptr) {
      trace->best_energy_per_sweep.push_back(best.energy + best.violation);
      trace->violation_per_sweep.push_back(walk.total_violation());
    }
  }
  return best;
}

}  // namespace qulrb::anneal
