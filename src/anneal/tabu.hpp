#pragma once

#include <cstdint>

#include "anneal/sampleset.hpp"
#include "model/qubo.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {

struct TabuParams {
  std::size_t max_iterations = 20000;  ///< single-flip moves total
  /// Flips of a variable are forbidden for this many iterations after it
  /// moves; 0 derives ~ n/10 from the problem size.
  std::size_t tenure = 0;
  std::size_t num_restarts = 4;
  std::uint64_t seed = 1;
  /// Stop a restart after this many non-improving iterations.
  std::size_t stall_limit = 2000;
  /// Polled inside the iteration loop (and between restarts); when expired
  /// the best incumbent so far is returned. Inert by default.
  util::CancelToken cancel;
  /// Optional trace sink: one span per restart plus a sampled
  /// incumbent-energy timeline. Consumes no RNG; output is bitwise identical
  /// with it on/off.
  obs::Recorder* recorder = nullptr;
  std::uint32_t trace_track = 0;
  /// Optional metrics sink: bumped by iterations executed, once per restart.
  obs::Counter* iteration_counter = nullptr;
};

/// Single-flip tabu search over a QUBO (Glover's metaheuristic — the actual
/// classical workhorse inside commercial hybrid annealing services, and the
/// qbsolv default). Moves greedily to the best non-tabu neighbour, with the
/// standard aspiration criterion (a tabu move is allowed when it beats the
/// incumbent). Complements simulated annealing: deterministic descent plus
/// memory often outperforms SA on rugged penalty landscapes at equal budget.
class TabuSampler {
 public:
  explicit TabuSampler(TabuParams params = {}) : params_(params) {}

  SampleSet sample(const model::QuboModel& qubo) const;
  Sample search_once(const model::QuboModel& qubo, util::Rng& rng,
                     const model::State& initial = {}) const;

 private:
  TabuParams params_;
};

}  // namespace qulrb::anneal
