// AVX2 twins of the scalar replica-bank kernels. This TU is compiled with
// -mavx2 (and deliberately not -mfma: contraction would change rounding and
// break bitwise identity with the scalar kernels) and is only entered behind
// the CPUID dispatch in anneal/simd.cpp.
//
// Vectorization discipline: lanes map to vector elements, so every vector
// instruction performs the *same* operation the scalar kernel performs on
// each lane, in the same order. Not-taken updates use blends (bit selects),
// never masked adds of +0.0, so accumulator bit patterns — including the
// sign of zero — match the scalar path exactly.

#include "anneal/replica_bank.hpp"

#if QULRB_HAVE_AVX2

#include <immintrin.h>

#include <limits>

namespace qulrb::anneal::detail {

namespace {

/// All-ones mask per lane of block `base_lane..base_lane+3` whose bit is set
/// in the packed word. Blocks are 4-aligned, so one 64-bit word covers the
/// whole block.
inline __m256d lane_mask(const std::uint64_t* bits, std::size_t words_per_var,
                         model::VarId v, std::size_t base_lane) noexcept {
  const std::uint64_t word = bits[v * words_per_var + (base_lane >> 6)];
  const __m256i w = _mm256_set1_epi64x(static_cast<long long>(word));
  const __m256i unit = _mm256_set_epi64x(8, 4, 2, 1);
  const __m256i test = _mm256_slli_epi64(unit, static_cast<int>(base_lane & 63u));
  const __m256i hit = _mm256_and_si256(w, test);
  return _mm256_castsi256_pd(_mm256_cmpeq_epi64(hit, test));
}

/// take ? on_true : on_false per lane (blendv keys on the mask sign bit).
inline __m256d select(__m256d mask, __m256d on_true, __m256d on_false) noexcept {
  return _mm256_blendv_pd(on_false, on_true, mask);
}

/// Vector twin of violation_branchless / CqmModel::violation_of. vmaxpd
/// returns its second operand on equality, which reproduces the scalar
/// ternaries exactly (see the equivalence notes in replica_bank.hpp).
inline __m256d violation(model::Sense sense, __m256d activity,
                         __m256d rhs) noexcept {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d over = _mm256_sub_pd(activity, rhs);
  switch (sense) {
    case model::Sense::LE:
      return _mm256_max_pd(over, zero);
    case model::Sense::GE:
      return _mm256_max_pd(_mm256_sub_pd(rhs, activity), zero);
    case model::Sense::EQ:
      return _mm256_max_pd(over, _mm256_sub_pd(rhs, activity));
  }
  return zero;
}

}  // namespace

void cqm_construct_lanes_avx2(const CqmBankView& bank) noexcept {
  const model::CqmModel& cqm = *bank.cqm;
  const auto groups = cqm.squared_groups();
  const auto constraints = cqm.constraints();
  const std::size_t stride = bank.stride;
  for (std::size_t base = 0; base < stride; base += 4) {
    __m256d obj = _mm256_set1_pd(cqm.objective_offset());
    for (model::VarId v = 0; v < bank.num_vars; ++v) {
      const __m256d m = lane_mask(bank.bits, bank.words_per_var, v, base);
      const __m256d added = _mm256_add_pd(obj, _mm256_set1_pd(bank.linear[v]));
      obj = select(m, added, obj);
    }
    for (const auto& q : cqm.objective_quadratic()) {
      const __m256d mi = lane_mask(bank.bits, bank.words_per_var, q.i, base);
      const __m256d mj = lane_mask(bank.bits, bank.words_per_var, q.j, base);
      const __m256d m = _mm256_and_pd(mi, mj);
      const __m256d added = _mm256_add_pd(obj, _mm256_set1_pd(q.coeff));
      obj = select(m, added, obj);
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
      __m256d gv = _mm256_set1_pd(groups[g].expr.constant());
      for (const auto& t : groups[g].expr.terms()) {
        const __m256d m = lane_mask(bank.bits, bank.words_per_var, t.var, base);
        const __m256d added = _mm256_add_pd(gv, _mm256_set1_pd(t.coeff));
        gv = select(m, added, gv);
      }
      _mm256_storeu_pd(bank.group_values + g * stride + base, gv);
      const __m256d w = _mm256_set1_pd(groups[g].weight);
      obj = _mm256_add_pd(obj, _mm256_mul_pd(_mm256_mul_pd(w, gv), gv));
    }
    _mm256_storeu_pd(bank.objective + base, obj);

    __m256d pen = _mm256_setzero_pd();
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      __m256d act = _mm256_set1_pd(constraints[c].lhs.constant());
      for (const auto& t : constraints[c].lhs.terms()) {
        const __m256d m = lane_mask(bank.bits, bank.words_per_var, t.var, base);
        const __m256d added = _mm256_add_pd(act, _mm256_set1_pd(t.coeff));
        act = select(m, added, act);
      }
      _mm256_storeu_pd(bank.activities + c * stride + base, act);
      const __m256d pw = _mm256_loadu_pd(bank.penalty_weights + c * stride + base);
      const __m256d viol =
          violation(bank.sense[c], act, _mm256_set1_pd(bank.rhs[c]));
      pen = _mm256_add_pd(pen, _mm256_mul_pd(pw, viol));
    }
    _mm256_storeu_pd(bank.penalty + base, pen);
  }
}

void cqm_batched_flip_delta_avx2(const CqmBankView& bank, model::VarId v,
                                 CqmIncrementalState::FlipDelta* out) noexcept {
  const std::size_t stride = bank.stride;
  const auto quad_row = (*bank.quad_inc)[v];
  const auto kernel_row = (*bank.group_kernel)[v];
  const auto con_row = (*bank.con_inc)[v];
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d minus_one = _mm256_set1_pd(-1.0);
  alignas(32) double obj_lanes[4];
  alignas(32) double pen_lanes[4];
  for (std::size_t base = 0; base < stride; base += 4) {
    if (base >= bank.num_lanes) break;
    const __m256d mv = lane_mask(bank.bits, bank.words_per_var, v, base);
    const __m256d sign = select(mv, minus_one, one);
    __m256d obj = _mm256_mul_pd(sign, _mm256_set1_pd(bank.linear[v]));
    for (const auto& nb : quad_row) {
      const __m256d m = lane_mask(bank.bits, bank.words_per_var, nb.other, base);
      const __m256d added = _mm256_add_pd(
          obj, _mm256_mul_pd(sign, _mm256_set1_pd(nb.coeff)));
      obj = select(m, added, obj);
    }
    for (const auto& t : kernel_row) {
      const __m256d gv = _mm256_loadu_pd(bank.group_values + t.index * stride + base);
      const __m256d sa = _mm256_mul_pd(sign, _mm256_set1_pd(t.alpha));
      const __m256d addend =
          _mm256_add_pd(_mm256_mul_pd(sa, gv), _mm256_set1_pd(t.beta));
      obj = _mm256_add_pd(obj, addend);
    }
    __m256d pen = _mm256_setzero_pd();
    for (const auto& inc : con_row) {
      const std::size_t c = inc.index;
      const __m256d act = _mm256_loadu_pd(bank.activities + c * stride + base);
      const __m256d pw = _mm256_loadu_pd(bank.penalty_weights + c * stride + base);
      const __m256d rhs = _mm256_set1_pd(bank.rhs[c]);
      const __m256d nact =
          _mm256_add_pd(act, _mm256_mul_pd(sign, _mm256_set1_pd(inc.coeff)));
      const __m256d term =
          _mm256_sub_pd(_mm256_mul_pd(pw, violation(bank.sense[c], nact, rhs)),
                        _mm256_mul_pd(pw, violation(bank.sense[c], act, rhs)));
      pen = _mm256_add_pd(pen, term);
    }
    _mm256_store_pd(obj_lanes, obj);
    _mm256_store_pd(pen_lanes, pen);
    const std::size_t count =
        bank.num_lanes - base < 4 ? bank.num_lanes - base : 4;
    for (std::size_t j = 0; j < count; ++j) {
      out[base + j].objective = obj_lanes[j];
      out[base + j].penalty = pen_lanes[j];
    }
  }
}

void cqm_batched_pair_delta_avx2(const CqmBankView& bank, model::VarId a,
                                 model::VarId b,
                                 CqmIncrementalState::FlipDelta* out) noexcept {
  const std::size_t stride = bank.stride;
  const auto quad_a = (*bank.quad_inc)[a];
  const auto quad_b = (*bank.quad_inc)[b];
  const auto group_a = (*bank.group_inc)[a];
  const auto group_b = (*bank.group_inc)[b];
  const auto con_a = (*bank.con_inc)[a];
  const auto con_b = (*bank.con_inc)[b];
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d minus_one = _mm256_set1_pd(-1.0);
  const __m256d zero = _mm256_setzero_pd();
  alignas(32) double obj_lanes[4];
  alignas(32) double pen_lanes[4];
  for (std::size_t base = 0; base < stride; base += 4) {
    if (base >= bank.num_lanes) break;
    const __m256d ma = lane_mask(bank.bits, bank.words_per_var, a, base);
    const __m256d mb = lane_mask(bank.bits, bank.words_per_var, b, base);
    const __m256d sign_a = select(ma, minus_one, one);
    const __m256d sign_b = select(mb, minus_one, one);
    __m256d obj =
        _mm256_add_pd(_mm256_mul_pd(sign_a, _mm256_set1_pd(bank.linear[a])),
                      _mm256_mul_pd(sign_b, _mm256_set1_pd(bank.linear[b])));

    for (const auto& nb : quad_a) {
      if (nb.other == b) {
        const __m256d before = select(_mm256_and_pd(ma, mb), one, zero);
        const __m256d after = select(_mm256_or_pd(ma, mb), zero, one);
        obj = _mm256_add_pd(obj, _mm256_mul_pd(_mm256_set1_pd(nb.coeff),
                                               _mm256_sub_pd(after, before)));
      } else {
        const __m256d m = lane_mask(bank.bits, bank.words_per_var, nb.other, base);
        const __m256d added = _mm256_add_pd(
            obj, _mm256_mul_pd(sign_a, _mm256_set1_pd(nb.coeff)));
        obj = select(m, added, obj);
      }
    }
    for (const auto& nb : quad_b) {
      if (nb.other != a) {
        const __m256d m = lane_mask(bank.bits, bank.words_per_var, nb.other, base);
        const __m256d added = _mm256_add_pd(
            obj, _mm256_mul_pd(sign_b, _mm256_set1_pd(nb.coeff)));
        obj = select(m, added, obj);
      }
    }

    {
      std::size_t ia = 0;
      std::size_t ib = 0;
      while (ia < group_a.size() || ib < group_b.size()) {
        std::uint32_t g;
        __m256d d;
        if (ib == group_b.size() ||
            (ia < group_a.size() && group_a[ia].index < group_b[ib].index)) {
          g = group_a[ia].index;
          d = _mm256_mul_pd(sign_a, _mm256_set1_pd(group_a[ia].coeff));
          ++ia;
        } else if (ia == group_a.size() ||
                   group_b[ib].index < group_a[ia].index) {
          g = group_b[ib].index;
          d = _mm256_mul_pd(sign_b, _mm256_set1_pd(group_b[ib].coeff));
          ++ib;
        } else {
          g = group_a[ia].index;
          d = _mm256_add_pd(
              _mm256_mul_pd(sign_a, _mm256_set1_pd(group_a[ia].coeff)),
              _mm256_mul_pd(sign_b, _mm256_set1_pd(group_b[ib].coeff)));
          ++ia;
          ++ib;
        }
        const __m256d gv = _mm256_loadu_pd(bank.group_values + g * stride + base);
        // w * (2 * gv * d + d * d), in the scalar evaluation order.
        const __m256d two_gv_d =
            _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(2.0), gv), d);
        const __m256d sum = _mm256_add_pd(two_gv_d, _mm256_mul_pd(d, d));
        obj = _mm256_add_pd(
            obj, _mm256_mul_pd(_mm256_set1_pd(bank.group_weights[g]), sum));
      }
    }

    __m256d pen = _mm256_setzero_pd();
    {
      std::size_t ia = 0;
      std::size_t ib = 0;
      while (ia < con_a.size() || ib < con_b.size()) {
        std::uint32_t c;
        __m256d d;
        if (ib == con_b.size() ||
            (ia < con_a.size() && con_a[ia].index < con_b[ib].index)) {
          c = con_a[ia].index;
          d = _mm256_mul_pd(sign_a, _mm256_set1_pd(con_a[ia].coeff));
          ++ia;
        } else if (ia == con_a.size() || con_b[ib].index < con_a[ia].index) {
          c = con_b[ib].index;
          d = _mm256_mul_pd(sign_b, _mm256_set1_pd(con_b[ib].coeff));
          ++ib;
        } else {
          c = con_a[ia].index;
          d = _mm256_add_pd(
              _mm256_mul_pd(sign_a, _mm256_set1_pd(con_a[ia].coeff)),
              _mm256_mul_pd(sign_b, _mm256_set1_pd(con_b[ib].coeff)));
          ++ia;
          ++ib;
        }
        const __m256d act = _mm256_loadu_pd(bank.activities + c * stride + base);
        const __m256d pw =
            _mm256_loadu_pd(bank.penalty_weights + c * stride + base);
        const __m256d rhs = _mm256_set1_pd(bank.rhs[c]);
        const __m256d nact = _mm256_add_pd(act, d);
        const __m256d term = _mm256_sub_pd(
            _mm256_mul_pd(pw, violation(bank.sense[c], nact, rhs)),
            _mm256_mul_pd(pw, violation(bank.sense[c], act, rhs)));
        pen = _mm256_add_pd(pen, term);
      }
    }
    _mm256_store_pd(obj_lanes, obj);
    _mm256_store_pd(pen_lanes, pen);
    const std::size_t count =
        bank.num_lanes - base < 4 ? bank.num_lanes - base : 4;
    for (std::size_t j = 0; j < count; ++j) {
      out[base + j].objective = obj_lanes[j];
      out[base + j].penalty = pen_lanes[j];
    }
  }
}

void cqm_batched_apply_flip_avx2(const CqmBankView& bank, model::VarId v,
                                 const std::uint8_t* accept) noexcept {
  const std::size_t stride = bank.stride;
  const auto quad_row = (*bank.quad_inc)[v];
  const auto kernel_row = (*bank.group_kernel)[v];
  const auto con_row = (*bank.con_inc)[v];
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d minus_one = _mm256_set1_pd(-1.0);
  for (std::size_t base = 0; base < bank.num_lanes; base += 4) {
    const std::size_t count =
        bank.num_lanes - base < 4 ? bank.num_lanes - base : 4;
    long long acc[4] = {0, 0, 0, 0};
    std::uint64_t toggle = 0;
    for (std::size_t j = 0; j < count; ++j) {
      if (accept[base + j] != 0) {
        acc[j] = -1;
        toggle |= std::uint64_t{1} << ((base + j) & 63u);
      }
    }
    if (toggle == 0) continue;
    const __m256d am =
        _mm256_castsi256_pd(_mm256_set_epi64x(acc[3], acc[2], acc[1], acc[0]));

    const __m256d mv = lane_mask(bank.bits, bank.words_per_var, v, base);
    const __m256d sign = select(mv, minus_one, one);
    const __m256d obj_old = _mm256_loadu_pd(bank.objective + base);
    __m256d obj =
        _mm256_add_pd(obj_old, _mm256_mul_pd(sign, _mm256_set1_pd(bank.linear[v])));
    for (const auto& nb : quad_row) {
      const __m256d m = lane_mask(bank.bits, bank.words_per_var, nb.other, base);
      const __m256d added =
          _mm256_add_pd(obj, _mm256_mul_pd(sign, _mm256_set1_pd(nb.coeff)));
      obj = select(m, added, obj);
    }
    for (const auto& t : kernel_row) {
      double* gv_ptr = bank.group_values + t.index * stride + base;
      const __m256d gv = _mm256_loadu_pd(gv_ptr);
      const __m256d sa = _mm256_mul_pd(sign, _mm256_set1_pd(t.alpha));
      obj = _mm256_add_pd(
          obj, _mm256_add_pd(_mm256_mul_pd(sa, gv), _mm256_set1_pd(t.beta)));
      const __m256d gv_new =
          _mm256_add_pd(gv, _mm256_mul_pd(sign, _mm256_set1_pd(t.coeff)));
      _mm256_storeu_pd(gv_ptr, select(am, gv_new, gv));
    }
    _mm256_storeu_pd(bank.objective + base, select(am, obj, obj_old));

    const __m256d pen_old = _mm256_loadu_pd(bank.penalty + base);
    __m256d pen = pen_old;
    for (const auto& inc : con_row) {
      const std::size_t c = inc.index;
      double* act_ptr = bank.activities + c * stride + base;
      const __m256d act = _mm256_loadu_pd(act_ptr);
      const __m256d pw =
          _mm256_loadu_pd(bank.penalty_weights + c * stride + base);
      const __m256d rhs = _mm256_set1_pd(bank.rhs[c]);
      const __m256d nact =
          _mm256_add_pd(act, _mm256_mul_pd(sign, _mm256_set1_pd(inc.coeff)));
      const __m256d term = _mm256_sub_pd(
          _mm256_mul_pd(pw, violation(bank.sense[c], nact, rhs)),
          _mm256_mul_pd(pw, violation(bank.sense[c], act, rhs)));
      pen = _mm256_add_pd(pen, term);
      _mm256_storeu_pd(act_ptr, select(am, nact, act));
    }
    _mm256_storeu_pd(bank.penalty + base, select(am, pen, pen_old));

    bank.bits[v * bank.words_per_var + (base >> 6)] ^= toggle;
  }
}

void qubo_construct_lanes_avx2(const QuboBankView& bank) noexcept {
  const model::QuboModel& qubo = *bank.qubo;
  const auto& adjacency = qubo.adjacency();
  const std::size_t stride = bank.stride;
  const __m256d sign_bit = _mm256_set1_pd(-0.0);
  for (std::size_t base = 0; base < stride; base += 4) {
    __m256d e = _mm256_set1_pd(qubo.offset());
    for (model::VarId v = 0; v < bank.num_vars; ++v) {
      const __m256d m = lane_mask(bank.bits, bank.words_per_var, v, base);
      e = select(m, _mm256_add_pd(e, _mm256_set1_pd(qubo.linear(v))), e);
    }
    qubo.for_each_quadratic([&](model::VarId i, model::VarId j, double coeff) {
      const __m256d mi = lane_mask(bank.bits, bank.words_per_var, i, base);
      const __m256d mj = lane_mask(bank.bits, bank.words_per_var, j, base);
      const __m256d m = _mm256_and_pd(mi, mj);
      e = select(m, _mm256_add_pd(e, _mm256_set1_pd(coeff)), e);
    });
    _mm256_storeu_pd(bank.energy + base, e);
    for (model::VarId v = 0; v < bank.num_vars; ++v) {
      __m256d delta = _mm256_set1_pd(qubo.linear(v));
      for (const auto& nb : adjacency[v]) {
        const __m256d m = lane_mask(bank.bits, bank.words_per_var, nb.other, base);
        delta = select(m, _mm256_add_pd(delta, _mm256_set1_pd(nb.coeff)), delta);
      }
      // state[v] ? -delta : delta — unary negation is an exact sign flip.
      const __m256d mv = lane_mask(bank.bits, bank.words_per_var, v, base);
      delta = select(mv, _mm256_xor_pd(delta, sign_bit), delta);
      _mm256_storeu_pd(bank.deltas + v * stride + base, delta);
    }
  }
}

std::size_t tabu_argmin_avx2(const double* deltas, const std::size_t* tabu_until,
                             std::size_t n, std::size_t iteration, double energy,
                             double best_energy) noexcept {
  const double inf = std::numeric_limits<double>::infinity();
  std::size_t chosen = n;
  double chosen_delta = inf;
  const std::size_t n4 = n & ~std::size_t{3};
  if (n4 > 0) {
    const __m256d inf_v = _mm256_set1_pd(inf);
    const __m256d energy_v = _mm256_set1_pd(energy);
    const __m256d thresh = _mm256_set1_pd(best_energy - 1e-12);
    const __m256i iter_v =
        _mm256_set1_epi64x(static_cast<long long>(iteration));
    __m256d vmin = inf_v;
    __m256i vidx = _mm256_set1_epi64x(static_cast<long long>(n));
    __m256i cur = _mm256_set_epi64x(3, 2, 1, 0);
    const __m256i four = _mm256_set1_epi64x(4);
    for (std::size_t v = 0; v < n4; v += 4) {
      const __m256d d = _mm256_loadu_pd(deltas + v);
      const __m256i tu = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(tabu_until + v));
      // Admissible = not tabu (iteration > tabu_until) or aspirating
      // (energy + delta < best_energy - 1e-12). Tenures stay far below 2^63,
      // so the signed 64-bit compare is exact.
      const __m256d not_tabu =
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(iter_v, tu));
      const __m256d asp =
          _mm256_cmp_pd(_mm256_add_pd(energy_v, d), thresh, _CMP_LT_OQ);
      const __m256d admissible = _mm256_or_pd(not_tabu, asp);
      const __m256d cand = _mm256_blendv_pd(inf_v, d, admissible);
      // Strict-less update keeps the earliest index per slot, matching the
      // scalar scan's first-min-wins rule.
      const __m256d lt = _mm256_cmp_pd(cand, vmin, _CMP_LT_OQ);
      vmin = _mm256_blendv_pd(vmin, cand, lt);
      vidx = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(vidx), _mm256_castsi256_pd(cur), lt));
      cur = _mm256_add_epi64(cur, four);
    }
    alignas(32) double mins[4];
    alignas(32) long long idxs[4];
    _mm256_store_pd(mins, vmin);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), vidx);
    for (int j = 0; j < 4; ++j) {
      if (mins[j] < chosen_delta) chosen_delta = mins[j];
    }
    if (chosen_delta < inf) {
      for (int j = 0; j < 4; ++j) {
        if (mins[j] == chosen_delta &&
            static_cast<std::size_t>(idxs[j]) < chosen) {
          chosen = static_cast<std::size_t>(idxs[j]);
        }
      }
    }
  }
  for (std::size_t v = n4; v < n; ++v) {
    const bool tabu = tabu_until[v] >= iteration;
    const bool aspirates = energy + deltas[v] < best_energy - 1e-12;
    if (tabu && !aspirates) continue;
    if (deltas[v] < chosen_delta) {
      chosen_delta = deltas[v];
      chosen = v;
    }
  }
  return chosen;
}

}  // namespace qulrb::anneal::detail

#endif  // QULRB_HAVE_AVX2
