#include "anneal/tempering.hpp"

#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "anneal/cqm_anneal.hpp"
#include "anneal/replica_bank.hpp"
#include "util/error.hpp"

namespace qulrb::anneal {

using model::VarId;

Sample ParallelTempering::run(const model::CqmModel& cqm,
                              std::vector<double> penalties,
                              const model::State& initial,
                              const PairMoveIndex* prebuilt_pairs) const {
  const std::size_t n = cqm.num_variables();
  const double flight_start_us =
      params_.flight != nullptr ? params_.flight->now_us() : 0.0;
  util::require(params_.num_replicas >= 2, "ParallelTempering: need >= 2 replicas");
  util::require(initial.empty() || initial.size() == n,
                "ParallelTempering: initial state size mismatch");

  util::Rng master(params_.seed);

  // Per-replica RNG streams and start states, drawn in the same order as the
  // per-walker construction this replaces (streams are independent, so
  // splitting them all before the init draws yields identical values).
  std::vector<util::Rng> rngs;
  rngs.reserve(params_.num_replicas);
  for (std::size_t r = 0; r < params_.num_replicas; ++r) {
    rngs.push_back(master.split());
  }
  std::vector<model::State> starts(params_.num_replicas);
  for (std::size_t r = 0; r < params_.num_replicas; ++r) {
    model::State start(n);
    if (initial.empty()) {
      for (auto& b : start) b = static_cast<std::uint8_t>(rngs[r].next_below(2));
    } else {
      start = initial;
    }
    starts[r] = std::move(start);
  }

  // All replicas share one penalty vector; the ladder lives in one SoA bank.
  const std::vector<std::vector<double>> lane_penalties(params_.num_replicas,
                                                        penalties);
  CqmReplicaBank bank(cqm, starts, lane_penalties);

  // Ladder position -> bank lane. Replica exchange swaps configurations
  // between adjacent temperatures; with the bank the configurations stay in
  // their lanes and only this permutation moves.
  std::vector<std::size_t> perm(params_.num_replicas);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  // Beta ladder (geometric between hot and cold).
  double beta_hot = params_.beta_hot;
  double beta_cold = params_.beta_cold;
  if (beta_hot <= 0.0 || beta_cold <= 0.0) {
    double max_abs = 1e-9;
    if (n > 0) {
      const std::size_t probes = std::min<std::size_t>(n, 256);
      for (std::size_t p = 0; p < probes; ++p) {
        const auto v = static_cast<VarId>(rngs[0].next_below(n));
        max_abs = std::max(max_abs, std::abs(bank.flip_delta(perm[0], v)));
      }
    }
    beta_hot = std::log(2.0) / max_abs;
    beta_cold = 1e4 / max_abs;
  }
  std::vector<double> betas(params_.num_replicas);
  for (std::size_t r = 0; r < params_.num_replicas; ++r) {
    const double t = params_.num_replicas == 1
                         ? 1.0
                         : static_cast<double>(r) /
                               static_cast<double>(params_.num_replicas - 1);
    betas[r] = beta_hot * std::pow(beta_cold / beta_hot, t);
  }

  const PairMoveIndex local_pairs =
      prebuilt_pairs == nullptr ? PairMoveIndex::build(cqm) : PairMoveIndex{};
  const PairMoveIndex& pairs =
      prebuilt_pairs != nullptr ? *prebuilt_pairs : local_pairs;

  auto snapshot = [&](std::size_t lane) {
    return Sample{bank.extract_state(lane), bank.objective(lane),
                  bank.total_violation(lane), bank.feasible(lane)};
  };
  Sample best = snapshot(perm.back());

  if (n == 0) return best;

  obs::Recorder::Span run_span(params_.recorder, "tempering", "sampler",
                               params_.trace_track);
  const std::size_t sample_every = std::max<std::size_t>(1, params_.sweeps / 64);
  std::size_t sweeps_done = 0;

  for (std::size_t sweep = 0; sweep < params_.sweeps; ++sweep) {
    if (params_.cancel.expired()) break;
    for (std::size_t r = 0; r < perm.size(); ++r) {
      auto walk = bank.lane(perm[r]);
      auto& rng = rngs[r];
      const double beta = betas[r];
      for (std::size_t step = 0; step < n; ++step) {
        if (!pairs.empty() && rng.next_bool(0.5)) {
          pairs.attempt(walk, rng, beta);
          continue;
        }
        const auto v = static_cast<VarId>(rng.next_below(n));
        const double delta = bank.flip_delta(perm[r], v);
        if (delta <= 0.0 || rng.next_double() < std::exp(-beta * delta)) {
          walk.apply_flip(v);
        }
      }
      Sample current{{},
                     bank.objective(perm[r]),
                     bank.total_violation(perm[r]),
                     bank.feasible(perm[r])};
      if (current.better_than(best)) {
        current.state = bank.extract_state(perm[r]);
        best = std::move(current);
      }
    }

    if ((sweep + 1) % params_.swap_interval == 0) {
      for (std::size_t r = 0; r + 1 < perm.size(); ++r) {
        const double ea = bank.total_energy(perm[r]);
        const double eb = bank.total_energy(perm[r + 1]);
        const double log_accept = (betas[r] - betas[r + 1]) * (ea - eb);
        if (log_accept >= 0.0 ||
            rngs[0].next_double() < std::exp(log_accept)) {
          std::swap(perm[r], perm[r + 1]);
        }
      }
    }
    ++sweeps_done;
    if (params_.recorder != nullptr &&
        (sweep % sample_every == 0 || sweep + 1 == params_.sweeps)) {
      params_.recorder->sample("incumbent_energy", params_.trace_track,
                               best.energy + best.violation);
    }
  }
  if (params_.sweep_counter != nullptr && sweeps_done > 0) {
    params_.sweep_counter->inc(sweeps_done);
  }
  if (params_.replica_sweep_counter != nullptr && sweeps_done > 0) {
    params_.replica_sweep_counter->inc(sweeps_done * params_.num_replicas);
  }
  if (params_.flight != nullptr) {
    const double end_us = params_.flight->now_us();
    params_.flight->record(params_.flight_name, obs::FlightKind::kSpan,
                           params_.trace_track, params_.flight_rid, end_us,
                           end_us - flight_start_us,
                           static_cast<double>(sweeps_done));
  }
  return best;
}

}  // namespace qulrb::anneal
