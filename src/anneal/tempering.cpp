#include "anneal/tempering.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "anneal/cqm_anneal.hpp"
#include "util/error.hpp"

namespace qulrb::anneal {

using model::VarId;

Sample ParallelTempering::run(const model::CqmModel& cqm,
                              std::vector<double> penalties,
                              const model::State& initial,
                              const PairMoveIndex* prebuilt_pairs) const {
  const std::size_t n = cqm.num_variables();
  util::require(params_.num_replicas >= 2, "ParallelTempering: need >= 2 replicas");
  util::require(initial.empty() || initial.size() == n,
                "ParallelTempering: initial state size mismatch");

  util::Rng master(params_.seed);

  // Build replicas, each with its own RNG stream and start state.
  std::vector<std::unique_ptr<CqmIncrementalState>> replicas;
  std::vector<util::Rng> rngs;
  replicas.reserve(params_.num_replicas);
  for (std::size_t r = 0; r < params_.num_replicas; ++r) {
    rngs.push_back(master.split());
    model::State start(n);
    if (initial.empty()) {
      for (auto& b : start) b = static_cast<std::uint8_t>(rngs[r].next_below(2));
    } else {
      start = initial;
    }
    replicas.push_back(
        std::make_unique<CqmIncrementalState>(cqm, std::move(start), penalties));
  }

  // Beta ladder (geometric between hot and cold).
  double beta_hot = params_.beta_hot;
  double beta_cold = params_.beta_cold;
  if (beta_hot <= 0.0 || beta_cold <= 0.0) {
    double max_abs = 1e-9;
    if (n > 0) {
      const std::size_t probes = std::min<std::size_t>(n, 256);
      for (std::size_t p = 0; p < probes; ++p) {
        const auto v = static_cast<VarId>(rngs[0].next_below(n));
        max_abs = std::max(max_abs, std::abs(replicas[0]->flip_delta(v)));
      }
    }
    beta_hot = std::log(2.0) / max_abs;
    beta_cold = 1e4 / max_abs;
  }
  std::vector<double> betas(params_.num_replicas);
  for (std::size_t r = 0; r < params_.num_replicas; ++r) {
    const double t = params_.num_replicas == 1
                         ? 1.0
                         : static_cast<double>(r) /
                               static_cast<double>(params_.num_replicas - 1);
    betas[r] = beta_hot * std::pow(beta_cold / beta_hot, t);
  }

  const PairMoveIndex local_pairs =
      prebuilt_pairs == nullptr ? PairMoveIndex::build(cqm) : PairMoveIndex{};
  const PairMoveIndex& pairs =
      prebuilt_pairs != nullptr ? *prebuilt_pairs : local_pairs;

  auto snapshot = [](const CqmIncrementalState& w) {
    return Sample{w.state(), w.objective(), w.total_violation(), w.feasible()};
  };
  Sample best = snapshot(*replicas.back());

  if (n == 0) return best;

  obs::Recorder::Span run_span(params_.recorder, "tempering", "sampler",
                               params_.trace_track);
  const std::size_t sample_every = std::max<std::size_t>(1, params_.sweeps / 64);
  std::size_t sweeps_done = 0;

  for (std::size_t sweep = 0; sweep < params_.sweeps; ++sweep) {
    if (params_.cancel.expired()) break;
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      auto& walk = *replicas[r];
      auto& rng = rngs[r];
      const double beta = betas[r];
      for (std::size_t step = 0; step < n; ++step) {
        if (!pairs.empty() && rng.next_bool(0.5)) {
          pairs.attempt(walk, rng, beta);
          continue;
        }
        const auto v = static_cast<VarId>(rng.next_below(n));
        const double delta = walk.flip_delta(v);
        if (delta <= 0.0 || rng.next_double() < std::exp(-beta * delta)) {
          walk.apply_flip(v);
        }
      }
      Sample current{{}, walk.objective(), walk.total_violation(), walk.feasible()};
      if (current.better_than(best)) {
        current.state = walk.state();
        best = std::move(current);
      }
    }

    if ((sweep + 1) % params_.swap_interval == 0) {
      for (std::size_t r = 0; r + 1 < replicas.size(); ++r) {
        const double ea = replicas[r]->total_energy();
        const double eb = replicas[r + 1]->total_energy();
        const double log_accept = (betas[r] - betas[r + 1]) * (ea - eb);
        if (log_accept >= 0.0 ||
            rngs[0].next_double() < std::exp(log_accept)) {
          std::swap(replicas[r], replicas[r + 1]);
        }
      }
    }
    ++sweeps_done;
    if (params_.recorder != nullptr &&
        (sweep % sample_every == 0 || sweep + 1 == params_.sweeps)) {
      params_.recorder->sample("incumbent_energy", params_.trace_track,
                               best.energy + best.violation);
    }
  }
  if (params_.sweep_counter != nullptr && sweeps_done > 0) {
    params_.sweep_counter->inc(sweeps_done);
  }
  return best;
}

}  // namespace qulrb::anneal
