#include "anneal/replica_bank.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "util/error.hpp"

namespace qulrb::anneal {

using model::CqmModel;
using model::Sense;
using model::VarId;

namespace detail {

// ---------------------------------------------------------------------------
// Scalar kernels. These are the reference implementations the AVX2 twins are
// proven against: each one replicates the corresponding single-chain code
// (CqmIncrementalState ctor / flip_delta_parts, QuboDeltaCache ctor, the tabu
// candidate scan) per lane, operation for operation.
// ---------------------------------------------------------------------------

void cqm_construct_lanes_scalar(const CqmBankView& bank) noexcept {
  const CqmModel& cqm = *bank.cqm;
  const auto groups = cqm.squared_groups();
  const auto constraints = cqm.constraints();
  const std::size_t stride = bank.stride;
  const auto bit = [&](std::size_t lane, VarId v) -> bool {
    return (bank.bits[v * bank.words_per_var + (lane >> 6)] >> (lane & 63u)) & 1u;
  };
  // Pad lanes (all-zero bits, zero penalty weights) are evaluated like real
  // lanes; their values are well-defined and never read.
  for (std::size_t l = 0; l < stride; ++l) {
    double objective = cqm.objective_offset();
    for (VarId v = 0; v < bank.num_vars; ++v) {
      if (bit(l, v)) objective += bank.linear[v];
    }
    for (const auto& q : cqm.objective_quadratic()) {
      if (bit(l, q.i) && bit(l, q.j)) objective += q.coeff;
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
      double gv = groups[g].expr.constant();
      for (const auto& t : groups[g].expr.terms()) {
        if (bit(l, t.var)) gv += t.coeff;
      }
      bank.group_values[g * stride + l] = gv;
      objective += groups[g].weight * gv * gv;
    }
    bank.objective[l] = objective;

    double penalty = 0.0;
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      double act = constraints[c].lhs.constant();
      for (const auto& t : constraints[c].lhs.terms()) {
        if (bit(l, t.var)) act += t.coeff;
      }
      bank.activities[c * stride + l] = act;
      penalty += bank.penalty_weights[c * stride + l] *
                 violation_branchless(bank.sense[c], act, bank.rhs[c]);
    }
    bank.penalty[l] = penalty;
  }
}

void cqm_batched_flip_delta_scalar(const CqmBankView& bank, VarId v,
                                   CqmIncrementalState::FlipDelta* out) noexcept {
  const std::size_t stride = bank.stride;
  const auto quad_row = (*bank.quad_inc)[v];
  const auto kernel_row = (*bank.group_kernel)[v];
  const auto con_row = (*bank.con_inc)[v];
  const auto bit = [&](std::size_t lane, VarId var) -> bool {
    return (bank.bits[var * bank.words_per_var + (lane >> 6)] >> (lane & 63u)) & 1u;
  };
  for (std::size_t l = 0; l < bank.num_lanes; ++l) {
    const double sign = bit(l, v) ? -1.0 : 1.0;
    double obj = sign * bank.linear[v];
    for (const auto& nb : quad_row) {
      obj = bit_select(bit(l, nb.other), obj + sign * nb.coeff, obj);
    }
    for (const auto& t : kernel_row) {
      obj += sign * t.alpha * bank.group_values[t.index * stride + l] + t.beta;
    }
    double pen = 0.0;
    for (const auto& inc : con_row) {
      const std::size_t c = inc.index;
      const double act = bank.activities[c * stride + l];
      const double w = bank.penalty_weights[c * stride + l];
      pen += w * violation_branchless(bank.sense[c], act + sign * inc.coeff,
                                      bank.rhs[c]) -
             w * violation_branchless(bank.sense[c], act, bank.rhs[c]);
    }
    out[l].objective = obj;
    out[l].penalty = pen;
  }
}

void cqm_batched_pair_delta_scalar(const CqmBankView& bank, VarId a, VarId b,
                                   CqmIncrementalState::FlipDelta* out) noexcept {
  const std::size_t stride = bank.stride;
  const auto bit = [&](std::size_t lane, VarId var) -> bool {
    return (bank.bits[var * bank.words_per_var + (lane >> 6)] >> (lane & 63u)) & 1u;
  };
  const auto quad_a = (*bank.quad_inc)[a];
  const auto quad_b = (*bank.quad_inc)[b];
  const auto group_a = (*bank.group_inc)[a];
  const auto group_b = (*bank.group_inc)[b];
  const auto con_a = (*bank.con_inc)[a];
  const auto con_b = (*bank.con_inc)[b];
  for (std::size_t l = 0; l < bank.num_lanes; ++l) {
    const bool bit_a = bit(l, a);
    const bool bit_b = bit(l, b);
    const double sign_a = bit_a ? -1.0 : 1.0;
    const double sign_b = bit_b ? -1.0 : 1.0;
    double obj = sign_a * bank.linear[a] + sign_b * bank.linear[b];

    for (const auto& nb : quad_a) {
      if (nb.other == b) {
        const double before = bit_a && bit_b ? 1.0 : 0.0;
        const double after = !bit_a && !bit_b ? 1.0 : 0.0;
        obj += nb.coeff * (after - before);
      } else {
        obj = bit_select(bit(l, nb.other), obj + sign_a * nb.coeff, obj);
      }
    }
    for (const auto& nb : quad_b) {
      if (nb.other != a) {
        obj = bit_select(bit(l, nb.other), obj + sign_b * nb.coeff, obj);
      }
    }

    {
      std::size_t ia = 0;
      std::size_t ib = 0;
      while (ia < group_a.size() || ib < group_b.size()) {
        std::uint32_t g;
        double d;
        if (ib == group_b.size() ||
            (ia < group_a.size() && group_a[ia].index < group_b[ib].index)) {
          g = group_a[ia].index;
          d = sign_a * group_a[ia].coeff;
          ++ia;
        } else if (ia == group_a.size() ||
                   group_b[ib].index < group_a[ia].index) {
          g = group_b[ib].index;
          d = sign_b * group_b[ib].coeff;
          ++ib;
        } else {
          g = group_a[ia].index;
          d = sign_a * group_a[ia].coeff + sign_b * group_b[ib].coeff;
          ++ia;
          ++ib;
        }
        const double gv = bank.group_values[g * stride + l];
        obj += bank.group_weights[g] * (2.0 * gv * d + d * d);
      }
    }

    double pen = 0.0;
    {
      std::size_t ia = 0;
      std::size_t ib = 0;
      while (ia < con_a.size() || ib < con_b.size()) {
        std::uint32_t c;
        double d;
        if (ib == con_b.size() ||
            (ia < con_a.size() && con_a[ia].index < con_b[ib].index)) {
          c = con_a[ia].index;
          d = sign_a * con_a[ia].coeff;
          ++ia;
        } else if (ia == con_a.size() || con_b[ib].index < con_a[ia].index) {
          c = con_b[ib].index;
          d = sign_b * con_b[ib].coeff;
          ++ib;
        } else {
          c = con_a[ia].index;
          d = sign_a * con_a[ia].coeff + sign_b * con_b[ib].coeff;
          ++ia;
          ++ib;
        }
        const double act = bank.activities[c * stride + l];
        const double w = bank.penalty_weights[c * stride + l];
        pen += w * violation_branchless(bank.sense[c], act + d, bank.rhs[c]) -
               w * violation_branchless(bank.sense[c], act, bank.rhs[c]);
      }
    }
    out[l].objective = obj;
    out[l].penalty = pen;
  }
}

void cqm_batched_apply_flip_scalar(const CqmBankView& bank, VarId v,
                                   const std::uint8_t* accept) noexcept {
  const std::size_t stride = bank.stride;
  const auto bit = [&](std::size_t lane, VarId var) -> bool {
    return (bank.bits[var * bank.words_per_var + (lane >> 6)] >> (lane & 63u)) & 1u;
  };
  const auto quad_row = (*bank.quad_inc)[v];
  const auto kernel_row = (*bank.group_kernel)[v];
  const auto con_row = (*bank.con_inc)[v];
  for (std::size_t l = 0; l < bank.num_lanes; ++l) {
    if (accept[l] == 0) continue;
    const double sign = bit(l, v) ? -1.0 : 1.0;
    double obj = bank.objective[l];
    obj += sign * bank.linear[v];
    for (const auto& nb : quad_row) {
      obj = bit_select(bit(l, nb.other), obj + sign * nb.coeff, obj);
    }
    for (const auto& t : kernel_row) {
      double& gv = bank.group_values[t.index * stride + l];
      obj += sign * t.alpha * gv + t.beta;
      gv += sign * t.coeff;
    }
    bank.objective[l] = obj;

    double pen = bank.penalty[l];
    for (const auto& inc : con_row) {
      const std::size_t c = inc.index;
      double& act = bank.activities[c * stride + l];
      const double w = bank.penalty_weights[c * stride + l];
      const double nact = act + sign * inc.coeff;
      pen += w * violation_branchless(bank.sense[c], nact, bank.rhs[c]) -
             w * violation_branchless(bank.sense[c], act, bank.rhs[c]);
      act = nact;
    }
    bank.penalty[l] = pen;

    bank.bits[v * bank.words_per_var + (l >> 6)] ^= std::uint64_t{1} << (l & 63u);
  }
}

void qubo_construct_lanes_scalar(const QuboBankView& bank) noexcept {
  const model::QuboModel& qubo = *bank.qubo;
  const auto& adjacency = qubo.adjacency();
  const std::size_t stride = bank.stride;
  const auto bit = [&](std::size_t lane, VarId v) -> bool {
    return (bank.bits[v * bank.words_per_var + (lane >> 6)] >> (lane & 63u)) & 1u;
  };
  for (std::size_t l = 0; l < stride; ++l) {
    // QuboModel::energy, per lane.
    double e = qubo.offset();
    for (VarId v = 0; v < bank.num_vars; ++v) {
      if (bit(l, v)) e += qubo.linear(v);
    }
    qubo.for_each_quadratic([&](VarId i, VarId j, double coeff) {
      if (bit(l, i) && bit(l, j)) e += coeff;
    });
    bank.energy[l] = e;
    // QuboModel::flip_delta, per (lane, variable).
    for (VarId v = 0; v < bank.num_vars; ++v) {
      double delta = qubo.linear(v);
      for (const auto& nb : adjacency[v]) {
        if (bit(l, nb.other)) delta += nb.coeff;
      }
      bank.deltas[v * stride + l] = bit(l, v) ? -delta : delta;
    }
  }
}

std::size_t tabu_argmin_scalar(const double* deltas, const std::size_t* tabu_until,
                               std::size_t n, std::size_t iteration, double energy,
                               double best_energy) noexcept {
  std::size_t chosen = n;
  double chosen_delta = std::numeric_limits<double>::infinity();
  for (std::size_t v = 0; v < n; ++v) {
    const bool tabu = tabu_until[v] >= iteration;
    const bool aspirates = energy + deltas[v] < best_energy - 1e-12;
    if (tabu && !aspirates) continue;
    if (deltas[v] < chosen_delta) {
      chosen_delta = deltas[v];
      chosen = v;
    }
  }
  return chosen;
}

}  // namespace detail

std::size_t tabu_argmin(std::span<const double> deltas,
                        std::span<const std::size_t> tabu_until,
                        std::size_t iteration, double energy,
                        double best_energy) noexcept {
#if QULRB_HAVE_AVX2
  if (simd::active_level() == simd::Level::kAvx2) {
    return detail::tabu_argmin_avx2(deltas.data(), tabu_until.data(),
                                    deltas.size(), iteration, energy,
                                    best_energy);
  }
#endif
  return detail::tabu_argmin_scalar(deltas.data(), tabu_until.data(),
                                    deltas.size(), iteration, energy,
                                    best_energy);
}

// ---------------------------------------------------------------------------
// CqmReplicaBank
// ---------------------------------------------------------------------------

CqmReplicaBank::CqmReplicaBank(const CqmModel& cqm,
                               std::span<const model::State> initial,
                               std::span<const std::vector<double>> penalties)
    : cqm_(&cqm),
      num_lanes_(initial.size()),
      stride_((initial.size() + 3) & ~std::size_t{3}),
      num_vars_(cqm.num_variables()),
      words_per_var_((((initial.size() + 3) & ~std::size_t{3}) + 63) / 64) {
  util::require(num_lanes_ >= 1, "CqmReplicaBank: need at least one lane");
  util::require(penalties.size() == num_lanes_,
                "CqmReplicaBank: one penalty vector per lane");

  group_kernel_ = &cqm.group_kernel();
  group_inc_ = &cqm.group_incidence();
  con_inc_ = &cqm.constraint_incidence();
  quad_inc_ = &cqm.quadratic_incidence();
  linear_ = cqm.objective_linear();
  group_weights_ = cqm.group_weight_flat();

  bits_.assign(num_vars_ * words_per_var_, 0);
  for (std::size_t l = 0; l < num_lanes_; ++l) {
    util::require(initial[l].size() == num_vars_,
                  "CqmReplicaBank: state size mismatch");
    for (VarId v = 0; v < num_vars_; ++v) {
      if (initial[l][v]) {
        bits_[v * words_per_var_ + (l >> 6)] |= std::uint64_t{1} << (l & 63u);
      }
    }
  }

  const auto constraints = cqm.constraints();
  const auto groups = cqm.squared_groups();
  obj_.assign(stride_, 0.0);
  pen_.assign(stride_, 0.0);
  group_vals_.assign(groups.size() * stride_, 0.0);
  acts_.assign(constraints.size() * stride_, 0.0);
  pen_w_.assign(constraints.size() * stride_, 0.0);
  rhs_.resize(constraints.size());
  sense_.resize(constraints.size());
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    rhs_[c] = constraints[c].rhs;
    sense_[c] = constraints[c].sense;
  }
  for (std::size_t l = 0; l < num_lanes_; ++l) {
    util::require(penalties[l].size() == constraints.size(),
                  "CqmReplicaBank: penalty count mismatch");
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      pen_w_[c * stride_ + l] = penalties[l][c];
    }
  }

  const detail::CqmBankView v = view();
#if QULRB_HAVE_AVX2
  if (simd::active_level() == simd::Level::kAvx2) {
    detail::cqm_construct_lanes_avx2(v);
    return;
  }
#endif
  detail::cqm_construct_lanes_scalar(v);
}

detail::CqmBankView CqmReplicaBank::view() const noexcept {
  detail::CqmBankView v;
  v.cqm = cqm_;
  v.num_vars = num_vars_;
  v.num_lanes = num_lanes_;
  v.stride = stride_;
  v.words_per_var = words_per_var_;
  v.bits = const_cast<std::uint64_t*>(bits_.data());
  v.objective = const_cast<double*>(obj_.data());
  v.penalty = const_cast<double*>(pen_.data());
  v.group_values = const_cast<double*>(group_vals_.data());
  v.activities = const_cast<double*>(acts_.data());
  v.penalty_weights = pen_w_.data();
  v.rhs = rhs_.data();
  v.sense = sense_.data();
  v.linear = linear_.data();
  v.group_weights = group_weights_.data();
  v.group_kernel = group_kernel_;
  v.group_inc = group_inc_;
  v.quad_inc = quad_inc_;
  v.con_inc = con_inc_;
  return v;
}

double CqmReplicaBank::total_violation(std::size_t lane) const noexcept {
  double v = 0.0;
  for (std::size_t c = 0; c < rhs_.size(); ++c) {
    v += detail::violation_branchless(sense_[c], acts_[c * stride_ + lane],
                                      rhs_[c]);
  }
  return v;
}

bool CqmReplicaBank::feasible(std::size_t lane, double tol) const noexcept {
  for (std::size_t c = 0; c < rhs_.size(); ++c) {
    if (detail::violation_branchless(sense_[c], acts_[c * stride_ + lane],
                                     rhs_[c]) > tol) {
      return false;
    }
  }
  return true;
}

model::State CqmReplicaBank::extract_state(std::size_t lane) const {
  model::State s(num_vars_);
  for (VarId v = 0; v < num_vars_; ++v) {
    s[v] = state_bit(lane, v) ? 1u : 0u;
  }
  return s;
}

CqmReplicaBank::FlipDelta CqmReplicaBank::flip_delta_parts(
    std::size_t lane, VarId v) const noexcept {
  const double sign = state_bit(lane, v) ? -1.0 : 1.0;
  FlipDelta delta;
  double obj = sign * linear_[v];

  for (const auto& nb : (*quad_inc_)[v]) {
    obj = detail::bit_select(state_bit(lane, nb.other), obj + sign * nb.coeff, obj);
  }
  for (const auto& t : (*group_kernel_)[v]) {
    obj += sign * t.alpha * group_vals_[t.index * stride_ + lane] + t.beta;
  }

  double pen = 0.0;
  for (const auto& inc : (*con_inc_)[v]) {
    const std::size_t c = inc.index;
    const double act = acts_[c * stride_ + lane];
    pen += lane_penalty_of(c, lane, act + sign * inc.coeff) -
           lane_penalty_of(c, lane, act);
  }
  delta.objective = obj;
  delta.penalty = pen;
  return delta;
}

CqmReplicaBank::FlipDelta CqmReplicaBank::pair_delta_parts(
    std::size_t lane, VarId a, VarId b) const noexcept {
  const bool bit_a = state_bit(lane, a);
  const bool bit_b = state_bit(lane, b);
  const double sign_a = bit_a ? -1.0 : 1.0;
  const double sign_b = bit_b ? -1.0 : 1.0;
  FlipDelta delta;
  double obj = sign_a * linear_[a] + sign_b * linear_[b];

  for (const auto& nb : (*quad_inc_)[a]) {
    if (nb.other == b) {
      const double before = bit_a && bit_b ? 1.0 : 0.0;
      const double after = !bit_a && !bit_b ? 1.0 : 0.0;
      obj += nb.coeff * (after - before);
    } else if (state_bit(lane, nb.other)) {
      obj += sign_a * nb.coeff;
    }
  }
  for (const auto& nb : (*quad_inc_)[b]) {
    if (nb.other != a && state_bit(lane, nb.other)) obj += sign_b * nb.coeff;
  }

  {
    const auto row_a = (*group_inc_)[a];
    const auto row_b = (*group_inc_)[b];
    std::size_t ia = 0;
    std::size_t ib = 0;
    while (ia < row_a.size() || ib < row_b.size()) {
      std::uint32_t g;
      double d;
      if (ib == row_b.size() ||
          (ia < row_a.size() && row_a[ia].index < row_b[ib].index)) {
        g = row_a[ia].index;
        d = sign_a * row_a[ia].coeff;
        ++ia;
      } else if (ia == row_a.size() || row_b[ib].index < row_a[ia].index) {
        g = row_b[ib].index;
        d = sign_b * row_b[ib].coeff;
        ++ib;
      } else {
        g = row_a[ia].index;
        d = sign_a * row_a[ia].coeff + sign_b * row_b[ib].coeff;
        ++ia;
        ++ib;
      }
      const double gv = group_vals_[g * stride_ + lane];
      obj += group_weights_[g] * (2.0 * gv * d + d * d);
    }
  }

  double pen = 0.0;
  {
    const auto row_a = (*con_inc_)[a];
    const auto row_b = (*con_inc_)[b];
    std::size_t ia = 0;
    std::size_t ib = 0;
    while (ia < row_a.size() || ib < row_b.size()) {
      std::uint32_t c;
      double d;
      if (ib == row_b.size() ||
          (ia < row_a.size() && row_a[ia].index < row_b[ib].index)) {
        c = row_a[ia].index;
        d = sign_a * row_a[ia].coeff;
        ++ia;
      } else if (ia == row_a.size() || row_b[ib].index < row_a[ia].index) {
        c = row_b[ib].index;
        d = sign_b * row_b[ib].coeff;
        ++ib;
      } else {
        c = row_a[ia].index;
        d = sign_a * row_a[ia].coeff + sign_b * row_b[ib].coeff;
        ++ia;
        ++ib;
      }
      const double act = acts_[c * stride_ + lane];
      pen += lane_penalty_of(c, lane, act + d) - lane_penalty_of(c, lane, act);
    }
  }
  delta.objective = obj;
  delta.penalty = pen;
  return delta;
}

void CqmReplicaBank::apply_flip(std::size_t lane, VarId v) noexcept {
  const double sign = state_bit(lane, v) ? -1.0 : 1.0;
  double obj = obj_[lane];
  obj += sign * linear_[v];

  for (const auto& nb : (*quad_inc_)[v]) {
    obj = detail::bit_select(state_bit(lane, nb.other), obj + sign * nb.coeff, obj);
  }
  for (const auto& t : (*group_kernel_)[v]) {
    double& gv = group_vals_[t.index * stride_ + lane];
    obj += sign * t.alpha * gv + t.beta;
    gv += sign * t.coeff;
  }
  obj_[lane] = obj;

  double pen = pen_[lane];
  for (const auto& inc : (*con_inc_)[v]) {
    const std::size_t c = inc.index;
    double& act = acts_[c * stride_ + lane];
    const double nact = act + sign * inc.coeff;
    pen += lane_penalty_of(c, lane, nact) - lane_penalty_of(c, lane, act);
    act = nact;
  }
  pen_[lane] = pen;

  bits_[v * words_per_var_ + (lane >> 6)] ^= std::uint64_t{1} << (lane & 63u);
}

void CqmReplicaBank::set_penalties(std::size_t lane,
                                   std::span<const double> penalties) {
  util::require(penalties.size() == rhs_.size(),
                "CqmReplicaBank: penalty count mismatch");
  double pen = 0.0;
  for (std::size_t c = 0; c < rhs_.size(); ++c) {
    pen_w_[c * stride_ + lane] = penalties[c];
    pen += lane_penalty_of(c, lane, acts_[c * stride_ + lane]);
  }
  pen_[lane] = pen;
}

void CqmReplicaBank::batched_flip_delta(VarId v, FlipDelta* out) const noexcept {
  const detail::CqmBankView bv = view();
#if QULRB_HAVE_AVX2
  if (simd::active_level() == simd::Level::kAvx2) {
    detail::cqm_batched_flip_delta_avx2(bv, v, out);
    return;
  }
#endif
  detail::cqm_batched_flip_delta_scalar(bv, v, out);
}

void CqmReplicaBank::batched_pair_delta(VarId a, VarId b,
                                        FlipDelta* out) const noexcept {
  const detail::CqmBankView bv = view();
#if QULRB_HAVE_AVX2
  if (simd::active_level() == simd::Level::kAvx2) {
    detail::cqm_batched_pair_delta_avx2(bv, a, b, out);
    return;
  }
#endif
  detail::cqm_batched_pair_delta_scalar(bv, a, b, out);
}

void CqmReplicaBank::batched_apply_flip(VarId v,
                                        const std::uint8_t* accept) noexcept {
  const detail::CqmBankView bv = view();
#if QULRB_HAVE_AVX2
  if (simd::active_level() == simd::Level::kAvx2) {
    detail::cqm_batched_apply_flip_avx2(bv, v, accept);
    return;
  }
#endif
  detail::cqm_batched_apply_flip_scalar(bv, v, accept);
}

// ---------------------------------------------------------------------------
// BatchedCqmAnnealer
// ---------------------------------------------------------------------------

std::vector<Sample> BatchedCqmAnnealer::anneal_lanes(
    const CqmModel& cqm, std::span<const BatchedLaneSpec> lanes,
    const PairMoveIndex* pairs, util::Rng* proposal_rng) const {
  const std::size_t n = cqm.num_variables();
  const std::size_t L = lanes.size();
  if (L == 0) return {};
  obs::prof::PhaseScope lanes_phase("anneal-lanes");
  const double flight_start_us =
      params_.flight != nullptr ? params_.flight->now_us() : 0.0;

  // Per-lane start states, drawn (when absent) from the lane's own stream in
  // the same order the scalar annealer would: lane l's draws are untouched by
  // any other lane.
  std::vector<model::State> starts(L);
  std::vector<std::vector<double>> penalties(L);
  for (std::size_t l = 0; l < L; ++l) {
    util::require(lanes[l].rng != nullptr && lanes[l].penalties != nullptr,
                  "BatchedCqmAnnealer: lane needs rng and penalties");
    const model::State* init = lanes[l].initial;
    util::require(init == nullptr || init->empty() || init->size() == n,
                  "BatchedCqmAnnealer: initial state size mismatch");
    if (init == nullptr || init->empty()) {
      starts[l].resize(n);
      for (auto& b : starts[l]) {
        b = static_cast<std::uint8_t>(lanes[l].rng->next_below(2));
      }
    } else {
      starts[l] = *init;
    }
    penalties[l] = *lanes[l].penalties;
  }

  CqmReplicaBank bank(cqm, starts, penalties);
  starts.clear();
  starts.shrink_to_fit();

  std::vector<Sample> best(L);
  for (std::size_t l = 0; l < L; ++l) {
    best[l] = {bank.extract_state(l), bank.objective(l), bank.total_violation(l),
               bank.feasible(l)};
  }
  if (n == 0) return best;

  // Per-lane schedule. In per-lane mode the probe consumes each lane's RNG
  // exactly like the scalar annealer's probe does; in shared-proposal mode
  // the probe variables come from the proposal stream (one batched delta per
  // probe) and each lane keeps its own maxima.
  std::vector<BetaSchedule> schedules;
  schedules.reserve(L);
  if (params_.beta_hot && params_.beta_cold) {
    for (std::size_t l = 0; l < L; ++l) {
      schedules.emplace_back(*params_.beta_hot, *params_.beta_cold,
                             params_.sweeps, params_.schedule);
    }
  } else if (proposal_rng != nullptr) {
    std::vector<double> max_abs_total(L, 1e-9);
    std::vector<double> max_abs_obj(L, 1e-9);
    std::vector<CqmReplicaBank::FlipDelta> probe_deltas(L);
    const std::size_t probes = std::min<std::size_t>(n, 512);
    for (std::size_t p = 0; p < probes; ++p) {
      const auto v = static_cast<VarId>(proposal_rng->next_below(n));
      bank.batched_flip_delta(v, probe_deltas.data());
      for (std::size_t l = 0; l < L; ++l) {
        max_abs_total[l] =
            std::max(max_abs_total[l], std::abs(probe_deltas[l].total()));
        max_abs_obj[l] =
            std::max(max_abs_obj[l], std::abs(probe_deltas[l].objective));
      }
    }
    for (std::size_t l = 0; l < L; ++l) {
      if (lanes[l].refinement) {
        schedules.push_back(BetaSchedule::for_energy_scale(
            max_abs_obj[l] * 1e-7, max_abs_obj[l], params_.sweeps,
            params_.schedule));
      } else {
        schedules.push_back(BetaSchedule::for_energy_scale(
            max_abs_obj[l] * 1e-6, max_abs_total[l], params_.sweeps,
            params_.schedule));
      }
    }
  } else {
    for (std::size_t l = 0; l < L; ++l) {
      util::Rng& rng = *lanes[l].rng;
      double max_abs_total = 1e-9;
      double max_abs_obj = 1e-9;
      const std::size_t probes = std::min<std::size_t>(n, 512);
      for (std::size_t p = 0; p < probes; ++p) {
        const auto v = static_cast<VarId>(rng.next_below(n));
        const auto d = bank.flip_delta_parts(l, v);
        max_abs_total = std::max(max_abs_total, std::abs(d.total()));
        max_abs_obj = std::max(max_abs_obj, std::abs(d.objective));
      }
      if (lanes[l].refinement) {
        schedules.push_back(BetaSchedule::for_energy_scale(
            max_abs_obj * 1e-7, max_abs_obj, params_.sweeps, params_.schedule));
      } else {
        schedules.push_back(BetaSchedule::for_energy_scale(
            max_abs_obj * 1e-6, max_abs_total, params_.sweeps, params_.schedule));
      }
    }
  }

  std::vector<std::unique_ptr<obs::Recorder::Span>> spans;
  spans.reserve(L);
  for (std::size_t l = 0; l < L; ++l) {
    spans.push_back(std::make_unique<obs::Recorder::Span>(
        params_.recorder, lanes[l].refinement ? "refine" : "anneal", "sampler",
        lanes[l].trace_track));
  }
  const std::size_t sample_every = std::max<std::size_t>(1, params_.sweeps / 64);
  std::size_t sweeps_done = 0;

  const PairMoveIndex local_pairs =
      (pairs == nullptr && params_.pair_move_prob > 0.0) ? PairMoveIndex::build(cqm)
                                                         : PairMoveIndex{};
  const PairMoveIndex& pair_index = pairs != nullptr ? *pairs : local_pairs;
  const bool use_pairs = params_.pair_move_prob > 0.0 && !pair_index.empty();

  std::vector<double> betas(L);
  std::vector<std::uint8_t> improved(L);
  std::vector<CqmReplicaBank::FlipDelta> deltas(L);
  std::vector<std::uint8_t> accept(L);
  const std::size_t total_sweeps = schedules[0].sweeps();

  for (std::size_t sweep = 0; sweep < total_sweeps; ++sweep) {
    if (params_.cancel.expired()) break;
    for (std::size_t l = 0; l < L; ++l) {
      betas[l] = schedules[l].at(sweep);
      improved[l] = 0;
    }
    if (proposal_rng != nullptr) {
      // Shared-proposal lockstep: one move proposal per step drives every
      // lane through the batched across-lane kernels. Proposal draws are
      // state-independent, acceptance draws come from each lane's own stream,
      // so lane trajectories stay independent of R and bank composition.
      for (std::size_t step = 0; step < n; ++step) {
        if (use_pairs && proposal_rng->next_bool(params_.pair_move_prob)) {
          const auto members = pair_index.class_at(static_cast<std::size_t>(
              proposal_rng->next_below(pair_index.num_classes())));
          const VarId a = members[static_cast<std::size_t>(
              proposal_rng->next_below(members.size()))];
          const VarId b = members[static_cast<std::size_t>(
              proposal_rng->next_below(members.size()))];
          for (std::size_t l = 0; l < L; ++l) {
            if (lanes[l].trace != nullptr) ++lanes[l].trace->pair_attempts;
          }
          if (a == b) continue;
          bank.batched_pair_delta(a, b, deltas.data());
          bool any = false;
          for (std::size_t l = 0; l < L; ++l) {
            accept[l] = 0;
            // A pair move only exists on lanes whose bits differ; equal-bit
            // lanes veto without touching their acceptance stream.
            if (bank.state_bit(l, a) == bank.state_bit(l, b)) continue;
            const auto& d = deltas[l];
            if (lanes[l].refinement && d.penalty > 0.0) continue;
            const double criterion =
                lanes[l].refinement ? d.objective : d.total();
            if (criterion <= 0.0 ||
                lanes[l].rng->next_double() <
                    std::exp(-betas[l] * criterion)) {
              accept[l] = 1;
              any = true;
              improved[l] = 1;
              if (lanes[l].trace != nullptr) ++lanes[l].trace->pair_accepts;
            }
          }
          if (any) {
            bank.batched_apply_flip(a, accept.data());
            bank.batched_apply_flip(b, accept.data());
          }
          continue;
        }
        const auto v = static_cast<VarId>(proposal_rng->next_below(n));
        bank.batched_flip_delta(v, deltas.data());
        bool any = false;
        for (std::size_t l = 0; l < L; ++l) {
          accept[l] = 0;
          if (lanes[l].trace != nullptr) ++lanes[l].trace->flip_attempts;
          const auto& d = deltas[l];
          if (lanes[l].refinement && d.penalty > 0.0) continue;
          const double criterion = lanes[l].refinement ? d.objective : d.total();
          if (criterion <= 0.0 ||
              lanes[l].rng->next_double() < std::exp(-betas[l] * criterion)) {
            accept[l] = 1;
            any = true;
            improved[l] = 1;
            if (lanes[l].trace != nullptr) ++lanes[l].trace->flip_accepts;
          }
        }
        if (any) bank.batched_apply_flip(v, accept.data());
      }
    } else {
      // Lockstep: every lane advances one step per iteration. Lanes carry
      // independent RNG/state, so interleaving them changes nothing bitwise
      // but overlaps their dependency chains and keeps the shared CSR rows
      // hot.
      for (std::size_t step = 0; step < n; ++step) {
        for (std::size_t l = 0; l < L; ++l) {
          util::Rng& rng = *lanes[l].rng;
          AnnealTrace* trace = lanes[l].trace;
          if (use_pairs && rng.next_bool(params_.pair_move_prob)) {
            CqmReplicaBank::LaneRef walk = bank.lane(l);
            const bool accepted =
                pair_index.attempt(walk, rng, betas[l], lanes[l].refinement);
            improved[l] = accepted ? 1 : improved[l];
            if (trace != nullptr) {
              ++trace->pair_attempts;
              if (accepted) ++trace->pair_accepts;
            }
            continue;
          }
          const auto v = static_cast<VarId>(rng.next_below(n));
          if (trace != nullptr) ++trace->flip_attempts;
          const auto d = bank.flip_delta_parts(l, v);
          if (lanes[l].refinement && d.penalty > 0.0) continue;
          const double criterion = lanes[l].refinement ? d.objective : d.total();
          if (criterion <= 0.0 ||
              rng.next_double() < std::exp(-betas[l] * criterion)) {
            bank.apply_flip(l, v);
            improved[l] = 1;
            if (trace != nullptr) ++trace->flip_accepts;
          }
        }
      }
    }
    for (std::size_t l = 0; l < L; ++l) {
      if (improved[l]) {
        Sample current{{}, bank.objective(l), bank.total_violation(l),
                       bank.feasible(l)};
        if (current.better_than(best[l])) {
          current.state = bank.extract_state(l);
          best[l] = std::move(current);
        }
      }
      if (lanes[l].trace != nullptr) {
        lanes[l].trace->best_energy_per_sweep.push_back(best[l].energy +
                                                        best[l].violation);
        lanes[l].trace->violation_per_sweep.push_back(bank.total_violation(l));
      }
      if (params_.recorder != nullptr &&
          (sweep % sample_every == 0 || sweep + 1 == total_sweeps)) {
        params_.recorder->sample("incumbent_energy", lanes[l].trace_track,
                                 best[l].energy + best[l].violation);
        params_.recorder->sample("incumbent_violation", lanes[l].trace_track,
                                 best[l].violation);
      }
    }
    ++sweeps_done;
  }
  const std::size_t lane_sweeps = sweeps_done * L;
  if (params_.sweep_counter != nullptr && lane_sweeps > 0) {
    params_.sweep_counter->inc(lane_sweeps);
  }
  if (params_.replica_sweep_counter != nullptr && lane_sweeps > 0) {
    params_.replica_sweep_counter->inc(lane_sweeps);
  }
  if (params_.flight != nullptr) {
    const double end_us = params_.flight->now_us();
    params_.flight->record(params_.flight_name, obs::FlightKind::kSpan, 0,
                           params_.flight_rid, end_us,
                           end_us - flight_start_us,
                           static_cast<double>(lane_sweeps));
  }
  return best;
}

// ---------------------------------------------------------------------------
// QuboReplicaBank
// ---------------------------------------------------------------------------

QuboReplicaBank::QuboReplicaBank(const model::QuboModel& qubo,
                                 std::span<const model::State> initial)
    : qubo_(&qubo),
      adjacency_(&qubo.adjacency()),
      num_lanes_(initial.size()),
      stride_((initial.size() + 3) & ~std::size_t{3}),
      num_vars_(qubo.num_variables()),
      words_per_var_((((initial.size() + 3) & ~std::size_t{3}) + 63) / 64) {
  util::require(num_lanes_ >= 1, "QuboReplicaBank: need at least one lane");
  bits_.assign(num_vars_ * words_per_var_, 0);
  for (std::size_t l = 0; l < num_lanes_; ++l) {
    util::require(initial[l].size() == num_vars_,
                  "QuboReplicaBank: state size mismatch");
    for (VarId v = 0; v < num_vars_; ++v) {
      if (initial[l][v]) {
        bits_[v * words_per_var_ + (l >> 6)] |= std::uint64_t{1} << (l & 63u);
      }
    }
  }
  energy_.assign(stride_, 0.0);
  deltas_.assign(num_vars_ * stride_, 0.0);

  const detail::QuboBankView v = view();
#if QULRB_HAVE_AVX2
  if (simd::active_level() == simd::Level::kAvx2) {
    detail::qubo_construct_lanes_avx2(v);
    return;
  }
#endif
  detail::qubo_construct_lanes_scalar(v);
}

detail::QuboBankView QuboReplicaBank::view() const noexcept {
  detail::QuboBankView v;
  v.qubo = qubo_;
  v.num_vars = num_vars_;
  v.num_lanes = num_lanes_;
  v.stride = stride_;
  v.words_per_var = words_per_var_;
  v.bits = bits_.data();
  v.energy = const_cast<double*>(energy_.data());
  v.deltas = const_cast<double*>(deltas_.data());
  return v;
}

model::State QuboReplicaBank::extract_state(std::size_t lane) const {
  model::State s(num_vars_);
  for (VarId v = 0; v < num_vars_; ++v) {
    s[v] = state_bit(lane, v) ? 1u : 0u;
  }
  return s;
}

void QuboReplicaBank::apply_flip(std::size_t lane, VarId v) noexcept {
  const double d = deltas_[v * stride_ + lane];
  const bool was_set = state_bit(lane, v);
  bits_[v * words_per_var_ + (lane >> 6)] ^= std::uint64_t{1} << (lane & 63u);
  energy_[lane] += d;
  deltas_[v * stride_ + lane] = -d;
  const double sign_v = was_set ? -1.0 : 1.0;
  for (const auto& nb : (*adjacency_)[v]) {
    const double direction = state_bit(lane, nb.other) ? -1.0 : 1.0;
    deltas_[nb.other * stride_ + lane] += direction * sign_v * nb.coeff;
  }
}

}  // namespace qulrb::anneal
