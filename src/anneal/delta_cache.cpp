#include "anneal/delta_cache.hpp"

#include <utility>

#include "util/error.hpp"

namespace qulrb::anneal {

using model::CqmModel;
using model::VarId;

QuboDeltaCache::QuboDeltaCache(const model::QuboModel& qubo,
                               const model::State& state)
    : adjacency_(&qubo.adjacency()) {
  util::require(state.size() == qubo.num_variables(),
                "QuboDeltaCache: state size mismatch");
  energy_ = qubo.energy(state);
  delta_.resize(state.size());
  for (VarId v = 0; v < delta_.size(); ++v) {
    delta_[v] = qubo.flip_delta(state, v);
  }
}

void QuboDeltaCache::apply_flip(model::State& state, VarId v) noexcept {
  const double d = delta_[v];
  const bool was_set = state[v] != 0;
  state[v] ^= 1u;
  energy_ += d;
  delta_[v] = -d;
  // Flipping v toggles whether each neighbour's delta includes the coupler
  // with v; the correction direction depends on whether the neighbour would
  // be turning on or off.
  const double sign_v = was_set ? -1.0 : 1.0;  // v's new contribution
  for (const auto& nb : (*adjacency_)[v]) {
    const double direction = state[nb.other] ? -1.0 : 1.0;
    delta_[nb.other] += direction * sign_v * nb.coeff;
  }
}

CqmDeltaCache::CqmDeltaCache(const CqmModel& cqm, model::State initial,
                             std::vector<double> penalties)
    : cqm_(&cqm), walk_(cqm, std::move(initial), std::move(penalties)) {
  deltas_.resize(cqm.num_variables());
  for (VarId v = 0; v < deltas_.size(); ++v) {
    deltas_[v] = walk_.flip_delta_parts(v);
  }
}

void CqmDeltaCache::apply_flip(VarId v) {
  const auto& state = walk_.state();
  const double sign_v = state[v] ? -1.0 : 1.0;
  const auto groups = cqm_->squared_groups();
  const auto constraints = cqm_->constraints();
  const auto& group_inc = cqm_->group_incidence();
  const auto& con_inc = cqm_->constraint_incidence();
  const auto& quad_inc = cqm_->quadratic_incidence();

  // Objective quadratic: u's delta includes sign_u * coeff * x_v, and x_v
  // moves by sign_v.
  for (const auto& nb : quad_inc[v]) {
    if (nb.other == v) continue;
    const double sign_u = state[nb.other] ? -1.0 : 1.0;
    deltas_[nb.other].objective += sign_u * nb.coeff * sign_v;
  }

  // Squared groups: group g's value steps by dG = sign_v * c_v, shifting
  // every member's linearized term sign_u * (2 w a_u) * G by that step.
  for (const auto& inc : group_inc[v]) {
    const auto& g = groups[inc.index];
    const double dG = sign_v * inc.coeff;
    for (const auto& t : g.expr.terms()) {
      if (t.var == v) continue;
      const double sign_u = state[t.var] ? -1.0 : 1.0;
      deltas_[t.var].objective += sign_u * (2.0 * g.weight * t.coeff) * dG;
    }
  }

  // Constraints: activity steps from A to A' = A + sign_v * c_v; every other
  // member's penalty delta is re-based from A to A'.
  for (const auto& inc : con_inc[v]) {
    const std::size_t c = inc.index;
    const auto& con = constraints[c];
    const double pen = walk_.penalty_weight(c);
    const double old_act = walk_.constraint_activity(c);
    const double new_act = old_act + sign_v * inc.coeff;
    const double base_old = pen * CqmModel::violation_of(con.sense, old_act, con.rhs);
    const double base_new = pen * CqmModel::violation_of(con.sense, new_act, con.rhs);
    for (const auto& t : con.lhs.terms()) {
      if (t.var == v) continue;
      const double step = (state[t.var] ? -1.0 : 1.0) * t.coeff;
      const double shifted_old =
          pen * CqmModel::violation_of(con.sense, old_act + step, con.rhs);
      const double shifted_new =
          pen * CqmModel::violation_of(con.sense, new_act + step, con.rhs);
      deltas_[t.var].penalty += (shifted_new - base_new) - (shifted_old - base_old);
    }
  }

  walk_.apply_flip(v);
  // v's own entry: the sign reversal is not FP-exact (the aggregates it sums
  // against have moved), so recompute it from the walk.
  deltas_[v] = walk_.flip_delta_parts(v);
}

void CqmDeltaCache::set_penalties(std::vector<double> penalties) {
  walk_.set_penalties(std::move(penalties));
  for (VarId v = 0; v < deltas_.size(); ++v) {
    deltas_[v].penalty = walk_.flip_delta_parts(v).penalty;
  }
}

}  // namespace qulrb::anneal
