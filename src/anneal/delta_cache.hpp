#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "anneal/cqm_anneal.hpp"
#include "model/cqm.hpp"
#include "model/qubo.hpp"

namespace qulrb::anneal {

/// O(1)-read flip-delta cache for a QUBO walk.
///
/// Maintains delta[v] = E(x with v flipped) - E(x) for every variable, plus
/// the running energy. Reading a candidate move is a single array load;
/// committing a move refreshes the affected entries in O(deg(v)). This turns
/// the accept/reject loop of SimulatedAnnealer and TabuSearch from
/// "walk the adjacency row per attempt" into "walk it per accepted move" —
/// a strict win whenever acceptance < 100%.
class QuboDeltaCache {
 public:
  QuboDeltaCache(const model::QuboModel& qubo, const model::State& state);

  double delta(model::VarId v) const noexcept { return delta_[v]; }
  std::span<const double> deltas() const noexcept { return delta_; }
  double energy() const noexcept { return energy_; }

  /// Flip v in `state` (which must be the assignment the cache was built
  /// against, evolved only through this method) and update the cache.
  void apply_flip(model::State& state, model::VarId v) noexcept;

 private:
  const model::CsrRows<model::QuboModel::Neighbor>* adjacency_;
  std::vector<double> delta_;
  double energy_ = 0.0;
};

/// Exact incrementally-maintained flip-delta cache over a CQM walk.
///
/// Every cached entry is updated in place when a flip commits: squared-group
/// entries via the group-value step, constraint entries via the activity
/// step, quadratic entries via the neighbour's new value. The flipped
/// variable's own entry is recomputed fresh (its incremental negation is not
/// FP-exact).
///
/// This is reference/diagnostic machinery, not the CQM hot path: updating
/// all dependent entries costs O(sum of member-list sizes of everything v
/// touches), which degenerates to O(N) per flip on LRP models whose
/// migration-bound constraint spans every variable. The production kernel
/// (CqmIncrementalState) therefore recomputes deltas from running aggregates
/// in O(incidence of v) instead, and the O(1) eager caches are reserved for
/// the bounded-degree QUBO/Ising solvers. See DESIGN.md "Kernel memory
/// layout". The property tests drive this class against fresh recomputes to
/// pin down the incremental arithmetic both layouts share.
class CqmDeltaCache {
 public:
  CqmDeltaCache(const model::CqmModel& cqm, model::State initial,
                std::vector<double> penalties);

  const model::State& state() const noexcept { return walk_.state(); }
  double objective() const noexcept { return walk_.objective(); }
  double penalty_energy() const noexcept { return walk_.penalty_energy(); }

  /// The maintained entry for v (objective and penalty parts).
  CqmIncrementalState::FlipDelta cached_delta(model::VarId v) const noexcept {
    return deltas_[v];
  }
  /// Ground truth: recompute v's delta from the walk's running aggregates.
  CqmIncrementalState::FlipDelta fresh_delta(model::VarId v) const noexcept {
    return walk_.flip_delta_parts(v);
  }

  /// Commit the flip of v, updating the walk and every dependent cache entry.
  void apply_flip(model::VarId v);

  /// Swap in new penalty weights; penalty parts of all entries are rebuilt.
  void set_penalties(std::vector<double> penalties);

 private:
  const model::CqmModel* cqm_;
  CqmIncrementalState walk_;
  std::vector<CqmIncrementalState::FlipDelta> deltas_;
};

}  // namespace qulrb::anneal
