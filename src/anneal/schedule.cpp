#include "anneal/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qulrb::anneal {

BetaSchedule::BetaSchedule(double beta_hot, double beta_cold, std::size_t sweeps,
                           ScheduleKind kind)
    : beta_hot_(beta_hot), beta_cold_(beta_cold), sweeps_(sweeps), kind_(kind) {
  util::require(beta_hot > 0.0 && beta_cold >= beta_hot,
                "BetaSchedule: need 0 < beta_hot <= beta_cold");
  util::require(sweeps > 0, "BetaSchedule: need at least one sweep");
}

double BetaSchedule::at(std::size_t sweep) const noexcept {
  if (sweeps_ == 1) return beta_cold_;
  const double t =
      static_cast<double>(std::min(sweep, sweeps_ - 1)) / static_cast<double>(sweeps_ - 1);
  if (kind_ == ScheduleKind::kLinear) {
    return beta_hot_ + t * (beta_cold_ - beta_hot_);
  }
  return beta_hot_ * std::pow(beta_cold_ / beta_hot_, t);
}

BetaSchedule BetaSchedule::for_energy_scale(double min_delta, double max_delta,
                                            std::size_t sweeps, ScheduleKind kind) {
  min_delta = std::max(min_delta, 1e-12);
  max_delta = std::max(max_delta, min_delta);
  // accept(max_delta) ~ 0.5 at the hot end; accept(min_delta) ~ e^-10 cold.
  const double beta_hot = std::log(2.0) / max_delta;
  const double beta_cold = std::max(10.0 / min_delta, beta_hot * (1.0 + 1e-9));
  return BetaSchedule(beta_hot, beta_cold, sweeps, kind);
}

}  // namespace qulrb::anneal
