#include "anneal/sa.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qulrb::anneal {

BetaSchedule SimulatedAnnealer::make_schedule(const model::QuboModel& qubo) const {
  if (params_.beta_hot && params_.beta_cold) {
    return BetaSchedule(*params_.beta_hot, *params_.beta_cold, params_.sweeps,
                        params_.schedule);
  }
  const double scale = qubo.max_abs_coefficient();
  return BetaSchedule::for_energy_scale(scale * 1e-3, scale * 2.0, params_.sweeps,
                                        params_.schedule);
}

Sample SimulatedAnnealer::anneal_once(const model::QuboModel& qubo, util::Rng& rng,
                                      const model::State& initial) const {
  const std::size_t n = qubo.num_variables();
  util::require(initial.empty() || initial.size() == n,
                "SimulatedAnnealer: initial state size mismatch");

  model::State state(n);
  if (initial.empty()) {
    for (auto& b : state) b = static_cast<std::uint8_t>(rng.next_below(2));
  } else {
    state = initial;
  }

  if (n == 0) return {state, qubo.energy(state), 0.0, true};

  const BetaSchedule schedule = make_schedule(qubo);
  double energy = qubo.energy(state);
  model::State best_state = state;
  double best_energy = energy;

  for (std::size_t sweep = 0; sweep < schedule.sweeps(); ++sweep) {
    const double beta = schedule.at(sweep);
    for (std::size_t step = 0; step < n; ++step) {
      const auto v = static_cast<model::VarId>(rng.next_below(n));
      const double delta = qubo.flip_delta(state, v);
      if (delta <= 0.0 || rng.next_double() < std::exp(-beta * delta)) {
        state[v] ^= 1u;
        energy += delta;
        if (energy < best_energy) {
          best_energy = energy;
          best_state = state;
        }
      }
    }
  }
  return {std::move(best_state), best_energy, 0.0, true};
}

SampleSet SimulatedAnnealer::sample(const model::QuboModel& qubo) const {
  SampleSet set;
  util::Rng master(params_.seed);
  for (std::size_t read = 0; read < params_.num_reads; ++read) {
    util::Rng rng = master.split();
    set.add(anneal_once(qubo, rng));
  }
  return set;
}

}  // namespace qulrb::anneal
