#include "anneal/sa.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "anneal/delta_cache.hpp"
#include "util/error.hpp"

namespace qulrb::anneal {

BetaSchedule SimulatedAnnealer::make_schedule(const model::QuboModel& qubo) const {
  if (params_.beta_hot && params_.beta_cold) {
    return BetaSchedule(*params_.beta_hot, *params_.beta_cold, params_.sweeps,
                        params_.schedule);
  }
  const double scale = qubo.max_abs_coefficient();
  return BetaSchedule::for_energy_scale(scale * 1e-3, scale * 2.0, params_.sweeps,
                                        params_.schedule);
}

Sample SimulatedAnnealer::anneal_once(const model::QuboModel& qubo, util::Rng& rng,
                                      const model::State& initial) const {
  const std::size_t n = qubo.num_variables();
  util::require(initial.empty() || initial.size() == n,
                "SimulatedAnnealer: initial state size mismatch");

  model::State state(n);
  if (initial.empty()) {
    for (auto& b : state) b = static_cast<std::uint8_t>(rng.next_below(2));
  } else {
    state = initial;
  }

  if (n == 0) return {state, qubo.energy(state), 0.0, true};

  const BetaSchedule schedule = make_schedule(qubo);
  QuboDeltaCache cache(qubo, state);
  model::State best_state = state;
  double best_energy = cache.energy();

  obs::Recorder::Span read_span(params_.recorder, "sa-read", "sampler",
                                params_.trace_track);
  const std::size_t sample_every = std::max<std::size_t>(1, params_.sweeps / 64);
  std::size_t sweeps_done = 0;

  // Incumbent tracking without per-improvement copies: log accepted flips in
  // a journal and remember where in it the best energy occurred. At sweep
  // end, sync best_state with one copy of the current state plus an undo of
  // the journal suffix past the best point (flips are involutions).
  std::vector<model::VarId> journal;
  journal.reserve(n);
  std::size_t best_pos = 0;
  bool improved_this_sweep = false;

  for (std::size_t sweep = 0; sweep < schedule.sweeps(); ++sweep) {
    if (params_.cancel.expired()) break;
    const double beta = schedule.at(sweep);
    for (std::size_t step = 0; step < n; ++step) {
      const auto v = static_cast<model::VarId>(rng.next_below(n));
      const double delta = cache.delta(v);
      if (delta <= 0.0 || rng.next_double() < std::exp(-beta * delta)) {
        cache.apply_flip(state, v);
        journal.push_back(v);
        if (cache.energy() < best_energy) {
          best_energy = cache.energy();
          best_pos = journal.size();
          improved_this_sweep = true;
        }
      }
    }
    if (improved_this_sweep) {
      best_state = state;
      for (std::size_t i = journal.size(); i > best_pos; --i) {
        best_state[journal[i - 1]] ^= 1u;
      }
      improved_this_sweep = false;
    }
    journal.clear();
    best_pos = 0;
    ++sweeps_done;
    if (params_.recorder != nullptr &&
        (sweep % sample_every == 0 || sweep + 1 == schedule.sweeps())) {
      params_.recorder->sample("incumbent_energy", params_.trace_track,
                               best_energy);
    }
  }
  if (params_.sweep_counter != nullptr && sweeps_done > 0) {
    params_.sweep_counter->inc(sweeps_done);
  }
  return {std::move(best_state), best_energy, 0.0, true};
}

SampleSet SimulatedAnnealer::sample(const model::QuboModel& qubo) const {
  SampleSet set;
  util::Rng master(params_.seed);
  for (std::size_t read = 0; read < params_.num_reads; ++read) {
    util::Rng rng = master.split();
    set.add(anneal_once(qubo, rng));
    // Keep at least one read so callers always get a sample.
    if (params_.cancel.expired()) break;
  }
  return set;
}

}  // namespace qulrb::anneal
