#include "anneal/sa.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "anneal/delta_cache.hpp"
#include "anneal/replica_bank.hpp"
#include "util/error.hpp"

namespace qulrb::anneal {

BetaSchedule SimulatedAnnealer::make_schedule(const model::QuboModel& qubo) const {
  if (params_.beta_hot && params_.beta_cold) {
    return BetaSchedule(*params_.beta_hot, *params_.beta_cold, params_.sweeps,
                        params_.schedule);
  }
  const double scale = qubo.max_abs_coefficient();
  return BetaSchedule::for_energy_scale(scale * 1e-3, scale * 2.0, params_.sweeps,
                                        params_.schedule);
}

Sample SimulatedAnnealer::anneal_once(const model::QuboModel& qubo, util::Rng& rng,
                                      const model::State& initial) const {
  const std::size_t n = qubo.num_variables();
  util::require(initial.empty() || initial.size() == n,
                "SimulatedAnnealer: initial state size mismatch");

  model::State state(n);
  if (initial.empty()) {
    for (auto& b : state) b = static_cast<std::uint8_t>(rng.next_below(2));
  } else {
    state = initial;
  }

  if (n == 0) return {state, qubo.energy(state), 0.0, true};

  const BetaSchedule schedule = make_schedule(qubo);
  QuboDeltaCache cache(qubo, state);
  model::State best_state = state;
  double best_energy = cache.energy();

  obs::Recorder::Span read_span(params_.recorder, "sa-read", "sampler",
                                params_.trace_track);
  const std::size_t sample_every = std::max<std::size_t>(1, params_.sweeps / 64);
  std::size_t sweeps_done = 0;

  // Incumbent tracking without per-improvement copies: log accepted flips in
  // a journal and remember where in it the best energy occurred. At sweep
  // end, sync best_state with one copy of the current state plus an undo of
  // the journal suffix past the best point (flips are involutions).
  std::vector<model::VarId> journal;
  journal.reserve(n);
  std::size_t best_pos = 0;
  bool improved_this_sweep = false;

  for (std::size_t sweep = 0; sweep < schedule.sweeps(); ++sweep) {
    if (params_.cancel.expired()) break;
    const double beta = schedule.at(sweep);
    for (std::size_t step = 0; step < n; ++step) {
      const auto v = static_cast<model::VarId>(rng.next_below(n));
      const double delta = cache.delta(v);
      if (delta <= 0.0 || rng.next_double() < std::exp(-beta * delta)) {
        cache.apply_flip(state, v);
        journal.push_back(v);
        if (cache.energy() < best_energy) {
          best_energy = cache.energy();
          best_pos = journal.size();
          improved_this_sweep = true;
        }
      }
    }
    if (improved_this_sweep) {
      best_state = state;
      for (std::size_t i = journal.size(); i > best_pos; --i) {
        best_state[journal[i - 1]] ^= 1u;
      }
      improved_this_sweep = false;
    }
    journal.clear();
    best_pos = 0;
    ++sweeps_done;
    if (params_.recorder != nullptr &&
        (sweep % sample_every == 0 || sweep + 1 == schedule.sweeps())) {
      params_.recorder->sample("incumbent_energy", params_.trace_track,
                               best_energy);
    }
  }
  if (params_.sweep_counter != nullptr && sweeps_done > 0) {
    params_.sweep_counter->inc(sweeps_done);
  }
  return {std::move(best_state), best_energy, 0.0, true};
}

SampleSet SimulatedAnnealer::sample(const model::QuboModel& qubo) const {
  SampleSet set;
  util::Rng master(params_.seed);
  const std::size_t n = qubo.num_variables();

  // Batched path: run every read as a lane of one QuboReplicaBank, so the
  // initial energy + all-variable delta construction is one vectorized model
  // scan instead of num_reads scalar ones. Each lane consumes exactly the
  // pre-split stream its scalar read would (streams are independent, so
  // splitting them all upfront yields identical values), and every per-lane
  // update mirrors QuboDeltaCache bit for bit — the sample set is byte-equal
  // to the scalar loop. Tracing and cancellation change per-read control
  // flow, so those fall back to the scalar loop.
  const bool batched = params_.recorder == nullptr && !params_.cancel.can_expire() &&
                       params_.num_reads > 1 && n > 0;
  if (!batched) {
    for (std::size_t read = 0; read < params_.num_reads; ++read) {
      util::Rng rng = master.split();
      set.add(anneal_once(qubo, rng));
      // Keep at least one read so callers always get a sample.
      if (params_.cancel.expired()) break;
    }
    return set;
  }

  const std::size_t reads = params_.num_reads;
  std::vector<util::Rng> rngs;
  rngs.reserve(reads);
  for (std::size_t r = 0; r < reads; ++r) rngs.push_back(master.split());

  std::vector<model::State> states(reads);
  for (std::size_t r = 0; r < reads; ++r) {
    states[r].resize(n);
    for (auto& b : states[r]) b = static_cast<std::uint8_t>(rngs[r].next_below(2));
  }

  const BetaSchedule schedule = make_schedule(qubo);
  QuboReplicaBank bank(qubo, states);

  std::vector<model::State> best_states = states;
  std::vector<double> best_energy(reads);
  for (std::size_t r = 0; r < reads; ++r) best_energy[r] = bank.energy(r);

  // Same journal/undo incumbent tracking as anneal_once, one journal per lane.
  std::vector<std::vector<model::VarId>> journals(reads);
  for (auto& j : journals) j.reserve(n);
  std::vector<std::size_t> best_pos(reads, 0);
  std::vector<std::uint8_t> improved(reads, 0);

  for (std::size_t sweep = 0; sweep < schedule.sweeps(); ++sweep) {
    const double beta = schedule.at(sweep);
    for (std::size_t r = 0; r < reads; ++r) {
      auto& journal = journals[r];
      for (std::size_t step = 0; step < n; ++step) {
        const auto v = static_cast<model::VarId>(rngs[r].next_below(n));
        const double delta = bank.delta(r, v);
        if (delta <= 0.0 || rngs[r].next_double() < std::exp(-beta * delta)) {
          bank.apply_flip(r, v);
          states[r][v] ^= 1u;
          journal.push_back(v);
          if (bank.energy(r) < best_energy[r]) {
            best_energy[r] = bank.energy(r);
            best_pos[r] = journal.size();
            improved[r] = 1;
          }
        }
      }
      if (improved[r] != 0) {
        best_states[r] = states[r];
        for (std::size_t i = journal.size(); i > best_pos[r]; --i) {
          best_states[r][journal[i - 1]] ^= 1u;
        }
        improved[r] = 0;
      }
      journal.clear();
      best_pos[r] = 0;
    }
  }
  if (params_.sweep_counter != nullptr && schedule.sweeps() > 0) {
    params_.sweep_counter->inc(schedule.sweeps() * reads);
  }
  for (std::size_t r = 0; r < reads; ++r) {
    set.add({std::move(best_states[r]), best_energy[r], 0.0, true});
  }
  return set;
}

}  // namespace qulrb::anneal
