#pragma once

namespace qulrb::anneal::simd {

/// Instruction-set level used by the batched replica-bank kernels.
///
/// Dispatch is two-stage: the `QULRB_SIMD` CMake option decides whether the
/// AVX2 translation unit is compiled at all, and at runtime the highest level
/// the CPU supports is selected once via CPUID. Every vector kernel has a
/// scalar twin that produces bitwise-identical results (the vector lanes
/// replicate the scalar per-replica operation order exactly), so the level
/// is a pure performance knob — solver output never depends on it.
enum class Level {
  kScalar = 0,  ///< portable fallback, always available
  kAvx2 = 1,    ///< 4-wide double lanes (requires QULRB_SIMD=ON and CPU support)
};

/// Highest level this build + CPU combination can run (CPUID probe, cached).
Level detected_level() noexcept;

/// Level the kernels currently dispatch on. Defaults to detected_level().
Level active_level() noexcept;

/// Clamp-and-set the active level (never above detected_level()). Used by the
/// scalar/SIMD equivalence tests and the bench harness to force the fallback
/// path on hardware that supports AVX2. Returns the level actually set.
Level set_active_level(Level level) noexcept;

/// Stable lowercase name ("scalar", "avx2") — recorded in bench JSON context
/// so perf baselines are never compared across ISA levels silently.
const char* level_name(Level level) noexcept;

}  // namespace qulrb::anneal::simd
