#pragma once

#include <cstddef>
#include <cstdint>

#include "anneal/sampleset.hpp"
#include "model/cqm.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {

class PairMoveIndex;

struct TemperingParams {
  std::size_t num_replicas = 8;
  std::size_t sweeps = 1000;          ///< Metropolis sweeps per replica
  std::size_t swap_interval = 10;     ///< sweeps between exchange attempts
  double beta_hot = 0.0;              ///< 0 selects automatically from scale
  double beta_cold = 0.0;
  std::uint64_t seed = 1;
  /// Polled once per replica round; when expired the best sample seen by any
  /// replica so far is returned. Inert by default.
  util::CancelToken cancel;
  /// Optional trace sink: one span per run plus a sampled incumbent-energy
  /// timeline. Consumes no RNG; output is bitwise identical with it on/off.
  obs::Recorder* recorder = nullptr;
  std::uint32_t trace_track = 0;
  /// Optional metrics sink: bumped by replica-rounds executed (sweeps over
  /// the whole ladder), once per run.
  obs::Counter* sweep_counter = nullptr;
  /// Optional metrics sink: bumped by lane-sweeps executed through the
  /// replica bank (rounds x replicas); feeds qulrb_solver_replica_sweeps.
  obs::Counter* replica_sweep_counter = nullptr;
  /// Optional always-on flight ring: one compact span per run (value =
  /// ladder rounds executed). Same null discipline as `recorder`.
  obs::FlightRecorder* flight = nullptr;
  std::uint16_t flight_name = 0;
  std::uint64_t flight_rid = 0;
};

/// Replica-exchange (parallel tempering) Monte Carlo on a CQM with penalty
/// energy. A geometric beta ladder is run concurrently; adjacent replicas
/// exchange configurations with the Metropolis criterion
///   P(swap) = min(1, exp((beta_a - beta_b) * (E_a - E_b))).
/// Better than plain SA on rugged penalty landscapes (tight `k` bounds),
/// which is why the hybrid solver enables it for hard instances.
class ParallelTempering {
 public:
  explicit ParallelTempering(TemperingParams params = {}) : params_(params) {}

  /// Returns the best sample seen by any replica. When `pairs` is non-null
  /// it is used as the pair-move index instead of rebuilding one per run.
  Sample run(const model::CqmModel& cqm, std::vector<double> penalties,
             const model::State& initial = {},
             const PairMoveIndex* pairs = nullptr) const;

 private:
  TemperingParams params_;
};

}  // namespace qulrb::anneal
