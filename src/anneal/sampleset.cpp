#include "anneal/sampleset.hpp"

#include <algorithm>

namespace qulrb::anneal {

bool Sample::better_than(const Sample& other) const noexcept {
  if (feasible != other.feasible) return feasible;
  if (violation != other.violation) return violation < other.violation;
  return energy < other.energy;
}

void SampleSet::add(Sample sample) { samples_.push_back(std::move(sample)); }

void SampleSet::merge(SampleSet other) {
  samples_.insert(samples_.end(), std::make_move_iterator(other.samples_.begin()),
                  std::make_move_iterator(other.samples_.end()));
}

std::optional<Sample> SampleSet::best() const {
  if (samples_.empty()) return std::nullopt;
  const auto it = std::max_element(
      samples_.begin(), samples_.end(),
      [](const Sample& a, const Sample& b) { return b.better_than(a); });
  return *it;
}

std::optional<Sample> SampleSet::best_feasible() const {
  std::optional<Sample> best;
  for (const auto& s : samples_) {
    if (!s.feasible) continue;
    if (!best || s.better_than(*best)) best = s;
  }
  return best;
}

std::size_t SampleSet::num_feasible() const noexcept {
  return static_cast<std::size_t>(std::count_if(
      samples_.begin(), samples_.end(), [](const Sample& s) { return s.feasible; }));
}

}  // namespace qulrb::anneal
