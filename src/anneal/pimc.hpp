#pragma once

#include <cstddef>
#include <cstdint>

#include "anneal/sampleset.hpp"
#include "model/ising.hpp"
#include "model/qubo.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/cancel.hpp"

namespace qulrb::anneal {

struct PimcParams {
  std::size_t trotter_slices = 16;  ///< P
  std::size_t sweeps = 500;         ///< annealing steps (field schedule length)
  double beta = 4.0;                ///< inverse physical temperature
  double gamma_initial = 3.0;       ///< transverse field at t = 0
  double gamma_final = 1e-3;        ///< transverse field at t = 1
  std::uint64_t seed = 1;
  /// Polled once per field-schedule sweep; when expired the best slice seen
  /// so far is quenched and returned. Inert by default.
  util::CancelToken cancel;
  /// Optional trace sink: spans for the Trotter evolution and the readout
  /// quench plus a sampled best-slice-energy timeline. Consumes no RNG;
  /// output is bitwise identical with it on/off.
  obs::Recorder* recorder = nullptr;
  std::uint32_t trace_track = 0;
  /// Optional metrics sink: bumped by field-schedule sweeps executed.
  obs::Counter* sweep_counter = nullptr;
};

/// Path-integral Monte-Carlo simulated *quantum* annealing
/// (Martonak, Santoro, Tosatti 2002): the transverse-field Ising Hamiltonian
///   H = H_problem - Gamma(t) * sum_i sigma^x_i
/// is Trotterized into P coupled classical replicas with inter-slice
/// ferromagnetic coupling
///   J_perp(t) = -(P / (2 beta)) * ln tanh(beta * Gamma(t) / P),
/// then sampled with local (single spin) and global (all-slice) moves while
/// Gamma decays. This is the classical stand-in for the QPU stage of the
/// hybrid pipeline (the repository has no quantum hardware access).
class PimcAnnealer {
 public:
  explicit PimcAnnealer(PimcParams params = {}) : params_(params) {}

  /// Returns the best classical (single-slice) state seen.
  Sample sample_ising(const model::IsingModel& ising) const;

  /// Convenience: converts to Ising, anneals, reports QUBO energies.
  Sample sample_qubo(const model::QuboModel& qubo) const;

 private:
  PimcParams params_;
};

}  // namespace qulrb::anneal
