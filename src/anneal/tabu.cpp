#include "anneal/tabu.hpp"

#include <algorithm>
#include <vector>

#include "anneal/delta_cache.hpp"
#include "anneal/replica_bank.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {

Sample TabuSampler::search_once(const model::QuboModel& qubo, util::Rng& rng,
                                const model::State& initial) const {
  const std::size_t n = qubo.num_variables();
  util::require(initial.empty() || initial.size() == n,
                "TabuSampler: initial state size mismatch");

  model::State state(n);
  if (initial.empty()) {
    for (auto& b : state) b = static_cast<std::uint8_t>(rng.next_below(2));
  } else {
    state = initial;
  }
  if (n == 0) return {state, qubo.energy(state), 0.0, true};

  // All flip deltas live in the shared cache: O(1) candidate scoring, O(deg)
  // refresh per committed move.
  QuboDeltaCache cache(qubo, state);

  const std::size_t tenure =
      params_.tenure > 0 ? params_.tenure : std::max<std::size_t>(4, n / 10);
  std::vector<std::size_t> tabu_until(n, 0);

  model::State best_state = state;
  double best_energy = cache.energy();
  std::size_t stall = 0;

  obs::Recorder::Span restart_span(params_.recorder, "tabu-restart", "sampler",
                                   params_.trace_track);
  const std::size_t sample_every =
      std::max<std::size_t>(1, params_.max_iterations / 64);
  std::size_t iterations_done = 0;

  const auto deltas = cache.deltas();

  for (std::size_t iteration = 1;
       iteration <= params_.max_iterations && stall < params_.stall_limit;
       ++iteration) {
    // Each iteration already scans all n deltas, so a poll every 64
    // iterations keeps the clock read off the critical path.
    if (iteration % 64 == 0 && params_.cancel.expired()) break;
    // Pick the best admissible move; aspiration overrides tabu. The scan is
    // the vectorized kernel (4 candidates per instruction with AVX2 active),
    // with the same strict-less tie rule as the scalar loop it replaced.
    std::size_t chosen =
        tabu_argmin(deltas, tabu_until, iteration, cache.energy(), best_energy);
    if (chosen == n) {  // everything tabu and nothing aspirates: free the oldest
      chosen = static_cast<std::size_t>(rng.next_below(n));
    }

    cache.apply_flip(state, static_cast<model::VarId>(chosen));
    tabu_until[chosen] = iteration + tenure;

    if (cache.energy() < best_energy - 1e-12) {
      best_energy = cache.energy();
      best_state = state;
      stall = 0;
    } else {
      ++stall;
    }
    ++iterations_done;
    if (params_.recorder != nullptr && iteration % sample_every == 0) {
      params_.recorder->sample("incumbent_energy", params_.trace_track,
                               best_energy);
    }
  }
  if (params_.iteration_counter != nullptr && iterations_done > 0) {
    params_.iteration_counter->inc(iterations_done);
  }
  return {std::move(best_state), best_energy, 0.0, true};
}

SampleSet TabuSampler::sample(const model::QuboModel& qubo) const {
  SampleSet set;
  util::Rng master(params_.seed);
  for (std::size_t restart = 0; restart < params_.num_restarts; ++restart) {
    util::Rng rng = master.split();
    set.add(search_once(qubo, rng));
    // Keep at least one restart so callers always get a sample.
    if (params_.cancel.expired()) break;
  }
  return set;
}

}  // namespace qulrb::anneal
