#include "anneal/tabu.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {

Sample TabuSampler::search_once(const model::QuboModel& qubo, util::Rng& rng,
                                const model::State& initial) const {
  const std::size_t n = qubo.num_variables();
  util::require(initial.empty() || initial.size() == n,
                "TabuSampler: initial state size mismatch");

  model::State state(n);
  if (initial.empty()) {
    for (auto& b : state) b = static_cast<std::uint8_t>(rng.next_below(2));
  } else {
    state = initial;
  }
  if (n == 0) return {state, qubo.energy(state), 0.0, true};

  // Maintain all flip deltas incrementally: delta[v] = E(flip v) - E.
  std::vector<double> delta(n);
  for (model::VarId v = 0; v < n; ++v) delta[v] = qubo.flip_delta(state, v);

  const std::size_t tenure =
      params_.tenure > 0 ? params_.tenure : std::max<std::size_t>(4, n / 10);
  std::vector<std::size_t> tabu_until(n, 0);

  double energy = qubo.energy(state);
  model::State best_state = state;
  double best_energy = energy;
  std::size_t stall = 0;

  const auto& adjacency = qubo.adjacency();

  for (std::size_t iteration = 1;
       iteration <= params_.max_iterations && stall < params_.stall_limit;
       ++iteration) {
    // Pick the best admissible move; aspiration overrides tabu.
    std::size_t chosen = n;
    double chosen_delta = std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < n; ++v) {
      const bool tabu = tabu_until[v] >= iteration;
      const bool aspirates = energy + delta[v] < best_energy - 1e-12;
      if (tabu && !aspirates) continue;
      if (delta[v] < chosen_delta) {
        chosen_delta = delta[v];
        chosen = v;
      }
    }
    if (chosen == n) {  // everything tabu and nothing aspirates: free the oldest
      chosen = static_cast<std::size_t>(rng.next_below(n));
      chosen_delta = delta[chosen];
    }

    // Apply the flip and update the delta table in O(deg).
    const auto v = static_cast<model::VarId>(chosen);
    const bool was_set = state[v] != 0;
    state[v] ^= 1u;
    energy += chosen_delta;
    delta[v] = -chosen_delta;
    for (const auto& nb : adjacency[v]) {
      // Flipping v toggles whether nb's delta includes the coupler with v.
      const bool nb_set = state[nb.other] != 0;
      const double sign_v = was_set ? -1.0 : 1.0;       // v's new contribution
      const double direction = nb_set ? -1.0 : 1.0;     // nb turning on vs off
      delta[nb.other] += direction * sign_v * nb.coeff;
    }
    tabu_until[chosen] = iteration + tenure;

    if (energy < best_energy - 1e-12) {
      best_energy = energy;
      best_state = state;
      stall = 0;
    } else {
      ++stall;
    }
  }
  return {std::move(best_state), best_energy, 0.0, true};
}

SampleSet TabuSampler::sample(const model::QuboModel& qubo) const {
  SampleSet set;
  util::Rng master(params_.seed);
  for (std::size_t restart = 0; restart < params_.num_restarts; ++restart) {
    util::Rng rng = master.split();
    set.add(search_once(qubo, rng));
  }
  return set;
}

}  // namespace qulrb::anneal
