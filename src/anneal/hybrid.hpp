#pragma once

#include <cstddef>
#include <cstdint>

#include "anneal/cqm_anneal.hpp"
#include "anneal/sampleset.hpp"
#include "model/cqm.hpp"
#include "model/presolve.hpp"
#include "obs/trace_context.hpp"
#include "util/cancel.hpp"

namespace qulrb::anneal {

struct HybridSolverParams {
  /// Independent solver runs; the best feasible result is kept (the paper ran
  /// each CQM at least 3 times and kept the best).
  std::size_t num_restarts = 4;
  std::size_t sweeps = 3000;
  /// Adaptive penalty escalation rounds per restart: if the anneal ends
  /// infeasible, weights on violated constraints are multiplied and the
  /// anneal resumes from the best state.
  std::size_t max_penalty_rounds = 4;
  double penalty_growth = 8.0;
  /// Initial penalty = penalty_scale * (objective gradient scale).
  double penalty_scale = 2.0;
  /// Use replica-exchange for one of the restarts (helps on tight-k models).
  bool use_tempering = true;
  /// Dedicate the first restart to cold refinement of a trivially feasible
  /// point (the all-zeros assignment when feasible, or `initial_hint`). On
  /// all-inequality models like Q_CQM1 this mirrors the classical-heuristic
  /// member of a hybrid portfolio; on models with equality constraints
  /// (Q_CQM2) the all-zeros point is infeasible and the member is skipped —
  /// a structural asymmetry the paper's results also exhibit.
  bool use_refinement_start = true;
  std::size_t tempering_replicas = 6;
  /// 0 = all hardware threads. Restarts are farmed to a thread pool. Every
  /// restart draws from a pre-split RNG stream and results merge in restart
  /// order, so the outcome is identical for any thread count.
  std::size_t threads = 0;
  /// Replica-bank width: non-tempered restarts run as lanes of one
  /// CqmReplicaBank in fixed chunks of this size (chunking is independent of
  /// `threads`). Each lane replays the scalar per-restart chain bit for bit —
  /// the bank only amortises the model scan — so any width produces the same
  /// samples. 0 or 1 degenerates to one restart per bank.
  std::size_t replica_lanes = 8;
  /// Free-variable count (after presolve) at or below which the solver skips
  /// sampling entirely and enumerates every assignment with a Gray-code walk
  /// (one incremental flip per state). Tiny models get the provable CQM
  /// optimum instead of annealing luck. 0 disables.
  std::size_t exhaustive_max_vars = 18;
  std::uint64_t seed = 1;
  /// Optional warm-start assignment (e.g. an incumbent from a classical
  /// heuristic — the "classical" half of a hybrid service). When set, the
  /// first restart anneals from it instead of a random state.
  model::State initial_hint;
  /// Wall-clock budget enforced *inside* running restarts: the deadline is
  /// polled once per sweep in every portfolio member (annealer, tempering,
  /// polish passes), so a solve returns within roughly one sweep of the
  /// budget while still reporting its best incumbent. 0 = off.
  double time_limit_ms = 0.0;
  /// Cooperative cancellation (service deadlines, client disconnects).
  /// Combined with time_limit_ms into one effective budget. Inert by
  /// default; cancellation never forfeits the incumbent.
  util::CancelToken cancel;
  /// Session-cache reuse: when non-null these are used instead of being
  /// recomputed per solve. Both must describe exactly the model passed to
  /// solve() (same variables, constraints, and coefficients); the caller
  /// keeps them alive for the duration of the call.
  const model::PresolveResult* reuse_presolve = nullptr;
  const PairMoveIndex* reuse_pairs = nullptr;
  /// Reported per solve() to mirror the constant QPU-access share that
  /// D-Wave's CQM logs show (~32 ms in the paper's Table V). Purely an
  /// accounting stand-in: no quantum hardware is involved.
  double simulated_qpu_access_ms = 32.0;
  /// Optional trace sink: phase spans (presolve, pair-index build, each
  /// restart on its own track, polish, penalty adaptation) plus the
  /// samplers' incumbent timelines. Same discipline as `cancel`: consumes no
  /// RNG and never changes control flow, so results are bitwise identical
  /// with tracing on or off.
  obs::Recorder* recorder = nullptr;
  /// Optional metrics sink: solve/restart/penalty-round/sweep counters and a
  /// solve-latency histogram, registered under qulrb_solver_*. Handles are
  /// resolved once per solve; sweep loops only touch lock-free counters.
  obs::MetricsRegistry* metrics = nullptr;
  /// Request-scoped trace context. When active it supplies the recorder
  /// (unless `recorder` above is set explicitly) and — crucially — the
  /// restart track ids are claimed from its shared allocator, so a solver
  /// running inside a service request shares one Perfetto document with the
  /// queue spans and the BSP rank tracks without row collisions. Same
  /// zero-cost-off discipline as `recorder`.
  obs::TraceContext trace;
  /// Optional always-on flight ring: the portfolio's batched/tempering
  /// engines each leave one compact span per call, stamped with
  /// `flight_rid` so an anomaly dump can slice out the triggering request's
  /// solver activity retroactively. Same null discipline as `recorder`.
  obs::FlightRecorder* flight = nullptr;
  std::uint64_t flight_rid = 0;
};

struct HybridSolveStats {
  double cpu_ms = 0.0;
  double simulated_qpu_ms = 0.0;
  std::size_t restarts_used = 0;
  std::size_t penalty_rounds_used = 0;
  std::size_t num_variables = 0;
  std::size_t num_constraints = 0;
  std::size_t presolve_fixed = 0;
  bool presolve_infeasible = false;
  /// Replica-bank width the portfolio ran with (0 when the solve never
  /// reached the sampling portfolio, e.g. presolve-infeasible or exhaustive
  /// enumeration).
  std::size_t replica_lanes = 0;
  /// True when the time budget or a cancellation cut the solve short (the
  /// reported best is the incumbent at that point).
  bool budget_expired = false;
};

struct HybridSolveResult {
  Sample best;       ///< best sample by (feasible, violation, objective)
  SampleSet samples;
  HybridSolveStats stats;
};

/// Classical stand-in for the D-Wave Leap hybrid CQM solver: presolve,
/// multi-start penalty annealing with adaptive weights, one replica-exchange
/// run, and a greedy feasibility-polish, returning the best feasible sample.
/// The model interface (CqmModel in, best feasible sample out) matches what
/// the paper's pipeline sends to / receives from the Leap service.
class HybridCqmSolver {
 public:
  explicit HybridCqmSolver(HybridSolverParams params = {}) : params_(params) {}

  HybridSolveResult solve(const model::CqmModel& cqm) const;

  const HybridSolverParams& params() const noexcept { return params_; }

  /// Steepest-descent polish on objective+penalty; pure local improvement
  /// (only accepts strictly negative deltas). Exposed for tests. The cancel
  /// token (when given) is polled once per pass.
  static void greedy_descent(CqmIncrementalState& walk, util::Rng& rng,
                             std::size_t max_passes = 32,
                             const util::CancelToken* cancel = nullptr);

 private:
  HybridSolverParams params_;
};

}  // namespace qulrb::anneal
