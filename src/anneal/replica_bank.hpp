#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "anneal/cqm_anneal.hpp"
#include "anneal/sampleset.hpp"
#include "anneal/schedule.hpp"
#include "anneal/simd.hpp"
#include "model/cqm.hpp"
#include "model/qubo.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {

namespace detail {

/// Branchless bit-select: `take ? on_true : on_false`, compiled to mask
/// arithmetic on the raw bit patterns. The replica-bank kernels use this (and
/// never a masked add of +0.0) so that not-taken lanes keep their accumulator
/// bits untouched — adding +0.0 to a -0.0 accumulator would flip its sign bit
/// and break the bitwise-identity contract with the branchy scalar kernels.
inline double bit_select(bool take, double on_true, double on_false) noexcept {
  std::uint64_t t;
  std::uint64_t f;
  std::memcpy(&t, &on_true, sizeof(t));
  std::memcpy(&f, &on_false, sizeof(f));
  const std::uint64_t mask = -static_cast<std::uint64_t>(take);
  const std::uint64_t r = (t & mask) | (f & ~mask);
  double out;
  std::memcpy(&out, &r, sizeof(out));
  return out;
}

/// Branchless twin of CqmModel::violation_of. Bitwise identical to the
/// sense-switch form: `a > b` is exactly `a - b > 0` in IEEE-754 with gradual
/// underflow (the x86-64 default), and each selected value is the very
/// difference the legacy ternaries return.
inline double violation_branchless(model::Sense sense, double activity,
                                   double rhs) noexcept {
  const double over = activity - rhs;   // > 0 iff activity > rhs
  const double under = rhs - activity;  // > 0 iff rhs > activity
  const double le = bit_select(over > 0.0, over, 0.0);
  const double ge = bit_select(under > 0.0, under, 0.0);
  const double eq = bit_select(over > 0.0, over, under);
  return bit_select(sense == model::Sense::LE, le,
                    bit_select(sense == model::Sense::GE, ge, eq));
}

/// Raw-pointer view of a CqmReplicaBank's SoA storage, shared by the scalar
/// and AVX2 kernel translation units. Lane arrays hold `stride` doubles per
/// logical slot (stride = num_lanes rounded up to the 4-wide vector width);
/// pad lanes start from all-zero bits and zero penalty weights so the vector
/// kernels can process full blocks without masking the tail.
struct CqmBankView {
  const model::CqmModel* cqm = nullptr;
  std::size_t num_vars = 0;
  std::size_t num_lanes = 0;
  std::size_t stride = 0;
  std::size_t words_per_var = 0;
  std::uint64_t* bits = nullptr;  ///< [num_vars * words_per_var]
  double* objective = nullptr;    ///< [stride]
  double* penalty = nullptr;      ///< [stride]
  double* group_values = nullptr;       ///< [num_groups * stride]
  double* activities = nullptr;         ///< [num_cons * stride]
  const double* penalty_weights = nullptr;  ///< [num_cons * stride]
  const double* rhs = nullptr;              ///< [num_cons]
  const model::Sense* sense = nullptr;      ///< [num_cons]
  const double* linear = nullptr;           ///< [num_vars]
  const double* group_weights = nullptr;    ///< [num_groups]
  const model::CsrRows<model::CqmModel::GroupKernelTerm>* group_kernel = nullptr;
  const model::CsrRows<model::CqmModel::Incidence>* group_inc = nullptr;
  const model::CsrRows<model::CqmModel::QuadNeighbor>* quad_inc = nullptr;
  const model::CsrRows<model::CqmModel::Incidence>* con_inc = nullptr;
};

/// Batched from-scratch evaluation of every lane: objective, squared-group
/// values, constraint activities and penalty energy, replicating the per-lane
/// operation order of the CqmIncrementalState constructor exactly.
void cqm_construct_lanes_scalar(const CqmBankView& bank) noexcept;
void cqm_construct_lanes_avx2(const CqmBankView& bank) noexcept;

/// Batched flip delta of one variable across every lane (out[num_lanes]),
/// replicating CqmIncrementalState::flip_delta_parts per lane.
void cqm_batched_flip_delta_scalar(const CqmBankView& bank, model::VarId v,
                                   CqmIncrementalState::FlipDelta* out) noexcept;
void cqm_batched_flip_delta_avx2(const CqmBankView& bank, model::VarId v,
                                 CqmIncrementalState::FlipDelta* out) noexcept;

/// Raw-pointer view of a QuboReplicaBank (see CqmBankView for layout rules).
struct QuboBankView {
  const model::QuboModel* qubo = nullptr;
  std::size_t num_vars = 0;
  std::size_t num_lanes = 0;
  std::size_t stride = 0;
  std::size_t words_per_var = 0;
  const std::uint64_t* bits = nullptr;  ///< [num_vars * words_per_var]
  double* energy = nullptr;             ///< [stride]
  double* deltas = nullptr;             ///< [num_vars * stride]
};

/// Joint (a, b) pair-flip delta for every lane, mirroring
/// CqmReplicaBank::pair_delta_parts per lane (canonical argument order; lanes
/// where bit(a) == bit(b) still get a value computed, the caller discards it).
void cqm_batched_pair_delta_scalar(const CqmBankView& bank, model::VarId a,
                                   model::VarId b,
                                   CqmIncrementalState::FlipDelta* out) noexcept;
void cqm_batched_pair_delta_avx2(const CqmBankView& bank, model::VarId a,
                                 model::VarId b,
                                 CqmIncrementalState::FlipDelta* out) noexcept;

/// Commit the flip of `v` on every lane whose `accept[lane]` byte is nonzero,
/// replicating CqmReplicaBank::apply_flip per accepted lane (non-accepted
/// lanes keep every aggregate bitwise untouched).
void cqm_batched_apply_flip_scalar(const CqmBankView& bank, model::VarId v,
                                   const std::uint8_t* accept) noexcept;
void cqm_batched_apply_flip_avx2(const CqmBankView& bank, model::VarId v,
                                 const std::uint8_t* accept) noexcept;

/// Batched energy + all-variable flip-delta construction, replicating the
/// QuboDeltaCache constructor (QuboModel::energy + flip_delta) per lane.
void qubo_construct_lanes_scalar(const QuboBankView& bank) noexcept;
void qubo_construct_lanes_avx2(const QuboBankView& bank) noexcept;

/// Tabu-search candidate scan: index of the admissible variable with the
/// smallest delta (ties resolved to the smallest index, matching the scalar
/// strict-less scan), or `n` when nothing is admissible. A move is admissible
/// when it is not tabu (`tabu_until[v] < iteration`) or when it aspirates
/// (`energy + deltas[v] < best_energy - 1e-12`).
std::size_t tabu_argmin_scalar(const double* deltas, const std::size_t* tabu_until,
                               std::size_t n, std::size_t iteration, double energy,
                               double best_energy) noexcept;
std::size_t tabu_argmin_avx2(const double* deltas, const std::size_t* tabu_until,
                             std::size_t n, std::size_t iteration, double energy,
                             double best_energy) noexcept;

}  // namespace detail

/// Dispatched tabu candidate scan (see detail::tabu_argmin_scalar for the
/// contract). Both levels return identical indices for identical inputs.
std::size_t tabu_argmin(std::span<const double> deltas,
                        std::span<const std::size_t> tabu_until,
                        std::size_t iteration, double energy,
                        double best_energy) noexcept;

/// R lockstep annealing replicas over one shared CQM, stored
/// structure-of-arrays: spin bits are packed per variable across replicas
/// (`bits[v * words_per_var + word]`, lane l at bit l%64), and every running
/// aggregate (objective, penalty, group values, constraint activities,
/// penalty weights) is a `[slot * stride + lane]` double array, so same-slot
/// accesses across replicas are one contiguous cache line instead of R
/// scattered CqmIncrementalState instances.
///
/// Hard contract: every lane evolves bitwise identically to a scalar
/// CqmIncrementalState walking the same flip sequence. The batched kernels
/// (construction, batched_flip_delta) replicate the scalar per-lane operation
/// order exactly — vectorization is strictly *across* lanes, never within a
/// lane's accumulation chain — and dispatch on simd::active_level() is a pure
/// performance knob.
class CqmReplicaBank {
 public:
  using FlipDelta = CqmIncrementalState::FlipDelta;

  /// One initial state and one penalty vector per lane. All states must have
  /// cqm.num_variables() entries; all penalty vectors cqm.num_constraints().
  CqmReplicaBank(const model::CqmModel& cqm, std::span<const model::State> initial,
                 std::span<const std::vector<double>> penalties);

  const model::CqmModel& cqm() const noexcept { return *cqm_; }
  std::size_t num_lanes() const noexcept { return num_lanes_; }
  std::size_t lane_stride() const noexcept { return stride_; }
  std::size_t num_variables() const noexcept { return num_vars_; }
  std::size_t num_constraints() const noexcept { return rhs_.size(); }

  bool state_bit(std::size_t lane, model::VarId v) const noexcept {
    return (bits_[v * words_per_var_ + (lane >> 6)] >> (lane & 63u)) & 1u;
  }

  double objective(std::size_t lane) const noexcept { return obj_[lane]; }
  double penalty_energy(std::size_t lane) const noexcept { return pen_[lane]; }
  double total_energy(std::size_t lane) const noexcept {
    return obj_[lane] + pen_[lane];
  }
  double total_violation(std::size_t lane) const noexcept;
  bool feasible(std::size_t lane, double tol = 1e-9) const noexcept;
  model::State extract_state(std::size_t lane) const;

  FlipDelta flip_delta_parts(std::size_t lane, model::VarId v) const noexcept;
  double flip_delta(std::size_t lane, model::VarId v) const noexcept {
    return flip_delta_parts(lane, v).total();
  }
  FlipDelta pair_delta_parts(std::size_t lane, model::VarId a,
                             model::VarId b) const noexcept;
  void apply_flip(std::size_t lane, model::VarId v) noexcept;

  /// Replace one lane's penalty weights and recompute its penalty energy
  /// (running activities are unaffected), mirroring
  /// CqmIncrementalState::set_penalties.
  void set_penalties(std::size_t lane, std::span<const double> penalties);

  /// Flip delta of `v` for every lane at once (out must hold num_lanes()
  /// entries). This is the vectorized kernel: with AVX2 active, four lanes
  /// are evaluated per instruction off the shared CSR row scan.
  void batched_flip_delta(model::VarId v, FlipDelta* out) const noexcept;

  /// Joint (a, b) pair-flip delta for every lane at once, evaluated in the
  /// canonical (a, b) argument order for all lanes (per-lane flip signs come
  /// from each lane's own bits). Lanes where bit(a) == bit(b) receive a value
  /// the caller must discard — a pair move is only meaningful on lanes whose
  /// bits differ.
  void batched_pair_delta(model::VarId a, model::VarId b,
                          FlipDelta* out) const noexcept;

  /// Commit the flip of `v` on every lane whose accept byte is nonzero
  /// (accept must hold num_lanes() entries). Non-accepting lanes keep every
  /// aggregate bitwise untouched.
  void batched_apply_flip(model::VarId v, const std::uint8_t* accept) noexcept;

  /// Single-lane adapter exposing the CqmIncrementalState walk interface
  /// (state_bit / deltas / apply_flip), so the templated pair-move machinery
  /// runs unchanged on a bank lane.
  class LaneRef {
   public:
    LaneRef(CqmReplicaBank& bank, std::size_t lane) noexcept
        : bank_(&bank), lane_(lane) {}
    bool state_bit(model::VarId v) const noexcept {
      return bank_->state_bit(lane_, v);
    }
    FlipDelta flip_delta_parts(model::VarId v) const noexcept {
      return bank_->flip_delta_parts(lane_, v);
    }
    FlipDelta pair_delta_parts(model::VarId a, model::VarId b) const noexcept {
      return bank_->pair_delta_parts(lane_, a, b);
    }
    void apply_flip(model::VarId v) noexcept { bank_->apply_flip(lane_, v); }

   private:
    CqmReplicaBank* bank_;
    std::size_t lane_;
  };
  LaneRef lane(std::size_t l) noexcept { return LaneRef(*this, l); }

 private:
  double lane_penalty_of(std::size_t c, std::size_t lane,
                         double activity) const noexcept {
    return pen_w_[c * stride_ + lane] *
           detail::violation_branchless(sense_[c], activity, rhs_[c]);
  }
  detail::CqmBankView view() const noexcept;

  const model::CqmModel* cqm_;
  std::size_t num_lanes_;
  std::size_t stride_;
  std::size_t num_vars_;
  std::size_t words_per_var_;
  std::vector<std::uint64_t> bits_;
  std::vector<double> obj_;
  std::vector<double> pen_;
  std::vector<double> group_vals_;
  std::vector<double> acts_;
  std::vector<double> pen_w_;
  std::vector<double> rhs_;
  std::vector<model::Sense> sense_;

  // Borrowed flat views into the model (valid for the model's lifetime).
  std::span<const double> linear_;
  std::span<const double> group_weights_;
  const model::CsrRows<model::CqmModel::GroupKernelTerm>* group_kernel_;
  const model::CsrRows<model::CqmModel::Incidence>* group_inc_;
  const model::CsrRows<model::CqmModel::Incidence>* con_inc_;
  const model::CsrRows<model::CqmModel::QuadNeighbor>* quad_inc_;
};

/// Per-lane inputs for BatchedCqmAnnealer::anneal_lanes. Each lane owns its
/// RNG stream (typically one pre-split restart stream), so the lane's draw
/// sequence is exactly the one the scalar CqmAnnealer would consume.
struct BatchedLaneSpec {
  util::Rng* rng = nullptr;                        ///< required
  const model::State* initial = nullptr;           ///< null/empty => random init
  const std::vector<double>* penalties = nullptr;  ///< required
  bool refinement = false;
  std::uint32_t trace_track = 0;
  AnnealTrace* trace = nullptr;
};

struct BatchedCqmAnnealParams {
  std::size_t sweeps = 2000;
  ScheduleKind schedule = ScheduleKind::kGeometric;
  std::optional<double> beta_hot;
  std::optional<double> beta_cold;
  double pair_move_prob = 0.5;
  /// Polled once per lockstep sweep; on expiry every lane returns its best
  /// sample so far (the scalar annealer polls per lane, so expiry timing —
  /// and only timing — can differ from R scalar runs).
  util::CancelToken cancel;
  obs::Recorder* recorder = nullptr;
  /// Bumped by the per-lane sweep count, matching what R scalar anneal_once
  /// calls would contribute.
  obs::Counter* sweep_counter = nullptr;
  /// Bumped by lane-sweeps executed through the bank (sweeps x lanes); feeds
  /// qulrb_solver_replica_sweeps.
  obs::Counter* replica_sweep_counter = nullptr;
  /// Optional always-on flight ring: one compact span per anneal_lanes call
  /// (value = lane-sweeps executed). Same null discipline as `recorder`.
  obs::FlightRecorder* flight = nullptr;
  std::uint16_t flight_name = 0;
  std::uint64_t flight_rid = 0;
};

/// Lockstep multi-replica twin of CqmAnnealer: R lanes anneal over one
/// CqmReplicaBank, each lane replaying CqmAnnealer::anneal_once bit for bit
/// (same RNG draw order, same FP operation order, same incumbent rule) with
/// the model scan amortised across replicas. Used by HybridCqmSolver to run
/// its restart portfolio as one bank instead of R independent chains.
///
/// Two proposal modes:
///  - Per-lane (default, `proposal_rng == nullptr`): each lane draws its own
///    moves from its own stream, exactly like R scalar CqmAnnealer runs —
///    trajectories are bitwise identical to anneal_once with the same seeds.
///  - Shared-proposal lockstep (`proposal_rng != nullptr`): one proposal
///    stream draws each step's move (flip variable or candidate pair) for all
///    lanes, so the delta evaluation and the commit run through the batched
///    across-lane SIMD kernels; each lane keeps its own acceptance stream.
///    Proposal draws never depend on lane state, so a lane's trajectory
///    depends only on (proposal stream, its own stream) — independent of R
///    and of which other lanes share the bank — and is bitwise identical
///    between the SIMD and scalar builds.
class BatchedCqmAnnealer {
 public:
  explicit BatchedCqmAnnealer(BatchedCqmAnnealParams params = {})
      : params_(std::move(params)) {}

  /// Anneal every lane in lockstep; returns one best-seen sample per lane
  /// (index-aligned with `lanes`). When `pairs` is null and pair_move_prob
  /// is positive, a PairMoveIndex is built locally. A non-null `proposal_rng`
  /// selects shared-proposal lockstep mode (see the class comment).
  std::vector<Sample> anneal_lanes(const model::CqmModel& cqm,
                                   std::span<const BatchedLaneSpec> lanes,
                                   const PairMoveIndex* pairs = nullptr,
                                   util::Rng* proposal_rng = nullptr) const;

  const BatchedCqmAnnealParams& params() const noexcept { return params_; }

 private:
  BatchedCqmAnnealParams params_;
};

/// R lockstep QUBO replicas sharing one model: packed spin bits plus an SoA
/// flip-delta matrix (`deltas[v * stride + lane]`) and per-lane energies,
/// each lane bitwise identical to a scalar QuboDeltaCache evolved through
/// the same flip sequence. Construction is the vectorized kernel (all-lane
/// energy + delta evaluation off one model scan); apply_flip is the same
/// O(deg) row walk as the scalar cache.
class QuboReplicaBank {
 public:
  QuboReplicaBank(const model::QuboModel& qubo,
                  std::span<const model::State> initial);

  std::size_t num_lanes() const noexcept { return num_lanes_; }
  std::size_t lane_stride() const noexcept { return stride_; }
  std::size_t num_variables() const noexcept { return num_vars_; }

  bool state_bit(std::size_t lane, model::VarId v) const noexcept {
    return (bits_[v * words_per_var_ + (lane >> 6)] >> (lane & 63u)) & 1u;
  }
  double energy(std::size_t lane) const noexcept { return energy_[lane]; }
  double delta(std::size_t lane, model::VarId v) const noexcept {
    return deltas_[v * stride_ + lane];
  }
  model::State extract_state(std::size_t lane) const;

  /// Commit the flip of `v` on one lane, mirroring QuboDeltaCache::apply_flip.
  void apply_flip(std::size_t lane, model::VarId v) noexcept;

 private:
  detail::QuboBankView view() const noexcept;

  const model::QuboModel* qubo_;
  const model::CsrRows<model::QuboModel::Neighbor>* adjacency_;
  std::size_t num_lanes_;
  std::size_t stride_;
  std::size_t num_vars_;
  std::size_t words_per_var_;
  std::vector<std::uint64_t> bits_;
  std::vector<double> energy_;
  std::vector<double> deltas_;
};

}  // namespace qulrb::anneal
