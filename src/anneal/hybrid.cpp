#include "anneal/hybrid.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "anneal/replica_bank.hpp"
#include "anneal/tempering.hpp"
#include "model/presolve.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qulrb::anneal {

using model::CqmModel;
using model::VarId;

namespace {

/// Approximate largest single-flip objective change: used to scale penalties
/// so that violating a constraint is never profitable at convergence.
double objective_gradient_scale(const CqmModel& cqm) {
  double scale = 0.0;
  for (double a : cqm.objective_linear()) scale = std::max(scale, std::abs(a));
  for (const auto& q : cqm.objective_quadratic()) {
    scale = std::max(scale, std::abs(q.coeff));
  }
  for (const auto& g : cqm.squared_groups()) {
    const double span =
        std::max(std::abs(g.expr.min_value()), std::abs(g.expr.max_value()));
    double max_coeff = 0.0;
    for (const auto& t : g.expr.terms()) {
      max_coeff = std::max(max_coeff, std::abs(t.coeff));
    }
    // |d/dflip (w * v^2)| <= w * (2 * span * a + a^2) with a = max coefficient.
    scale = std::max(scale,
                     std::abs(g.weight) * (2.0 * span * max_coeff + max_coeff * max_coeff));
  }
  return scale > 0.0 ? scale : 1.0;
}

/// Per-constraint base penalty: the weight applies per unit of violation, so
/// normalize by the smallest step a single flip can take on that constraint.
std::vector<double> initial_penalties(const CqmModel& cqm, double penalty_scale) {
  const double grad = objective_gradient_scale(cqm);
  std::vector<double> penalties;
  penalties.reserve(cqm.num_constraints());
  for (const auto& con : cqm.constraints()) {
    double min_step = 0.0;
    for (const auto& t : con.lhs.terms()) {
      const double a = std::abs(t.coeff);
      if (a > 0.0) min_step = (min_step == 0.0) ? a : std::min(min_step, a);
    }
    if (min_step == 0.0) min_step = 1.0;
    penalties.push_back(penalty_scale * grad / min_step);
  }
  return penalties;
}

/// Per-constraint violation attribution for the final incumbent: one counter
/// point per still-violated constraint, named after the model's constraint
/// label (falling back to the index) so the trace answers *which* constraint
/// an infeasible solve died on. Runs once per solve off the hot path, capped
/// so a pathological model cannot bloat the document.
void record_violation_attribution(obs::Recorder& rec, const CqmModel& cqm,
                                  const model::State& state) {
  constexpr std::size_t kMaxAttributed = 16;
  struct Violated {
    std::size_t c;
    double v;
  };
  const CqmIncrementalState probe(
      cqm, state, std::vector<double>(cqm.num_constraints(), 0.0));
  std::vector<Violated> violated;
  for (std::size_t c = 0; c < probe.num_constraints(); ++c) {
    const double v = probe.constraint_violation(c);
    if (v > 1e-9) violated.push_back({c, v});
  }
  rec.annotate("violated_constraints", std::to_string(violated.size()));
  if (violated.empty()) return;
  const std::size_t keep = std::min(violated.size(), kMaxAttributed);
  std::partial_sort(violated.begin(), violated.begin() + keep, violated.end(),
                    [](const Violated& a, const Violated& b) {
                      return a.v > b.v;
                    });
  const auto constraints = cqm.constraints();
  const double t = rec.now_us();
  for (std::size_t i = 0; i < keep; ++i) {
    std::string label = constraints[violated[i].c].label;
    if (label.empty()) label = "c" + std::to_string(violated[i].c);
    rec.sample_at("violation/" + label, 0, t, violated[i].v);
  }
}

model::State random_state(std::size_t n, util::Rng& rng) {
  model::State s(n);
  for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_below(2));
  return s;
}

void apply_fixings(model::State& s, const model::PresolveResult& pre) {
  for (std::size_t v = 0; v < s.size(); ++v) {
    if (pre.fixed[v].has_value()) s[v] = *pre.fixed[v];
  }
}

}  // namespace

void HybridCqmSolver::greedy_descent(CqmIncrementalState& walk, util::Rng& rng,
                                     std::size_t max_passes,
                                     const util::CancelToken* cancel) {
  const std::size_t n = walk.num_variables();
  if (n == 0) return;
  std::vector<VarId> order(n);
  std::iota(order.begin(), order.end(), VarId{0});
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    if (cancel != nullptr && cancel->expired()) return;
    // Fisher-Yates shuffle for a fresh scan order each pass.
    for (std::size_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(rng.next_below(i + 1));
      std::swap(order[i], order[j]);
    }
    bool improved = false;
    for (const VarId v : order) {
      if (walk.flip_delta(v) < -1e-12) {
        walk.apply_flip(v);
        improved = true;
      }
    }
    if (!improved) return;
  }
}

HybridSolveResult HybridCqmSolver::solve(const CqmModel& cqm) const {
  util::WallTimer timer;
  HybridSolveResult result;
  result.stats.num_variables = cqm.num_variables();
  result.stats.num_constraints = cqm.num_constraints();
  result.stats.simulated_qpu_ms = params_.simulated_qpu_access_ms;

  // Metrics handles are resolved once per solve (registration takes a
  // mutex); everything below the portfolio only touches lock-free counters.
  obs::Counter* m_restarts = nullptr;
  obs::Counter* m_penalty_rounds = nullptr;
  obs::Counter* m_budget_expired = nullptr;
  obs::Counter* m_sweeps = nullptr;
  obs::Counter* m_replica_sweeps = nullptr;
  obs::LogHistogram* m_solve_ms = nullptr;
  if (params_.metrics != nullptr) {
    auto& reg = *params_.metrics;
    reg.counter("qulrb_solver_solves_total", "Hybrid CQM solves started").inc();
    m_restarts = &reg.counter("qulrb_solver_restarts_total",
                              "Portfolio restarts completed");
    m_penalty_rounds = &reg.counter("qulrb_solver_penalty_rounds_total",
                                    "Adaptive penalty escalation rounds run");
    m_budget_expired =
        &reg.counter("qulrb_solver_budget_expired_total",
                     "Solves truncated by their budget or a cancellation");
    m_sweeps = &reg.counter("qulrb_solver_sweeps_total",
                            "Sampler sweeps executed across all portfolio members");
    m_replica_sweeps =
        &reg.counter("qulrb_solver_replica_sweeps",
                     "Lane-sweeps executed through the replica bank");
    m_solve_ms = &reg.histogram("qulrb_solver_solve_ms",
                                "Hybrid solve wall time in milliseconds");
  }
  // The recorder comes either from the explicit pointer or from the
  // request's trace context; both follow the same null-object discipline.
  obs::Recorder* const rec = params_.recorder != nullptr
                                 ? params_.recorder
                                 : params_.trace.recorder();
  // Flight-ring name codes, interned once per solve (cold path).
  const std::uint16_t f_batch =
      params_.flight != nullptr ? params_.flight->intern("anneal-batch") : 0;
  const std::uint16_t f_temper =
      params_.flight != nullptr ? params_.flight->intern("tempering") : 0;
  if (rec != nullptr) {
    rec->annotate("num_variables", std::to_string(cqm.num_variables()));
    rec->annotate("num_constraints", std::to_string(cqm.num_constraints()));
  }
  const auto finalize = [&] {
    result.stats.cpu_ms = timer.elapsed_ms();
    if (m_restarts != nullptr && result.stats.restarts_used > 0) {
      m_restarts->inc(result.stats.restarts_used);
    }
    if (m_penalty_rounds != nullptr && result.stats.penalty_rounds_used > 0) {
      m_penalty_rounds->inc(result.stats.penalty_rounds_used);
    }
    if (m_budget_expired != nullptr && result.stats.budget_expired) {
      m_budget_expired->inc();
    }
    if (m_solve_ms != nullptr) m_solve_ms->observe(result.stats.cpu_ms);
  };

  // One effective budget: the caller's token (service deadline, client
  // cancel) tightened by the solver's own wall-clock limit. Every portfolio
  // member polls it per sweep, so running restarts stop near the budget
  // instead of only between restarts.
  util::CancelToken budget = params_.cancel;
  if (params_.time_limit_ms > 0.0) {
    budget = budget.with_deadline_ms(params_.time_limit_ms);
  }

  // --- classical presolve --------------------------------------------------
  const model::PresolveResult local_pre = [&] {
    if (params_.reuse_presolve != nullptr) return model::PresolveResult{};
    obs::prof::PhaseScope presolve_phase("presolve");
    obs::Recorder::Span presolve_span(rec, "presolve", "hybrid", 0);
    return model::presolve(cqm);
  }();
  const model::PresolveResult& pre =
      params_.reuse_presolve != nullptr ? *params_.reuse_presolve : local_pre;
  result.stats.presolve_fixed = pre.num_fixed;
  if (pre.proven_infeasible) {
    result.stats.presolve_infeasible = true;
    model::State zero(cqm.num_variables(), 0);
    result.best = {zero, cqm.objective_value(zero), cqm.total_violation(zero), false};
    finalize();
    return result;
  }

  // --- exhaustive enumeration for tiny models ------------------------------
  // With few enough free variables, visiting every assignment via a Gray-code
  // walk (one incremental flip per state) costs less than a single annealing
  // schedule and returns the provable CQM optimum. Sampling tiny models is
  // all overhead and no guarantee.
  std::vector<VarId> free_vars;
  free_vars.reserve(cqm.num_variables());
  for (std::size_t v = 0; v < cqm.num_variables(); ++v) {
    if (!pre.fixed[v].has_value()) free_vars.push_back(static_cast<VarId>(v));
  }
  if (params_.exhaustive_max_vars > 0 && free_vars.size() < 64 &&
      free_vars.size() <= params_.exhaustive_max_vars) {
    obs::prof::PhaseScope enum_phase("exhaustive-enum");
    obs::Recorder::Span enum_span(rec, "exhaustive-enum", "hybrid", 0);
    model::State base(cqm.num_variables(), 0);
    apply_fixings(base, pre);
    CqmIncrementalState walk(cqm, base,
                             std::vector<double>(cqm.num_constraints(), 0.0));
    // Track the incumbent by its Gray code; the state is rebuilt once at the
    // end so the loop never copies.
    std::uint64_t best_code = 0;
    double best_obj = walk.objective();
    double best_viol = walk.total_violation();
    std::uint64_t code = 0;
    const std::uint64_t total = std::uint64_t{1} << free_vars.size();
    const bool poll_budget = budget.can_expire();
    for (std::uint64_t i = 1; i < total; ++i) {
      if (poll_budget && (i & 0xFFFu) == 0 && budget.expired()) {
        result.stats.budget_expired = true;
        break;
      }
      const auto bit = static_cast<std::size_t>(std::countr_zero(i));
      walk.apply_flip(free_vars[bit]);
      code ^= std::uint64_t{1} << bit;
      const double viol = walk.total_violation();
      if (viol < best_viol ||
          (viol == best_viol && walk.objective() < best_obj)) {
        best_code = code;
        best_obj = walk.objective();
        best_viol = viol;
      }
    }
    model::State best_state = std::move(base);
    for (std::size_t b = 0; b < free_vars.size(); ++b) {
      if (best_code & (std::uint64_t{1} << b)) best_state[free_vars[b]] ^= 1u;
    }
    // Recompute from scratch: the reported numbers carry no incremental
    // floating-point drift.
    Sample s{best_state, cqm.objective_value(best_state),
             cqm.total_violation(best_state), false};
    s.feasible = s.violation <= 1e-9;
    result.samples.add(s);
    result.best = std::move(s);
    result.stats.restarts_used = 1;
    enum_span.close();
    if (rec != nullptr) {
      record_violation_attribution(*rec, cqm, result.best.state);
    }
    finalize();
    return result;
  }

  const std::vector<double> base_penalties =
      initial_penalties(cqm, params_.penalty_scale);
  const PairMoveIndex local_pairs = [&] {
    if (params_.reuse_pairs != nullptr) return PairMoveIndex{};
    obs::prof::PhaseScope pairs_phase("pair-index-build");
    obs::Recorder::Span pairs_span(rec, "pair-index-build", "hybrid", 0);
    return PairMoveIndex::build(cqm);
  }();
  const PairMoveIndex& pair_index =
      params_.reuse_pairs != nullptr ? *params_.reuse_pairs : local_pairs;

  // Is there a trivially feasible refinement seed?
  const bool have_hint = params_.initial_hint.size() == cqm.num_variables();
  bool zeros_feasible = false;
  {
    model::State zeros(cqm.num_variables(), 0);
    apply_fixings(zeros, pre);
    zeros_feasible = cqm.is_feasible(zeros);
  }
  const bool refinement_available =
      params_.use_refinement_start && (have_hint || zeros_feasible);

  // Per-restart result slots: restarts run on any thread in any order, but
  // each writes only its own slot and the merge below walks slots in restart
  // order, so the solve is bitwise identical for every `threads` setting.
  std::vector<std::optional<Sample>> results(params_.num_restarts);
  std::vector<std::size_t> rounds_by_restart(params_.num_restarts, 0);

  util::Rng master(params_.seed);
  std::vector<util::Rng> streams;
  streams.reserve(params_.num_restarts);
  for (std::size_t r = 0; r < params_.num_restarts; ++r) streams.push_back(master.split());

  // Standalone solves render restarts on tracks 1..R; inside a request trace
  // the block is claimed from the context's shared allocator so restart rows
  // never collide with rows other layers (service queue, BSP ranks) claim in
  // the same document.
  const std::uint32_t restart_track_base =
      params_.trace.active()
          ? params_.trace.claim_tracks(
                static_cast<std::uint32_t>(params_.num_restarts))
          : 1;

  // Feasibility polish: steepest descent with current penalties, then
  // zero-temperature pair moves (constraint-preserving reroutes). Shared by
  // banked and tempered restarts; always runs on the restart's own stream so
  // the draw sequence matches the scalar per-restart chain exactly.
  auto polish = [&](Sample& s, const std::vector<double>& penalties,
                    util::Rng& rng, std::uint32_t track) {
    obs::prof::PhaseScope polish_phase("polish");
    obs::Recorder::Span polish_span(rec, "polish", "hybrid", track);
    CqmIncrementalState walk(cqm, s.state, penalties);
    greedy_descent(walk, rng, 32, &budget);
    if (!pair_index.empty()) {
      const std::size_t attempts = 8 * std::max<std::size_t>(1, walk.num_variables());
      if (pair_index.pair_scan_cost() <= attempts) {
        // Enumerating every (set, clear) pair is cheaper than sampling
        // the same budget at random — and never misses an improving move.
        pair_index.descend(walk, 8, &budget);
      } else {
        for (std::size_t t = 0; t < attempts; ++t) {
          if ((t & 0xFFu) == 0 && budget.expired()) break;
          pair_index.attempt(walk, rng, 1e30);
        }
      }
      greedy_descent(walk, rng, 32, &budget);
    }
    Sample polished{walk.state(), walk.objective(), walk.total_violation(),
                    walk.feasible()};
    if (polished.better_than(s)) s = std::move(polished);
  };

  // Escalate penalties where the best state is still violating.
  auto escalate = [&](const Sample& s, std::vector<double>& penalties,
                      std::uint32_t track) {
    obs::prof::PhaseScope adapt_phase("penalty-adapt");
    obs::Recorder::Span adapt_span(rec, "penalty-adapt", "hybrid", track);
    const CqmIncrementalState probe(cqm, s.state, penalties);
    for (std::size_t c = 0; c < probe.num_constraints(); ++c) {
      if (probe.constraint_violation(c) > 1e-9) {
        penalties[c] *= params_.penalty_growth;
      }
    }
  };

  // Non-tempered restarts run as lanes of one CqmReplicaBank per chunk. Each
  // lane keeps its own pre-split stream and replays the scalar restart chain
  // bit for bit (anneal through the bank in per-lane mode, then the scalar
  // polish on the same stream), so chunking — like threading — never changes
  // the samples.
  auto run_bank_chunk = [&](std::size_t r_begin, std::size_t r_end) {
    // Runs on a pool worker thread; the phase/rid scopes must live here, not
    // on the submitting thread, for samples of this chunk to attribute.
    obs::prof::RidScope rid_scope(params_.flight_rid);
    obs::prof::PhaseScope restart_phase("restart");
    struct Lane {
      std::size_t r = 0;
      util::Rng rng{0};
      std::vector<double> penalties;
      bool refine = false;
      model::State init;
      Sample best;
      bool have_sample = false;
      std::size_t rounds = 0;
      std::uint32_t track = 0;
      std::unique_ptr<obs::Recorder::Span> span;
      bool done = false;
    };
    std::vector<Lane> lanes;
    lanes.reserve(r_end - r_begin);
    for (std::size_t r = r_begin; r < r_end; ++r) {
      if (r > 0 && budget.expired()) {
        continue;  // keep at least one restart so solve() always has an incumbent
      }
      Lane lane;
      lane.r = r;
      lane.rng = streams[r];
      lane.penalties = base_penalties;
      lane.refine = r == 0 && refinement_available;
      if (lane.refine) {
        lane.init =
            have_hint ? params_.initial_hint : model::State(cqm.num_variables(), 0);
      } else {
        lane.init = random_state(cqm.num_variables(), lane.rng);
      }
      apply_fixings(lane.init, pre);
      // Each restart renders on its own trace track so the portfolio members
      // line up side by side in the viewer.
      lane.track = restart_track_base + static_cast<std::uint32_t>(r);
      if (rec != nullptr) {
        std::string label = "restart " + std::to_string(r);
        if (lane.refine) label += " (refine)";
        rec->name_track(lane.track, std::move(label));
      }
      lane.span = std::make_unique<obs::Recorder::Span>(rec, "restart", "hybrid",
                                                        lane.track);
      lanes.push_back(std::move(lane));
    }

    BatchedCqmAnnealParams bp;
    bp.sweeps = params_.sweeps;
    bp.cancel = budget;
    bp.recorder = rec;
    bp.sweep_counter = m_sweeps;
    bp.replica_sweep_counter = m_replica_sweeps;
    bp.flight = params_.flight;
    bp.flight_name = f_batch;
    bp.flight_rid = params_.flight_rid;
    const BatchedCqmAnnealer annealer(bp);

    const std::size_t max_rounds =
        std::max<std::size_t>(1, params_.max_penalty_rounds);
    for (std::size_t round = 0; round < max_rounds; ++round) {
      std::vector<BatchedLaneSpec> specs;
      std::vector<Lane*> active;
      for (auto& lane : lanes) {
        if (lane.done) continue;
        BatchedLaneSpec spec;
        spec.rng = &lane.rng;
        spec.initial = &lane.init;
        spec.penalties = &lane.penalties;
        spec.refinement = lane.refine;
        spec.trace_track = lane.track;
        specs.push_back(spec);
        active.push_back(&lane);
        ++lane.rounds;
      }
      if (active.empty()) break;
      auto samples = annealer.anneal_lanes(cqm, specs, &pair_index);
      for (std::size_t i = 0; i < active.size(); ++i) {
        Lane& lane = *active[i];
        Sample s = std::move(samples[i]);
        polish(s, lane.penalties, lane.rng, lane.track);
        if (!lane.have_sample || s.better_than(lane.best)) {
          lane.best = s;
          lane.have_sample = true;
        }
        if (s.feasible || budget.expired()) {
          lane.done = true;  // keep the incumbent; skip escalation
          continue;
        }
        escalate(s, lane.penalties, lane.track);
        lane.init = std::move(s.state);  // warm start the next round
      }
    }
    for (auto& lane : lanes) {
      if (lane.have_sample) results[lane.r] = std::move(lane.best);
      rounds_by_restart[lane.r] = lane.rounds;
    }
  };

  // The tempering restart keeps resident replicas of its own (inside
  // ParallelTempering's bank) and so runs as its own unit.
  auto run_tempered_restart = [&](std::size_t r) {
    if (r > 0 && budget.expired()) {
      return;  // keep at least one restart so solve() always has an incumbent
    }
    util::Rng rng = streams[r];
    std::vector<double> penalties = base_penalties;
    model::State init = random_state(cqm.num_variables(), rng);
    apply_fixings(init, pre);

    Sample best_of_restart;
    bool have_sample = false;
    std::size_t rounds = 0;
    const auto track = restart_track_base + static_cast<std::uint32_t>(r);
    if (rec != nullptr) {
      rec->name_track(track, "restart " + std::to_string(r) + " (tempering)");
    }
    obs::prof::RidScope rid_scope(params_.flight_rid);
    obs::prof::PhaseScope tempered_phase("restart");
    obs::Recorder::Span restart_span(rec, "restart", "hybrid", track);

    for (std::size_t round = 0;
         round < std::max<std::size_t>(1, params_.max_penalty_rounds); ++round) {
      ++rounds;
      TemperingParams tp;
      tp.num_replicas = params_.tempering_replicas;
      tp.sweeps = params_.sweeps / 2 + 1;
      tp.seed = rng.next_u64();
      tp.cancel = budget;
      tp.recorder = rec;
      tp.trace_track = track;
      tp.sweep_counter = m_sweeps;
      tp.replica_sweep_counter = m_replica_sweeps;
      tp.flight = params_.flight;
      tp.flight_name = f_temper;
      tp.flight_rid = params_.flight_rid;
      Sample s = ParallelTempering(tp).run(cqm, penalties, init, &pair_index);

      polish(s, penalties, rng, track);
      if (!have_sample || s.better_than(best_of_restart)) {
        best_of_restart = s;
        have_sample = true;
      }
      if (s.feasible) break;
      if (budget.expired()) break;  // keep the incumbent; skip escalation
      escalate(s, penalties, track);
      init = std::move(s.state);  // warm start the next round
    }
    if (have_sample) results[r] = std::move(best_of_restart);
    rounds_by_restart[r] = rounds;
  };

  // Fixed chunking: restarts [0, banked) group into banks of `replica_lanes`
  // regardless of the thread count, and the last restart runs tempered when
  // enabled (unless it is the refinement restart). Work units — chunks and
  // the tempered restart — are what the pool distributes.
  const std::size_t total_restarts = params_.num_restarts;
  const bool tempered_last = params_.use_tempering && total_restarts > 0 &&
                             !(total_restarts == 1 && refinement_available);
  const std::size_t banked_restarts = total_restarts - (tempered_last ? 1 : 0);
  const std::size_t bank_width = std::max<std::size_t>(1, params_.replica_lanes);
  result.stats.replica_lanes = bank_width;
  const std::size_t num_chunks = (banked_restarts + bank_width - 1) / bank_width;
  const std::size_t num_units = num_chunks + (tempered_last ? 1 : 0);

  auto run_unit = [&](std::size_t u) {
    if (u < num_chunks) {
      const std::size_t r_begin = u * bank_width;
      run_bank_chunk(r_begin, std::min(banked_restarts, r_begin + bank_width));
    } else {
      run_tempered_restart(total_restarts - 1);
    }
  };

  const std::size_t threads = params_.threads == 0
                                  ? std::max(1u, std::thread::hardware_concurrency())
                                  : params_.threads;
  if (threads <= 1 || num_units <= 1) {
    for (std::size_t u = 0; u < num_units; ++u) run_unit(u);
  } else {
    util::ThreadPool pool(std::min(threads, num_units));
    pool.parallel_for(num_units, run_unit);
  }

  // Ordered merge: identical regardless of which thread finished first.
  SampleSet all;
  for (std::size_t r = 0; r < params_.num_restarts; ++r) {
    if (results[r].has_value()) {
      all.add(std::move(*results[r]));
      ++result.stats.restarts_used;
    }
    result.stats.penalty_rounds_used += rounds_by_restart[r];
  }
  result.samples = all;
  const auto best = all.best();
  util::ensure(best.has_value(), "HybridCqmSolver: no restart produced a sample");
  result.best = *best;
  if (budget.expired()) result.stats.budget_expired = true;
  if (rec != nullptr) {
    record_violation_attribution(*rec, cqm, result.best.state);
  }
  finalize();
  return result;
}

}  // namespace qulrb::anneal
