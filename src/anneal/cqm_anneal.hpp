#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "anneal/sampleset.hpp"
#include "anneal/schedule.hpp"
#include "model/cqm.hpp"
#include "obs/metrics.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/recorder.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {

/// Incrementally-maintained evaluation of a CqmModel under single-bit flips.
///
/// Keeps the running value of every squared objective group and every
/// constraint activity so that the *total* energy change of flipping one
/// variable — objective plus weighted constraint violations — costs
/// O(incidences of that variable), independent of model size. This is what
/// makes annealing the LRP formulation tractable at M = 64 (~28k binary
/// variables) without materialising the dense quadratic expansion.
///
/// The flip kernel is cache-resident: all per-variable incidence walks go
/// through the model's flat CSR rows (one contiguous scan per flip), group
/// flip arithmetic is pre-baked into (alpha, beta) coefficients, and
/// constraint senses / rhs / penalties / activities live in tight parallel
/// arrays so the inner loop never strides over LinearExpr or label storage.
class CqmIncrementalState {
 public:
  /// penalties: per-constraint weight on (linear) violation. Must match
  /// cqm.num_constraints().
  CqmIncrementalState(const model::CqmModel& cqm, model::State initial,
                      std::vector<double> penalties);

  std::size_t num_variables() const noexcept { return state_.size(); }
  const model::State& state() const noexcept { return state_; }
  /// Current value of one variable. Part of the walk interface shared with
  /// CqmReplicaBank lanes (which store packed bits, not a byte State).
  bool state_bit(model::VarId v) const noexcept { return state_[v] != 0; }
  const model::CqmModel& cqm() const noexcept { return *cqm_; }

  double objective() const noexcept { return objective_; }
  double penalty_energy() const noexcept { return penalty_; }
  double total_energy() const noexcept { return objective_ + penalty_; }
  double total_violation() const noexcept;
  bool feasible(double tol = 1e-9) const noexcept;

  /// Energy change of flipping variable v, split into objective and penalty
  /// contributions (solvers schedule temperatures on the objective scale and
  /// can veto violation-increasing moves via the penalty part).
  struct FlipDelta {
    double objective = 0.0;
    double penalty = 0.0;
    double total() const noexcept { return objective + penalty; }
  };
  FlipDelta flip_delta_parts(model::VarId v) const noexcept;

  /// Combined energy change (objective + penalty) of flipping variable v.
  double flip_delta(model::VarId v) const noexcept {
    return flip_delta_parts(v).total();
  }

  /// Exact combined energy change of flipping variables a and b together
  /// (a != b), evaluated without mutating the state: shared squared groups,
  /// shared constraints, and the (a, b) objective coupler are corrected via
  /// a merge walk over the two sorted incidence rows. Replaces the
  /// apply/evaluate/revert churn pair-move proposals otherwise need.
  FlipDelta pair_delta_parts(model::VarId a, model::VarId b) const noexcept;

  /// Commit the flip of variable v, updating all running values.
  void apply_flip(model::VarId v) noexcept;

  /// Replace the penalty weights and recompute the penalty energy (running
  /// activities are unaffected). Used by adaptive penalty loops.
  void set_penalties(std::vector<double> penalties);

  std::size_t num_constraints() const noexcept { return cons_.size(); }
  double constraint_activity(std::size_t c) const noexcept { return cons_[c].activity; }
  double constraint_violation(std::size_t c) const noexcept {
    return model::CqmModel::violation_of(cons_[c].sense, cons_[c].activity,
                                         cons_[c].rhs);
  }
  double penalty_weight(std::size_t c) const noexcept { return cons_[c].penalty; }
  std::span<const double> group_values() const noexcept { return group_values_; }

 private:
  /// Everything the penalty kernel needs for one constraint, packed so each
  /// incidence costs one contiguous load instead of four scattered ones.
  struct ConSlot {
    double activity;     ///< running lhs_c(x)
    double rhs;
    double penalty;      ///< weight on violation
    model::Sense sense;
  };

  static double penalty_of(const ConSlot& slot, double activity) noexcept {
    return slot.penalty *
           model::CqmModel::violation_of(slot.sense, activity, slot.rhs);
  }

  const model::CqmModel* cqm_;
  model::State state_;
  std::vector<double> group_values_;  ///< expr_g(x) including its constant
  std::vector<ConSlot> cons_;
  double objective_ = 0.0;
  double penalty_ = 0.0;

  // Borrowed flat views into the model (valid for the model's lifetime).
  std::span<const double> linear_;
  std::span<const double> group_weights_;
  const model::CsrRows<model::CqmModel::GroupKernelTerm>* group_kernel_ = nullptr;
  const model::CsrRows<model::CqmModel::Incidence>* group_inc_ = nullptr;
  const model::CsrRows<model::CqmModel::Incidence>* con_inc_ = nullptr;
  const model::CsrRows<model::CqmModel::QuadNeighbor>* quad_inc_ = nullptr;
};

/// Index of "pair move" candidates: for every constraint, variables sharing
/// the same |coefficient| form a class. Flipping a set bit and a clear bit of
/// one class keeps that constraint's activity unchanged — on the LRP models
/// this is "reroute a chunk of c_l tasks to a different process", the move
/// that makes equality constraints and tight migration bounds navigable.
///
/// Classes are stored as flat offsets + members arrays, and build() reuses a
/// single scratch buffer across constraints, so constructing the index is a
/// sort per constraint and nothing else. The index depends only on the model;
/// build it once per CQM and share it across restarts and sweeps.
class PairMoveIndex {
 public:
  static PairMoveIndex build(const model::CqmModel& cqm);

  bool empty() const noexcept { return class_offsets_.size() <= 1; }
  std::size_t num_classes() const noexcept {
    return class_offsets_.empty() ? 0 : class_offsets_.size() - 1;
  }
  std::span<const model::VarId> class_at(std::size_t c) const {
    return {members_.data() + class_offsets_.at(c),
            class_offsets_.at(c + 1) - class_offsets_.at(c)};
  }

  /// Propose flipping one set and one clear variable from a random class;
  /// accept with the Metropolis criterion at `beta` on the combined energy
  /// delta. With `feasible_only`, any violation-increasing proposal is
  /// rejected and the criterion applies to the objective part alone.
  /// Returns true when a move was applied. `Walk` is any type exposing the
  /// CqmIncrementalState walk interface (state_bit / pair_delta_parts /
  /// apply_flip) — in particular a CqmReplicaBank::LaneRef.
  template <class Walk>
  bool attempt(Walk& walk, util::Rng& rng, double beta,
               bool feasible_only = false) const;

  /// Zero-temperature systematic polish: scan every class's (set, clear)
  /// pairs and commit strictly improving moves, repeating until a full scan
  /// finds none (or max_passes). Returns the number of moves applied. One
  /// pass costs pair_scan_cost() delta evaluations — callers should prefer
  /// this over random attempt() sampling exactly when that is the cheaper
  /// budget. The cancel token (when given) is polled once per pass.
  template <class Walk>
  std::size_t descend(Walk& walk, std::size_t max_passes = 8,
                      const util::CancelToken* cancel = nullptr) const;

  /// Ordered pair evaluations per descend() pass: sum of |class|^2.
  std::size_t pair_scan_cost() const noexcept;

 private:
  std::vector<std::size_t> class_offsets_;  ///< size num_classes()+1
  std::vector<model::VarId> members_;
};

struct CqmAnnealParams {
  std::size_t sweeps = 2000;
  ScheduleKind schedule = ScheduleKind::kGeometric;
  std::optional<double> beta_hot;
  std::optional<double> beta_cold;
  /// Fraction of steps using constraint-preserving pair moves instead of
  /// single-bit flips. 0 disables.
  double pair_move_prob = 0.5;
  /// Refinement mode: a flat, cold schedule (mostly-descent with rare uphill
  /// moves) that polishes the initial state instead of scrambling it. Used by
  /// the hybrid portfolio to refine trivially feasible starting points.
  bool refinement = false;
  /// Polled once per sweep; when expired the best-seen sample is returned
  /// immediately (anytime semantics). Inert by default.
  util::CancelToken cancel;
  /// Optional trace sink: records one span per anneal_once on `trace_track`
  /// plus sampled incumbent-energy/violation timelines (~64 points). Same
  /// discipline as `cancel`: consumes no RNG, never alters control flow, so
  /// output is bitwise identical with or without it.
  obs::Recorder* recorder = nullptr;
  std::uint32_t trace_track = 0;
  /// Optional metrics sink: bumped once per anneal_once by the number of
  /// sweeps actually executed.
  obs::Counter* sweep_counter = nullptr;
  /// Optional always-on flight ring: one compact span per anneal_once
  /// (carrying the executed sweep count), stamped with `flight_rid` so a
  /// retroactive dump slices out the triggering request's solver activity.
  /// Same null-object discipline as `recorder`: one predicted branch when
  /// off, no RNG, bitwise-identical output either way.
  obs::FlightRecorder* flight = nullptr;
  std::uint16_t flight_name = 0;  ///< interned record name (flight->intern)
  std::uint64_t flight_rid = 0;
};

/// Per-run diagnostics: convergence trace and move statistics. Opt-in via
/// the trace out-parameter of CqmAnnealer::anneal_once.
struct AnnealTrace {
  std::vector<double> best_energy_per_sweep;  ///< objective+penalty incumbent
  std::vector<double> violation_per_sweep;    ///< total violation at sweep end
  std::size_t flip_attempts = 0;
  std::size_t flip_accepts = 0;
  std::size_t pair_attempts = 0;
  std::size_t pair_accepts = 0;

  double flip_acceptance() const noexcept {
    return flip_attempts > 0
               ? static_cast<double>(flip_accepts) / static_cast<double>(flip_attempts)
               : 0.0;
  }
};

/// Single-flip Metropolis annealing directly on a CQM: energy is
/// objective + sum_c penalty_c * violation_c. Tracks the best feasible state
/// seen during the walk (the anytime semantics of hybrid CQM services).
class CqmAnnealer {
 public:
  explicit CqmAnnealer(CqmAnnealParams params = {}) : params_(params) {}

  /// Anneal from `initial` (random when empty) with the given per-constraint
  /// penalty weights. Returns the best-seen sample: best feasible if any
  /// state visited was feasible, otherwise the lowest (violation, energy).
  /// When `trace` is non-null, per-sweep convergence data is recorded.
  /// When `pairs` is non-null it is used as the pair-move index instead of
  /// rebuilding one (callers running many anneals on one model should build
  /// it once and pass it here).
  Sample anneal_once(const model::CqmModel& cqm, std::vector<double> penalties,
                     util::Rng& rng, const model::State& initial = {},
                     AnnealTrace* trace = nullptr,
                     const PairMoveIndex* pairs = nullptr) const;

  const CqmAnnealParams& params() const noexcept { return params_; }

 private:
  CqmAnnealParams params_;
};

// ---------------------------------------------------------------------------
// PairMoveIndex template bodies (shared by CqmIncrementalState walks and
// CqmReplicaBank lanes).
// ---------------------------------------------------------------------------

template <class Walk>
bool PairMoveIndex::attempt(Walk& walk, util::Rng& rng, double beta,
                            bool feasible_only) const {
  if (empty()) return false;
  const auto members =
      class_at(static_cast<std::size_t>(rng.next_below(num_classes())));
  // Find a (set, clear) pair by rejection sampling.
  model::VarId set_var = 0;
  model::VarId clear_var = 0;
  bool found = false;
  for (int attempt_i = 0; attempt_i < 8 && !found; ++attempt_i) {
    const model::VarId a =
        members[static_cast<std::size_t>(rng.next_below(members.size()))];
    const model::VarId b =
        members[static_cast<std::size_t>(rng.next_below(members.size()))];
    if (a == b) continue;
    const bool sa = walk.state_bit(a);
    const bool sb = walk.state_bit(b);
    if (sa == sb) continue;
    set_var = sa ? a : b;
    clear_var = sa ? b : a;
    found = true;
  }
  if (!found) return false;

  // Evaluate the joint move without touching the state; apply only on accept.
  const auto delta = walk.pair_delta_parts(set_var, clear_var);
  const double criterion = feasible_only ? delta.objective : delta.total();
  const bool vetoed = feasible_only && delta.penalty > 0.0;
  if (!vetoed &&
      (criterion <= 0.0 || rng.next_double() < std::exp(-beta * criterion))) {
    walk.apply_flip(set_var);
    walk.apply_flip(clear_var);
    return true;
  }
  return false;
}

template <class Walk>
std::size_t PairMoveIndex::descend(Walk& walk, std::size_t max_passes,
                                   const util::CancelToken* cancel) const {
  std::size_t applied = 0;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    if (cancel != nullptr && cancel->expired()) break;
    bool improved = false;
    for (std::size_t c = 0; c < num_classes(); ++c) {
      const auto members = class_at(c);
      for (std::size_t i = 0; i < members.size(); ++i) {
        const model::VarId a = members[i];
        if (!walk.state_bit(a)) continue;
        for (std::size_t j = 0; j < members.size(); ++j) {
          const model::VarId b = members[j];
          if (b == a || walk.state_bit(b)) continue;
          if (walk.pair_delta_parts(a, b).total() < -1e-12) {
            walk.apply_flip(a);
            walk.apply_flip(b);
            ++applied;
            improved = true;
            break;  // a is now clear; continue with the next set member
          }
        }
      }
    }
    if (!improved) break;
  }
  return applied;
}

}  // namespace qulrb::anneal
