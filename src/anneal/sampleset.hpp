#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "model/expr.hpp"

namespace qulrb::anneal {

/// One solution candidate returned by a sampler.
struct Sample {
  model::State state;
  double energy = 0.0;      ///< objective value (constraints NOT folded in)
  double violation = 0.0;   ///< total constraint violation (0 for QUBO samplers)
  bool feasible = true;

  /// Ordering used to pick "the best" sample: feasibility first, then lower
  /// violation, then lower energy.
  bool better_than(const Sample& other) const noexcept;
};

/// Collection of samples from one or more solver runs (mirrors the sample-set
/// abstraction of quantum annealing SDKs).
class SampleSet {
 public:
  void add(Sample sample);
  void merge(SampleSet other);

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  const Sample& at(std::size_t i) const { return samples_.at(i); }

  /// Best sample by (feasible, violation, energy); nullopt if empty.
  std::optional<Sample> best() const;
  /// Best strictly feasible sample; nullopt if none.
  std::optional<Sample> best_feasible() const;

  std::size_t num_feasible() const noexcept;

 private:
  std::vector<Sample> samples_;
};

}  // namespace qulrb::anneal
