#pragma once

#include <cstdint>
#include <vector>

#include "anneal/sampleset.hpp"
#include "model/ising.hpp"
#include "model/qubo.hpp"
#include "util/rng.hpp"

namespace qulrb::quantum {

struct QaoaParams {
  std::size_t layers = 2;           ///< p
  std::size_t optimizer_evals = 400;
  std::size_t samples = 256;        ///< measurement shots after optimization
  std::uint64_t seed = 1;
  /// Restarts of the classical parameter search from different angles.
  std::size_t optimizer_restarts = 3;
  /// Depolarizing noise: after every mixer layer each qubit suffers a random
  /// Pauli (X, Y or Z) with this probability — the simple hardware-noise
  /// model the paper's discussion says must be considered when scaling to
  /// real devices. 0 = ideal circuit.
  double depolarizing_prob = 0.0;
  /// Monte-Carlo trajectories averaged per expectation when noise is on.
  std::size_t noise_trajectories = 8;
};

struct QaoaResult {
  anneal::Sample best;              ///< best measured bitstring (QUBO energy)
  anneal::SampleSet samples;        ///< distinct measured bitstrings
  double expectation = 0.0;         ///< optimized <C>
  std::vector<double> gammas;       ///< optimal cost angles
  std::vector<double> betas;        ///< optimal mixer angles
  std::size_t circuit_evaluations = 0;
};

/// Quantum Approximate Optimization Algorithm on a state-vector simulator —
/// the gate-based solver path the paper's discussion (Section VI / MQSS)
/// proposes as the extension of its annealing-based pipeline.
///
/// The cost Hamiltonian is the diagonal operator induced by the QUBO energy;
/// each cost layer e^{-i gamma C} is applied exactly as a diagonal phase
/// table, the mixer is RX(2 beta) on every qubit, and the angles are
/// optimized with Nelder-Mead over the simulated expectation value.
/// Practical to ~20 variables; intended for the tiny-instance studies that
/// validate the formulations against gate-based hardware models.
class QaoaSolver {
 public:
  explicit QaoaSolver(QaoaParams params = {}) : params_(params) {}

  QaoaResult solve_qubo(const model::QuboModel& qubo) const;
  QaoaResult solve_ising(const model::IsingModel& ising) const;

  /// Expectation <C> for explicit angles (exposed for tests/benches).
  static double expectation(const model::QuboModel& qubo,
                            const std::vector<double>& gammas,
                            const std::vector<double>& betas);

 private:
  QaoaParams params_;
};

}  // namespace qulrb::quantum
