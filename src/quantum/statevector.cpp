#include "quantum/statevector.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qulrb::quantum {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
}

StateVector::StateVector(std::size_t num_qubits) : num_qubits_(num_qubits) {
  util::require(num_qubits >= 1 && num_qubits <= 26,
                "StateVector: qubit count out of supported range [1, 26]");
  amplitudes_.assign(std::size_t{1} << num_qubits, Amplitude{0.0, 0.0});
  amplitudes_[0] = Amplitude{1.0, 0.0};
}

void StateVector::apply_unitary(std::size_t qubit, Amplitude a, Amplitude b,
                                Amplitude c, Amplitude d) {
  util::require(qubit < num_qubits_, "StateVector: qubit out of range");
  const std::size_t stride = std::size_t{1} << qubit;
  for (std::size_t base = 0; base < amplitudes_.size(); base += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      Amplitude& lo = amplitudes_[base + offset];
      Amplitude& hi = amplitudes_[base + offset + stride];
      const Amplitude new_lo = a * lo + b * hi;
      const Amplitude new_hi = c * lo + d * hi;
      lo = new_lo;
      hi = new_hi;
    }
  }
}

void StateVector::apply_h(std::size_t qubit) {
  apply_unitary(qubit, {kInvSqrt2, 0}, {kInvSqrt2, 0}, {kInvSqrt2, 0},
                {-kInvSqrt2, 0});
}

void StateVector::apply_x(std::size_t qubit) {
  apply_unitary(qubit, {0, 0}, {1, 0}, {1, 0}, {0, 0});
}

void StateVector::apply_z(std::size_t qubit) {
  apply_unitary(qubit, {1, 0}, {0, 0}, {0, 0}, {-1, 0});
}

void StateVector::apply_rx(std::size_t qubit, double theta) {
  const double cos_half = std::cos(theta / 2.0);
  const double sin_half = std::sin(theta / 2.0);
  apply_unitary(qubit, {cos_half, 0}, {0, -sin_half}, {0, -sin_half}, {cos_half, 0});
}

void StateVector::apply_ry(std::size_t qubit, double theta) {
  const double cos_half = std::cos(theta / 2.0);
  const double sin_half = std::sin(theta / 2.0);
  apply_unitary(qubit, {cos_half, 0}, {-sin_half, 0}, {sin_half, 0}, {cos_half, 0});
}

void StateVector::apply_rz(std::size_t qubit, double theta) {
  const Amplitude phase_lo = std::polar(1.0, -theta / 2.0);
  const Amplitude phase_hi = std::polar(1.0, theta / 2.0);
  apply_unitary(qubit, phase_lo, {0, 0}, {0, 0}, phase_hi);
}

void StateVector::apply_cnot(std::size_t control, std::size_t target) {
  util::require(control < num_qubits_ && target < num_qubits_ && control != target,
                "StateVector: bad CNOT qubits");
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  for (std::size_t z = 0; z < amplitudes_.size(); ++z) {
    if ((z & cbit) && !(z & tbit)) {
      std::swap(amplitudes_[z], amplitudes_[z | tbit]);
    }
  }
}

void StateVector::apply_cz(std::size_t control, std::size_t target) {
  util::require(control < num_qubits_ && target < num_qubits_ && control != target,
                "StateVector: bad CZ qubits");
  const std::size_t mask = (std::size_t{1} << control) | (std::size_t{1} << target);
  for (std::size_t z = 0; z < amplitudes_.size(); ++z) {
    if ((z & mask) == mask) amplitudes_[z] = -amplitudes_[z];
  }
}

void StateVector::apply_rzz(std::size_t a, std::size_t b, double theta) {
  util::require(a < num_qubits_ && b < num_qubits_ && a != b,
                "StateVector: bad RZZ qubits");
  const Amplitude aligned = std::polar(1.0, -theta / 2.0);
  const Amplitude anti = std::polar(1.0, theta / 2.0);
  const std::size_t abit = std::size_t{1} << a;
  const std::size_t bbit = std::size_t{1} << b;
  for (std::size_t z = 0; z < amplitudes_.size(); ++z) {
    const bool za = (z & abit) != 0;
    const bool zb = (z & bbit) != 0;
    amplitudes_[z] *= (za == zb) ? aligned : anti;
  }
}

void StateVector::apply_diagonal_phases(std::span<const double> phases) {
  util::require(phases.size() == amplitudes_.size(),
                "StateVector: phase table size mismatch");
  for (std::size_t z = 0; z < amplitudes_.size(); ++z) {
    amplitudes_[z] *= std::polar(1.0, -phases[z]);
  }
}

void StateVector::apply_h_all() {
  for (std::size_t q = 0; q < num_qubits_; ++q) apply_h(q);
}

double StateVector::probability(std::uint64_t basis_state) const {
  util::require(basis_state < amplitudes_.size(),
                "StateVector: basis state out of range");
  return std::norm(amplitudes_[basis_state]);
}

double StateVector::expectation_diagonal(std::span<const double> values) const {
  util::require(values.size() == amplitudes_.size(),
                "StateVector: observable size mismatch");
  double expectation = 0.0;
  for (std::size_t z = 0; z < amplitudes_.size(); ++z) {
    expectation += std::norm(amplitudes_[z]) * values[z];
  }
  return expectation;
}

std::uint64_t StateVector::sample(util::Rng& rng) const {
  double u = rng.next_double();
  for (std::size_t z = 0; z < amplitudes_.size(); ++z) {
    u -= std::norm(amplitudes_[z]);
    if (u <= 0.0) return z;
  }
  return amplitudes_.size() - 1;  // numerical leftover lands on the last state
}

double StateVector::norm_squared() const {
  double n = 0.0;
  for (const auto& a : amplitudes_) n += std::norm(a);
  return n;
}

}  // namespace qulrb::quantum
