#include "quantum/qaoa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "quantum/statevector.hpp"
#include "util/error.hpp"
#include "util/nelder_mead.hpp"

namespace qulrb::quantum {

namespace {

/// Tabulate the QUBO energy of every basis state (the diagonal cost
/// Hamiltonian). O(2^n (n + m)) once; reused by every circuit evaluation.
std::vector<double> energy_table(const model::QuboModel& qubo) {
  const std::size_t n = qubo.num_variables();
  const std::size_t dim = std::size_t{1} << n;
  std::vector<double> energies(dim);
  model::State state(n);
  for (std::size_t z = 0; z < dim; ++z) {
    for (std::size_t q = 0; q < n; ++q) state[q] = (z >> q) & 1u;
    energies[z] = qubo.energy(state);
  }
  return energies;
}

/// One (possibly noisy) circuit execution. With noise, a random Pauli is
/// injected per qubit per layer with probability `depolarizing_prob` — the
/// Monte-Carlo trajectory (quantum-jump) unravelling of the depolarizing
/// channel.
double run_circuit(const std::vector<double>& energies, std::size_t n,
                   const std::vector<double>& gammas,
                   const std::vector<double>& betas, StateVector* out_state,
                   double depolarizing_prob = 0.0, util::Rng* noise_rng = nullptr) {
  StateVector psi(n);
  psi.apply_h_all();
  std::vector<double> phases(energies.size());
  for (std::size_t layer = 0; layer < gammas.size(); ++layer) {
    for (std::size_t z = 0; z < energies.size(); ++z) {
      phases[z] = gammas[layer] * energies[z];
    }
    psi.apply_diagonal_phases(phases);
    for (std::size_t q = 0; q < n; ++q) psi.apply_rx(q, 2.0 * betas[layer]);
    if (depolarizing_prob > 0.0 && noise_rng != nullptr) {
      for (std::size_t q = 0; q < n; ++q) {
        if (!noise_rng->next_bool(depolarizing_prob)) continue;
        switch (noise_rng->next_below(3)) {
          case 0: psi.apply_x(q); break;
          case 1: psi.apply_z(q); break;
          default:  // Y = iXZ; the global phase is irrelevant
            psi.apply_z(q);
            psi.apply_x(q);
            break;
        }
      }
    }
  }
  const double expectation = psi.expectation_diagonal(energies);
  if (out_state != nullptr) *out_state = std::move(psi);
  return expectation;
}

/// Noise-averaged expectation over Monte-Carlo trajectories.
double run_noisy_expectation(const std::vector<double>& energies, std::size_t n,
                             const std::vector<double>& gammas,
                             const std::vector<double>& betas, double prob,
                             std::size_t trajectories, util::Rng& rng) {
  if (prob <= 0.0) return run_circuit(energies, n, gammas, betas, nullptr);
  double sum = 0.0;
  for (std::size_t t = 0; t < trajectories; ++t) {
    sum += run_circuit(energies, n, gammas, betas, nullptr, prob, &rng);
  }
  return sum / static_cast<double>(trajectories);
}

}  // namespace

double QaoaSolver::expectation(const model::QuboModel& qubo,
                               const std::vector<double>& gammas,
                               const std::vector<double>& betas) {
  util::require(gammas.size() == betas.size(), "QAOA: angle count mismatch");
  const auto energies = energy_table(qubo);
  return run_circuit(energies, qubo.num_variables(), gammas, betas, nullptr);
}

QaoaResult QaoaSolver::solve_qubo(const model::QuboModel& qubo) const {
  const std::size_t n = qubo.num_variables();
  util::require(n >= 1 && n <= 20,
                "QaoaSolver: instance too large for state-vector simulation "
                "(max 20 variables)");
  util::require(params_.layers >= 1, "QaoaSolver: need at least one layer");

  const auto energies = energy_table(qubo);
  // Normalize the cost scale so gamma angles live on a sane range.
  double max_abs = 1e-12;
  for (double e : energies) max_abs = std::max(max_abs, std::abs(e));
  std::vector<double> scaled(energies.size());
  for (std::size_t z = 0; z < energies.size(); ++z) {
    scaled[z] = energies[z] / max_abs * std::numbers::pi;
  }

  QaoaResult result;
  util::Rng rng(params_.seed);

  std::size_t evals = 0;
  util::Rng noise_rng(params_.seed ^ 0xD1CEF00DULL);
  auto objective = [&](const std::vector<double>& angles) {
    std::vector<double> gammas(angles.begin(),
                               angles.begin() + static_cast<std::ptrdiff_t>(params_.layers));
    std::vector<double> betas(angles.begin() + static_cast<std::ptrdiff_t>(params_.layers),
                              angles.end());
    ++evals;
    return run_noisy_expectation(scaled, n, gammas, betas, params_.depolarizing_prob,
                                 params_.noise_trajectories, noise_rng);
  };

  double best_value = std::numeric_limits<double>::infinity();
  std::vector<double> best_angles;
  for (std::size_t restart = 0; restart < params_.optimizer_restarts; ++restart) {
    std::vector<double> start(2 * params_.layers);
    for (std::size_t layer = 0; layer < params_.layers; ++layer) {
      // Linear ramp initialization (a good QAOA heuristic) plus jitter.
      const double t = (static_cast<double>(layer) + 1.0) /
                       static_cast<double>(params_.layers + 1);
      start[layer] = 0.8 * t + 0.2 * rng.next_double();                  // gamma
      start[params_.layers + layer] = 0.8 * (1.0 - t) + 0.2 * rng.next_double();
    }
    util::NelderMeadParams nm;
    nm.max_evaluations = params_.optimizer_evals / params_.optimizer_restarts;
    nm.initial_step = 0.3;
    const auto opt = util::nelder_mead(objective, std::move(start), nm);
    if (opt.value < best_value) {
      best_value = opt.value;
      best_angles = opt.x;
    }
  }

  result.gammas.assign(best_angles.begin(),
                       best_angles.begin() + static_cast<std::ptrdiff_t>(params_.layers));
  result.betas.assign(best_angles.begin() + static_cast<std::ptrdiff_t>(params_.layers),
                      best_angles.end());
  result.circuit_evaluations = evals;

  // Final state with optimal angles; measure. With noise, shots are drawn
  // from a fresh trajectory each time (hardware-like sampling).
  StateVector psi(n);
  (void)run_circuit(scaled, n, result.gammas, result.betas, &psi,
                    params_.depolarizing_prob,
                    params_.depolarizing_prob > 0.0 ? &noise_rng : nullptr);
  result.expectation = psi.expectation_diagonal(energies);

  std::uint64_t best_z = 0;
  double best_energy = std::numeric_limits<double>::infinity();
  std::vector<std::uint8_t> seen(energies.size(), 0);
  for (std::size_t shot = 0; shot < params_.samples; ++shot) {
    const std::uint64_t z = psi.sample(rng);
    if (!seen[z]) {
      seen[z] = 1;
      model::State state(n);
      for (std::size_t q = 0; q < n; ++q) state[q] = (z >> q) & 1u;
      result.samples.add({std::move(state), energies[z], 0.0, true});
    }
    if (energies[z] < best_energy) {
      best_energy = energies[z];
      best_z = z;
    }
  }
  model::State state(n);
  for (std::size_t q = 0; q < n; ++q) state[q] = (best_z >> q) & 1u;
  result.best = {std::move(state), best_energy, 0.0, true};
  return result;
}

QaoaResult QaoaSolver::solve_ising(const model::IsingModel& ising) const {
  const model::QuboModel qubo = model::ising_to_qubo(ising);
  QaoaResult result = solve_qubo(qubo);
  // Report Ising energy for the chosen state (identical by construction).
  const auto spins = model::state_to_spins(result.best.state);
  result.best.energy = ising.energy(spins);
  return result;
}

}  // namespace qulrb::quantum
