#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace qulrb::quantum {

using Amplitude = std::complex<double>;

/// Dense state-vector simulator for small quantum registers (the gate-based
/// backend the paper's Section VI points to via the Munich Quantum Software
/// Stack). Qubit q corresponds to bit q of the basis index (little-endian).
/// Practical up to ~22 qubits (2^22 amplitudes, 64 MiB).
class StateVector {
 public:
  /// Initializes to |0...0>.
  explicit StateVector(std::size_t num_qubits);

  std::size_t num_qubits() const noexcept { return num_qubits_; }
  std::size_t dimension() const noexcept { return amplitudes_.size(); }
  std::span<const Amplitude> amplitudes() const noexcept { return amplitudes_; }

  // --- single-qubit gates ---------------------------------------------------
  void apply_h(std::size_t qubit);
  void apply_x(std::size_t qubit);
  void apply_z(std::size_t qubit);
  void apply_rx(std::size_t qubit, double theta);
  void apply_ry(std::size_t qubit, double theta);
  void apply_rz(std::size_t qubit, double theta);
  /// Arbitrary single-qubit unitary [[a, b], [c, d]].
  void apply_unitary(std::size_t qubit, Amplitude a, Amplitude b, Amplitude c,
                     Amplitude d);

  // --- two-qubit gates --------------------------------------------------------
  void apply_cnot(std::size_t control, std::size_t target);
  void apply_cz(std::size_t control, std::size_t target);
  /// exp(-i theta/2 Z_a Z_b) — the QAOA cost-layer primitive.
  void apply_rzz(std::size_t a, std::size_t b, double theta);

  // --- bulk / diagonal --------------------------------------------------------
  /// Multiply each basis amplitude |z> by exp(-i * phases[z]). This is how a
  /// diagonal cost Hamiltonian layer e^{-i gamma C} is applied exactly.
  void apply_diagonal_phases(std::span<const double> phases);

  /// Hadamard on every qubit (the |+>^n QAOA start state).
  void apply_h_all();

  // --- measurement ------------------------------------------------------------
  double probability(std::uint64_t basis_state) const;
  /// <psi| diag(values) |psi> for a diagonal observable.
  double expectation_diagonal(std::span<const double> values) const;
  /// Sample a basis state from |amplitude|^2.
  std::uint64_t sample(util::Rng& rng) const;
  /// Squared norm (should stay 1 up to rounding; exposed for tests).
  double norm_squared() const;

 private:
  std::size_t num_qubits_;
  std::vector<Amplitude> amplitudes_;
};

}  // namespace qulrb::quantum
