#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace qulrb::router {

/// In-flight request coalescer. Identical concurrent solve requests — same
/// canonical body, i.e. same (topology, load vector, k) and solver knobs —
/// share one backend solve: the first arrival becomes the group's leader and
/// is forwarded, later arrivals just register a delivery callback and ride
/// the leader's response. The group id doubles as the wire id toward the
/// backend and as the routed request's trace id ("rid"), so all members of a
/// group correlate to the one Perfetto document their shared solve produced.
///
/// Purely bookkeeping — no sockets, no clocks — so the single-solve
/// semantics are unit-testable under real concurrency.
class Coalescer {
 public:
  /// Delivery callback: receives the finished backend response line; the
  /// waiter substitutes its own client id (rewrite_response_id) and writes it
  /// out. Runs on the backend reader thread; must not block.
  using Deliver = std::function<void(const std::string& line)>;

  struct Waiter {
    std::uint64_t client_id = 0;
    Deliver deliver;
  };

  struct Join {
    std::uint64_t group = 0;  ///< group id == wire id == rid
    bool leader = false;      ///< caller must forward the request
  };

  /// When disabled, every join opens a fresh single-member group (the
  /// delivery bookkeeping is still used; only the sharing is off).
  explicit Coalescer(bool enabled = true) : enabled_(enabled) {}

  /// Join (or open) the group for `key`. Keys are canonical request bodies:
  /// equality is a string compare, so "identical request" means identical
  /// wire-visible solve.
  Join join(const std::string& key, std::uint64_t client_id, Deliver deliver);

  /// Close a group and take its waiters (arrival order, leader first).
  /// Empty when the group is unknown (already completed or cancelled).
  std::vector<Waiter> complete(std::uint64_t group);

  /// Remove one waiter from a group (client cancelled or its connection
  /// died). Returns the number of waiters left, or SIZE_MAX when the group
  /// was unknown. A group left with zero waiters is closed.
  std::size_t detach(std::uint64_t group, std::uint64_t client_id);

  /// Close every group (router shutdown) and hand back the waiters.
  std::vector<Waiter> take_all();

  std::size_t inflight_groups() const;
  /// Current waiters of a group (0 when unknown) — the cancel path uses this
  /// to decide between cancelling the backend solve (sole waiter) and just
  /// detaching (the solve is shared).
  std::size_t waiter_count(std::uint64_t group) const;
  /// Requests that shared an already-in-flight solve instead of spawning
  /// their own (followers).
  std::uint64_t coalesced_total() const;

 private:
  struct Group {
    std::string key;
    std::vector<Waiter> waiters;
  };

  bool enabled_;
  mutable std::mutex mutex_;
  std::uint64_t next_group_ = 1;
  std::uint64_t coalesced_ = 0;
  std::unordered_map<std::uint64_t, Group> groups_;
  std::unordered_map<std::string, std::uint64_t> by_key_;
};

/// Replace the value of the top-level "id" field of a JSON response line
/// with `id`, returning the rewritten line. String-aware and depth-aware (an
/// "id" inside an error message or a nested object is left alone); appends
/// nothing when the line carries no top-level id. This is how one coalesced
/// backend response fans out to N waiters, each seeing its own correlation
/// id, without reparsing the whole document per waiter.
std::string rewrite_response_id(const std::string& line, std::uint64_t id);

}  // namespace qulrb::router
