#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace qulrb::router {

/// What a routing policy sees of one backend when it picks. The router
/// builds these views from two sources with very different freshness: the
/// `inflight` count is its own bookkeeping (exact, always current), while
/// `queue_depth` and `cache_hit_rate` come from the last `{"op":"stats"}`
/// probe and are `stats_age_ms` old. The stale-information policy is the one
/// that deliberately keys on the old data — that is the degradation the
/// ImrulKayes stale-queue model studies.
struct BackendView {
  bool healthy = true;
  std::size_t queue_depth = 0;   ///< backend-reported, from the last probe
  std::size_t inflight = 0;      ///< router-side outstanding requests (fresh)
  double cache_hit_rate = 0.0;   ///< backend-reported, from the last probe
  double stats_age_ms = 0.0;     ///< how old queue_depth / cache_hit_rate are
};

enum class PolicyKind : std::uint8_t {
  kRandom,              ///< uniform over healthy backends
  kRoundRobin,          ///< cycle over healthy backends
  kShortestQueue,       ///< min (probed queue depth + fresh router inflight)
  kShortestQueueStale,  ///< min probed queue depth only, snapshots d ms old
  kCacheAffinity,       ///< consistent hash on topology key, bounded-load spill
};

/// Parse "--policy" values: random | round-robin | shortest-queue |
/// shortest-queue-stale | cache-affinity. Throws util::InvalidArgument.
PolicyKind parse_policy(const std::string& name);
const char* to_string(PolicyKind kind);

/// Consistent-hash ring over backend indices: each backend owns `vnodes`
/// points on a 64-bit ring, a key maps to the first point clockwise of its
/// hash. Membership changes move only the keys whose owning arc changed
/// (≈ 1/N of the keyspace per added or removed backend), which is what keeps
/// per-backend SessionCache contents valid across scale-out — the property
/// the ring tests pin down.
class HashRing {
 public:
  explicit HashRing(std::size_t vnodes = 64) : vnodes_(vnodes) {}

  /// Rebuild the ring for the given member set. `members[i]` is a backend
  /// index; order does not matter (points depend only on the index value).
  void rebuild(const std::vector<std::size_t>& members);

  bool empty() const noexcept { return points_.size() == 0; }

  /// Owning backend index for `key_hash`.
  std::size_t owner(std::uint64_t key_hash) const;

  /// Owner plus up to `count - 1` distinct fallback backends in ring walk
  /// order — the spill sequence for bounded-load placement.
  std::vector<std::size_t> owners(std::uint64_t key_hash,
                                  std::size_t count) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::size_t backend;
  };
  std::size_t vnodes_;
  std::vector<Point> points_;  ///< sorted by hash
};

/// Stateless 64-bit mix used for ring points and topology keys (splitmix64
/// finalizer — deterministic across runs and platforms, unlike std::hash).
std::uint64_t mix64(std::uint64_t x) noexcept;

/// Combine a hash with the next value (boost-style, on the mixed value).
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) noexcept {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// One backend choice. The policies are pure decision functions over the
/// view vector — no sockets, no clocks — so the unit tests can replay any
/// fleet state against them deterministically.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  virtual PolicyKind kind() const noexcept = 0;

  /// Backend index for a request whose topology key hashes to `topo_hash`,
  /// or `views.size()` when no backend is eligible (all marked down).
  virtual std::size_t pick(std::uint64_t topo_hash,
                           const std::vector<BackendView>& views) = 0;
};

struct PolicyConfig {
  std::uint64_t seed = 1;       ///< random policy's RNG seed
  std::size_t vnodes = 64;      ///< cache-affinity ring points per backend
  /// Bounded-load factor for cache-affinity: spill off the ring owner when
  /// its in-flight count exceeds load_factor * (avg inflight + 1). Keeps one
  /// hot topology key from drowning its home backend while every other key
  /// stays put.
  double load_factor = 1.25;
};

std::unique_ptr<RoutingPolicy> make_policy(PolicyKind kind,
                                           const PolicyConfig& config = {});

}  // namespace qulrb::router
