#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/json_value.hpp"
#include "obs/metrics.hpp"
#include "router/policy.hpp"

namespace qulrb::router {

struct BackendAddress {
  std::string host = "127.0.0.1";
  int port = 0;

  std::string label() const { return host + ":" + std::to_string(port); }
};

/// Parse "7471,7472" or "host:7471,host:7472" (forms may mix).
std::vector<BackendAddress> parse_backend_list(const std::string& csv);

/// Persistent connections to N qulrb_serve backends: one socket per backend,
/// a reader thread per live connection, a maintenance thread that probes
/// health ({"op":"health"} → queue depth, inflight, cache hit rate — the
/// backend answers it from relaxed atomics, off its request-path lock) and
/// reconnects marked-down backends.
///
/// Mark-down is immediate on any send/read failure: the socket is shut down
/// (not closed — the fd stays reserved so a racing writer cannot hit a
/// recycled descriptor), pending control callbacks fire with nullptr, and
/// the router's on_down hook runs so in-flight solves can fail over. The fd
/// is closed and reopened only by the maintenance thread, which is the sole
/// (re)connector; a successful reconnect marks the backend back up.
class BackendPool {
 public:
  struct Params {
    std::vector<BackendAddress> backends;
    double probe_interval_ms = 50.0;   ///< health/stats probe cadence
    double reconnect_ms = 200.0;       ///< retry cadence for down backends
    double send_timeout_ms = 2000.0;   ///< SO_SNDTIMEO toward a backend
  };

  /// A solve/cancel/error response line from a backend (already parsed once;
  /// `doc` is the parsed form of `line`). Runs on that backend's reader
  /// thread.
  using LineHandler = std::function<void(std::size_t backend,
                                         const std::string& line,
                                         const io::JsonValue& doc)>;
  /// Backend just went down. May run on any thread that noticed (reader,
  /// sender, maintenance); must tolerate being called while other backends
  /// are being written to.
  using DownHandler = std::function<void(std::size_t backend)>;
  /// Control-op (stats/metrics/trace) response: the raw line (for verbatim
  /// JSON splicing into aggregated router responses) and its parsed form.
  /// Both nullptr when the backend died before answering.
  using ControlCallback =
      std::function<void(const std::string* line, const io::JsonValue* doc)>;

  BackendPool(Params params, obs::MetricsRegistry& registry);
  ~BackendPool();

  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  /// Connect to every backend (best effort — failures stay down and the
  /// maintenance thread keeps retrying) and start the probe/reconnect loop.
  void start(LineHandler on_line, DownHandler on_down);
  void stop();

  std::size_t size() const noexcept { return backends_.size(); }
  const BackendAddress& address(std::size_t b) const {
    return backends_[b]->addr;
  }

  /// Send one protocol line (newline appended). False = backend down (it was
  /// marked down if the failure was fresh).
  bool send(std::size_t backend, const std::string& line);

  /// Send a control op whose response is answered in order on the backend
  /// connection (the serve session handles control ops inline, so FIFO per
  /// connection holds). Registration and send are one atomic step, so waiter
  /// order always equals wire order even with concurrent callers. The
  /// callback runs on the backend's reader thread. On a false return the
  /// callback is NOT retained: either it was never registered (backend
  /// already down) or it has already been answered with nullptr by the
  /// mark-down drain.
  bool send_control(std::size_t backend, const std::string& line,
                    ControlCallback callback);

  /// Fleet snapshot for the routing policies: health, probed queue depth and
  /// cache hit rate (with their age), fresh router-side inflight counts.
  std::vector<BackendView> views() const;

  bool healthy(std::size_t backend) const;
  std::size_t healthy_count() const;

  void inflight_add(std::size_t backend, std::int64_t delta);
  std::size_t inflight(std::size_t backend) const;
  std::uint64_t routed_total(std::size_t backend) const;
  void note_routed(std::size_t backend);

 private:
  /// A registered control-op response slot. The token lets the failing
  /// sender withdraw exactly its own waiter — popping an end of the deque
  /// could withdraw a concurrent caller's slot and hang that caller.
  struct ControlWaiter {
    std::uint64_t token = 0;
    ControlCallback callback;
  };

  struct Backend {
    BackendAddress addr;
    std::atomic<int> fd{-1};
    std::atomic<bool> healthy{false};
    /// Bumped by every successful (re)connect. Failure observers carry the
    /// generation they were talking to into mark_down, which ignores stale
    /// generations — a sender that noticed a failure, lost the CPU, and woke
    /// after the maintenance thread already reconnected must not tear down
    /// the fresh connection.
    std::atomic<std::uint64_t> conn_gen{0};
    std::mutex write_mutex;
    std::thread reader;

    // Probe data (written by the probe callback on the reader thread).
    std::atomic<std::size_t> queue_depth{0};
    std::atomic<double> cache_hit_rate{0.0};
    std::atomic<double> last_probe_ms{-1.0};  ///< pool-epoch ms, -1 = never

    // Router-side bookkeeping.
    std::atomic<std::size_t> inflight{0};
    std::atomic<std::uint64_t> routed{0};

    std::mutex control_mutex;
    std::deque<ControlWaiter> control_waiters;
    std::uint64_t next_control_token = 1;  ///< guarded by control_mutex

    std::chrono::steady_clock::time_point last_attempt{};

    obs::Gauge* g_healthy = nullptr;
    obs::Gauge* g_queue_depth = nullptr;
    obs::Gauge* g_inflight = nullptr;
  };

  double now_ms() const;
  bool connect_backend(std::size_t b);
  void mark_down(std::size_t b, std::uint64_t gen);
  void reader_loop(std::size_t b, int fd, std::uint64_t gen);
  void maintenance_loop();
  void probe(std::size_t b);

  Params params_;
  std::vector<std::unique_ptr<Backend>> backends_;
  LineHandler on_line_;
  DownHandler on_down_;
  std::atomic<bool> stopping_{false};
  std::thread maintenance_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace qulrb::router
