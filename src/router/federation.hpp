#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace qulrb::io {
class JsonValue;
class JsonWriter;
}  // namespace qulrb::io

namespace qulrb::router {

/// Cross-backend metric federation: the router periodically pulls every
/// backend's serialized registry ({"op":"obs"}) and this class keeps the
/// latest parsed snapshot per backend. The fleet-level exposition is
/// computed at scrape time by folding all live snapshots into a fresh
/// temporary MetricsRegistry — histogram folding goes through
/// LogHistogram::add_bucket/add_sum, the same plain addition merge() uses,
/// so the merged quantiles match an exact bucket-wise merge by construction.
///
/// Names are rewritten `qulrb_*` -> `qulrb_fleet_*` so the fleet families
/// never collide with the router's own registry in one exposition. The one
/// exception is `qulrb_build_info`: identity must stay per-process, so it is
/// re-emitted unmerged with an extra `instance` label instead.
class Federation {
 public:
  explicit Federation(std::size_t num_backends);

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// Ingest one backend's obs document (the object under "obs" in its
  /// response; `raw` is its verbatim text for splicing, `doc` the parsed
  /// form). Returns false — snapshot untouched — when the doc is not a
  /// registry serialization.
  bool update(std::size_t backend, const std::string& backend_label,
              const std::string& raw, const io::JsonValue& doc,
              double now_ms);

  /// Backend marked down: drop its snapshot, so the fleet view never keeps
  /// counting a dead backend's stale metrics.
  void invalidate(std::size_t backend);

  /// Backends with a live snapshot right now.
  std::size_t reporting() const;

  /// Fleet-level Prometheus families (see class comment). Appends
  /// `qulrb_fleet_backends` / `qulrb_fleet_backends_reporting` gauges so the
  /// scrape shows federation coverage.
  std::string fleet_prometheus() const;

  /// Fleet JSON view for the router's own {"op":"obs"} response: one entry
  /// per backend with freshness and the verbatim obs document (null when the
  /// backend has not reported). Written as the next value (an array).
  void write_fleet_json(io::JsonWriter& w, double now_ms) const;

  /// `qulrb_foo` -> `qulrb_fleet_foo`; names outside the qulrb_ namespace
  /// get the `qulrb_fleet_` prefix whole.
  static std::string fleet_name(const std::string& name);

 private:
  struct ScalarSample {
    std::string name;
    std::string labels;  ///< raw serialized label body, verbatim
    double value = 0.0;
  };
  struct HistSample {
    std::string name;
    std::string labels;
    obs::HistogramLayout layout;
    std::vector<std::pair<std::size_t, std::uint64_t>> counts;  ///< sparse
    double sum = 0.0;
  };
  struct Snapshot {
    bool valid = false;
    std::string label;       ///< backend address ("host:port")
    double updated_ms = -1.0;
    std::string raw;         ///< verbatim obs doc for JSON splicing
    std::vector<ScalarSample> counters;
    std::vector<ScalarSample> gauges;
    std::vector<HistSample> hists;
  };

  mutable std::mutex mutex_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace qulrb::router
