#include "router/policy.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace qulrb::router {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

PolicyKind parse_policy(const std::string& name) {
  if (name == "random") return PolicyKind::kRandom;
  if (name == "round-robin") return PolicyKind::kRoundRobin;
  if (name == "shortest-queue") return PolicyKind::kShortestQueue;
  if (name == "shortest-queue-stale") return PolicyKind::kShortestQueueStale;
  if (name == "cache-affinity") return PolicyKind::kCacheAffinity;
  throw util::InvalidArgument(
      "unknown policy '" + name +
      "' (want random, round-robin, shortest-queue, shortest-queue-stale, "
      "or cache-affinity)");
}

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRandom: return "random";
    case PolicyKind::kRoundRobin: return "round-robin";
    case PolicyKind::kShortestQueue: return "shortest-queue";
    case PolicyKind::kShortestQueueStale: return "shortest-queue-stale";
    case PolicyKind::kCacheAffinity: return "cache-affinity";
  }
  return "?";
}

// ------------------------------------------------------------ hash ring ---

void HashRing::rebuild(const std::vector<std::size_t>& members) {
  points_.clear();
  points_.reserve(members.size() * vnodes_);
  for (const std::size_t backend : members) {
    for (std::size_t v = 0; v < vnodes_; ++v) {
      // Point position depends only on (backend index, replica number):
      // adding or removing a member leaves every other member's points
      // exactly where they were — that is the whole trick.
      const std::uint64_t h =
          mix64(hash_combine(mix64(backend + 1), v + 1));
      points_.push_back(Point{h, backend});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.backend < b.backend;
            });
}

std::size_t HashRing::owner(std::uint64_t key_hash) const {
  util::require(!points_.empty(), "HashRing: no members");
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key_hash,
      [](const Point& p, std::uint64_t h) { return p.hash < h; });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->backend;
}

std::vector<std::size_t> HashRing::owners(std::uint64_t key_hash,
                                          std::size_t count) const {
  util::require(!points_.empty(), "HashRing: no members");
  std::vector<std::size_t> out;
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key_hash,
      [](const Point& p, std::uint64_t h) { return p.hash < h; });
  for (std::size_t walked = 0; walked < points_.size() && out.size() < count;
       ++walked, ++it) {
    if (it == points_.end()) it = points_.begin();
    if (std::find(out.begin(), out.end(), it->backend) == out.end()) {
      out.push_back(it->backend);
    }
  }
  return out;
}

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

class RandomPolicy final : public RoutingPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : state_(seed + 0x2545f4914f6cdd1dULL) {}

  PolicyKind kind() const noexcept override { return PolicyKind::kRandom; }

  std::size_t pick(std::uint64_t,
                   const std::vector<BackendView>& views) override {
    std::size_t healthy = 0;
    for (const BackendView& v : views) healthy += v.healthy ? 1 : 0;
    if (healthy == 0) return views.size();
    std::size_t target = mix64(state_++) % healthy;
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (views[i].healthy && target-- == 0) return i;
    }
    return views.size();
  }

 private:
  std::uint64_t state_;
};

class RoundRobinPolicy final : public RoutingPolicy {
 public:
  PolicyKind kind() const noexcept override { return PolicyKind::kRoundRobin; }

  std::size_t pick(std::uint64_t,
                   const std::vector<BackendView>& views) override {
    for (std::size_t tried = 0; tried < views.size(); ++tried) {
      const std::size_t i = next_++ % views.size();
      if (views[i].healthy) return i;
    }
    return views.size();
  }

 private:
  std::size_t next_ = 0;
};

/// Shared by the fresh and stale shortest-queue variants; they differ only
/// in whether the router-local in-flight count (always current) joins the
/// probed depth. The stale variant sees *only* probe data, so everything it
/// knows is stats_age_ms old — with a large staleness window every arrival
/// in the window herds onto whichever backend looked shortest at the last
/// probe, which is exactly the degradation the tests measure.
std::size_t pick_shortest(const std::vector<BackendView>& views,
                          bool add_fresh_inflight) {
  std::size_t best = kNone;
  std::size_t best_depth = 0;
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (!views[i].healthy) continue;
    const std::size_t depth =
        views[i].queue_depth + (add_fresh_inflight ? views[i].inflight : 0);
    if (best == kNone || depth < best_depth) {
      best = i;
      best_depth = depth;
    }
  }
  return best == kNone ? views.size() : best;
}

class ShortestQueuePolicy final : public RoutingPolicy {
 public:
  PolicyKind kind() const noexcept override {
    return PolicyKind::kShortestQueue;
  }

  std::size_t pick(std::uint64_t,
                   const std::vector<BackendView>& views) override {
    return pick_shortest(views, /*add_fresh_inflight=*/true);
  }
};

class ShortestQueueStalePolicy final : public RoutingPolicy {
 public:
  PolicyKind kind() const noexcept override {
    return PolicyKind::kShortestQueueStale;
  }

  std::size_t pick(std::uint64_t,
                   const std::vector<BackendView>& views) override {
    return pick_shortest(views, /*add_fresh_inflight=*/false);
  }
};

class CacheAffinityPolicy final : public RoutingPolicy {
 public:
  explicit CacheAffinityPolicy(const PolicyConfig& config)
      : ring_(config.vnodes), load_factor_(config.load_factor) {}

  PolicyKind kind() const noexcept override {
    return PolicyKind::kCacheAffinity;
  }

  std::size_t pick(std::uint64_t topo_hash,
                   const std::vector<BackendView>& views) override {
    std::vector<std::size_t> members;
    std::size_t total_inflight = 0;
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (views[i].healthy) {
        members.push_back(i);
        total_inflight += views[i].inflight;
      }
    }
    if (members.empty()) return views.size();
    if (members != members_) {
      // Membership changed (mark-down or mark-up): rebuild. Points of
      // surviving members never move, so only the dead backend's keys
      // relocate.
      ring_.rebuild(members);
      members_ = members;
    }
    // Bounded load: follow the ring from the key's owner and take the first
    // backend under the spill threshold; a fleet that is uniformly slammed
    // falls back to the true owner (affinity beats perfect levelling when
    // every choice is equally bad).
    const double avg =
        static_cast<double>(total_inflight) / static_cast<double>(members.size());
    const double limit = load_factor_ * (avg + 1.0);
    const std::vector<std::size_t> order = ring_.owners(topo_hash, members.size());
    for (const std::size_t backend : order) {
      if (static_cast<double>(views[backend].inflight) <= limit) return backend;
    }
    return order.front();
  }

 private:
  HashRing ring_;
  double load_factor_;
  std::vector<std::size_t> members_;  ///< healthy set the ring was built for
};

}  // namespace

std::unique_ptr<RoutingPolicy> make_policy(PolicyKind kind,
                                           const PolicyConfig& config) {
  switch (kind) {
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>(config.seed);
    case PolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case PolicyKind::kShortestQueue:
      return std::make_unique<ShortestQueuePolicy>();
    case PolicyKind::kShortestQueueStale:
      return std::make_unique<ShortestQueueStalePolicy>();
    case PolicyKind::kCacheAffinity:
      return std::make_unique<CacheAffinityPolicy>(config);
  }
  throw util::InvalidArgument("make_policy: unknown kind");
}

}  // namespace qulrb::router
