#include "router/federation.hpp"

#include <utility>

#include "io/json.hpp"
#include "io/json_value.hpp"
#include "obs/histogram_wire.hpp"

namespace qulrb::router {

Federation::Federation(std::size_t num_backends) {
  snapshots_.resize(num_backends);
}

std::string Federation::fleet_name(const std::string& name) {
  constexpr const char* kPrefix = "qulrb_";
  if (name.rfind(kPrefix, 0) == 0) {
    return "qulrb_fleet_" + name.substr(6);
  }
  return "qulrb_fleet_" + name;
}

bool Federation::update(std::size_t backend, const std::string& backend_label,
                        const std::string& raw, const io::JsonValue& doc,
                        double now_ms) {
  if (backend >= snapshots_.size()) return false;
  // The registry serialization may sit at the top level of the obs doc or
  // nested under "registry" (the serve shell nests it next to role/build/slo).
  const io::JsonValue* reg = doc.find("registry");
  if (reg == nullptr) reg = &doc;
  const io::JsonValue* counters = reg->find("counters");
  const io::JsonValue* gauges = reg->find("gauges");
  const io::JsonValue* hists = reg->find("histograms");
  if (counters == nullptr || !counters->is_array() || gauges == nullptr ||
      !gauges->is_array() || hists == nullptr || !hists->is_array()) {
    return false;
  }

  Snapshot snap;
  snap.valid = true;
  snap.label = backend_label;
  snap.updated_ms = now_ms;
  snap.raw = raw;

  const auto parse_scalars = [](const io::JsonValue& list,
                                std::vector<ScalarSample>& out) {
    for (const io::JsonValue& entry : list.as_array()) {
      if (!entry.is_object()) return false;
      ScalarSample s;
      s.name = entry.string_or("name", "");
      if (s.name.empty()) return false;
      s.labels = entry.string_or("labels", "");
      s.value = entry.number_or("value", 0.0);
      out.push_back(std::move(s));
    }
    return true;
  };
  if (!parse_scalars(*counters, snap.counters) ||
      !parse_scalars(*gauges, snap.gauges)) {
    return false;
  }

  for (const io::JsonValue& entry : hists->as_array()) {
    if (!entry.is_object()) return false;
    HistSample h;
    h.name = entry.string_or("name", "");
    if (h.name.empty()) return false;
    h.labels = entry.string_or("labels", "");
    const io::JsonValue* data = entry.find("data");
    if (data == nullptr || !obs::histogram_layout_from_json(*data, h.layout)) {
      return false;
    }
    const io::JsonValue* counts = data->find("counts");
    if (counts == nullptr || !counts->is_array()) return false;
    for (const io::JsonValue& pair : counts->as_array()) {
      if (!pair.is_array() || pair.as_array().size() != 2) return false;
      const std::int64_t b = pair.as_array()[0].as_int();
      const std::int64_t c = pair.as_array()[1].as_int();
      if (b < 0 || c < 0 ||
          static_cast<std::size_t>(b) >= h.layout.buckets) {
        return false;
      }
      h.counts.emplace_back(static_cast<std::size_t>(b),
                            static_cast<std::uint64_t>(c));
    }
    h.sum = data->number_or("sum", 0.0);
    snap.hists.push_back(std::move(h));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  snapshots_[backend] = std::move(snap);
  return true;
}

void Federation::invalidate(std::size_t backend) {
  if (backend >= snapshots_.size()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot& snap = snapshots_[backend];
  snap.valid = false;
  snap.raw.clear();
  snap.counters.clear();
  snap.gauges.clear();
  snap.hists.clear();
}

std::size_t Federation::reporting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const Snapshot& snap : snapshots_) {
    if (snap.valid) ++n;
  }
  return n;
}

std::string Federation::fleet_prometheus() const {
  // Fold every live snapshot into a fresh registry and reuse the standard
  // exposition: the merged quantiles are exactly those of a bucket-wise
  // merge because that is literally how they are computed.
  obs::MetricsRegistry fleet;
  std::size_t live = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Snapshot& snap : snapshots_) {
      if (!snap.valid) continue;
      ++live;
      for (const ScalarSample& c : snap.counters) {
        fleet.counter(fleet_name(c.name), "", c.labels)
            .inc(static_cast<std::uint64_t>(c.value));
      }
      for (const ScalarSample& g : snap.gauges) {
        if (g.name == "qulrb_build_info" ||
            g.name.rfind("qulrb_process_", 0) == 0) {
          // Identity stays per-process: re-emit unmerged, instance-labelled.
          // Process self-metrics (RSS, fds, start time) describe one process
          // — a fleet sum would be nonsense, so they federate like identity.
          std::string labels = g.labels;
          if (!labels.empty()) labels += ',';
          labels += "instance=\"" +
                    obs::MetricsRegistry::escape_label_value(snap.label) +
                    "\"";
          fleet.gauge(g.name, "", labels).set(g.value);
          continue;
        }
        fleet.gauge(fleet_name(g.name), "", g.labels).add(g.value);
      }
      for (const HistSample& h : snap.hists) {
        obs::LogHistogram& fh =
            fleet.histogram(fleet_name(h.name), "", h.labels, h.layout);
        for (const auto& [b, c] : h.counts) fh.add_bucket(b, c);
        fh.add_sum(h.sum);
      }
    }
    fleet
        .gauge("qulrb_fleet_backends",
               "Backends this router federates metrics from")
        .set(static_cast<double>(snapshots_.size()));
    fleet
        .gauge("qulrb_fleet_backends_reporting",
               "Backends with a live obs snapshot in the fleet view")
        .set(static_cast<double>(live));
  }
  return fleet.to_prometheus();
}

void Federation::write_fleet_json(io::JsonWriter& w, double now_ms) const {
  std::lock_guard<std::mutex> lock(mutex_);
  w.begin_array();
  for (const Snapshot& snap : snapshots_) {
    w.begin_object();
    w.field("backend", snap.label);
    w.field("reporting", snap.valid);
    if (snap.valid) {
      w.field("age_ms", now_ms - snap.updated_ms);
      w.key("obs").raw_value(snap.raw);
    } else {
      w.key("obs").null();
    }
    w.end_object();
  }
  w.end_array();
}

}  // namespace qulrb::router
