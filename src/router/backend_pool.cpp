#include "router/backend_pool.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace qulrb::router {

std::vector<BackendAddress> parse_backend_list(const std::string& csv) {
  std::vector<BackendAddress> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string item = csv.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) continue;
    BackendAddress addr;
    const std::size_t colon = item.rfind(':');
    try {
      if (colon == std::string::npos) {
        addr.port = std::stoi(item);
      } else {
        addr.host = item.substr(0, colon);
        addr.port = std::stoi(item.substr(colon + 1));
      }
    } catch (const std::exception&) {
      throw util::InvalidArgument("bad backend '" + item +
                                  "' (want PORT or HOST:PORT)");
    }
    util::require(addr.port > 0 && addr.port < 65536,
                  "bad backend port in '" + item + "'");
    out.push_back(std::move(addr));
  }
  util::require(!out.empty(), "backend list is empty");
  return out;
}

namespace {

/// Write the whole line + newline; retries EINTR, treats a send timeout the
/// same as a dead peer. Returns false on any unrecoverable failure.
bool send_all(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE, timeout (EAGAIN with SO_SNDTIMEO), EBADF, ...
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

BackendPool::BackendPool(Params params, obs::MetricsRegistry& registry)
    : params_(std::move(params)), epoch_(std::chrono::steady_clock::now()) {
  util::require(!params_.backends.empty(), "BackendPool: no backends");
  using Labels = obs::MetricsRegistry::Labels;
  backends_.reserve(params_.backends.size());
  for (const BackendAddress& addr : params_.backends) {
    auto b = std::make_unique<Backend>();
    b->addr = addr;
    const Labels labels{{"backend", addr.label()}};
    b->g_healthy = &registry.gauge("qulrb_router_backend_healthy",
                                   "1 when the backend connection is up",
                                   labels);
    b->g_queue_depth =
        &registry.gauge("qulrb_router_backend_queue_depth",
                        "Backend-reported queue depth (last probe)", labels);
    b->g_inflight =
        &registry.gauge("qulrb_router_backend_inflight",
                        "Router-side in-flight requests on this backend",
                        labels);
    backends_.push_back(std::move(b));
  }
}

BackendPool::~BackendPool() { stop(); }

double BackendPool::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void BackendPool::start(LineHandler on_line, DownHandler on_down) {
  on_line_ = std::move(on_line);
  on_down_ = std::move(on_down);
  for (std::size_t b = 0; b < backends_.size(); ++b) connect_backend(b);
  maintenance_ = std::thread([this] { maintenance_loop(); });
}

void BackendPool::stop() {
  if (stopping_.exchange(true)) return;
  if (maintenance_.joinable()) maintenance_.join();
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    Backend& backend = *backends_[b];
    const int fd = backend.fd.load(std::memory_order_relaxed);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    if (backend.reader.joinable()) backend.reader.join();
    if (fd >= 0) {
      ::close(fd);
      backend.fd.store(-1, std::memory_order_relaxed);
    }
  }
}

bool BackendPool::connect_backend(std::size_t b) {
  Backend& backend = *backends_[b];
  backend.last_attempt = std::chrono::steady_clock::now();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // A backend that stops reading must not wedge the router's client
  // sessions: bound the send side, and bound recv so the reader thread can
  // poll the stop flag.
  struct timeval send_tv;
  send_tv.tv_sec = static_cast<time_t>(params_.send_timeout_ms / 1000.0);
  send_tv.tv_usec = static_cast<suseconds_t>(
      static_cast<long>(params_.send_timeout_ms * 1000.0) % 1000000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_tv, sizeof(send_tv));
  struct timeval recv_tv;
  recv_tv.tv_sec = 0;
  recv_tv.tv_usec = 100 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &recv_tv, sizeof(recv_tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(backend.addr.port));
  if (::inet_pton(AF_INET, backend.addr.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }

  // The previous reader (if any) exited when its connection died; reap it
  // before handing the slot a new thread.
  if (backend.reader.joinable()) backend.reader.join();
  // Bump the generation before publishing healthy: anyone who observes the
  // new healthy=true also observes the new generation.
  const std::uint64_t gen =
      backend.conn_gen.load(std::memory_order_relaxed) + 1;
  backend.conn_gen.store(gen, std::memory_order_relaxed);
  backend.fd.store(fd, std::memory_order_release);
  backend.healthy.store(true, std::memory_order_release);
  backend.g_healthy->set(1.0);
  backend.reader = std::thread([this, b, fd, gen] { reader_loop(b, fd, gen); });
  probe(b);  // refresh stats immediately so the policies see the new member
  return true;
}

void BackendPool::mark_down(std::size_t b, std::uint64_t gen) {
  Backend& backend = *backends_[b];
  // A failure observer that stalled long enough for the maintenance thread to
  // reconnect carries a stale generation — it must not tear down the fresh
  // connection it never talked to.
  if (backend.conn_gen.load(std::memory_order_relaxed) != gen) return;
  if (!backend.healthy.exchange(false)) return;  // someone else already did
  backend.g_healthy->set(0.0);
  const int fd = backend.fd.load(std::memory_order_acquire);
  // Shut down, do NOT close: concurrent writers may still hold the fd, and a
  // recycled descriptor number is the worst failure mode a router can have.
  // The maintenance thread closes it once the reader has exited.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);

  std::deque<ControlWaiter> orphaned;
  {
    std::lock_guard<std::mutex> lock(backend.control_mutex);
    orphaned.swap(backend.control_waiters);
  }
  for (const auto& w : orphaned) {
    if (w.callback) w.callback(nullptr, nullptr);
  }
  if (on_down_) on_down_(b);
}

bool BackendPool::send(std::size_t backend_idx, const std::string& line) {
  Backend& backend = *backends_[backend_idx];
  bool sent = false;
  std::uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lock(backend.write_mutex);
    if (!backend.healthy.load(std::memory_order_acquire)) return false;
    gen = backend.conn_gen.load(std::memory_order_relaxed);
    const int fd = backend.fd.load(std::memory_order_acquire);
    if (fd < 0) return false;
    sent = send_all(fd, line);
  }
  // The down-path runs with no write_mutex held: on_down_ re-forwards this
  // backend's orphaned routes through send() to OTHER backends, so two
  // backends failing concurrently on different threads would deadlock on
  // each other's write_mutex if mark_down ran under the lock.
  if (!sent) mark_down(backend_idx, gen);
  return sent;
}

bool BackendPool::send_control(std::size_t backend_idx, const std::string& line,
                               ControlCallback callback) {
  Backend& backend = *backends_[backend_idx];
  bool sent = false;
  std::uint64_t token = 0;
  std::uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lock(backend.write_mutex);
    if (!backend.healthy.load(std::memory_order_acquire)) return false;
    gen = backend.conn_gen.load(std::memory_order_relaxed);
    const int fd = backend.fd.load(std::memory_order_acquire);
    if (fd < 0) return false;
    // Register and send under one hold of write_mutex: the reader matches
    // responses to waiters FIFO, so registration order must equal wire
    // order. As two separate critical sections, concurrent callers could
    // register in one order and send in the other, cross-wiring responses.
    {
      std::lock_guard<std::mutex> control_lock(backend.control_mutex);
      token = backend.next_control_token++;
      backend.control_waiters.push_back({token, std::move(callback)});
    }
    sent = send_all(fd, line);
  }
  if (sent) return true;
  // Nothing will answer; withdraw exactly our waiter by token (mark_down may
  // have drained it already, answering it with nullptr), then take the
  // down-path outside write_mutex (see send()).
  {
    std::lock_guard<std::mutex> control_lock(backend.control_mutex);
    for (auto it = backend.control_waiters.begin();
         it != backend.control_waiters.end(); ++it) {
      if (it->token == token) {
        backend.control_waiters.erase(it);
        break;
      }
    }
  }
  mark_down(backend_idx, gen);
  return false;
}

void BackendPool::reader_loop(std::size_t b, int fd, std::uint64_t gen) {
  Backend& backend = *backends_[b];
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_relaxed) &&
         backend.healthy.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // backend closed
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      io::JsonValue doc;
      try {
        doc = io::JsonValue::parse(line);
      } catch (const std::exception&) {
        continue;  // a torn line means the stream is sick, but keep reading
      }
      if (doc.find("stats") != nullptr || doc.find("metrics") != nullptr ||
          doc.find("traces") != nullptr || doc.find("obs") != nullptr ||
          doc.find("flight") != nullptr || doc.find("profile") != nullptr) {
        // Control responses come back in send order on this connection.
        ControlCallback cb;
        {
          std::lock_guard<std::mutex> lock(backend.control_mutex);
          if (!backend.control_waiters.empty()) {
            cb = std::move(backend.control_waiters.front().callback);
            backend.control_waiters.pop_front();
          }
        }
        if (cb) cb(&line, &doc);
      } else if (on_line_) {
        on_line_(b, line, doc);
      }
    }
    buffer.erase(0, start);
  }
  if (!stopping_.load(std::memory_order_relaxed)) mark_down(b, gen);
}

void BackendPool::probe(std::size_t b) {
  Backend& backend = *backends_[b];
  send_control(b, "{\"op\":\"health\"}", [this, &backend](const std::string*,
                                                        const io::JsonValue* doc) {
    if (doc == nullptr) return;
    const io::JsonValue* stats = doc->find("stats");
    if (stats == nullptr) return;
    backend.queue_depth.store(
        static_cast<std::size_t>(stats->int_or("queue_depth", 0)),
        std::memory_order_relaxed);
    backend.cache_hit_rate.store(stats->number_or("cache_hit_rate", 0.0),
                                 std::memory_order_relaxed);
    backend.last_probe_ms.store(now_ms(), std::memory_order_relaxed);
    backend.g_queue_depth->set(
        static_cast<double>(backend.queue_depth.load(std::memory_order_relaxed)));
  });
}

void BackendPool::maintenance_loop() {
  double last_probe = -1e9;
  while (!stopping_.load(std::memory_order_relaxed)) {
    const double now = now_ms();
    if (now - last_probe >= params_.probe_interval_ms) {
      last_probe = now;
      for (std::size_t b = 0; b < backends_.size(); ++b) {
        if (backends_[b]->healthy.load(std::memory_order_acquire)) probe(b);
      }
    }
    for (std::size_t b = 0; b < backends_.size(); ++b) {
      Backend& backend = *backends_[b];
      if (backend.healthy.load(std::memory_order_acquire)) continue;
      const auto since = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() -
                             backend.last_attempt)
                             .count();
      if (backend.last_attempt.time_since_epoch().count() != 0 &&
          since < params_.reconnect_ms) {
        continue;
      }
      // Sole closer: the old reader has exited (or never started); retire
      // the dead fd before dialing again.
      const int old_fd = backend.fd.load(std::memory_order_acquire);
      if (old_fd >= 0) {
        if (backend.reader.joinable()) backend.reader.join();
        std::lock_guard<std::mutex> lock(backend.write_mutex);
        ::close(old_fd);
        backend.fd.store(-1, std::memory_order_release);
      }
      connect_backend(b);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::vector<BackendView> BackendPool::views() const {
  std::vector<BackendView> out(backends_.size());
  const double now = now_ms();
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    const Backend& backend = *backends_[b];
    BackendView& v = out[b];
    v.healthy = backend.healthy.load(std::memory_order_acquire);
    v.queue_depth = backend.queue_depth.load(std::memory_order_relaxed);
    v.inflight = backend.inflight.load(std::memory_order_relaxed);
    v.cache_hit_rate = backend.cache_hit_rate.load(std::memory_order_relaxed);
    const double probed = backend.last_probe_ms.load(std::memory_order_relaxed);
    v.stats_age_ms = probed >= 0.0 ? now - probed : -1.0;
  }
  return out;
}

bool BackendPool::healthy(std::size_t backend) const {
  return backends_[backend]->healthy.load(std::memory_order_acquire);
}

std::size_t BackendPool::healthy_count() const {
  std::size_t n = 0;
  for (const auto& b : backends_) {
    if (b->healthy.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

void BackendPool::inflight_add(std::size_t backend, std::int64_t delta) {
  Backend& b = *backends_[backend];
  b.inflight.fetch_add(static_cast<std::size_t>(delta),
                       std::memory_order_relaxed);
  b.g_inflight->set(
      static_cast<double>(b.inflight.load(std::memory_order_relaxed)));
}

std::size_t BackendPool::inflight(std::size_t backend) const {
  return backends_[backend]->inflight.load(std::memory_order_relaxed);
}

std::uint64_t BackendPool::routed_total(std::size_t backend) const {
  return backends_[backend]->routed.load(std::memory_order_relaxed);
}

void BackendPool::note_routed(std::size_t backend) {
  backends_[backend]->routed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace qulrb::router
