#include "router/router.hpp"

#include <condition_variable>
#include <fstream>
#include <limits>
#include <utility>

#include "io/json.hpp"
#include "obs/histogram_wire.hpp"
#include "obs/profile_export.hpp"

namespace qulrb::router {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

std::string cancel_line(std::uint64_t group) {
  return "{\"op\":\"cancel\",\"id\":" + std::to_string(group) + "}";
}

}  // namespace

std::string extract_raw_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '{': case '[': ++depth; continue;
      case '}': case ']': --depth; continue;
      case '"': break;
      default: continue;
    }
    if (depth != 1 || line.compare(i, needle.size(), needle) != 0) {
      in_string = true;  // some other key or string value; skip it
      continue;
    }
    const std::size_t start = i + needle.size();
    if (start >= line.size()) return "";
    const char v = line[start];
    if (v == '{' || v == '[') {
      int d = 0;
      bool ins = false;
      bool esc = false;
      for (std::size_t j = start; j < line.size(); ++j) {
        const char cc = line[j];
        if (ins) {
          if (esc) esc = false;
          else if (cc == '\\') esc = true;
          else if (cc == '"') ins = false;
          continue;
        }
        if (cc == '"') { ins = true; continue; }
        if (cc == '{' || cc == '[') {
          ++d;
        } else if (cc == '}' || cc == ']') {
          if (--d == 0) return line.substr(start, j - start + 1);
        }
      }
      return "";  // unbalanced
    }
    if (v == '"') {
      bool esc = false;
      for (std::size_t j = start + 1; j < line.size(); ++j) {
        const char cc = line[j];
        if (esc) esc = false;
        else if (cc == '\\') esc = true;
        else if (cc == '"') return line.substr(start, j - start + 1);
      }
      return "";
    }
    std::size_t j = start;  // bare scalar: number / true / false / null
    while (j < line.size() && line[j] != ',' && line[j] != '}') ++j;
    return line.substr(start, j - start);
  }
  return "";
}

std::uint64_t Router::topology_hash(const service::RebalanceRequest& request) {
  std::uint64_t h = mix64(0x71b7u ^ static_cast<std::uint64_t>(request.variant));
  h = hash_combine(h, static_cast<std::uint64_t>(request.k));
  h = hash_combine(h, request.build.use_paper_coefficient_set ? 1u : 2u);
  h = hash_combine(h, request.task_counts.size());
  for (const std::int64_t c : request.task_counts) {
    h = hash_combine(h, static_cast<std::uint64_t>(c));
  }
  return h;
}

Router::Router(Params params)
    : params_(std::move(params)),
      pool_(params_.pool, registry_),
      coalescer_(params_.coalesce),
      policy_(make_policy(params_.policy, params_.policy_config)),
      epoch_(std::chrono::steady_clock::now()),
      flight_(params_.flight ? std::make_unique<obs::FlightRecorder>(
                                   params_.flight_capacity)
                             : nullptr),
      slo_(params_.slo,
           [this](const obs::SloTrigger& trigger) { on_trigger(trigger); }),
      federation_(pool_.size()) {
  if (flight_ != nullptr) {
    f_route_ = flight_->intern("route");
    f_markdown_ = flight_->intern("backend-down");
  }
  if (params_.profile_hz > 0) {
    obs::Profiler::Params prof_params;
    prof_params.hz = params_.profile_hz;
    prof_params.ring_capacity = params_.profile_capacity;
    profiler_ = std::make_unique<obs::Profiler>(prof_params);
  }
  using Labels = obs::MetricsRegistry::Labels;
  const Labels policy_label{{"policy", to_string(params_.policy)}};
  c_requests_ = &registry_.counter("qulrb_router_requests_total",
                                   "Client requests admitted", policy_label);
  c_responses_ = &registry_.counter("qulrb_router_responses_total",
                                    "Responses delivered to clients");
  c_errors_ = &registry_.counter("qulrb_router_errors_total",
                                 "Error responses delivered to clients");
  c_coalesced_ = &registry_.counter(
      "qulrb_router_coalesced_total",
      "Requests that shared an already-in-flight identical solve");
  c_retries_ = &registry_.counter("qulrb_router_retries_total",
                                  "Failover resubmits after a backend died");
  c_no_backend_ = &registry_.counter(
      "qulrb_router_no_backend_total",
      "Requests failed because no healthy backend was available");
  h_request_ms_ = &registry_.histogram(
      "qulrb_router_request_ms",
      "Routed request latency, router admission to response fan-out (ms)");
  c_incidents_ = &registry_.counter(
      "qulrb_router_incidents_total",
      "Cross-process incident bundles assembled from SLO triggers");
  c_federate_pulls_ = &registry_.counter(
      "qulrb_router_federate_pulls_total",
      "Per-backend obs snapshots successfully federated");
  for (std::size_t b = 0; b < pool_.size(); ++b) {
    c_routed_.push_back(&registry_.counter(
        "qulrb_router_routed_total", "Requests forwarded to this backend",
        Labels{{"backend", pool_.address(b).label()}}));
  }
}

Router::~Router() { stop(); }

double Router::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::string Router::metrics_text() const {
  proc_metrics_.update();
  std::string out = registry_.to_prometheus();
  out += federation_.fleet_prometheus();
  return out;
}

void Router::start() {
  // The sampler slot is process-wide; if another profiler already owns it
  // (e.g. an in-process backend in tests), run without a router-side sampler
  // rather than failing startup.
  if (profiler_ != nullptr && !profiler_->start()) profiler_.reset();
  pool_.start(
      [this](std::size_t b, const std::string& line, const io::JsonValue& doc) {
        on_backend_line(b, line, doc);
      },
      [this](std::size_t b) { on_backend_down(b); });
  if (params_.federate_ms > 0.0 && pool_.size() > 0) {
    federate_thread_ = std::thread([this] { federate_loop(); });
  }
  incident_thread_ = std::thread([this] { incident_loop(); });
}

void Router::stop() {
  if (stopped_.exchange(true)) return;
  // Wake the periodic threads first: the incident thread may still be
  // mid-assembly (its fan-out times out against the live pool), so join it
  // before tearing the pool down.
  { std::lock_guard<std::mutex> lock(stop_mutex_); }
  { std::lock_guard<std::mutex> lock(incident_mutex_); }
  stop_cv_.notify_all();
  incident_cv_.notify_all();
  if (federate_thread_.joinable()) federate_thread_.join();
  if (incident_thread_.joinable()) incident_thread_.join();
  if (profiler_ != nullptr) profiler_->stop();
  pool_.stop();
  {
    std::lock_guard<std::mutex> lock(routes_mutex_);
    routes_.clear();
  }
  const std::string farewell = service::encode_error("router shutting down", 0);
  for (Coalescer::Waiter& w : coalescer_.take_all()) {
    if (w.deliver) w.deliver(farewell);
  }
}

std::uint64_t Router::register_session(WriteLine write) {
  auto session = std::make_shared<Session>();
  session->write = std::move(write);
  const std::uint64_t id = next_session_.fetch_add(1);
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  sessions_.emplace(id, std::move(session));
  return id;
}

void Router::unregister_session(std::uint64_t session_id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(session->write_mutex);
    session->closed = true;  // late deliveries become no-ops
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pending;  // group, token
  {
    std::lock_guard<std::mutex> lock(session->pending_mutex);
    pending.reserve(session->pending.size());
    for (const auto& [client_id, entry] : session->pending) {
      pending.push_back(entry);
    }
    session->pending.clear();
  }
  for (const auto& [group, token] : pending) {
    const std::size_t left = coalescer_.detach(group, token);
    if (left != 0) continue;  // others still waiting, or group unknown
    // Sole waiter gone: free the backend's capacity and drop the route; the
    // backend's (cancelled) response finds no route and is discarded.
    std::size_t backend = kNone;
    {
      std::lock_guard<std::mutex> lock(routes_mutex_);
      auto it = routes_.find(group);
      if (it != routes_.end()) {
        backend = it->second.backend;
        routes_.erase(it);
      }
    }
    if (backend != kNone) {
      pool_.inflight_add(backend, -1);
      pool_.send(backend, cancel_line(group));
    }
  }
}

std::vector<BackendView> Router::policy_views() {
  std::vector<BackendView> views = pool_.views();
  if (params_.policy != PolicyKind::kShortestQueueStale ||
      params_.stale_ms <= 0.0) {
    return views;
  }
  // Stale-information model: the policy decides on a snapshot up to d ms
  // old. Health is kept live — staleness degrades placement quality, it must
  // not resurrect a dead backend.
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  const double now = now_ms();
  if (snapshot_ms_ < 0.0 || now - snapshot_ms_ >= params_.stale_ms) {
    snapshot_ = views;
    snapshot_ms_ = now;
    return views;
  }
  std::vector<BackendView> stale = snapshot_;
  for (std::size_t i = 0; i < stale.size() && i < views.size(); ++i) {
    stale[i].healthy = views[i].healthy;
  }
  return stale;
}

bool Router::handle_client_line(std::uint64_t session_id,
                                const std::string& line) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(session_id);
    if (it != sessions_.end()) session = it->second;
  }
  if (!session) return true;

  service::ProtocolRequest parsed;
  try {
    parsed = service::parse_request_line(line);
  } catch (const std::exception& e) {
    deliver_to(session, service::encode_error(e.what(), 0));
    return true;
  }
  switch (parsed.op) {
    case service::OpKind::kShutdown:
      return false;
    case service::OpKind::kMetrics:
      deliver_to(session, service::encode_metrics(metrics_text()));
      return true;
    case service::OpKind::kStats:
      handle_stats(session);
      return true;
    case service::OpKind::kHealth:
      handle_health(session);
      return true;
    case service::OpKind::kTrace:
      handle_trace(session, parsed.trace_count);
      return true;
    case service::OpKind::kObs:
      handle_obs(session, parsed.client_id);
      return true;
    case service::OpKind::kFlightDump:
      handle_flight_dump(session, std::move(parsed));
      return true;
    case service::OpKind::kProfile:
      handle_profile(session, std::move(parsed));
      return true;
    case service::OpKind::kCancel:
      handle_cancel(session, parsed.client_id);
      return true;
    case service::OpKind::kSolve:
      handle_solve(session, std::move(parsed));
      return true;
  }
  return true;
}

void Router::handle_solve(const std::shared_ptr<Session>& session,
                          service::ProtocolRequest parsed) {
  const double arrival = now_ms();
  const std::uint64_t client_id = parsed.client_id;
  service::RebalanceRequest request = std::move(parsed.request);
  // Canonicalize: the router owns trace identity; whatever rid the client
  // set must not leak into the coalesce key or downstream.
  request.trace_id = 0;
  request.router_ms = 0.0;
  const std::string key =
      service::encode_solve_request(request, 0, parsed.include_plan);
  const std::uint64_t topo = topology_hash(request);
  const std::uint64_t token = next_token_.fetch_add(1);
  c_requests_->inc();

  auto deliver = [this, session, client_id, token](const std::string& response) {
    {
      std::lock_guard<std::mutex> lock(session->pending_mutex);
      auto it = session->pending.find(client_id);
      // Erase only this solve's own entry (matched by token): by the time a
      // late line drains, the client may have reused the id for a new solve.
      if (it != session->pending.end() && it->second.second == token) {
        session->pending.erase(it);
      }
    }
    deliver_to(session, rewrite_response_id(response, client_id));
  };
  bool duplicate = false;
  Coalescer::Join join;
  {
    // Reserve the id and join the group under one pending_mutex hold, so a
    // response delivered on a backend reader thread cannot erase the entry
    // between the join and the map insert (which would leave a stale entry
    // shadowing the id forever).
    std::lock_guard<std::mutex> lock(session->pending_mutex);
    auto [it, inserted] = session->pending.emplace(
        client_id, std::make_pair(std::uint64_t{0}, token));
    if (inserted) {
      join = coalescer_.join(key, token, std::move(deliver));
      it->second.first = join.group;
    } else {
      // Overwriting would orphan the first solve's (group, token): cancel
      // and session teardown could no longer detach that waiter, leaking it
      // in the coalescer until its response arrives.
      duplicate = true;
    }
  }
  if (duplicate) {
    deliver_to(session,
               service::encode_error("id already in flight", client_id));
    return;
  }
  if (!join.leader) {
    c_coalesced_->inc();
    return;
  }
  Route route;
  route.request = std::move(request);
  route.request.trace_id = join.group;
  route.include_plan = parsed.include_plan;
  route.topo_hash = topo;
  route.arrival_ms = arrival;
  forward(join.group, std::move(route));
}

void Router::forward(std::uint64_t group, Route route) {
  while (true) {
    std::size_t pick;
    {
      std::lock_guard<std::mutex> lock(policy_mutex_);
      const std::vector<BackendView> views = policy_views();
      pick = policy_->pick(route.topo_hash, views);
      if (pick >= views.size()) {
        c_no_backend_->inc();
        fail_group(group, "no healthy backend");
        return;
      }
    }
    route.backend = pick;
    route.request.router_ms = now_ms() - route.arrival_ms;
    const std::string wire =
        service::encode_solve_request(route.request, group, route.include_plan);
    // Inflight goes up before the route is published: once the route is in
    // routes_, on_backend_down may consume it and decrement, and a decrement
    // preceding our increment would underflow the count to SIZE_MAX.
    pool_.inflight_add(pick, +1);
    {
      std::lock_guard<std::mutex> lock(routes_mutex_);
      routes_[group] = route;
    }
    if (pool_.send(pick, wire)) {
      pool_.note_routed(pick);
      c_routed_[pick]->inc();
      return;
    }
    // The send marked the backend down; on_backend_down may have collected
    // our just-inserted route already (it owns the inflight decrement and
    // the resubmit in that case). Retry here only if we still own it.
    bool mine = false;
    {
      std::lock_guard<std::mutex> lock(routes_mutex_);
      auto it = routes_.find(group);
      if (it != routes_.end() && it->second.backend == pick) {
        routes_.erase(it);
        mine = true;
      }
    }
    if (!mine) return;
    pool_.inflight_add(pick, -1);
    if (++route.retries > params_.max_retries) {
      fail_group(group, "backend unavailable after retries");
      return;
    }
    c_retries_->inc();
  }
}

void Router::fail_group(std::uint64_t group, const std::string& message) {
  std::vector<Coalescer::Waiter> waiters = coalescer_.complete(group);
  if (waiters.empty()) return;
  const std::string line = service::encode_error(message, group);
  c_errors_->inc(waiters.size());
  c_responses_->inc(waiters.size());
  for (Coalescer::Waiter& w : waiters) {
    if (w.deliver) w.deliver(line);
  }
}

void Router::on_backend_line(std::size_t backend, const std::string& line,
                             const io::JsonValue& doc) {
  const std::int64_t id = doc.int_or("id", -1);
  if (id < 0) return;
  const std::uint64_t group = static_cast<std::uint64_t>(id);
  Route route;
  {
    std::lock_guard<std::mutex> lock(routes_mutex_);
    auto it = routes_.find(group);
    if (it == routes_.end()) return;  // cancelled / already failed over
    route = std::move(it->second);
    routes_.erase(it);
  }
  pool_.inflight_add(route.backend, -1);
  const double total_ms = now_ms() - route.arrival_ms;
  h_request_ms_->observe(total_ms);
  const bool ok = doc.find("error") == nullptr;
  const bool deadline_missed = ok && route.request.deadline_ms > 0.0 &&
                               total_ms > route.request.deadline_ms;
  if (flight_ != nullptr) {
    const double end_us = flight_->now_us();
    flight_->record(f_route_, obs::FlightKind::kSpan, 0, group, end_us,
                    total_ms * 1000.0, total_ms);
  }
  // The fleet SLO sees end-to-end latency; its triggers enqueue for the
  // incident thread (this runs on a backend reader thread — never block).
  slo_.record(route.request.priority, total_ms, ok, deadline_missed, group,
              now_ms());
  (void)backend;
  std::vector<Coalescer::Waiter> waiters = coalescer_.complete(group);
  c_responses_->inc(waiters.size());
  if (doc.find("error") != nullptr) c_errors_->inc(waiters.size());
  for (Coalescer::Waiter& w : waiters) {
    if (w.deliver) w.deliver(line);
  }
}

void Router::on_backend_down(std::size_t backend) {
  federation_.invalidate(backend);
  if (flight_ != nullptr) {
    flight_->instant(f_markdown_, 0, 0, static_cast<double>(backend));
  }
  slo_.note_backend_down(pool_.address(backend).label(), now_ms());
  std::vector<std::pair<std::uint64_t, Route>> orphans;
  {
    std::lock_guard<std::mutex> lock(routes_mutex_);
    for (auto it = routes_.begin(); it != routes_.end();) {
      if (it->second.backend == backend) {
        orphans.emplace_back(it->first, std::move(it->second));
        it = routes_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [group, route] : orphans) {
    pool_.inflight_add(backend, -1);
    if (++route.retries > params_.max_retries) {
      fail_group(group, "backend failed");
      continue;
    }
    c_retries_->inc();
    forward(group, std::move(route));
  }
}

void Router::handle_cancel(const std::shared_ptr<Session>& session,
                           std::uint64_t client_id) {
  std::uint64_t group = 0;
  std::uint64_t token = 0;
  bool known = false;
  {
    std::lock_guard<std::mutex> lock(session->pending_mutex);
    auto it = session->pending.find(client_id);
    if (it != session->pending.end()) {
      group = it->second.first;
      token = it->second.second;
      known = true;
    }
  }
  if (!known) {
    deliver_to(session, service::encode_error("unknown or finished id", client_id));
    return;
  }
  if (coalescer_.waiter_count(group) <= 1) {
    // Sole waiter: forward the cancel; the backend answers with the
    // cancelled solve response on the group id, which fans out normally.
    std::size_t backend = kNone;
    {
      std::lock_guard<std::mutex> lock(routes_mutex_);
      auto it = routes_.find(group);
      if (it != routes_.end()) backend = it->second.backend;
    }
    if (backend == kNone || !pool_.send(backend, cancel_line(group))) {
      deliver_to(session,
                 service::encode_error("unknown or finished id", client_id));
    }
    return;
  }
  // Shared solve: detach just this waiter, the others still want the result.
  coalescer_.detach(group, token);
  {
    std::lock_guard<std::mutex> lock(session->pending_mutex);
    session->pending.erase(client_id);
  }
  deliver_to(session, service::encode_error("cancelled (shared solve continues)",
                                            client_id));
}

namespace {

/// Fan a control op to every backend and gather one raw field per backend.
struct ControlGather {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t outstanding = 0;
  std::vector<std::string> raw;    ///< by backend index; empty = no answer
  std::vector<std::string> extra;  ///< second per-backend field, when used
};

}  // namespace

void Router::handle_stats(const std::shared_ptr<Session>& session) {
  auto gather = std::make_shared<ControlGather>();
  gather->raw.resize(pool_.size());
  gather->outstanding = pool_.size();
  for (std::size_t b = 0; b < pool_.size(); ++b) {
    auto fired = std::make_shared<std::atomic<bool>>(false);
    BackendPool::ControlCallback finish =
        [gather, b, fired](const std::string* line, const io::JsonValue*) {
          if (fired->exchange(true)) return;
          std::lock_guard<std::mutex> lock(gather->mutex);
          if (line != nullptr) gather->raw[b] = extract_raw_field(*line, "stats");
          --gather->outstanding;
          gather->cv.notify_all();
        };
    if (!pool_.send_control(b, "{\"op\":\"stats\"}", finish)) {
      finish(nullptr, nullptr);
    }
  }
  std::vector<std::string> raw;
  {
    std::unique_lock<std::mutex> lock(gather->mutex);
    gather->cv.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(params_.control_timeout_ms),
        [&] { return gather->outstanding == 0; });
    raw = gather->raw;
  }

  const std::vector<BackendView> views = pool_.views();
  std::size_t healthy = 0;
  std::size_t queue_depth = 0;
  std::size_t inflight = 0;
  std::uint64_t routed = 0;
  double hit_sum = 0.0;
  std::size_t hit_n = 0;
  for (std::size_t b = 0; b < views.size(); ++b) {
    if (views[b].healthy) {
      ++healthy;
      hit_sum += views[b].cache_hit_rate;
      ++hit_n;
    }
    queue_depth += views[b].queue_depth;
    inflight += views[b].inflight;
    routed += pool_.routed_total(b);
  }

  std::string out = "{\"stats\":{\"role\":\"router\",\"policy\":\"";
  out += to_string(params_.policy);
  out += "\",\"backends\":" + std::to_string(pool_.size());
  out += ",\"healthy\":" + std::to_string(healthy);
  out += ",\"queue_depth\":" + std::to_string(queue_depth);
  out += ",\"inflight\":" + std::to_string(inflight);
  out += ",\"routed_total\":" + std::to_string(routed);
  out += ",\"cache_hit_rate\":" +
         std::to_string(hit_n > 0 ? hit_sum / static_cast<double>(hit_n) : 0.0);
  out += ",\"coalesced_total\":" + std::to_string(coalescer_.coalesced_total());
  out += ",\"inflight_groups\":" + std::to_string(coalescer_.inflight_groups());
  out += ",\"backend_stats\":[";
  for (std::size_t b = 0; b < pool_.size(); ++b) {
    if (b > 0) out += ",";
    out += "{\"backend\":\"" + pool_.address(b).label() + "\"";
    out += ",\"healthy\":";
    out += views[b].healthy ? "true" : "false";
    out += ",\"stats\":";
    out += raw[b].empty() ? "null" : raw[b];
    out += "}";
  }
  out += "]}}";
  deliver_to(session, out);
}

void Router::handle_health(const std::shared_ptr<Session>& session) {
  const std::vector<BackendView> views = pool_.views();
  std::size_t healthy = 0;
  std::size_t queue_depth = 0;
  std::size_t inflight = 0;
  double hit_sum = 0.0;
  std::size_t hit_n = 0;
  for (const BackendView& v : views) {
    if (v.healthy) {
      ++healthy;
      hit_sum += v.cache_hit_rate;
      ++hit_n;
    }
    queue_depth += v.queue_depth;
    inflight += v.inflight;
  }
  std::string out = "{\"stats\":{\"role\":\"router\"";
  out += ",\"backends\":" + std::to_string(views.size());
  out += ",\"healthy\":" + std::to_string(healthy);
  out += ",\"queue_depth\":" + std::to_string(queue_depth);
  out += ",\"inflight\":" + std::to_string(inflight);
  out += ",\"cache_hit_rate\":" +
         std::to_string(hit_n > 0 ? hit_sum / static_cast<double>(hit_n) : 0.0);
  out += "}}";
  deliver_to(session, out);
}

void Router::handle_trace(const std::shared_ptr<Session>& session,
                          std::size_t n) {
  auto gather = std::make_shared<ControlGather>();
  gather->raw.resize(pool_.size());
  gather->outstanding = pool_.size();
  const std::string op = "{\"op\":\"trace\",\"n\":" + std::to_string(n) + "}";
  for (std::size_t b = 0; b < pool_.size(); ++b) {
    auto fired = std::make_shared<std::atomic<bool>>(false);
    BackendPool::ControlCallback finish =
        [gather, b, fired](const std::string* line, const io::JsonValue*) {
          if (fired->exchange(true)) return;
          std::lock_guard<std::mutex> lock(gather->mutex);
          if (line != nullptr) {
            gather->raw[b] = extract_raw_field(*line, "traces");
          }
          --gather->outstanding;
          gather->cv.notify_all();
        };
    if (!pool_.send_control(b, op, finish)) finish(nullptr, nullptr);
  }
  std::vector<std::string> raw;
  {
    std::unique_lock<std::mutex> lock(gather->mutex);
    gather->cv.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(params_.control_timeout_ms),
        [&] { return gather->outstanding == 0; });
    raw = gather->raw;
  }
  // Each element is a "[doc,doc,...]" array; splice the inner lists.
  std::string joined;
  for (const std::string& arr : raw) {
    if (arr.size() < 2) continue;  // absent or "[]"-too-short
    const std::string inner = arr.substr(1, arr.size() - 2);
    if (inner.empty()) continue;
    if (!joined.empty()) joined += ",";
    joined += inner;
  }
  deliver_to(session, "{\"traces\":[" + joined + "]}");
}

void Router::handle_obs(const std::shared_ptr<Session>& session,
                        std::uint64_t client_id) {
  io::JsonWriter w;
  w.begin_object();
  w.field("role", "router");
  w.key("registry");
  obs::write_registry_obs_json(registry_, w);
  w.key("slo");
  slo_.write_json(w, now_ms());
  w.key("fleet");
  federation_.write_fleet_json(w, now_ms());
  w.end_object();
  deliver_to(session, service::encode_obs_response(client_id, w.str()));
}

void Router::handle_flight_dump(const std::shared_ptr<Session>& session,
                                service::ProtocolRequest parsed) {
  // Client sessions run on their own threads (never a backend reader), so
  // the blocking fan-out inside assemble_incident is safe here.
  obs::SloTrigger trigger;
  trigger.kind = obs::TriggerKind::kSloBurn;  // shape only; kind unused below
  trigger.rid = parsed.flight_rid;
  trigger.now_ms = now_ms();
  trigger.detail = "client-requested flight dump";
  const std::string bundle =
      assemble_bundle(trigger, "manual",
                      parsed.window_s > 0.0 ? parsed.window_s
                                            : params_.flight_window_s);
  deliver_to(session,
             service::encode_flight_response(parsed.client_id, bundle));
}

std::string Router::own_profile_json(double window_s, std::string* folded_out) {
  if (folded_out != nullptr) folded_out->clear();
  if (profiler_ == nullptr) return "null";
  const std::vector<obs::ProfileSample> samples =
      profiler_->snapshot(window_s);
  obs::prof::Symbolizer symbolizer;
  obs::ProfileExportOptions opts;
  opts.source = "qulrb_router";
  opts.hz = profiler_->hz();
  opts.window_s = window_s;
  if (folded_out != nullptr) {
    *folded_out = obs::profile_to_folded(samples, symbolizer, opts);
  }
  return obs::profile_to_json(samples, symbolizer, opts);
}

void Router::handle_profile(const std::shared_ptr<Session>& session,
                            service::ProtocolRequest parsed) {
  // Client sessions run on their own threads (never a backend reader), so
  // the blocking fan-out is safe here — same situation as flight_dump.
  const double window_s = parsed.profile_seconds;
  auto gather = std::make_shared<ControlGather>();
  gather->raw.resize(pool_.size());
  gather->extra.resize(pool_.size());
  gather->outstanding = pool_.size();
  const std::string op = service::encode_profile_request(0, window_s);
  for (std::size_t b = 0; b < pool_.size(); ++b) {
    auto fired = std::make_shared<std::atomic<bool>>(false);
    BackendPool::ControlCallback finish =
        [gather, b, fired](const std::string* line, const io::JsonValue* doc) {
          if (fired->exchange(true)) return;
          std::lock_guard<std::mutex> lock(gather->mutex);
          if (line != nullptr) {
            gather->raw[b] = extract_raw_field(*line, "profile");
            if (doc != nullptr) {
              const io::JsonValue* profile = doc->find("profile");
              if (profile != nullptr && profile->is_object()) {
                gather->extra[b] = profile->string_or("folded", "");
              }
            }
          }
          --gather->outstanding;
          gather->cv.notify_all();
        };
    if (!pool_.send_control(b, op, finish)) finish(nullptr, nullptr);
  }
  std::vector<std::string> raw;
  std::vector<std::string> folded;
  {
    std::unique_lock<std::mutex> lock(gather->mutex);
    gather->cv.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(params_.control_timeout_ms),
        [&] { return gather->outstanding == 0; });
    raw = gather->raw;
    folded = gather->extra;
  }

  std::string router_folded;
  const std::string router_profile = own_profile_json(window_s, &router_folded);

  // Folded merge: each process's folded text re-rooted at instance:<label>
  // and concatenated — folded consumers sum duplicate stacks, so plain
  // concatenation is a correct fleet merge.
  std::string merged = obs::folded_with_instance(router_folded, "router");
  std::size_t reporting = 0;
  for (std::size_t b = 0; b < pool_.size(); ++b) {
    if (!raw[b].empty()) ++reporting;
    merged +=
        obs::folded_with_instance(folded[b], pool_.address(b).label());
  }

  io::JsonWriter w;
  w.begin_object();
  w.field("source", "qulrb_router");
  w.field("window_s", window_s);
  w.field("backends", static_cast<std::int64_t>(pool_.size()));
  w.field("backends_reporting", static_cast<std::int64_t>(reporting));
  w.key("router").raw_value(router_profile);
  w.key("backend_profiles").begin_array();
  for (std::size_t b = 0; b < pool_.size(); ++b) {
    w.begin_object();
    w.field("backend", pool_.address(b).label());
    if (raw[b].empty()) {
      w.key("profile").null();
    } else {
      w.key("profile").raw_value(raw[b]);
    }
    w.end_object();
  }
  w.end_array();
  w.field("folded", merged);
  w.end_object();
  deliver_to(session,
             service::encode_profile_response(parsed.client_id, w.str()));
}

std::string Router::assemble_incident(const obs::SloTrigger& trigger) {
  return assemble_bundle(trigger, obs::to_string(trigger.kind),
                         params_.flight_window_s);
}

std::string Router::assemble_bundle(const obs::SloTrigger& trigger,
                                    const std::string& kind,
                                    double window_s) {
  // Two control ops per backend — flight ring and profile capture — matched
  // FIFO on each backend connection (control responses come back in send
  // order), gathered into raw (flight) and extra (profile).
  auto gather = std::make_shared<ControlGather>();
  gather->raw.resize(pool_.size());
  gather->extra.resize(pool_.size());
  gather->outstanding = 2 * pool_.size();
  const std::string flight_op =
      service::encode_flight_dump_request(0, window_s, trigger.rid);
  const std::string profile_op = service::encode_profile_request(0, window_s);
  for (std::size_t b = 0; b < pool_.size(); ++b) {
    auto fired = std::make_shared<std::atomic<bool>>(false);
    BackendPool::ControlCallback finish_flight =
        [gather, b, fired](const std::string* line, const io::JsonValue*) {
          if (fired->exchange(true)) return;
          std::lock_guard<std::mutex> lock(gather->mutex);
          if (line != nullptr) {
            gather->raw[b] = extract_raw_field(*line, "flight");
          }
          --gather->outstanding;
          gather->cv.notify_all();
        };
    if (!pool_.send_control(b, flight_op, finish_flight)) {
      finish_flight(nullptr, nullptr);
    }
    auto fired_prof = std::make_shared<std::atomic<bool>>(false);
    BackendPool::ControlCallback finish_profile =
        [gather, b, fired_prof](const std::string* line, const io::JsonValue*) {
          if (fired_prof->exchange(true)) return;
          std::lock_guard<std::mutex> lock(gather->mutex);
          if (line != nullptr) {
            gather->extra[b] = extract_raw_field(*line, "profile");
          }
          --gather->outstanding;
          gather->cv.notify_all();
        };
    if (!pool_.send_control(b, profile_op, finish_profile)) {
      finish_profile(nullptr, nullptr);
    }
  }
  std::vector<std::string> raw;
  std::vector<std::string> profiles;
  {
    std::unique_lock<std::mutex> lock(gather->mutex);
    gather->cv.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(params_.control_timeout_ms),
        [&] { return gather->outstanding == 0; });
    raw = gather->raw;
    profiles = gather->extra;
  }
  const std::string router_profile = own_profile_json(window_s, nullptr);
  io::JsonWriter w;
  w.begin_object();
  w.key("incident").begin_object();
  w.field("rid", static_cast<std::int64_t>(trigger.rid));
  w.field("kind", kind);
  w.field("priority", trigger.priority);
  w.field("ts_ms", trigger.now_ms);
  w.field("fast_burn", trigger.fast_burn);
  w.field("slow_burn", trigger.slow_burn);
  w.field("detail", trigger.detail);
  w.field("window_s", window_s);
  w.key("router").begin_object();
  if (flight_ != nullptr) {
    w.key("flight").raw_value(obs::flight_to_perfetto_json(
        *flight_, window_s, trigger.rid, kind, "qulrb_router"));
  } else {
    w.key("flight").null();
  }
  w.key("profile").raw_value(router_profile);
  w.end_object();
  w.key("backends").begin_array();
  for (std::size_t b = 0; b < pool_.size(); ++b) {
    w.begin_object();
    w.field("backend", pool_.address(b).label());
    if (raw[b].empty()) {
      w.key("flight").null();
    } else {
      w.key("flight").raw_value(raw[b]);
    }
    if (profiles[b].empty()) {
      w.key("profile").null();
    } else {
      w.key("profile").raw_value(profiles[b]);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  return w.str();
}

void Router::on_trigger(const obs::SloTrigger& trigger) {
  if (stopped_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(incident_mutex_);
    // Bound the backlog: triggers are already cooldown-limited per
    // (kind, class), a deeper queue means the incident thread is stuck.
    if (incident_queue_.size() >= 16) return;
    incident_queue_.push_back(trigger);
  }
  incident_cv_.notify_one();
}

void Router::incident_loop() {
  while (true) {
    obs::SloTrigger trigger;
    {
      std::unique_lock<std::mutex> lock(incident_mutex_);
      incident_cv_.wait(lock, [&] {
        return stopped_.load(std::memory_order_relaxed) ||
               !incident_queue_.empty();
      });
      if (incident_queue_.empty()) return;  // stopping and drained
      trigger = std::move(incident_queue_.front());
      incident_queue_.pop_front();
    }
    const std::string bundle = assemble_incident(trigger);
    c_incidents_->inc();
    incidents_total_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(incident_mutex_);
      last_incident_ = bundle;
    }
    if (!params_.incident_dir.empty()) {
      const std::string path = params_.incident_dir + "/incident-" +
                               std::to_string(trigger.rid) + "-" +
                               obs::to_string(trigger.kind) + ".json";
      std::ofstream out(path, std::ios::trunc);
      if (out) out << bundle << "\n";
    }
  }
}

std::string Router::last_incident() const {
  std::lock_guard<std::mutex> lock(incident_mutex_);
  return last_incident_;
}

void Router::federate_loop() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stopped_.load(std::memory_order_relaxed)) {
    lock.unlock();
    federate_once();
    lock.lock();
    stop_cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(params_.federate_ms),
        [&] { return stopped_.load(std::memory_order_relaxed); });
  }
}

void Router::federate_once() {
  const std::string op = service::encode_obs_request(0);
  for (std::size_t b = 0; b < pool_.size(); ++b) {
    if (!pool_.healthy(b)) {
      federation_.invalidate(b);
      continue;
    }
    // Fire-and-forget: the callback folds the snapshot in on the backend's
    // reader thread; a missed cycle just leaves the previous snapshot live.
    BackendPool::ControlCallback finish =
        [this, b](const std::string* line, const io::JsonValue* doc) {
          if (line == nullptr || doc == nullptr) return;
          const io::JsonValue* obs_doc = doc->find("obs");
          if (obs_doc == nullptr) return;
          const std::string raw = extract_raw_field(*line, "obs");
          if (raw.empty()) return;
          if (federation_.update(b, pool_.address(b).label(), raw, *obs_doc,
                                 now_ms())) {
            c_federate_pulls_->inc();
          }
        };
    if (!pool_.send_control(b, op, finish)) federation_.invalidate(b);
  }
}

void Router::deliver_to(const std::shared_ptr<Session>& session,
                        const std::string& line) {
  std::lock_guard<std::mutex> lock(session->write_mutex);
  if (!session->closed && session->write) session->write(line);
}

}  // namespace qulrb::router
