#include "router/coalesce.hpp"

#include <cctype>
#include <limits>
#include <utility>

namespace qulrb::router {

Coalescer::Join Coalescer::join(const std::string& key,
                                std::uint64_t client_id, Deliver deliver) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (enabled_) {
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      Group& group = groups_[it->second];
      group.waiters.push_back(Waiter{client_id, std::move(deliver)});
      ++coalesced_;
      return Join{it->second, /*leader=*/false};
    }
  }
  const std::uint64_t id = next_group_++;
  Group group;
  group.key = key;
  group.waiters.push_back(Waiter{client_id, std::move(deliver)});
  groups_.emplace(id, std::move(group));
  if (enabled_) by_key_.emplace(key, id);
  return Join{id, /*leader=*/true};
}

std::vector<Coalescer::Waiter> Coalescer::complete(std::uint64_t group) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  std::vector<Waiter> waiters = std::move(it->second.waiters);
  by_key_.erase(it->second.key);
  groups_.erase(it);
  return waiters;
}

std::size_t Coalescer::detach(std::uint64_t group, std::uint64_t client_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = groups_.find(group);
  if (it == groups_.end()) return std::numeric_limits<std::size_t>::max();
  auto& waiters = it->second.waiters;
  for (std::size_t i = 0; i < waiters.size(); ++i) {
    if (waiters[i].client_id == client_id) {
      waiters.erase(waiters.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  const std::size_t left = waiters.size();
  if (left == 0) {
    by_key_.erase(it->second.key);
    groups_.erase(it);
  }
  return left;
}

std::vector<Coalescer::Waiter> Coalescer::take_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Waiter> all;
  for (auto& [id, group] : groups_) {
    for (auto& w : group.waiters) all.push_back(std::move(w));
  }
  groups_.clear();
  by_key_.clear();
  return all;
}

std::size_t Coalescer::waiter_count(std::uint64_t group) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.waiters.size();
}

std::size_t Coalescer::inflight_groups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return groups_.size();
}

std::uint64_t Coalescer::coalesced_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return coalesced_;
}

std::string rewrite_response_id(const std::string& line, std::uint64_t id) {
  // Scan for the top-level `"id"` key: depth-1 position, outside strings.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '{': case '[': ++depth; continue;
      case '}': case ']': --depth; continue;
      case '"': break;  // a key or string value starts
      default: continue;
    }
    // At a quote outside a string. Only keys at depth 1 can be the id field.
    if (depth != 1 || line.compare(i, 5, "\"id\":") != 0) {
      in_string = true;  // consume as an ordinary string
      continue;
    }
    std::size_t start = i + 5;
    std::size_t end = start;
    while (end < line.size() &&
           (std::isdigit(static_cast<unsigned char>(line[end])) ||
            line[end] == '-')) {
      ++end;
    }
    return line.substr(0, start) + std::to_string(id) + line.substr(end);
  }
  return line;
}

}  // namespace qulrb::router
