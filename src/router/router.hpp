#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/process_metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "router/backend_pool.hpp"
#include "router/coalesce.hpp"
#include "router/federation.hpp"
#include "router/policy.hpp"
#include "service/protocol.hpp"

namespace qulrb::router {

/// The sharded-serving front door: client sessions speak the same JSON-lines
/// protocol as qulrb_serve, and the router fans their solves across N
/// backends through a BackendPool, picking targets with a RoutingPolicy and
/// sharing identical in-flight solves through the Coalescer.
///
/// One routed request keeps one identity end to end: the coalesce group id
/// is the wire id toward the backend AND the trace id ("rid") the backend
/// mints its Perfetto document with, so `{"op":"trace"}` through the router
/// returns documents whose request ids match what the router logged — one
/// routed request, one correlated trace, including the router-admission span
/// ("router_ms" forwarded on the wire).
///
/// Failover: when a backend goes down, its in-flight solves are re-routed to
/// the surviving backends (bounded by Params::max_retries per request);
/// requests that exhaust the fleet are answered with an {"error":...} line.
class Router {
 public:
  struct Params {
    BackendPool::Params pool;
    PolicyKind policy = PolicyKind::kShortestQueue;
    PolicyConfig policy_config;
    bool coalesce = true;
    /// Staleness window d for shortest-queue-stale: the policy sees a view
    /// snapshot refreshed at most every d ms (health stays live — stale
    /// routing must not resurrect dead backends). 0 = always-fresh snapshot,
    /// which makes the stale policy behave like shortest-queue minus the
    /// router-local inflight term.
    double stale_ms = 0.0;
    std::size_t max_retries = 2;   ///< failover resubmits per request
    double control_timeout_ms = 2000.0;  ///< stats/trace aggregation wait
    /// Federation pull cadence: every `federate_ms` the router sends
    /// {"op":"obs"} to each healthy backend and folds the answers into the
    /// fleet snapshot (metrics_text() appends the qulrb_fleet_* families).
    /// 0 disables federation.
    double federate_ms = 1000.0;
    /// Always-on flight ring over routed requests. Off = zero-cost (no ring
    /// is allocated, every hook is one null test).
    bool flight = true;
    std::size_t flight_capacity = 8192;
    /// Seconds of ring history snapshotted into an incident bundle.
    double flight_window_s = 30.0;
    /// Directory incident bundles are written to
    /// (incident-<rid>-<kind>.json). Empty = keep only the in-memory last
    /// bundle (served by the client-facing flight_dump op).
    std::string incident_dir;
    /// Router-side sampling CPU profiler rate (Hz); 0 disables the router's
    /// own sampler. The {"op":"profile"} fan-out aggregates the backends
    /// either way, and incident bundles then carry a null router profile.
    int profile_hz = 99;
    std::size_t profile_capacity = 4096;
    /// Fleet-level SLO objectives, evaluated on the router's own end-to-end
    /// request latency; its triggers fire the cross-process incident dump.
    obs::SloEngine::Params slo;
  };

  /// Writes one response line to a client session. Called from backend
  /// reader threads and from the session's own thread; the Router serialises
  /// calls per session.
  using WriteLine = std::function<void(const std::string&)>;

  explicit Router(Params params);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Connect the pool and start health probing. Call once before any
  /// client session is served.
  void start();
  void stop();

  /// Register a client session; the returned handle scopes every
  /// handle_client_line/unregister call for that connection.
  std::uint64_t register_session(WriteLine write);

  /// Session closed: waiters of this session are detached from their groups
  /// (sole-waiter groups are cancelled on the backend) and late responses
  /// are dropped instead of written to a dead socket.
  void unregister_session(std::uint64_t session);

  /// Handle one client request line. Returns false when the client asked
  /// for shutdown (the caller should stop accepting and exit).
  bool handle_client_line(std::uint64_t session, const std::string& line);

  obs::MetricsRegistry& registry() noexcept { return registry_; }
  /// Router registry exposition plus the federated qulrb_fleet_* families.
  std::string metrics_text() const;
  const Coalescer& coalescer() const noexcept { return coalescer_; }
  BackendPool& pool() noexcept { return pool_; }
  Federation& federation() noexcept { return federation_; }
  obs::SloEngine& slo() noexcept { return slo_; }
  /// Null when Params::flight is off.
  obs::FlightRecorder* flight() noexcept { return flight_.get(); }
  /// Null when Params::profile_hz is 0 or the process-wide sampler slot was
  /// already taken (at most one Profiler per process).
  obs::Profiler* profiler() noexcept { return profiler_.get(); }

  /// Assemble one cross-process incident bundle right now: the router's own
  /// flight ring plus a {"op":"flight_dump"} fan-out to every backend, all
  /// correlated by `rid`. Blocks up to control_timeout_ms; must not be
  /// called from a backend reader thread (the response would be delivered by
  /// the blocked thread itself).
  std::string assemble_incident(const obs::SloTrigger& trigger);

  /// Incident bundles written so far (files + in-memory).
  std::uint64_t incidents_total() const noexcept {
    return incidents_total_.load(std::memory_order_relaxed);
  }
  /// The most recent incident bundle ("" when none fired yet).
  std::string last_incident() const;

  /// Topology key of a request — mirrors SessionCache::Key (task_counts,
  /// variant, k, paper_coefficients), so cache-affinity routing sends every
  /// request that would share a cached model build to the same backend.
  static std::uint64_t topology_hash(const service::RebalanceRequest& request);

 private:
  struct Session {
    WriteLine write;
    std::mutex write_mutex;
    bool closed = false;
    /// client correlation id -> (group, detach token) for cancel/teardown.
    std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
        pending;
    std::mutex pending_mutex;
  };

  /// One leader-forwarded solve in flight toward a backend.
  struct Route {
    service::RebalanceRequest request;  ///< trace_id already = group id
    bool include_plan = false;
    std::uint64_t topo_hash = 0;
    std::size_t backend = 0;
    double arrival_ms = 0.0;
    std::size_t retries = 0;
  };

  double now_ms() const;
  std::vector<BackendView> policy_views();
  void handle_solve(const std::shared_ptr<Session>& session,
                    service::ProtocolRequest parsed);
  void handle_cancel(const std::shared_ptr<Session>& session,
                     std::uint64_t client_id);
  void handle_stats(const std::shared_ptr<Session>& session);
  /// Answered from the pool's probed view alone — no backend round trip, so
  /// a supervisor can health-check the router itself at probe frequency.
  void handle_health(const std::shared_ptr<Session>& session);
  void handle_trace(const std::shared_ptr<Session>& session, std::size_t n);
  /// Fleet obs view: the router's own registry/SLO plus every backend's
  /// latest federated snapshot.
  void handle_obs(const std::shared_ptr<Session>& session,
                  std::uint64_t client_id);
  void handle_flight_dump(const std::shared_ptr<Session>& session,
                          service::ProtocolRequest parsed);
  /// Fleet profile: the router's own sampler snapshot plus a
  /// {"op":"profile"} fan-out to every backend, merged into one folded-stack
  /// document where each line is rooted at instance:<label>.
  void handle_profile(const std::shared_ptr<Session>& session,
                      service::ProtocolRequest parsed);
  /// The router's own profile document (obs::profile_to_json), plus the
  /// folded text by out-param for the fleet merge. "null" when the sampler
  /// is off.
  std::string own_profile_json(double window_s, std::string* folded_out);
  /// Forward (or re-forward) a group's request; on exhaustion answers every
  /// waiter with an error line and drops the route.
  void forward(std::uint64_t group, Route route);
  void fail_group(std::uint64_t group, const std::string& message);
  void on_backend_line(std::size_t backend, const std::string& line,
                       const io::JsonValue& doc);
  void on_backend_down(std::size_t backend);
  void deliver_to(const std::shared_ptr<Session>& session,
                  const std::string& line);
  /// SLO trigger handler: enqueue for the incident thread. Runs on whatever
  /// thread observed the breach (often a backend reader thread), so it must
  /// never block on a backend round trip itself.
  void on_trigger(const obs::SloTrigger& trigger);
  /// Dedicated incident thread: drains the trigger queue, assembles the
  /// cross-process bundle (blocking fan-out is safe here) and persists it.
  void incident_loop();
  /// Federation poll thread: {"op":"obs"} toward every backend each cycle.
  void federate_loop();
  void federate_once();
  /// Shared bundle assembly behind assemble_incident / client flight_dump.
  std::string assemble_bundle(const obs::SloTrigger& trigger,
                              const std::string& kind, double window_s);

  Params params_;
  obs::MetricsRegistry registry_;
  /// Process self-metrics, refreshed at exposition time (metrics_text is
  /// logically const — the refresh only re-reads /proc into gauges).
  mutable obs::ProcessMetrics proc_metrics_{registry_};
  BackendPool pool_;
  Coalescer coalescer_;
  std::unique_ptr<RoutingPolicy> policy_;
  std::mutex policy_mutex_;  ///< policies are stateful (rings, RR counters)

  std::mutex routes_mutex_;
  std::unordered_map<std::uint64_t, Route> routes_;

  std::mutex sessions_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::atomic<std::uint64_t> next_session_{1};
  std::atomic<std::uint64_t> next_token_{1};

  // Stale-policy view snapshot (see Params::stale_ms).
  std::mutex snapshot_mutex_;
  std::vector<BackendView> snapshot_;
  double snapshot_ms_ = -1.0;

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> stopped_{false};

  // Observability v3: flight ring over routed requests, fleet SLO engine
  // (its triggers feed the incident thread), and the federation snapshot.
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::uint16_t f_route_ = 0;      ///< interned "route" span name
  std::uint16_t f_markdown_ = 0;   ///< interned "backend-down" instant name
  std::unique_ptr<obs::Profiler> profiler_;  ///< router's own CPU sampler
  obs::SloEngine slo_;
  Federation federation_;

  mutable std::mutex incident_mutex_;
  std::condition_variable incident_cv_;
  std::deque<obs::SloTrigger> incident_queue_;
  std::string last_incident_;      ///< guarded by incident_mutex_
  std::atomic<std::uint64_t> incidents_total_{0};
  std::thread incident_thread_;
  std::thread federate_thread_;
  std::mutex stop_mutex_;          ///< pairs with stop_cv_ for timed sleeps
  std::condition_variable stop_cv_;

  obs::Counter* c_requests_ = nullptr;
  obs::Counter* c_responses_ = nullptr;
  obs::Counter* c_errors_ = nullptr;
  obs::Counter* c_coalesced_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_no_backend_ = nullptr;
  obs::LogHistogram* h_request_ms_ = nullptr;
  obs::Counter* c_incidents_ = nullptr;
  obs::Counter* c_federate_pulls_ = nullptr;
  std::vector<obs::Counter*> c_routed_;  ///< per backend
};

/// Depth-aware extraction of a top-level field's raw JSON value from a
/// response line (e.g. the `[...]` after `"traces":` or the `{...}` after
/// `"stats":`). Empty string when the key is absent. Exposed for tests.
std::string extract_raw_field(const std::string& line, const std::string& key);

}  // namespace qulrb::router
