#include "workloads/swe_kernel.hpp"

#include <algorithm>
#include <cmath>

#include "util/timer.hpp"

namespace qulrb::workloads {

namespace {
constexpr double kGravity = 9.81;
}

SweGrid::SweGrid(std::size_t nx, std::size_t ny, double cell_size)
    : nx_(nx), ny_(ny), cell_(cell_size) {
  util::require(nx >= 3 && ny >= 3, "SweGrid: need at least a 3x3 grid");
  util::require(cell_size > 0.0, "SweGrid: cell size must be positive");
  h_.assign(nx * ny, 1.0);
  hu_.assign(nx * ny, 0.0);
  hv_.assign(nx * ny, 0.0);
}

void SweGrid::initialize_lake(double cx, double cy, double radius,
                              double hump_height, double base_height) {
  util::require(base_height > 0.0, "SweGrid: base height must be positive");
  for (std::size_t y = 0; y < ny_; ++y) {
    for (std::size_t x = 0; x < nx_; ++x) {
      const double fx = (static_cast<double>(x) + 0.5) / static_cast<double>(nx_);
      const double fy = (static_cast<double>(y) + 0.5) / static_cast<double>(ny_);
      const double d = std::hypot(fx - cx, fy - cy);
      const std::size_t i = index(x, y);
      h_[i] = base_height + (d < radius ? hump_height * (1.0 - d / radius) : 0.0);
      hu_[i] = 0.0;
      hv_[i] = 0.0;
    }
  }
}

double SweGrid::step(double dt) {
  util::require(dt > 0.0, "SweGrid: dt must be positive");
  const std::size_t cells = nx_ * ny_;
  std::vector<double> nh(cells), nhu(cells), nhv(cells);

  // Physical fluxes of the SWE system.
  auto flux_x = [](double h, double hu, double hv, double& fh, double& fhu,
                   double& fhv) {
    const double u = hu / h;
    fh = hu;
    fhu = hu * u + 0.5 * kGravity * h * h;
    fhv = hv * u;
  };
  auto flux_y = [](double h, double hu, double hv, double& fh, double& fhu,
                   double& fhv) {
    const double v = hv / h;
    fh = hv;
    fhu = hu * v;
    fhv = hv * v + 0.5 * kGravity * h * h;
  };

  // Reflective-wall neighbour lookup: out-of-range mirrors the cell with the
  // normal momentum negated.
  auto neighbor = [&](std::ptrdiff_t x, std::ptrdiff_t y, bool flip_u, bool flip_v,
                      double& h, double& hu, double& hv) {
    const auto cx = static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(x, 0, static_cast<std::ptrdiff_t>(nx_) - 1));
    const auto cy = static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(y, 0, static_cast<std::ptrdiff_t>(ny_) - 1));
    const bool mirrored =
        cx != static_cast<std::size_t>(x) || cy != static_cast<std::size_t>(y);
    const std::size_t i = cy * nx_ + cx;
    h = h_[i];
    hu = (mirrored && flip_u) ? -hu_[i] : hu_[i];
    hv = (mirrored && flip_v) ? -hv_[i] : hv_[i];
  };

  double max_speed = 0.0;
  const double lambda = dt / cell_;

  for (std::size_t y = 0; y < ny_; ++y) {
    for (std::size_t x = 0; x < nx_; ++x) {
      const std::size_t i = y * nx_ + x;
      double hw, huw, hvw, he, hue, hve, hs, hus, hvs, hn, hun, hvn;
      neighbor(static_cast<std::ptrdiff_t>(x) - 1, static_cast<std::ptrdiff_t>(y),
               true, false, hw, huw, hvw);
      neighbor(static_cast<std::ptrdiff_t>(x) + 1, static_cast<std::ptrdiff_t>(y),
               true, false, he, hue, hve);
      neighbor(static_cast<std::ptrdiff_t>(x), static_cast<std::ptrdiff_t>(y) - 1,
               false, true, hs, hus, hvs);
      neighbor(static_cast<std::ptrdiff_t>(x), static_cast<std::ptrdiff_t>(y) + 1,
               false, true, hn, hun, hvn);

      double fwh, fwhu, fwhv, feh, fehu, fehv, fsh, fshu, fshv, fnh, fnhu, fnhv;
      flux_x(hw, huw, hvw, fwh, fwhu, fwhv);
      flux_x(he, hue, hve, feh, fehu, fehv);
      flux_y(hs, hus, hvs, fsh, fshu, fshv);
      flux_y(hn, hun, hvn, fnh, fnhu, fnhv);

      // Lax-Friedrichs: average of neighbours minus flux differences.
      nh[i] = 0.25 * (hw + he + hs + hn) - 0.5 * lambda * (feh - fwh + fnh - fsh);
      nhu[i] =
          0.25 * (huw + hue + hus + hun) - 0.5 * lambda * (fehu - fwhu + fnhu - fshu);
      nhv[i] =
          0.25 * (hvw + hve + hvs + hvn) - 0.5 * lambda * (fehv - fwhv + fnhv - fshv);
      nh[i] = std::max(nh[i], 1e-9);  // dry floor

      const double u = hu_[i] / h_[i];
      const double v = hv_[i] / h_[i];
      const double c = std::sqrt(kGravity * h_[i]);
      max_speed = std::max({max_speed, std::abs(u) + c, std::abs(v) + c});
    }
  }
  h_ = std::move(nh);
  hu_ = std::move(nhu);
  hv_ = std::move(nhv);
  return max_speed;
}

double SweGrid::total_volume() const {
  double volume = 0.0;
  for (double h : h_) volume += h;
  return volume;
}

std::size_t SweGrid::active_cells(double base_height, double threshold) const {
  std::size_t active = 0;
  for (double h : h_) {
    if (std::abs(h - base_height) > threshold) ++active;
  }
  return active;
}

double measure_swe_step_ms(std::size_t n, std::size_t repetitions) {
  util::require(repetitions >= 1, "measure_swe_step_ms: need a repetition");
  SweGrid grid(n, n);
  grid.initialize_lake(0.5, 0.5, 0.25, 0.3);
  const util::WallTimer timer;
  for (std::size_t r = 0; r < repetitions; ++r) {
    (void)grid.step(0.001);
  }
  return timer.elapsed_ms() / static_cast<double>(repetitions);
}

}  // namespace qulrb::workloads
