#pragma once

#include <cstdint>
#include <vector>

#include "lrp/problem.hpp"

namespace qulrb::workloads {

/// Configuration of the sam(oa)^2-like oscillating-lake workload generator.
///
/// The real sam(oa)^2 solves 2D shallow-water equations with ADER-DG +
/// a-posteriori finite-volume limiting on a dynamically adaptive triangular
/// mesh ordered along a Sierpinski curve. We model the pieces that matter for
/// the LRP input: an adaptive quadtree refined around the lake's moving
/// wet/dry front, cells ordered along a Hilbert space-filling curve (our
/// stand-in for the Sierpinski order), a limiter that multiplies the cost of
/// front cells, and contiguous curve segments forming the sections that
/// become Chameleon tasks.
struct SamoaConfig {
  std::size_t num_processes = 32;        ///< paper's Table V setup
  std::int64_t sections_per_process = 208;
  int base_depth = 7;                    ///< uniform refinement depth
  int max_depth = 10;                    ///< extra refinement at the front
  double lake_center_x = 0.5;
  double lake_center_y = 0.5;
  double lake_radius = 0.3;
  double oscillation_amplitude = 0.08;   ///< radial amplitude of the sloshing
  double time_phase = 0.7;               ///< snapshot phase in [0, 2*pi)
  double front_width = 0.015;            ///< half-width of the limited band
  double base_cell_cost_us = 1.0;        ///< unlimited DG cell cost
  /// Derive base_cell_cost_us from a measured step of the real shallow-water
  /// kernel (swe_kernel.hpp) on this machine instead of the abstract unit.
  bool calibrate_with_swe_kernel = false;
  double limiter_cost_factor = 30.0;     ///< a-posteriori FV limiting overhead
  /// Calibrate process loads (mean-preserving) so the baseline R_imb matches
  /// the paper's 4.1994; <= 0 keeps the raw generated imbalance.
  double target_imbalance = 4.1994;
};

struct SamoaWorkload {
  lrp::LrpProblem problem;            ///< uniformized LRP input (w_i = L_i / n)
  std::vector<double> process_loads;  ///< L_i in microseconds
  std::size_t total_cells = 0;
  std::size_t limited_cells = 0;      ///< cells where the limiter fired
};

SamoaWorkload make_samoa_workload(const SamoaConfig& config = {});

/// Time series of the oscillating lake: one workload per simulated output
/// step, with the sloshing front (and therefore the refined/limited region)
/// moving between steps. Feeds the periodic-rebalancing loop with the
/// dynamic behaviour the real application exhibits. When the base config
/// requests a calibrated imbalance, only the first step is calibrated; later
/// steps keep the raw generated imbalance (the drifting ground truth).
std::vector<SamoaWorkload> make_samoa_time_series(const SamoaConfig& config,
                                                  std::size_t steps,
                                                  double phase_step = 0.35);

/// Hilbert curve index of cell (x, y) on a 2^order x 2^order grid. Exposed
/// for tests (locality properties of the section ordering).
std::uint64_t hilbert_index(std::uint32_t order, std::uint32_t x, std::uint32_t y);

}  // namespace qulrb::workloads
