#include "workloads/mxm.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace qulrb::workloads {

std::vector<int> paper_matrix_sizes() {
  std::vector<int> sizes;
  for (int s = 128; s <= 512; s += 64) sizes.push_back(s);
  return sizes;
}

lrp::LrpProblem make_mxm_problem(std::span<const int> matrix_sizes,
                                 std::int64_t tasks_per_process,
                                 const MxmCostModel& model) {
  util::require(!matrix_sizes.empty(), "make_mxm_problem: need at least one process");
  std::vector<double> loads;
  loads.reserve(matrix_sizes.size());
  for (int s : matrix_sizes) {
    util::require(s > 0, "make_mxm_problem: matrix size must be positive");
    loads.push_back(model.task_ms(s));
  }
  return lrp::LrpProblem::uniform(std::move(loads), tasks_per_process);
}

lrp::LrpProblem make_heavy_tail_problem(std::size_t num_processes,
                                        std::int64_t tasks_per_process,
                                        double alpha, std::uint64_t seed) {
  util::require(num_processes >= 1, "make_heavy_tail_problem: need a process");
  util::require(alpha > 0.0, "make_heavy_tail_problem: alpha must be positive");
  util::Rng rng(seed);
  std::vector<double> loads(num_processes);
  for (auto& w : loads) {
    // Inverse-CDF Pareto sample with x_min = 1: w = (1 - u)^(-1/alpha).
    double u = rng.next_double();
    while (u >= 1.0) u = rng.next_double();
    w = std::pow(1.0 - u, -1.0 / alpha);
  }
  return lrp::LrpProblem::uniform(std::move(loads), tasks_per_process);
}

}  // namespace qulrb::workloads
