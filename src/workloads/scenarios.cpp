#include "workloads/scenarios.hpp"

#include "util/error.hpp"
#include "workloads/mxm.hpp"
#include "workloads/samoa.hpp"

namespace qulrb::workloads::scenarios {

std::vector<Scenario> imbalance_levels() {
  // Matrix sizes per node; task load ~ size^3, so the spread of sizes sets
  // the imbalance. Imb.0 is flat (the "should we migrate at all" control).
  const std::vector<std::vector<int>> level_sizes = {
      {256, 256, 256, 256, 256, 256, 256, 256},  // Imb.0
      {192, 256, 256, 256, 256, 256, 256, 320},  // Imb.1
      {192, 192, 256, 256, 256, 256, 320, 384},  // Imb.2
      {128, 192, 192, 256, 256, 320, 384, 448},  // Imb.3
      {128, 128, 192, 256, 320, 384, 448, 512},  // Imb.4
  };
  std::vector<Scenario> result;
  result.reserve(level_sizes.size());
  for (std::size_t level = 0; level < level_sizes.size(); ++level) {
    result.push_back({"Imb." + std::to_string(level),
                      make_mxm_problem(level_sizes[level], 50)});
  }
  return result;
}

std::vector<std::size_t> node_scaling_counts() { return {4, 8, 16, 32, 64}; }

Scenario node_scaling(std::size_t num_nodes) {
  util::require(num_nodes >= 2, "node_scaling: need at least two nodes");
  const std::vector<int> palette = paper_matrix_sizes();  // 128..512 step 64
  std::vector<int> sizes(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    sizes[i] = palette[i % palette.size()];
  }
  return {std::to_string(num_nodes) + " nodes", make_mxm_problem(sizes, 100)};
}

std::vector<std::int64_t> task_scaling_counts() {
  return {8, 16, 32, 64, 128, 256, 512, 1024, 2048};
}

Scenario task_scaling(std::int64_t tasks_per_node) {
  // The Imb.3 size spread, held fixed while n grows.
  const std::vector<int> sizes = {128, 192, 192, 256, 256, 320, 384, 448};
  return {std::to_string(tasks_per_node) + " tasks/node",
          make_mxm_problem(sizes, tasks_per_node)};
}

Scenario samoa_oscillating_lake() {
  const SamoaWorkload workload = make_samoa_workload();
  return {"sam(oa)^2 oscillating lake", workload.problem};
}

}  // namespace qulrb::workloads::scenarios
