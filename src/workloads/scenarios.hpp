#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lrp/problem.hpp"

namespace qulrb::workloads::scenarios {

struct Scenario {
  std::string name;
  lrp::LrpProblem problem;
};

/// Section V-B.1 / Figure 3 / Table II: M = 8 nodes, n = 50 uniform MxM tasks
/// per node, five imbalance levels Imb.0 (balanced) .. Imb.4 (severe) built
/// from matrix sizes in {128, 192, ..., 512}.
std::vector<Scenario> imbalance_levels();

/// Section V-B.2 / Figure 4 / Table III: n = 100 tasks per node, node count
/// in {4, 8, 16, 32, 64}; matrix sizes cycle through the paper's range.
std::vector<std::size_t> node_scaling_counts();
Scenario node_scaling(std::size_t num_nodes);

/// Section V-B.3 / Figure 5 / Table IV: M = 8 nodes, tasks per node in
/// {8, 16, ..., 2048}; fixed size spread.
std::vector<std::int64_t> task_scaling_counts();
Scenario task_scaling(std::int64_t tasks_per_node);

/// Section V-C / Table V: the sam(oa)^2 oscillating-lake use case
/// (M = 32, n = 208, baseline R_imb = 4.1994).
Scenario samoa_oscillating_lake();

}  // namespace qulrb::workloads::scenarios
