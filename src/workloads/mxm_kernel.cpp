#include "workloads/mxm_kernel.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace qulrb::workloads {

void mxm(const Matrix& a, const Matrix& b, Matrix& c, std::size_t block) {
  util::require(a.cols() == b.rows() && c.rows() == a.rows() && c.cols() == b.cols(),
                "mxm: dimension mismatch");
  util::require(block > 0, "mxm: block must be positive");
  const std::size_t n = a.rows();
  const std::size_t k_dim = a.cols();
  const std::size_t m = b.cols();

  for (std::size_t ii = 0; ii < n; ii += block) {
    const std::size_t i_end = std::min(ii + block, n);
    for (std::size_t kk = 0; kk < k_dim; kk += block) {
      const std::size_t k_end = std::min(kk + block, k_dim);
      for (std::size_t jj = 0; jj < m; jj += block) {
        const std::size_t j_end = std::min(jj + block, m);
        // i-k-j order: streams B rows, accumulates into C rows.
        for (std::size_t i = ii; i < i_end; ++i) {
          for (std::size_t k = kk; k < k_end; ++k) {
            const double aik = a.at(i, k);
            const double* b_row = b.data() + k * m;
            double* c_row = c.data() + i * m;
            for (std::size_t j = jj; j < j_end; ++j) {
              c_row[j] += aik * b_row[j];
            }
          }
        }
      }
    }
  }
}

double measure_mxm_ms(int matrix_size, std::size_t block) {
  util::require(matrix_size > 0, "measure_mxm_ms: size must be positive");
  const auto n = static_cast<std::size_t>(matrix_size);
  Matrix a(n, n, 1.0);
  Matrix b(n, n, 0.5);
  Matrix c(n, n, 0.0);
  util::WallTimer timer;
  mxm(a, b, c, block);
  const double ms = timer.elapsed_ms();
  // Keep the result alive so the kernel cannot be optimized away.
  volatile double sink = c.at(0, 0);
  (void)sink;
  return ms;
}

double calibrate_gflops(int matrix_size) {
  const double ms = measure_mxm_ms(matrix_size);
  const double flops = 2.0 * static_cast<double>(matrix_size) *
                       static_cast<double>(matrix_size) *
                       static_cast<double>(matrix_size);
  return flops / (ms * 1e-3) / 1e9;
}

}  // namespace qulrb::workloads
