#include "workloads/samoa.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "workloads/swe_kernel.hpp"

namespace qulrb::workloads {

namespace {

struct Cell {
  double x, y, half;  ///< center and half-width
  double cost_us;
  std::uint64_t curve_key;
};

/// Distance from the lake front (signed: negative inside the wet region).
double front_distance(const SamoaConfig& cfg, double x, double y) {
  const double r = cfg.lake_radius +
                   cfg.oscillation_amplitude * std::sin(cfg.time_phase);
  const double d = std::hypot(x - cfg.lake_center_x, y - cfg.lake_center_y);
  return d - r;
}

/// True when the square cell intersects the limited band around the front.
bool intersects_front(const SamoaConfig& cfg, double x, double y, double half) {
  const double d = std::abs(front_distance(cfg, x, y));
  // Conservative: cell diagonal reach plus the band half-width.
  return d <= cfg.front_width + half * std::numbers::sqrt2;
}

void refine(const SamoaConfig& cfg, double x, double y, double half, int depth,
            std::vector<Cell>& cells) {
  if (depth < cfg.max_depth && intersects_front(cfg, x, y, half)) {
    const double q = half / 2.0;
    refine(cfg, x - q, y - q, q, depth + 1, cells);
    refine(cfg, x + q, y - q, q, depth + 1, cells);
    refine(cfg, x - q, y + q, q, depth + 1, cells);
    refine(cfg, x + q, y + q, q, depth + 1, cells);
    return;
  }
  Cell cell{x, y, half, cfg.base_cell_cost_us, 0};
  if (std::abs(front_distance(cfg, x, y)) <= cfg.front_width) {
    cell.cost_us *= cfg.limiter_cost_factor;  // a-posteriori limiter fires
  }
  cells.push_back(cell);
}

/// Mean-preserving calibration of `loads` to the target imbalance ratio:
/// deviations from the mean are scaled, small loads clamped to a floor, and
/// the maximum finally solved exactly so R_imb == target.
void calibrate(std::vector<double>& loads, double target) {
  const std::size_t m = loads.size();
  if (m < 2 || target <= 0.0) return;

  auto avg_of = [&] {
    double s = 0.0;
    for (double l : loads) s += l;
    return s / static_cast<double>(m);
  };

  for (int iter = 0; iter < 8; ++iter) {
    const double avg = avg_of();
    if (avg <= 0.0) return;
    const double max_load = *std::max_element(loads.begin(), loads.end());
    const double current = (max_load - avg) / avg;
    if (current <= 0.0) {
      // Degenerate flat input: concentrate mass on process 0 a little.
      loads[0] *= 1.5;
      continue;
    }
    const double s = target / current;
    const double floor_load = 0.02 * avg;
    for (double& l : loads) {
      l = std::max(floor_load, avg + s * (l - avg));
    }
  }

  // Exact final adjustment of the maximum:
  //   (M x - (S + x)) / (S + x) = target  =>  x = (1 + target) S / (M - 1 - target)
  const auto max_it = std::max_element(loads.begin(), loads.end());
  double rest = 0.0;
  for (const double& l : loads) {
    if (&l != &*max_it) rest += l;
  }
  const double denom = static_cast<double>(m) - 1.0 - target;
  if (denom > 0.0) {
    const double x = (1.0 + target) * rest / denom;
    // Only valid if x really is the maximum; cap the runners-up if needed.
    for (double& l : loads) {
      if (&l != &*max_it) l = std::min(l, x);
    }
    rest = 0.0;
    for (const double& l : loads) {
      if (&l != &*max_it) rest += l;
    }
    *max_it = (1.0 + target) * rest / denom;
  }
}

}  // namespace

std::uint64_t hilbert_index(std::uint32_t order, std::uint32_t x, std::uint32_t y) {
  std::uint64_t d = 0;
  for (std::uint32_t s = order == 0 ? 0 : (1u << (order - 1)); s > 0; s /= 2) {
    const std::uint32_t rx = (x & s) > 0 ? 1 : 0;
    const std::uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

SamoaWorkload make_samoa_workload(const SamoaConfig& config_in) {
  SamoaConfig config = config_in;
  if (config.calibrate_with_swe_kernel) {
    // Cost of one finite-volume cell update, measured on this host with the
    // real SWE kernel (a 64x64 step spread over its 4096 cells).
    const double step_ms = measure_swe_step_ms(64, 2);
    config.base_cell_cost_us = step_ms * 1e3 / (64.0 * 64.0);
  }
  util::require(config.num_processes >= 2, "samoa: need at least two processes");
  util::require(config.sections_per_process >= 1, "samoa: need at least one section");
  util::require(config.base_depth >= 1 && config.max_depth >= config.base_depth,
                "samoa: invalid refinement depths");

  // --- adaptive mesh --------------------------------------------------------
  std::vector<Cell> cells;
  const int nb = 1 << config.base_depth;
  const double half0 = 0.5 / static_cast<double>(nb);
  for (int by = 0; by < nb; ++by) {
    for (int bx = 0; bx < nb; ++bx) {
      const double x = (2.0 * bx + 1.0) * half0;
      const double y = (2.0 * by + 1.0) * half0;
      refine(config, x, y, half0, config.base_depth, cells);
    }
  }

  const std::size_t total_sections =
      config.num_processes * static_cast<std::size_t>(config.sections_per_process);
  util::require(cells.size() >= total_sections,
                "samoa: mesh too coarse for the requested section count; "
                "increase base_depth");

  // --- space-filling-curve order --------------------------------------------
  const auto order = static_cast<std::uint32_t>(config.max_depth);
  const double grid = static_cast<double>(1u << order);
  for (auto& cell : cells) {
    const auto gx = static_cast<std::uint32_t>(
        std::min(grid - 1.0, std::max(0.0, cell.x * grid)));
    const auto gy = static_cast<std::uint32_t>(
        std::min(grid - 1.0, std::max(0.0, cell.y * grid)));
    cell.curve_key = hilbert_index(order, gx, gy);
  }
  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.curve_key < b.curve_key; });

  // --- sections: contiguous curve segments with near-equal cell counts ------
  // (sam(oa)^2 partitions by its cost predictor; the paper assumes that
  // predictor is wrong, which is exactly what count-based splitting gives us.)
  std::vector<double> section_cost(total_sections, 0.0);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const std::size_t s = c * total_sections / cells.size();
    section_cost[s] += cells[c].cost_us;
  }

  // --- processes: contiguous blocks of sections ------------------------------
  SamoaWorkload workload{
      lrp::LrpProblem::uniform({0.0, 0.0}, 1), {}, cells.size(), 0};
  for (const auto& cell : cells) {
    if (cell.cost_us > config.base_cell_cost_us) ++workload.limited_cells;
  }

  std::vector<double> loads(config.num_processes, 0.0);
  const auto per_proc = static_cast<std::size_t>(config.sections_per_process);
  for (std::size_t p = 0; p < config.num_processes; ++p) {
    for (std::size_t s = 0; s < per_proc; ++s) {
      loads[p] += section_cost[p * per_proc + s];
    }
  }

  calibrate(loads, config.target_imbalance);

  // Uniformize: each of the n sections on process i costs L_i / n.
  std::vector<double> task_loads(config.num_processes);
  for (std::size_t p = 0; p < config.num_processes; ++p) {
    task_loads[p] = loads[p] / static_cast<double>(config.sections_per_process);
  }
  workload.process_loads = std::move(loads);
  workload.problem =
      lrp::LrpProblem::uniform(std::move(task_loads), config.sections_per_process);
  return workload;
}

std::vector<SamoaWorkload> make_samoa_time_series(const SamoaConfig& config,
                                                  std::size_t steps,
                                                  double phase_step) {
  util::require(steps >= 1, "samoa: need at least one time step");
  std::vector<SamoaWorkload> series;
  series.reserve(steps);
  SamoaConfig step_config = config;
  for (std::size_t step = 0; step < steps; ++step) {
    series.push_back(make_samoa_workload(step_config));
    step_config.time_phase += phase_step;
    step_config.target_imbalance = 0.0;  // later steps drift freely
  }
  return series;
}

}  // namespace qulrb::workloads
