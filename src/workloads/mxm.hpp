#pragma once

#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "lrp/problem.hpp"

namespace qulrb::workloads {

/// Cost model for one MxM task A = B x C of the given square matrix size:
/// 2 s^3 floating-point operations at `gflops` sustained rate. The paper's
/// synthetic benchmark varies the matrix size per process (128..512) to
/// create imbalance while tasks within a process stay uniform.
struct MxmCostModel {
  double gflops = 10.0;  ///< sustained DGEMM rate per compute thread

  double task_ms(int matrix_size) const noexcept {
    const double flops = 2.0 * static_cast<double>(matrix_size) *
                         static_cast<double>(matrix_size) *
                         static_cast<double>(matrix_size);
    return flops / (gflops * 1e9) * 1e3;
  }
};

/// The matrix sizes the paper samples from: {128, 192, 256, ..., 512}.
std::vector<int> paper_matrix_sizes();

/// Build an LRP instance: process i runs `tasks_per_process` MxM tasks of
/// size `matrix_sizes[i]`.
lrp::LrpProblem make_mxm_problem(std::span<const int> matrix_sizes,
                                 std::int64_t tasks_per_process,
                                 const MxmCostModel& model = {});

/// Stress workload beyond the paper's matrix-size palette: per-process loads
/// drawn from a Pareto (heavy-tailed) distribution, the pathological shape
/// that adaptive codes exhibit when a few partitions concentrate nearly all
/// cost. `alpha` < 2 gives infinite-variance tails (harder); larger alpha
/// approaches uniformity.
lrp::LrpProblem make_heavy_tail_problem(std::size_t num_processes,
                                        std::int64_t tasks_per_process,
                                        double alpha = 1.5,
                                        std::uint64_t seed = 1);

}  // namespace qulrb::workloads
