#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace qulrb::workloads {

/// Minimal 2D shallow-water-equations solver (Lax-Friedrichs finite volumes
/// on a regular grid) — the *real* compute kernel behind the sam(oa)^2-like
/// workload. Where the mxm kernel calibrates the synthetic benchmark, this
/// kernel calibrates per-cell costs of the AMR generator, and its wet/dry
/// handling is the physical reason the paper's limiter cells cost more.
///
/// State per cell: water height h and momenta (hu, hv); reflective walls.
class SweGrid {
 public:
  SweGrid(std::size_t nx, std::size_t ny, double cell_size = 1.0);

  std::size_t nx() const noexcept { return nx_; }
  std::size_t ny() const noexcept { return ny_; }

  double& h(std::size_t x, std::size_t y) { return h_[index(x, y)]; }
  double& hu(std::size_t x, std::size_t y) { return hu_[index(x, y)]; }
  double& hv(std::size_t x, std::size_t y) { return hv_[index(x, y)]; }
  double h(std::size_t x, std::size_t y) const { return h_[index(x, y)]; }
  double hu(std::size_t x, std::size_t y) const { return hu_[index(x, y)]; }
  double hv(std::size_t x, std::size_t y) const { return hv_[index(x, y)]; }

  /// Initialize the oscillating-lake scenario: a raised circular hump of
  /// water centered at (cx, cy) (grid-relative in [0,1]) over a flat basin.
  void initialize_lake(double cx, double cy, double radius, double hump_height,
                       double base_height = 1.0);

  /// One explicit time step (Lax-Friedrichs). Returns the largest wave speed
  /// observed (for CFL monitoring). dt must satisfy dt <= cell/(2*speed).
  double step(double dt);

  /// Total water volume (h summed over cells) — conserved by the scheme up
  /// to wall effects; used as the correctness invariant in tests.
  double total_volume() const;

  /// Cells whose height differs from the base state by more than `threshold`
  /// — a proxy for "where the limiter would fire" in the ADER-DG scheme.
  std::size_t active_cells(double base_height, double threshold) const;

 private:
  std::size_t index(std::size_t x, std::size_t y) const {
    util::require(x < nx_ && y < ny_, "SweGrid: cell out of range");
    return y * nx_ + x;
  }

  std::size_t nx_, ny_;
  double cell_;
  std::vector<double> h_, hu_, hv_;
};

/// Wall time (ms) of one SWE step on an n x n grid — used to calibrate the
/// per-cell cost of the samoa workload generator on the host machine.
double measure_swe_step_ms(std::size_t n, std::size_t repetitions = 3);

}  // namespace qulrb::workloads
