#pragma once

#include <cstddef>
#include <vector>

namespace qulrb::workloads {

/// Dense row-major matrix for the real MxM kernel.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

/// Cache-blocked C += A * B (the compute kernel of the paper's synthetic
/// benchmark). Dimensions must agree.
void mxm(const Matrix& a, const Matrix& b, Matrix& c, std::size_t block = 64);

/// Execute one MxM task of the given square size and return its wall time in
/// milliseconds; used to calibrate MxmCostModel::gflops on the host machine.
double measure_mxm_ms(int matrix_size, std::size_t block = 64);

/// Measured sustained GFLOP/s for the given size (2 n^3 flops / time).
double calibrate_gflops(int matrix_size = 256);

}  // namespace qulrb::workloads
