#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace qulrb::obs::prof {

/// Maximum frames captured per CPU sample (fixed-size ring slots).
inline constexpr int kMaxFrames = 40;

/// Probe once (from a normal, non-signal context — Profiler::start calls
/// it) which frame-read strategy is available: process_vm_readv on the own
/// process gives crash-proof reads that fail with EFAULT instead of
/// SIGSEGV when a frame-pointer chain wanders into unmapped memory (frames
/// from translation units built without -fno-omit-frame-pointer leave rbp
/// holding arbitrary data); when the syscall is unavailable (seccomp,
/// Yama), the walker falls back to direct loads guarded by alignment and
/// span checks. Idempotent and cheap after the first call.
void init_unwinder() noexcept;

/// Async-signal-safe frame-pointer unwind starting from a signal handler's
/// ucontext (the interrupted thread's pc/fp/sp). pcs[0] is the exact
/// interrupted pc; the rest are return addresses from the fp chain.
/// Returns the number of frames written (0 on unsupported architectures).
int unwind_ucontext(void* ucontext, std::uintptr_t* pcs,
                    int max_frames) noexcept;

/// Unwind the caller's own stack via __builtin_frame_address — the first
/// frame is the caller of unwind_here, after dropping `skip` further
/// frames. Not used by the signal path; this is the deterministic test
/// hook for the walker and symbolizer.
int unwind_here(std::uintptr_t* pcs, int max_frames, int skip = 0) noexcept;

/// Offline PC → frame-name resolution: dladdr (needs -rdynamic /
/// CMAKE_ENABLE_EXPORTS for static symbols in the main executable) with
/// __cxa_demangle, falling back to "module+0xoff" from /proc/self/maps,
/// and finally a bare hex PC — unresolvable frames degrade, never fail.
/// Caches per PC; not thread-safe (exports run on one control thread).
class Symbolizer {
 public:
  Symbolizer();

  /// Resolve an exact pc (a sample's leaf frame).
  std::string resolve(std::uintptr_t pc);

  /// Resolve a return address: symbolizes pc - 1 so the frame attributes
  /// to the call site rather than the instruction after it (which can be
  /// the next function when the call is a tail position).
  std::string resolve_return_address(std::uintptr_t pc);

 private:
  struct Mapping {
    std::uintptr_t begin = 0;
    std::uintptr_t end = 0;
    std::string name;
  };

  std::string symbolize(std::uintptr_t pc) const;

  std::vector<Mapping> maps_;
  std::unordered_map<std::uintptr_t, std::string> cache_;
};

}  // namespace qulrb::obs::prof
