#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace qulrb::obs {

/// Identity of this binary for fleet debugging: which code, which compiler
/// mode, which kernel path. Version and git sha are stamped by CMake at
/// configure time; the SIMD level is passed in by the caller (obs must not
/// link the kernels — callers already know anneal::simd::level_name()).
struct BuildInfo {
  std::string version;     ///< project version, e.g. "1.0.0"
  std::string revision;    ///< short git sha, "unknown" outside a checkout
  std::string build_type;  ///< CMake build type, "unspecified" when empty
  std::string simd_level;  ///< "scalar" / "avx2"
};

/// The stamped identity of this binary with the caller's SIMD level.
BuildInfo build_info(std::string simd_level);

/// Register the conventional `qulrb_build_info` gauge (value 1, identity in
/// the labels — the standard Prometheus build-info idiom) in `registry`.
/// `role` tags which fleet role exposes it ("serve", "router", "cli", ...);
/// the router's federated exposition relies on it to keep per-process
/// identities distinct after merging.
void register_build_info(MetricsRegistry& registry, const BuildInfo& info,
                         const std::string& role);

}  // namespace qulrb::obs
