#pragma once

#include <cstdint>
#include <string>

#include "io/json.hpp"

namespace qulrb::obs {

/// Streaming emitter for the Chrome-trace JSON flavour that
/// https://ui.perfetto.dev and chrome://tracing load: a `traceEvents` array
/// of complete ("X"), counter ("C"), instant ("i"), and name-metadata ("M")
/// events, followed by a free-form `metadata` object. Timestamps and
/// durations are microseconds, per the format.
///
/// Shared by the BSP simulator export (runtime/trace_export) and the solver
/// trace export (obs::to_perfetto_json), so both produce the same dialect.
class TraceWriter {
 public:
  TraceWriter();

  /// A closed interval on row (pid, tid). Zero/negative durations are
  /// dropped — the viewers render them as artifacts.
  void complete(const std::string& name, const char* category, std::int64_t pid,
                std::int64_t tid, double start_us, double dur_us);

  /// One point of a per-process counter timeline named `series`.
  void counter(const std::string& series, std::int64_t pid, double t_us,
               double value);

  /// A zero-duration marker on row (pid, tid).
  void instant(const std::string& name, const char* category, std::int64_t pid,
               std::int64_t tid, double t_us);

  void process_name(std::int64_t pid, const std::string& name);
  void thread_name(std::int64_t pid, std::int64_t tid, const std::string& name);

  /// Append a field to the trailing `metadata` object.
  void metadata(const std::string& key, const std::string& value);
  void metadata(const std::string& key, double value);
  void metadata(const std::string& key, std::int64_t value);
  void metadata(const std::string& key, std::size_t value) {
    metadata(key, static_cast<std::int64_t>(value));
  }

  /// Close the document and return it. The writer is spent afterwards.
  std::string finish();

 private:
  void begin_event(const char* ph, std::int64_t pid, std::int64_t tid);

  io::JsonWriter events_;  ///< open inside {"traceEvents": [
  io::JsonWriter meta_;    ///< open metadata object
  bool finished_ = false;
};

}  // namespace qulrb::obs
