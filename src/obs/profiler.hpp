#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/stack_unwind.hpp"

namespace qulrb::obs {

/// One decoded CPU sample (the reader-side plain copy of a ring slot).
struct ProfileSample {
  std::uint64_t ticket = 0;        ///< global sample sequence (monotone)
  double t_us = 0.0;               ///< obs::clock timestamp
  std::uint64_t rid = 0;           ///< request id active on the thread (0 = none)
  const char* phase = nullptr;     ///< innermost phase label (static string)
  std::uint32_t tid = 0;           ///< kernel thread id
  int depth = 0;                   ///< frames in pcs (0 = unwind failed)
  std::uintptr_t pcs[prof::kMaxFrames] = {};  ///< leaf first
};

/// Continuous sampling CPU profiler: a POSIX CPU-time interval timer
/// (ITIMER_PROF) delivers SIGPROF to whichever thread is burning CPU; the
/// handler frame-pointer-unwinds the interrupted context and drops one
/// fixed-size raw-PC record into a lock-free ring using the same per-slot
/// seqlock discipline as FlightRecorder. Everything on the signal path is
/// async-signal-safe: atomics, the fp walk (process_vm_readv or guarded
/// direct loads), one clock_gettime, one gettid — no locks, no allocation,
/// no symbolization (that happens offline at export time).
///
/// Each sample is tagged with the interrupted thread's current prof phase
/// label and request id (obs/phase.hpp), which is the join that lets the
/// export answer "38% of req-17's CPU went to pair deltas under
/// restart-polish".
///
/// At most one profiler is active per process (the timer and the signal
/// disposition are process-wide); start() on a second instance fails.
/// Stopping disarms the timer, restores the previous SIGPROF disposition
/// and waits out in-flight handlers, so destruction is safe while sampling.
class Profiler {
 public:
  struct Params {
    /// Sampling rate; the serving default is 99 Hz (the classic just-off-
    /// 100 rate that avoids lockstep with 10 ms periodic work). <= 0
    /// disables start().
    int hz = 99;
    /// Ring capacity in samples, rounded up to a power of two. 4096 at
    /// 99 Hz holds ~41 s of process-wide history.
    std::size_t ring_capacity = 4096;
  };

  explicit Profiler(Params params);
  Profiler() : Profiler(Params{}) {}
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Arm the timer and install the SIGPROF handler. Returns false if hz <=
  /// 0, another Profiler is already active, or the timer could not be
  /// installed. Idempotent while running.
  bool start();

  /// Disarm, restore the previous SIGPROF disposition, and wait for
  /// in-flight handlers to drain. Idempotent.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }
  int hz() const noexcept { return params_.hz; }
  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Total samples ever taken (>= capacity once the ring has wrapped).
  std::uint64_t total_samples() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  /// Consistent copies of every intact sample with t_us >= now - window_s
  /// (window_s <= 0 = everything still in the ring), sorted by timestamp
  /// then ticket. Torn slots (overwritten mid-read) are skipped.
  std::vector<ProfileSample> snapshot(double window_s) const;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> begin{0};
    std::atomic<std::uint64_t> end{0};
    std::atomic<double> t_us{0.0};
    std::atomic<std::uint64_t> rid{0};
    std::atomic<const char*> phase{nullptr};
    std::atomic<std::uint32_t> tid{0};
    std::atomic<std::int32_t> depth{0};
    std::atomic<std::uintptr_t> pcs[prof::kMaxFrames] = {};
  };

  static void signal_handler(int signum, siginfo_t* info, void* ucontext);
  void handle(void* ucontext) noexcept;

  Params params_;
  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<bool> running_{false};
  struct sigaction old_action_ {};
};

}  // namespace qulrb::obs
