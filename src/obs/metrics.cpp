#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <sstream>

namespace qulrb::obs {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string with_labels(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

std::string merged_labels(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return extra;
  return labels + "," + extra;
}

// HELP text escaping: the exposition format reserves backslash and newline
// (label-value escaping is stricter and handled at registration time).
std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);

  // Group children by family (metric name) in first-registration order so
  // `# HELP`/`# TYPE` appear exactly once per family even when different
  // label sets of one family were registered interleaved with other metrics
  // (the exposition format forbids repeating a family header).
  std::vector<std::pair<std::string, std::vector<const Entry*>>> families;
  for (const auto& e : entries_) {
    auto it = std::find_if(
        families.begin(), families.end(),
        [&](const auto& family) { return family.first == e->name; });
    if (it == families.end()) {
      families.emplace_back(e->name, std::vector<const Entry*>{});
      it = std::prev(families.end());
    }
    it->second.push_back(e.get());
  }

  std::ostringstream out;
  for (const auto& [name, children] : families) {
    const Entry* first = children.front();
    const Entry* with_help = first;
    for (const Entry* e : children) {
      if (!e->help.empty()) {
        with_help = e;
        break;
      }
    }
    if (!with_help->help.empty()) {
      out << "# HELP " << name << ' ' << escape_help(with_help->help) << '\n';
    }
    const char* type = first->kind == Kind::kCounter   ? "counter"
                       : first->kind == Kind::kGauge   ? "gauge"
                                                       : "histogram";
    out << "# TYPE " << name << ' ' << type << '\n';
    for (const Entry* entry : children) {
      const Entry& e = *entry;
      switch (e.kind) {
        case Kind::kCounter:
          out << with_labels(e.name, e.labels) << ' ' << e.counter->value()
              << '\n';
          break;
        case Kind::kGauge:
          out << with_labels(e.name, e.labels) << ' '
              << fmt_double(e.gauge->value()) << '\n';
          break;
        case Kind::kHistogram: {
          const LogHistogram& h = *e.histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < h.num_buckets(); ++b) {
            cumulative += h.bucket_count(b);
            out << with_labels(e.name + "_bucket",
                               merged_labels(e.labels,
                                             "le=\"" +
                                                 fmt_double(h.upper_edge(b)) +
                                                 "\""))
                << ' ' << cumulative << '\n';
          }
          out << with_labels(e.name + "_sum", e.labels) << ' '
              << fmt_double(h.sum()) << '\n';
          out << with_labels(e.name + "_count", e.labels) << ' ' << cumulative
              << '\n';
          break;
        }
      }
    }
  }
  return out.str();
}

void MetricsRegistry::visit(
    const std::function<void(const std::string& name,
                             const std::string& labels, const Counter* counter,
                             const Gauge* gauge,
                             const LogHistogram* histogram)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter:
        fn(e->name, e->labels, e->counter.get(), nullptr, nullptr);
        break;
      case Kind::kGauge:
        fn(e->name, e->labels, nullptr, e->gauge.get(), nullptr);
        break;
      case Kind::kHistogram:
        fn(e->name, e->labels, nullptr, nullptr, e->histogram.get());
        break;
    }
  }
}

}  // namespace qulrb::obs
