#include "obs/metrics.hpp"

#include <cstdio>
#include <sstream>

namespace qulrb::obs {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string with_labels(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

std::string merged_labels(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return extra;
  return labels + "," + extra;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  std::string last_family;
  for (const auto& e : entries_) {
    if (e->name != last_family) {
      last_family = e->name;
      if (!e->help.empty()) out << "# HELP " << e->name << ' ' << e->help << '\n';
      const char* type = e->kind == Kind::kCounter   ? "counter"
                         : e->kind == Kind::kGauge   ? "gauge"
                                                     : "histogram";
      out << "# TYPE " << e->name << ' ' << type << '\n';
    }
    switch (e->kind) {
      case Kind::kCounter:
        out << with_labels(e->name, e->labels) << ' ' << e->counter->value()
            << '\n';
        break;
      case Kind::kGauge:
        out << with_labels(e->name, e->labels) << ' '
            << fmt_double(e->gauge->value()) << '\n';
        break;
      case Kind::kHistogram: {
        const LogHistogram& h = *e->histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.num_buckets(); ++b) {
          cumulative += h.bucket_count(b);
          out << with_labels(e->name + "_bucket",
                             merged_labels(e->labels, "le=\"" +
                                                          fmt_double(h.upper_edge(b)) +
                                                          "\""))
              << ' ' << cumulative << '\n';
        }
        out << with_labels(e->name + "_sum", e->labels) << ' '
            << fmt_double(h.sum()) << '\n';
        out << with_labels(e->name + "_count", e->labels) << ' ' << cumulative
            << '\n';
        break;
      }
    }
  }
  return out.str();
}

}  // namespace qulrb::obs
