#pragma once

#include <string>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/stack_unwind.hpp"

namespace qulrb::obs {

/// Knobs for the folded/JSON profile exports.
struct ProfileExportOptions {
  /// Root frame of every folded line — the producing process ("qulrb_serve",
  /// "qulrb_router", "qulrb"). The router's merge prepends a further
  /// "instance:<label>" root per backend.
  std::string source = "qulrb";
  /// Sampling rate the capture ran at (metadata only).
  int hz = 0;
  /// Capture window in seconds (metadata only; <= 0 = whole ring).
  double window_s = 0.0;
};

/// Collapsed/folded stacks (Brendan Gregg's flamegraph.pl input — also what
/// speedscope imports): one line per distinct stack,
///
///   <source>;rid:<n>;phase:<label>;<outer>;...;<leaf> <count>
///
/// Frames run root to leaf; the synthetic rid:/phase: roots appear only for
/// samples that carried them, so un-attributed CPU folds under the bare
/// source root. Lines are sorted lexicographically (deterministic output
/// for a given sample set).
std::string profile_to_folded(const std::vector<ProfileSample>& samples,
                              prof::Symbolizer& symbolizer,
                              const ProfileExportOptions& options);

/// JSON profile document:
///   {"source":..,"hz":..,"window_s":..,"samples":N,"distinct_stacks":M,
///    "phases":[{"phase":..,"rid":..,"samples":n}, ...],
///    "folded":"<the folded text, newline-separated>"}
/// The phases array is the {rid, phase} join aggregated over all stacks —
/// the direct answer to "where did req-17's CPU go".
std::string profile_to_json(const std::vector<ProfileSample>& samples,
                            prof::Symbolizer& symbolizer,
                            const ProfileExportOptions& options);

/// Prefix every non-empty folded line with "instance:<label>;" — how the
/// router tags per-backend folded profiles before concatenating them into
/// one fleet document (folded consumers sum duplicate stacks, so plain
/// concatenation is a correct merge).
std::string folded_with_instance(const std::string& folded,
                                 const std::string& instance);

}  // namespace qulrb::obs
