#include "obs/trace_writer.hpp"

#include "util/error.hpp"

namespace qulrb::obs {

TraceWriter::TraceWriter() {
  events_.begin_object();
  events_.key("traceEvents");
  events_.begin_array();
  meta_.begin_object();
}

void TraceWriter::begin_event(const char* ph, std::int64_t pid,
                              std::int64_t tid) {
  events_.begin_object();
  events_.field("ph", ph);
  events_.field("pid", pid);
  events_.field("tid", tid);
}

void TraceWriter::complete(const std::string& name, const char* category,
                           std::int64_t pid, std::int64_t tid, double start_us,
                           double dur_us) {
  if (dur_us <= 0.0) return;
  begin_event("X", pid, tid);
  events_.field("name", name);
  events_.field("cat", category);
  events_.field("ts", start_us);
  events_.field("dur", dur_us);
  events_.end_object();
}

void TraceWriter::counter(const std::string& series, std::int64_t pid,
                          double t_us, double value) {
  begin_event("C", pid, 0);
  events_.field("name", series);
  events_.field("ts", t_us);
  events_.key("args");
  events_.begin_object();
  events_.field("value", value);
  events_.end_object();
  events_.end_object();
}

void TraceWriter::instant(const std::string& name, const char* category,
                          std::int64_t pid, std::int64_t tid, double t_us) {
  begin_event("i", pid, tid);
  events_.field("name", name);
  events_.field("cat", category);
  events_.field("ts", t_us);
  events_.field("s", "t");  // thread-scoped marker
  events_.end_object();
}

void TraceWriter::process_name(std::int64_t pid, const std::string& name) {
  begin_event("M", pid, 0);
  events_.field("name", "process_name");
  events_.key("args");
  events_.begin_object();
  events_.field("name", name);
  events_.end_object();
  events_.end_object();
}

void TraceWriter::thread_name(std::int64_t pid, std::int64_t tid,
                              const std::string& name) {
  begin_event("M", pid, tid);
  events_.field("name", "thread_name");
  events_.key("args");
  events_.begin_object();
  events_.field("name", name);
  events_.end_object();
  events_.end_object();
}

void TraceWriter::metadata(const std::string& key, const std::string& value) {
  meta_.field(key, value);
}

void TraceWriter::metadata(const std::string& key, double value) {
  meta_.field(key, value);
}

void TraceWriter::metadata(const std::string& key, std::int64_t value) {
  meta_.field(key, value);
}

std::string TraceWriter::finish() {
  util::require(!finished_, "TraceWriter: finish() called twice");
  finished_ = true;
  events_.end_array();
  meta_.end_object();
  events_.key("metadata");
  events_.raw_value(meta_.str());
  events_.end_object();
  return events_.str();
}

}  // namespace qulrb::obs
