#include "obs/stack_unwind.hpp"

#include <cxxabi.h>
#include <dlfcn.h>
#include <sys/uio.h>
#include <ucontext.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace qulrb::obs::prof {
namespace {

/// Frame chains are only followed while fp stays within this span above
/// the starting sp — generous enough for real thread stacks, tight enough
/// to reject most garbage register values in the direct-load fallback.
constexpr std::uintptr_t kMaxStackSpan = std::uintptr_t{64} << 20;

std::atomic<bool> g_use_pvr{false};
std::atomic<bool> g_probed{false};
std::atomic<int> g_pid{0};

/// Read the two words at fp (saved fp, return address). In pvr mode a read
/// from unmapped memory fails with EFAULT; in direct mode the caller's
/// span/alignment checks are the only guard.
bool read_frame(std::uintptr_t fp, std::uintptr_t out[2]) noexcept {
  if (g_use_pvr.load(std::memory_order_relaxed)) {
    struct iovec local;
    local.iov_base = out;
    local.iov_len = 2 * sizeof(std::uintptr_t);
    struct iovec remote;
    remote.iov_base = reinterpret_cast<void*>(fp);
    remote.iov_len = 2 * sizeof(std::uintptr_t);
    const ssize_t n = ::process_vm_readv(g_pid.load(std::memory_order_relaxed),
                                         &local, 1, &remote, 1, 0);
    return n == static_cast<ssize_t>(2 * sizeof(std::uintptr_t));
  }
  out[0] = reinterpret_cast<const std::uintptr_t*>(fp)[0];
  out[1] = reinterpret_cast<const std::uintptr_t*>(fp)[1];
  return true;
}

/// Walk the fp chain appending return addresses. `lo` starts at the
/// interrupted sp: saved frame pointers must sit above it, stay aligned,
/// move strictly upward, and not run away past kMaxStackSpan.
int walk_chain(std::uintptr_t fp, std::uintptr_t lo, std::uintptr_t* pcs,
               int n, int max_frames) noexcept {
  const std::uintptr_t limit = lo + kMaxStackSpan;
  while (n < max_frames) {
    if (fp < lo || fp > limit ||
        (fp & (sizeof(std::uintptr_t) - 1)) != 0) {
      break;
    }
    std::uintptr_t words[2];
    if (!read_frame(fp, words)) break;
    const std::uintptr_t next_fp = words[0];
    const std::uintptr_t ret = words[1];
    if (ret < 0x1000) break;  // null page: end of chain or junk
    pcs[n++] = ret;
    if (next_fp <= fp) break;  // chain must move toward the stack base
    lo = fp;
    fp = next_fp;
  }
  return n;
}

}  // namespace

void init_unwinder() noexcept {
  if (g_probed.load(std::memory_order_acquire)) return;
  g_pid.store(static_cast<int>(::getpid()), std::memory_order_relaxed);
  // Probe: read a stack local through the syscall. EPERM/ENOSYS (seccomp,
  // hardened Yama) selects the direct-load fallback.
  std::uintptr_t probe_src[2] = {0x1234, 0x5678};
  std::uintptr_t probe_dst[2] = {0, 0};
  struct iovec local;
  local.iov_base = probe_dst;
  local.iov_len = sizeof(probe_dst);
  struct iovec remote;
  remote.iov_base = probe_src;
  remote.iov_len = sizeof(probe_src);
  const ssize_t n = ::process_vm_readv(g_pid.load(std::memory_order_relaxed),
                                       &local, 1, &remote, 1, 0);
  g_use_pvr.store(n == static_cast<ssize_t>(sizeof(probe_src)) &&
                      probe_dst[0] == probe_src[0] &&
                      probe_dst[1] == probe_src[1],
                  std::memory_order_relaxed);
  g_probed.store(true, std::memory_order_release);
}

int unwind_ucontext(void* ucontext, std::uintptr_t* pcs,
                    int max_frames) noexcept {
  if (ucontext == nullptr || max_frames <= 0) return 0;
#if defined(__x86_64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext);
  const auto pc =
      static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  const auto fp =
      static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  const auto sp =
      static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext);
  const auto pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  const auto fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
  const auto sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
#else
  (void)pcs;
  return 0;
#endif
#if defined(__x86_64__) || defined(__aarch64__)
  int n = 0;
  pcs[n++] = pc;
  return walk_chain(fp, sp, pcs, n, max_frames);
#endif
}

int unwind_here(std::uintptr_t* pcs, int max_frames, int skip) noexcept {
  if (max_frames <= 0) return 0;
  if (skip < 0) skip = 0;
  std::uintptr_t buf[kMaxFrames];
  const auto fp =
      reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
  int want = max_frames + skip;
  if (want > kMaxFrames) want = kMaxFrames;
  const int n = walk_chain(fp, fp, buf, 0, want);
  int out = 0;
  for (int i = skip; i < n && out < max_frames; ++i) pcs[out++] = buf[i];
  return out;
}

// ----- symbolization --------------------------------------------------------

namespace {

std::string hex_pc(std::uintptr_t pc) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%zx", static_cast<std::size_t>(pc));
  return buf;
}

/// Frame names become components of the ';'-separated folded format, so
/// the separator (and whitespace, which some folded consumers trim on)
/// must not appear inside a name.
std::string sanitize_frame(std::string name) {
  for (char& c : name) {
    if (c == ';') c = ':';
    if (c == '\n' || c == '\t') c = ' ';
  }
  return name;
}

}  // namespace

Symbolizer::Symbolizer() {
  std::FILE* f = std::fopen("/proc/self/maps", "r");
  if (f == nullptr) return;
  char line[1024];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // <begin>-<end> <perms> <offset> <dev> <inode> [path]
    std::uintptr_t begin = 0;
    std::uintptr_t end = 0;
    char perms[8] = {};
    int path_pos = -1;
    if (std::sscanf(line, "%zx-%zx %7s %*s %*s %*s %n",
                    reinterpret_cast<std::size_t*>(&begin),
                    reinterpret_cast<std::size_t*>(&end), perms,
                    &path_pos) < 3) {
      continue;
    }
    if (perms[2] != 'x') continue;  // only executable mappings matter
    Mapping m;
    m.begin = begin;
    m.end = end;
    if (path_pos >= 0 && line[path_pos] != '\0' && line[path_pos] != '\n') {
      std::string path = line + path_pos;
      while (!path.empty() && (path.back() == '\n' || path.back() == ' ')) {
        path.pop_back();
      }
      const std::size_t slash = path.find_last_of('/');
      m.name = slash == std::string::npos ? path : path.substr(slash + 1);
    }
    maps_.push_back(m);
  }
  std::fclose(f);
}

std::string Symbolizer::symbolize(std::uintptr_t pc) const {
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (::dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name = (status == 0 && demangled != nullptr)
                           ? std::string(demangled)
                           : std::string(info.dli_sname);
    std::free(demangled);
    return sanitize_frame(std::move(name));
  }
  for (const Mapping& m : maps_) {
    if (pc >= m.begin && pc < m.end && !m.name.empty()) {
      return sanitize_frame(m.name + "+" + hex_pc(pc - m.begin));
    }
  }
  return hex_pc(pc);
}

std::string Symbolizer::resolve(std::uintptr_t pc) {
  auto it = cache_.find(pc);
  if (it != cache_.end()) return it->second;
  std::string name = symbolize(pc);
  cache_.emplace(pc, name);
  return name;
}

std::string Symbolizer::resolve_return_address(std::uintptr_t pc) {
  return resolve(pc > 0 ? pc - 1 : pc);
}

}  // namespace qulrb::obs::prof
