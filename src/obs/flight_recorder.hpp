#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.hpp"

namespace qulrb::obs {

/// What one flight-ring record describes.
enum class FlightKind : std::uint8_t {
  kSpan = 0,     ///< closed phase: [t_us - dur_us, t_us]
  kInstant = 1,  ///< point event at t_us (value is free-form payload)
  kCounter = 2,  ///< counter sample at t_us (value is the counter reading)
};

/// One decoded flight record (the reader-side plain copy of a ring slot).
struct FlightRecord {
  std::uint64_t ticket = 0;  ///< global write sequence (monotone)
  double t_us = 0.0;         ///< end/occurrence time on the recorder epoch
  double dur_us = 0.0;       ///< span length (0 for instants/counters)
  double value = 0.0;        ///< payload (counter reading, event detail)
  std::uint64_t rid = 0;     ///< owning request id (0 = none)
  std::uint32_t track = 0;   ///< same track identities as obs::Recorder
  std::uint16_t name = 0;    ///< interned name code (FlightRecorder::name_of)
  FlightKind kind = FlightKind::kInstant;
};

/// Always-on flight recorder: a fixed-size ring of compact records written
/// with a seqlock per slot, so the hot path is one relaxed ticket
/// fetch_add, a handful of relaxed stores and one release store — no mutex,
/// no allocation, ever. Readers (snapshot/dump, triggered rarely) scan the
/// ring and discard torn slots instead of blocking writers.
///
/// Memory ordering (the classic seqlock recipe, all fields atomic so the
/// race is on atomics and TSan-clean):
///   writer: begin.store(ticket+1, relaxed); fence(release);
///           payload stores (relaxed); end.store(ticket+1, release);
///   reader: e = end.load(acquire); payload loads (relaxed);
///           fence(acquire); b = begin.load(relaxed); valid iff b == e.
/// If a payload load observed a later writer's store, the release fence
/// before that store and the acquire fence before the begin load force the
/// later writer's begin stamp to be visible too, so the mismatch is caught.
/// Torn records require a writer to lap the ring while another writer still
/// holds the same slot — impossible while concurrent writers < capacity.
///
/// Null-object discipline matches obs::Recorder: hot paths carry a
/// `FlightRecorder*` that is nullptr when disabled, every site guards with
/// one predicted branch, no RNG is consumed, and sampler output stays
/// bitwise identical either way (the same zero-cost-OFF contract
/// tests/test_obs.cpp asserts for the Recorder).
class FlightRecorder {
 public:
  /// Capacity is rounded up to a power of two (minimum 64 slots).
  explicit FlightRecorder(std::size_t capacity = 4096) {
    std::size_t cap = 64;
    while (cap < capacity && cap < (std::size_t{1} << 24)) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    names_.reserve(32);
    names_.emplace_back("?");  // code 0 = unknown
  }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Total records ever written (>= capacity once the ring has wrapped).
  std::uint64_t total_records() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  /// Microseconds on the process-wide obs timebase, strictly monotonic
  /// across threads — the same obs::clock::strict_us() stamp the Recorder
  /// issues, so flight records, spans and profiler samples line up without
  /// per-component epoch bookkeeping.
  double now_us() const noexcept { return clock::strict_us(); }

  /// Intern a record name (cold path — call once at setup and keep the
  /// code). The table is append-only and capped; over-capacity names fold
  /// into code 0 ("?") rather than failing.
  std::uint16_t intern(const std::string& name) {
    std::lock_guard<std::mutex> lock(names_mutex_);
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<std::uint16_t>(i);
    }
    if (names_.size() >= 1024) return 0;
    names_.push_back(name);
    return static_cast<std::uint16_t>(names_.size() - 1);
  }

  std::string name_of(std::uint16_t code) const {
    std::lock_guard<std::mutex> lock(names_mutex_);
    return code < names_.size() ? names_[code] : std::string("?");
  }

  /// Write one record. Safe from any thread, never blocks, never allocates.
  void record(std::uint16_t name, FlightKind kind, std::uint32_t track,
              std::uint64_t rid, double t_us, double dur_us,
              double value) noexcept {
    const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[ticket & mask_];
    s.begin.store(ticket + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.t_us.store(t_us, std::memory_order_relaxed);
    s.dur_us.store(dur_us, std::memory_order_relaxed);
    s.value.store(value, std::memory_order_relaxed);
    s.rid.store(rid, std::memory_order_relaxed);
    s.meta.store(pack_meta(name, kind, track), std::memory_order_relaxed);
    s.end.store(ticket + 1, std::memory_order_release);
  }

  /// Closed span [start_us, end_us] (timestamps from this->now_us()).
  void span(std::uint16_t name, std::uint32_t track, std::uint64_t rid,
            double start_us, double end_us) noexcept {
    record(name, FlightKind::kSpan, track, rid, end_us,
           end_us > start_us ? end_us - start_us : 0.0, 0.0);
  }

  /// Point event stamped now.
  void instant(std::uint16_t name, std::uint32_t track, std::uint64_t rid,
               double value = 0.0) noexcept {
    record(name, FlightKind::kInstant, track, rid, now_us(), 0.0, value);
  }

  /// Counter sample stamped now.
  void counter(std::uint16_t name, std::uint32_t track, std::uint64_t rid,
               double value) noexcept {
    record(name, FlightKind::kCounter, track, rid, now_us(), 0.0, value);
  }

  /// RAII span scope; null-recorder safe (then it is two pointer stores).
  class Scope {
   public:
    Scope(FlightRecorder* recorder, std::uint16_t name, std::uint32_t track,
          std::uint64_t rid) noexcept
        : recorder_(recorder), name_(name), track_(track), rid_(rid) {
      if (recorder_ != nullptr) start_us_ = recorder_->now_us();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { close(); }

    void close() noexcept {
      if (recorder_ == nullptr) return;
      recorder_->span(name_, track_, rid_, start_us_, recorder_->now_us());
      recorder_ = nullptr;
    }

   private:
    FlightRecorder* recorder_;
    std::uint16_t name_;
    std::uint32_t track_;
    std::uint64_t rid_;
    double start_us_ = 0.0;
  };

  /// Consistent copies of every intact record with t_us >= cutoff_us,
  /// sorted by timestamp then ticket. window_us <= 0 means "everything
  /// still in the ring". Torn slots (overwritten mid-read) are skipped.
  std::vector<FlightRecord> snapshot(double window_us) const {
    const double cutoff = window_us > 0.0
                              ? now_us() - window_us
                              : -std::numeric_limits<double>::infinity();
    std::vector<FlightRecord> out;
    const std::size_t cap = mask_ + 1;
    out.reserve(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      const Slot& s = slots_[i];
      const std::uint64_t e = s.end.load(std::memory_order_acquire);
      if (e == 0) continue;  // never written
      FlightRecord r;
      r.t_us = s.t_us.load(std::memory_order_relaxed);
      r.dur_us = s.dur_us.load(std::memory_order_relaxed);
      r.value = s.value.load(std::memory_order_relaxed);
      r.rid = s.rid.load(std::memory_order_relaxed);
      const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.begin.load(std::memory_order_relaxed) != e) continue;  // torn
      r.ticket = e - 1;
      if ((r.ticket & mask_) != i) continue;  // stamp from a lapped writer
      unpack_meta(meta, r);
      if (r.t_us < cutoff) continue;
      out.push_back(r);
    }
    std::sort(out.begin(), out.end(),
              [](const FlightRecord& a, const FlightRecord& b) {
                return a.t_us != b.t_us ? a.t_us < b.t_us
                                        : a.ticket < b.ticket;
              });
    return out;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> begin{0};
    std::atomic<std::uint64_t> end{0};
    std::atomic<double> t_us{0.0};
    std::atomic<double> dur_us{0.0};
    std::atomic<double> value{0.0};
    std::atomic<std::uint64_t> rid{0};
    std::atomic<std::uint64_t> meta{0};  ///< name | kind<<16 | track<<32
  };

  static std::uint64_t pack_meta(std::uint16_t name, FlightKind kind,
                                 std::uint32_t track) noexcept {
    return static_cast<std::uint64_t>(name) |
           (static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind))
            << 16) |
           (static_cast<std::uint64_t>(track) << 32);
  }

  static void unpack_meta(std::uint64_t meta, FlightRecord& r) noexcept {
    r.name = static_cast<std::uint16_t>(meta & 0xffffu);
    const auto kind = static_cast<std::uint8_t>((meta >> 16) & 0xffu);
    r.kind = kind <= 2 ? static_cast<FlightKind>(kind) : FlightKind::kInstant;
    r.track = static_cast<std::uint32_t>(meta >> 32);
  }

  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
  mutable std::mutex names_mutex_;
  std::vector<std::string> names_;
};

/// Perfetto/Chrome-trace JSON for the last `window_s` seconds of the ring
/// (window_s <= 0 = everything): spans become complete events, instants
/// become instant events, counter records become counter series; every
/// event carries its rid in args so a viewer (or jq) can slice one
/// request's records out of the ring. The document metadata is tagged with
/// the triggering request id and trigger kind. Defined in
/// flight_recorder.cpp so the recording side above stays header-only.
std::string flight_to_perfetto_json(const FlightRecorder& recorder,
                                    double window_s, std::uint64_t trigger_rid,
                                    const std::string& trigger_kind,
                                    const std::string& source);

}  // namespace qulrb::obs
