#include "obs/process_metrics.hpp"

#include <dirent.h>
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

namespace qulrb::obs {
namespace {

double cpu_seconds_now() {
  rusage usage;
  std::memset(&usage, 0, sizeof(usage));
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  const auto tv_seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return tv_seconds(usage.ru_utime) + tv_seconds(usage.ru_stime);
}

double resident_bytes_now() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long total_pages = 0;
  long resident_pages = 0;
  const int got = std::fscanf(f, "%ld %ld", &total_pages, &resident_pages);
  std::fclose(f);
  if (got != 2) return 0.0;
  return static_cast<double>(resident_pages) *
         static_cast<double>(::sysconf(_SC_PAGESIZE));
}

double open_fds_now() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0.0;
  long count = 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++count;
  }
  ::closedir(dir);
  return static_cast<double>(count);
}

/// Unix start time of this process: boot time (/proc/stat btime) plus the
/// process start offset in clock ticks (/proc/self/stat field 22 — parsed
/// after the ')' closing the comm field, which may itself contain spaces).
/// Falls back to "now" when procfs is unreadable, which at least anchors
/// uptime math for this process's lifetime.
double start_time_seconds_now() {
  long long btime = -1;
  if (std::FILE* f = std::fopen("/proc/stat", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "btime %lld", &btime) == 1) break;
    }
    std::fclose(f);
  }
  unsigned long long start_ticks = 0;
  bool have_ticks = false;
  if (std::FILE* f = std::fopen("/proc/self/stat", "r")) {
    char buf[1024];
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    if (const char* close_paren = std::strrchr(buf, ')')) {
      // After ") " comes field 3 (state); starttime is field 22.
      const char* p = close_paren + 1;
      int field = 2;
      while (*p != '\0' && field < 21) {
        if (*p == ' ') ++field;
        ++p;
      }
      have_ticks = std::sscanf(p, "%llu", &start_ticks) == 1;
    }
  }
  if (btime < 0 || !have_ticks) {
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
  return static_cast<double>(btime) +
         static_cast<double>(start_ticks) /
             static_cast<double>(::sysconf(_SC_CLK_TCK));
}

}  // namespace

ProcessMetrics::ProcessMetrics(MetricsRegistry& registry)
    : cpu_seconds_(registry.gauge(
          "qulrb_process_cpu_seconds_total",
          "Total user and system CPU time spent in seconds.")),
      resident_bytes_(registry.gauge("qulrb_process_resident_memory_bytes",
                                     "Resident memory size in bytes.")),
      open_fds_(registry.gauge("qulrb_process_open_fds",
                               "Number of open file descriptors.")),
      start_time_(registry.gauge(
          "qulrb_process_start_time_seconds",
          "Start time of the process since unix epoch in seconds.")) {
  start_time_.set(start_time_seconds_now());
  update();
}

void ProcessMetrics::update() {
  cpu_seconds_.set(cpu_seconds_now());
  resident_bytes_.set(resident_bytes_now());
  open_fds_.set(open_fds_now());
}

}  // namespace qulrb::obs
