#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace qulrb::obs {

/// Stripe count for counters and histograms. Writers are spread round-robin
/// across stripes by thread, so concurrent increments from the worker pool
/// and the solver's restart pool touch different cache lines; scrapes sum
/// the stripes. Eight stripes cover the restart/worker parallelism this
/// codebase actually runs while keeping each histogram a few KB.
inline constexpr std::size_t kMetricShards = 8;

/// Stable per-thread stripe assignment (round-robin at first use).
inline std::size_t metric_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

/// Monotonic counter. inc() is one relaxed fetch_add on a thread-striped
/// cache line — safe to call from sweep loops. value() sums the stripes
/// (monotone, but not a point-in-time snapshot across concurrent writers,
/// which is all Prometheus semantics require).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    shards_[metric_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kMetricShards> shards_;
};

/// Last-value / extremum gauge over a single atomic double.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  void add(double d) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }

  /// Raise the gauge to `v` if it is below (high-watermark tracking).
  void update_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket log-scale histogram: bucket b >= 1 covers values in
/// [lo * 2^((b-1)/per_octave), lo * 2^(b/per_octave)), bucket 0 everything
/// at or below `lo`, and the last bucket is the +inf overflow. The bucket
/// layout is fixed at construction, so merging shards (and merging scrapes
/// across processes) is plain addition. observe() is one relaxed fetch_add
/// plus a CAS-add on the striped sum — no mutex anywhere.
///
/// The default layout (lo = 1e-3, 2 buckets per octave, 58 buckets) spans
/// 1 microsecond to ~4.5 minutes when fed milliseconds, which covers every
/// latency this service can produce.
struct HistogramLayout {
  double lo = 1e-3;
  std::size_t buckets = 58;  ///< including underflow and overflow
  double buckets_per_octave = 2.0;
};

class LogHistogram {
 public:
  using Layout = HistogramLayout;

  explicit LogHistogram(Layout layout = Layout()) : layout_(layout) {
    util::require(layout_.buckets >= 3 && layout_.lo > 0.0 &&
                      layout_.buckets_per_octave > 0.0,
                  "LogHistogram: need lo > 0 and at least 3 buckets");
    counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(kMetricShards *
                                                             layout_.buckets);
    inv_log2_lo_ = 1.0 / std::log(2.0);
  }

  void observe(double v) noexcept {
    const std::size_t shard = metric_shard();
    counts_[shard * layout_.buckets + bucket_of(v)].fetch_add(
        1, std::memory_order_relaxed);
    auto& sum = sums_[shard].v;
    double cur = sum.load(std::memory_order_relaxed);
    while (!sum.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }

  /// Fold another histogram's totals into this one. Requires an identical
  /// bucket layout (that is the point of fixing it at construction: merging
  /// shards, scrapes, or per-worker histograms is plain addition). Safe to
  /// call while either side is being observed concurrently — the additions
  /// are atomic per bucket, so totals are exact once writers quiesce.
  void merge(const LogHistogram& other) {
    util::require(layout_.lo == other.layout_.lo &&
                      layout_.buckets == other.layout_.buckets &&
                      layout_.buckets_per_octave == other.layout_.buckets_per_octave,
                  "LogHistogram::merge: bucket layouts differ");
    const std::size_t shard = metric_shard();
    for (std::size_t b = 0; b < layout_.buckets; ++b) {
      const std::uint64_t c = other.bucket_count(b);
      if (c != 0) {
        counts_[shard * layout_.buckets + b].fetch_add(
            c, std::memory_order_relaxed);
      }
    }
    auto& sum = sums_[shard].v;
    const double d = other.sum();
    double cur = sum.load(std::memory_order_relaxed);
    while (!sum.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }

  /// Add `c` observations directly into bucket `b` (no per-value sum — pair
  /// with add_sum). This is the deserialization half of the wire codec: a
  /// histogram that crossed a process boundary arrives as (bucket, count)
  /// pairs plus a sum, and folding it in must be plain addition exactly like
  /// merge(). Atomic per bucket, so safe against concurrent observers.
  void add_bucket(std::size_t b, std::uint64_t c) noexcept {
    if (b >= layout_.buckets || c == 0) return;
    counts_[metric_shard() * layout_.buckets + b].fetch_add(
        c, std::memory_order_relaxed);
  }

  /// Add `d` to the striped sum (the other half of add_bucket).
  void add_sum(double d) noexcept {
    auto& sum = sums_[metric_shard()].v;
    double cur = sum.load(std::memory_order_relaxed);
    while (!sum.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }

  /// Zero every bucket and sum stripe. Owner-synchronized: the caller must
  /// guarantee no concurrent observe()/merge() (e.g. the SLO engine resets a
  /// rotated window bucket under its own mutex). Not for registry-registered
  /// histograms on live scrape paths.
  void reset() noexcept {
    for (std::size_t i = 0; i < kMetricShards * layout_.buckets; ++i) {
      counts_[i].store(0, std::memory_order_relaxed);
    }
    for (auto& s : sums_) s.v.store(0.0, std::memory_order_relaxed);
  }

  std::size_t num_buckets() const noexcept { return layout_.buckets; }
  const Layout& layout() const noexcept { return layout_; }

  /// Index of the bucket `v` falls into.
  std::size_t bucket_of(double v) const noexcept {
    if (!(v > layout_.lo)) return 0;  // also catches NaN and non-positives
    const double octaves = std::log(v / layout_.lo) * inv_log2_lo_;
    const double idx = std::floor(octaves * layout_.buckets_per_octave) + 1.0;
    const double last = static_cast<double>(layout_.buckets - 1);
    return idx >= last ? layout_.buckets - 1 : static_cast<std::size_t>(idx);
  }

  /// Upper edge of bucket b (+inf for the overflow bucket).
  double upper_edge(std::size_t b) const noexcept {
    if (b + 1 >= layout_.buckets) return std::numeric_limits<double>::infinity();
    return layout_.lo *
           std::exp2(static_cast<double>(b) / layout_.buckets_per_octave);
  }

  std::uint64_t bucket_count(std::size_t b) const noexcept {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < kMetricShards; ++s) {
      total += counts_[s * layout_.buckets + b].load(std::memory_order_relaxed);
    }
    return total;
  }

  std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < layout_.buckets; ++b) total += bucket_count(b);
    return total;
  }

  double sum() const noexcept {
    double total = 0.0;
    for (const auto& s : sums_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  /// Quantile estimate from the bucket counts (geometric interpolation
  /// inside the containing bucket). Good to a bucket width — enough for
  /// latency reporting; use raw samples when exactness matters.
  double quantile(double q) const noexcept {
    const std::uint64_t total = count();
    if (total == 0) return 0.0;
    const double rank = q * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < layout_.buckets; ++b) {
      const std::uint64_t c = bucket_count(b);
      if (c == 0) continue;
      if (static_cast<double>(seen + c) >= rank) {
        const double lo = b == 0 ? layout_.lo / 2.0 : upper_edge(b - 1);
        double hi = upper_edge(b);
        if (std::isinf(hi)) hi = upper_edge(b - 1) * 2.0;
        const double frac =
            (rank - static_cast<double>(seen)) / static_cast<double>(c);
        return lo * std::pow(hi / lo, frac);
      }
      seen += c;
    }
    return upper_edge(layout_.buckets - 2);
  }

 private:
  Layout layout_;
  double inv_log2_lo_ = 1.0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< [shard][bucket]
  struct alignas(64) SumSlot {
    std::atomic<double> v{0.0};
  };
  std::array<SumSlot, kMetricShards> sums_;
};

/// Named metric store. Registration (counter()/gauge()/histogram()) takes a
/// mutex and is meant to run once per metric — callers keep the returned
/// reference, whose address is stable for the registry's lifetime, and hit
/// only the lock-free increment paths afterwards. Scrapes walk the entries
/// in registration order, so the exposition is deterministic.
///
/// `labels` is either a structured list of name/value pairs (preferred —
/// values get Prometheus escaping applied) or a raw pre-serialized label
/// body (e.g. `outcome="ok"`, for callers that already conform); entries
/// sharing a name but differing in labels form one metric family in the
/// exposition.
class MetricsRegistry {
 public:
  /// Structured label set; serialized as `name="value",...` with values
  /// escaped per the exposition format.
  using Labels = std::vector<std::pair<std::string, std::string>>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Escape a label value for the text exposition: backslash, double quote
  /// and newline must be escaped (`\\`, `\"`, `\n`); everything else passes
  /// through verbatim.
  static std::string escape_label_value(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
      switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    return out;
  }

  static std::string serialize_labels(const Labels& labels) {
    std::string out;
    for (const auto& [name, value] : labels) {
      if (!out.empty()) out += ',';
      out += name;
      out += "=\"";
      out += escape_label_value(value);
      out += '"';
    }
    return out;
  }

  Counter& counter(const std::string& name, const std::string& help = "",
                   const std::string& labels = "") {
    Entry& e = entry_for(Kind::kCounter, name, help, labels);
    return *e.counter;
  }

  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels) {
    return counter(name, help, serialize_labels(labels));
  }

  Gauge& gauge(const std::string& name, const std::string& help = "",
               const std::string& labels = "") {
    Entry& e = entry_for(Kind::kGauge, name, help, labels);
    return *e.gauge;
  }

  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels) {
    return gauge(name, help, serialize_labels(labels));
  }

  LogHistogram& histogram(const std::string& name, const std::string& help = "",
                          HistogramLayout layout = HistogramLayout()) {
    Entry& e = entry_for(Kind::kHistogram, name, help, "", layout);
    return *e.histogram;
  }

  LogHistogram& histogram(const std::string& name, const std::string& help,
                          const Labels& labels,
                          HistogramLayout layout = HistogramLayout()) {
    Entry& e =
        entry_for(Kind::kHistogram, name, help, serialize_labels(labels), layout);
    return *e.histogram;
  }

  /// Raw-label-body overload (labels already serialized — e.g. replayed
  /// verbatim from a wire snapshot during federation).
  LogHistogram& histogram(const std::string& name, const std::string& help,
                          const std::string& labels,
                          HistogramLayout layout = HistogramLayout()) {
    Entry& e = entry_for(Kind::kHistogram, name, help, labels, layout);
    return *e.histogram;
  }

  /// Prometheus text exposition (format version 0.0.4) of every registered
  /// metric. Families are grouped in first-registration order with `# HELP`
  /// and `# TYPE` emitted exactly once per family (even when registrations
  /// of the same family were interleaved with other metrics); histograms
  /// emit cumulative `_bucket{le=...}` lines plus `_sum` and `_count`.
  /// Defined in metrics.cpp (scrape-side only).
  std::string to_prometheus() const;

  /// Visit every entry in registration order. Exactly one of the three
  /// pointers is non-null per entry. Scrape-side (takes the registration
  /// mutex); entry addresses are stable, but the visitor must not register
  /// metrics. Defined in metrics.cpp. Used by the obs wire serializer so a
  /// whole registry can cross a process boundary for federation.
  void visit(const std::function<void(
                 const std::string& name, const std::string& labels,
                 const Counter* counter, const Gauge* gauge,
                 const LogHistogram* histogram)>& fn) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::string name;
    std::string labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LogHistogram> histogram;
  };

  Entry& entry_for(Kind kind, const std::string& name, const std::string& help,
                   const std::string& labels,
                   HistogramLayout layout = HistogramLayout()) {
    const std::string key = name + "\x1f" + labels;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      util::require(it->second->kind == kind,
                    "MetricsRegistry: '" + name + "' re-registered as a "
                    "different metric kind");
      return *it->second;
    }
    auto e = std::make_unique<Entry>();
    e->kind = kind;
    e->name = name;
    e->labels = labels;
    e->help = help;
    switch (kind) {
      case Kind::kCounter: e->counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: e->gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        e->histogram = std::make_unique<LogHistogram>(layout);
        break;
    }
    entries_.push_back(std::move(e));
    index_.emplace(key, entries_.back().get());
    return *entries_.back();
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
  std::unordered_map<std::string, Entry*> index_;
};

}  // namespace qulrb::obs
