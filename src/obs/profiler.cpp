#include "obs/profiler.hpp"

#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>

#include "obs/clock.hpp"
#include "obs/phase.hpp"

namespace qulrb::obs {
namespace {

/// The active profiler and an in-handler count, both seq_cst so stop() can
/// prove quiescence: a handler increments g_in_handler *before* loading
/// g_active, and stop() clears g_active *before* spinning on the count —
/// in the single total order, any handler that observed a non-null pointer
/// has its increment visible to the spin loop until it finishes.
std::atomic<Profiler*> g_active{nullptr};
std::atomic<int> g_in_handler{0};

std::uint32_t gettid_now() noexcept {
  return static_cast<std::uint32_t>(::syscall(SYS_gettid));
}

}  // namespace

Profiler::Profiler(Params params) : params_(params) {
  std::size_t cap = 64;
  while (cap < params_.ring_capacity && cap < (std::size_t{1} << 22)) {
    cap <<= 1;
  }
  mask_ = cap - 1;
  slots_ = std::make_unique<Slot[]>(cap);
}

Profiler::~Profiler() { stop(); }

bool Profiler::start() {
  if (params_.hz <= 0) return false;
  if (running_.load(std::memory_order_relaxed)) return true;

  // Everything that is not async-signal-safe happens here, before the
  // first signal can fire: latch the clock epoch (guarded static) and
  // probe the frame-read strategy.
  clock::touch();
  prof::init_unwinder();

  Profiler* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_seq_cst)) {
    return false;  // another profiler owns the process-wide timer
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &Profiler::signal_handler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGPROF, &sa, &old_action_) != 0) {
    g_active.store(nullptr, std::memory_order_seq_cst);
    return false;
  }

  long period_us = 1000000L / params_.hz;
  if (period_us < 100) period_us = 100;
  itimerval timer;
  timer.it_interval.tv_sec = period_us / 1000000;
  timer.it_interval.tv_usec = period_us % 1000000;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    ::sigaction(SIGPROF, &old_action_, nullptr);
    g_active.store(nullptr, std::memory_order_seq_cst);
    return false;
  }

  running_.store(true, std::memory_order_relaxed);
  return true;
}

void Profiler::stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) return;

  itimerval zero;
  std::memset(&zero, 0, sizeof(zero));
  ::setitimer(ITIMER_PROF, &zero, nullptr);

  g_active.store(nullptr, std::memory_order_seq_cst);
  // A signal already in flight may still be running handle(); wait it out
  // before the caller is allowed to destroy the ring.
  while (g_in_handler.load(std::memory_order_seq_cst) != 0) {
  }
  ::sigaction(SIGPROF, &old_action_, nullptr);
}

void Profiler::signal_handler(int /*signum*/, siginfo_t* /*info*/,
                              void* ucontext) {
  const int saved_errno = errno;
  g_in_handler.fetch_add(1, std::memory_order_seq_cst);
  Profiler* p = g_active.load(std::memory_order_seq_cst);
  if (p != nullptr) p->handle(ucontext);
  g_in_handler.fetch_sub(1, std::memory_order_seq_cst);
  errno = saved_errno;
}

void Profiler::handle(void* ucontext) noexcept {
  std::uintptr_t pcs[prof::kMaxFrames];
  const int depth = prof::unwind_ucontext(ucontext, pcs, prof::kMaxFrames);
  const double t_us = clock::raw_us();
  const std::uint64_t rid = prof::current_rid();
  const char* phase = prof::current_phase();
  const std::uint32_t tid = gettid_now();

  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & mask_];
  s.begin.store(ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.t_us.store(t_us, std::memory_order_relaxed);
  s.rid.store(rid, std::memory_order_relaxed);
  s.phase.store(phase, std::memory_order_relaxed);
  s.tid.store(tid, std::memory_order_relaxed);
  s.depth.store(depth, std::memory_order_relaxed);
  for (int i = 0; i < depth; ++i) {
    s.pcs[i].store(pcs[i], std::memory_order_relaxed);
  }
  s.end.store(ticket + 1, std::memory_order_release);
}

std::vector<ProfileSample> Profiler::snapshot(double window_s) const {
  const double cutoff = window_s > 0.0
                            ? clock::raw_us() - window_s * 1e6
                            : -std::numeric_limits<double>::infinity();
  std::vector<ProfileSample> out;
  const std::size_t cap = mask_ + 1;
  out.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    const Slot& s = slots_[i];
    const std::uint64_t e = s.end.load(std::memory_order_acquire);
    if (e == 0) continue;  // never written
    ProfileSample r;
    r.t_us = s.t_us.load(std::memory_order_relaxed);
    r.rid = s.rid.load(std::memory_order_relaxed);
    r.phase = s.phase.load(std::memory_order_relaxed);
    r.tid = s.tid.load(std::memory_order_relaxed);
    int depth = s.depth.load(std::memory_order_relaxed);
    if (depth < 0) depth = 0;
    if (depth > prof::kMaxFrames) depth = prof::kMaxFrames;
    r.depth = depth;
    for (int f = 0; f < depth; ++f) {
      r.pcs[f] = s.pcs[f].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.begin.load(std::memory_order_relaxed) != e) continue;  // torn
    r.ticket = e - 1;
    if ((r.ticket & mask_) != i) continue;  // stamp from a lapped writer
    if (r.t_us < cutoff) continue;
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const ProfileSample& a, const ProfileSample& b) {
              return a.t_us != b.t_us ? a.t_us < b.t_us
                                      : a.ticket < b.ticket;
            });
  return out;
}

}  // namespace qulrb::obs
