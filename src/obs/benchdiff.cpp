#include "obs/benchdiff.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "io/json.hpp"
#include "util/error.hpp"

namespace qulrb::obs {

namespace {

double unit_to_ns(const std::string& unit) {
  if (unit == "ns" || unit.empty()) return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  throw util::InvalidArgument("benchdiff: unknown time_unit '" + unit + "'");
}

/// Time of one benchmark row in ns, or NaN when the row carries none.
double row_time_ns(const io::JsonValue& row) {
  if (!row.is_object()) return std::numeric_limits<double>::quiet_NaN();
  // BENCH_kernel.json flavor: {"after": {"real_time_ns": ...}, ...}
  if (const io::JsonValue* after = row.find("after")) {
    const double ns = after->number_or("real_time_ns", -1.0);
    if (ns >= 0.0) return ns;
  }
  // BENCH_service/BENCH_obs flavor: {"real_time": ..., "time_unit": "ns"}
  if (row.find("real_time") != nullptr) {
    return row.number_or("real_time", 0.0) *
           unit_to_ns(row.string_or("time_unit", "ns"));
  }
  return std::numeric_limits<double>::quiet_NaN();
}

std::string fmt(double v, const char* spec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace

std::map<std::string, double> parse_bench_times(const io::JsonValue& doc) {
  std::map<std::string, double> times;
  const io::JsonValue* benchmarks = doc.find("benchmarks");
  util::require(benchmarks != nullptr,
                "benchdiff: document has no 'benchmarks' member");
  if (benchmarks->is_object()) {
    for (const auto& [name, row] : benchmarks->as_object()) {
      const double ns = row_time_ns(row);
      if (ns == ns) times[name] = ns;  // skip NaN rows (e.g. summary blobs)
    }
  } else if (benchmarks->is_array()) {
    // Raw google-benchmark output: iteration rows only.
    for (const io::JsonValue& row : benchmarks->as_array()) {
      if (!row.is_object()) continue;
      if (row.string_or("run_type", "iteration") != "iteration") continue;
      const std::string name = row.string_or("name", "");
      if (name.empty()) continue;
      const double ns = row.number_or("real_time", -1.0) *
                        unit_to_ns(row.string_or("time_unit", "ns"));
      if (ns >= 0.0) times[name] = ns;
    }
  } else {
    throw util::InvalidArgument(
        "benchdiff: 'benchmarks' is neither an object nor an array");
  }
  util::require(!times.empty(),
                "benchdiff: no benchmark timings found in document");
  return times;
}

BenchDiffReport bench_diff(const io::JsonValue& baseline,
                           const std::vector<io::JsonValue>& candidates,
                           const BenchDiffOptions& options) {
  util::require(!candidates.empty(), "benchdiff: need at least one candidate");
  const std::map<std::string, double> base = parse_bench_times(baseline);

  // min-of-N across candidate runs, per benchmark.
  std::map<std::string, double> cand;
  for (const io::JsonValue& doc : candidates) {
    for (const auto& [name, ns] : parse_bench_times(doc)) {
      auto it = cand.find(name);
      if (it == cand.end() || ns < it->second) cand[name] = ns;
    }
  }

  BenchDiffReport report;
  for (const auto& [name, base_ns] : base) {
    const auto it = cand.find(name);
    if (it == cand.end()) {
      report.missing_in_candidate.push_back(name);
      continue;
    }
    BenchEntry e;
    e.name = name;
    e.baseline_ns = base_ns;
    e.candidate_ns = it->second;
    e.ratio = base_ns > 0.0 ? e.candidate_ns / base_ns
                            : std::numeric_limits<double>::infinity();
    const auto override_it = options.per_benchmark_pct.find(name);
    e.threshold_pct = override_it != options.per_benchmark_pct.end()
                          ? override_it->second
                          : options.threshold_pct;
    e.below_noise_floor = base_ns < options.min_time_ns;
    e.regression = !e.below_noise_floor &&
                   e.ratio > 1.0 + e.threshold_pct / 100.0;
    report.entries.push_back(std::move(e));
  }
  for (const auto& [name, ns] : cand) {
    (void)ns;
    if (base.find(name) == base.end()) {
      report.missing_in_baseline.push_back(name);
    }
  }
  return report;
}

std::string BenchDiffReport::to_json() const {
  io::JsonWriter w;
  w.begin_object();
  w.field("regression", has_regression());
  w.key("benchmarks");
  w.begin_object();
  for (const auto& e : entries) {
    w.key(e.name);
    w.begin_object();
    w.field("baseline_ns", e.baseline_ns);
    w.field("candidate_ns", e.candidate_ns);
    w.field("ratio", e.ratio);
    w.field("threshold_pct", e.threshold_pct);
    w.field("below_noise_floor", e.below_noise_floor);
    w.field("regression", e.regression);
    w.end_object();
  }
  w.end_object();
  w.key("missing_in_candidate");
  w.begin_array();
  for (const auto& name : missing_in_candidate) w.value(name);
  w.end_array();
  w.key("missing_in_baseline");
  w.begin_array();
  for (const auto& name : missing_in_baseline) w.value(name);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string BenchDiffReport::to_text() const {
  std::string out;
  for (const auto& e : entries) {
    const char* verdict = e.regression          ? "REGRESSION"
                          : e.below_noise_floor ? "noise-floor"
                                                : "ok";
    out += e.name + ": " + fmt(e.baseline_ns, "%.1f") + " ns -> " +
           fmt(e.candidate_ns, "%.1f") + " ns  (x" + fmt(e.ratio, "%.3f") +
           ", bar +" + fmt(e.threshold_pct, "%.1f") + "%)  " + verdict + "\n";
  }
  for (const auto& name : missing_in_candidate) {
    out += name + ": missing in candidate\n";
  }
  for (const auto& name : missing_in_baseline) {
    out += name + ": new (missing in baseline)\n";
  }
  return out;
}

}  // namespace qulrb::obs
