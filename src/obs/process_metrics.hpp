#pragma once

#include "obs/metrics.hpp"

namespace qulrb::obs {

/// The standard process self-metrics every Prometheus client library
/// exports, registered into the process's MetricsRegistry:
///
///   qulrb_process_cpu_seconds_total      user+system CPU (getrusage)
///   qulrb_process_resident_memory_bytes  RSS (/proc/self/statm)
///   qulrb_process_open_fds               open descriptors (/proc/self/fd)
///   qulrb_process_start_time_seconds     unix start time (/proc btime +
///                                        /proc/self/stat starttime)
///
/// All four are registered as gauges (cpu_seconds is monotone but the
/// registry's integer Counter cannot carry fractional seconds; scrapers
/// treat it as a counter by name, which Prometheus permits). Callers
/// refresh with update() at exposition time — the values are point-in-time
/// reads, not accumulated state, so there is nothing to sample between
/// scrapes. Federation re-emits these per-instance (like
/// qulrb_build_info) rather than summing them across the fleet.
class ProcessMetrics {
 public:
  explicit ProcessMetrics(MetricsRegistry& registry);

  /// Refresh all gauges from getrusage + /proc/self. Cheap (three small
  /// procfs reads); called per metrics exposition.
  void update();

 private:
  Gauge& cpu_seconds_;
  Gauge& resident_bytes_;
  Gauge& open_fds_;
  Gauge& start_time_;
};

}  // namespace qulrb::obs
