#pragma once

#include <cstddef>
#include <limits>

#include "obs/recorder.hpp"

namespace qulrb::obs {

/// Knobs for the post-hoc convergence analysis.
struct ConvergenceConfig {
  /// A sampled incumbent counts as feasible when its recorded constraint
  /// violation is at or below this.
  double feasibility_tol = 1e-9;
  /// Objective value (not energy-with-penalty) that defines "target
  /// quality". The LRP layer derives this from an R_imb threshold via
  /// lrp::objective_target_for_imbalance(); NaN disables time-to-target.
  double target_objective = std::numeric_limits<double>::quiet_NaN();
  /// Relative incumbent improvement below which a step does not reset the
  /// stagnation window.
  double improvement_epsilon = 1e-9;
};

/// What the analysis found. Times are milliseconds since the recorder was
/// constructed (i.e. since the solve started — sample stamps on the
/// process-wide obs timebase are normalized by Recorder::epoch_us());
/// a negative time means "never happened".
struct ConvergenceReport {
  double time_to_first_feasible_ms = -1.0;
  double time_to_target_ms = -1.0;
  /// Longest stretch with no meaningful incumbent improvement (ms). Includes
  /// the trailing window between the last improvement and the last sample —
  /// the common failure mode is a solver that converges early and then burns
  /// the rest of its budget.
  double longest_stagnation_ms = 0.0;
  double final_objective = std::numeric_limits<double>::quiet_NaN();
  double final_violation = std::numeric_limits<double>::quiet_NaN();
  std::size_t samples_seen = 0;
  std::size_t tracks_seen = 0;

  bool reached_feasible() const noexcept {
    return time_to_first_feasible_ms >= 0.0;
  }
  bool reached_target() const noexcept { return time_to_target_ms >= 0.0; }
};

/// Post-hoc analyzer for the incumbent timelines a solve left in its
/// Recorder. The samplers record per-restart "incumbent_energy"
/// (objective + violation penalty-free violation magnitude) and
/// "incumbent_violation" counter tracks; this module merges them across
/// restart tracks into one global best-so-far envelope and reads off the
/// paper's comparison metrics: time-to-first-feasible, time-to-target-
/// quality, and incumbent stagnation.
///
/// Running the analysis after the solve (instead of inline) is what keeps
/// the zero-cost-off contract intact: with a null recorder there is nothing
/// to analyze and no code runs; with a recorder the solve itself is
/// unchanged and only already-recorded data is read.
class ConvergenceDiagnostics {
 public:
  explicit ConvergenceDiagnostics(ConvergenceConfig config = ConvergenceConfig())
      : config_(config) {}

  const ConvergenceConfig& config() const noexcept { return config_; }

  /// Analyze a (finished) recorder's incumbent timelines.
  ConvergenceReport analyze(const Recorder& recorder) const;

  /// analyze(), then write the results back into the recorder: the merged
  /// best-so-far envelope as "best_objective"/"best_violation" counter
  /// tracks on the main row, a 0/1 "feasible" step track, and the scalar
  /// results as annotations — so the exported Perfetto document carries its
  /// own convergence verdict.
  ConvergenceReport annotate(Recorder& recorder) const;

 private:
  ConvergenceConfig config_;
};

}  // namespace qulrb::obs
