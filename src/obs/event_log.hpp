#pragma once

#include <cstdint>
#include <fstream>
#include <limits>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace qulrb::obs {

/// One structured record per completed solve: the quality signals the paper
/// evaluates (R_imb before/after, speedup, migration count, runtime) plus
/// the convergence telemetry this layer adds (time-to-first-feasible,
/// time-to-target-quality). Emitted as one JSON line by `qulrb solve`,
/// `qulrb_serve` and the BSP driver, so a fleet of runs can be compared with
/// nothing fancier than jq.
///
/// NaN-valued doubles and negative sentinel fields are omitted from the
/// encoded line rather than serialized (JSON has no NaN, and an absent key
/// reads better than a magic value downstream).
struct SolveEvent {
  std::string source;  ///< "qulrb_solve" | "qulrb_serve" | "bsp_driver"
  std::uint64_t request_id = 0;
  std::string solver;   ///< solver / variant name, e.g. "qcqm1"
  std::string outcome;  ///< "ok", "failed", "cancelled", ...
  bool feasible = false;
  double r_imb_before = std::numeric_limits<double>::quiet_NaN();
  double r_imb_after = std::numeric_limits<double>::quiet_NaN();
  double speedup = std::numeric_limits<double>::quiet_NaN();
  std::int64_t migrated = -1;  ///< task migrations; -1 = unknown
  /// Replica-bank width the solve's sampling portfolio ran with (see
  /// HybridSolveStats::replica_lanes); -1 = unknown / not applicable.
  std::int64_t replicas = -1;
  double runtime_ms = std::numeric_limits<double>::quiet_NaN();
  double queue_ms = std::numeric_limits<double>::quiet_NaN();
  double time_to_first_feasible_ms = std::numeric_limits<double>::quiet_NaN();
  double time_to_target_ms = std::numeric_limits<double>::quiet_NaN();
  /// Free-form extras appended verbatim as string fields.
  std::vector<std::pair<std::string, std::string>> extra;
};

/// Encode one event as a single JSON line (no trailing newline). Exposed
/// separately from EventLog so the schema is unit-testable without touching
/// the filesystem.
std::string to_json_line(const SolveEvent& event);

/// Append-only JSONL sink, safe to share across the service worker pool.
/// Lines are flushed as they are written so a crashed or signalled process
/// loses at most the line being formatted.
///
/// With `max_bytes` > 0 the sink is size-capped: when the next line would
/// push the live file past the cap, the file moves aside in one atomic
/// rename (`path` -> `path.1`, replacing the previous generation) and a
/// fresh truncated `path` is opened — so the log's total footprint is
/// bounded by ~2x the cap and a tailing reader always finds complete lines
/// in both generations.
class EventLog {
 public:
  /// Opens `path` for appending (truncates when `append` is false). Throws
  /// util::Error via util::require on open failure. `max_bytes` = 0 leaves
  /// the log unbounded.
  explicit EventLog(const std::string& path, bool append = true,
                    std::uint64_t max_bytes = 0);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  void log(const SolveEvent& event);

  std::uint64_t lines_written() const noexcept;
  /// Rollovers performed so far (0 until the cap is first hit).
  std::uint64_t rotations() const noexcept;

 private:
  void rotate_locked();

  mutable std::mutex mutex_;
  std::string path_;
  std::uint64_t max_bytes_ = 0;
  std::ofstream out_;
  std::uint64_t lines_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t rotations_ = 0;
};

}  // namespace qulrb::obs
