#include "obs/histogram_wire.hpp"

#include "io/json.hpp"
#include "io/json_value.hpp"

namespace qulrb::obs {

void write_histogram_json(const LogHistogram& h, io::JsonWriter& w) {
  const HistogramLayout& layout = h.layout();
  w.begin_object();
  w.key("layout").begin_object();
  w.field("lo", layout.lo);
  w.field("buckets", layout.buckets);
  w.field("per_octave", layout.buckets_per_octave);
  w.end_object();
  w.key("counts").begin_array();
  for (std::size_t b = 0; b < h.num_buckets(); ++b) {
    const std::uint64_t c = h.bucket_count(b);
    if (c == 0) continue;
    w.begin_array();
    w.value(b);
    w.value(static_cast<std::int64_t>(c));
    w.end_array();
  }
  w.end_array();
  w.field("sum", h.sum());
  w.end_object();
}

std::string histogram_to_json(const LogHistogram& h) {
  io::JsonWriter w;
  write_histogram_json(h, w);
  return w.str();
}

bool histogram_layout_from_json(const io::JsonValue& doc,
                                HistogramLayout& out) {
  const io::JsonValue* layout = doc.find("layout");
  if (layout == nullptr || !layout->is_object()) return false;
  const double lo = layout->number_or("lo", 0.0);
  const std::int64_t buckets = layout->int_or("buckets", 0);
  const double per_octave = layout->number_or("per_octave", 0.0);
  if (!(lo > 0.0) || buckets < 3 || !(per_octave > 0.0)) return false;
  out.lo = lo;
  out.buckets = static_cast<std::size_t>(buckets);
  out.buckets_per_octave = per_octave;
  return true;
}

bool merge_histogram_json(const io::JsonValue& doc, LogHistogram& target) {
  HistogramLayout layout;
  if (!histogram_layout_from_json(doc, layout)) return false;
  const HistogramLayout& mine = target.layout();
  if (layout.lo != mine.lo || layout.buckets != mine.buckets ||
      layout.buckets_per_octave != mine.buckets_per_octave) {
    return false;
  }
  const io::JsonValue* counts = doc.find("counts");
  if (counts == nullptr || !counts->is_array()) return false;
  // Validate the whole payload before the first add so a malformed doc
  // leaves the target untouched.
  for (const io::JsonValue& pair : counts->as_array()) {
    if (!pair.is_array() || pair.as_array().size() != 2) return false;
    const std::int64_t b = pair.as_array()[0].as_int();
    const std::int64_t c = pair.as_array()[1].as_int();
    if (b < 0 || static_cast<std::size_t>(b) >= layout.buckets || c < 0) {
      return false;
    }
  }
  for (const io::JsonValue& pair : counts->as_array()) {
    target.add_bucket(
        static_cast<std::size_t>(pair.as_array()[0].as_int()),
        static_cast<std::uint64_t>(pair.as_array()[1].as_int()));
  }
  target.add_sum(doc.number_or("sum", 0.0));
  return true;
}

void write_registry_obs_json(const MetricsRegistry& registry,
                             io::JsonWriter& w) {
  w.begin_object();
  w.key("counters").begin_array();
  registry.visit([&](const std::string& name, const std::string& labels,
                     const Counter* counter, const Gauge*,
                     const LogHistogram*) {
    if (counter == nullptr) return;
    w.begin_object();
    w.field("name", name);
    w.field("labels", labels);
    w.field("value", static_cast<std::int64_t>(counter->value()));
    w.end_object();
  });
  w.end_array();
  w.key("gauges").begin_array();
  registry.visit([&](const std::string& name, const std::string& labels,
                     const Counter*, const Gauge* gauge, const LogHistogram*) {
    if (gauge == nullptr) return;
    w.begin_object();
    w.field("name", name);
    w.field("labels", labels);
    w.field("value", gauge->value());
    w.end_object();
  });
  w.end_array();
  w.key("histograms").begin_array();
  registry.visit([&](const std::string& name, const std::string& labels,
                     const Counter*, const Gauge*,
                     const LogHistogram* histogram) {
    if (histogram == nullptr) return;
    w.begin_object();
    w.field("name", name);
    w.field("labels", labels);
    w.key("data");
    write_histogram_json(*histogram, w);
    w.end_object();
  });
  w.end_array();
  w.end_object();
}

}  // namespace qulrb::obs
