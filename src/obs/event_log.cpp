#include "obs/event_log.hpp"

#include <cmath>

#include "io/json.hpp"
#include "util/error.hpp"

namespace qulrb::obs {

std::string to_json_line(const SolveEvent& event) {
  io::JsonWriter w;
  w.begin_object();
  w.field("source", event.source);
  if (event.request_id != 0) {
    w.field("request_id", static_cast<std::int64_t>(event.request_id));
  }
  if (!event.solver.empty()) w.field("solver", event.solver);
  if (!event.outcome.empty()) w.field("outcome", event.outcome);
  w.field("feasible", event.feasible);
  if (!std::isnan(event.r_imb_before)) {
    w.field("r_imb_before", event.r_imb_before);
  }
  if (!std::isnan(event.r_imb_after)) {
    w.field("r_imb_after", event.r_imb_after);
  }
  if (!std::isnan(event.speedup)) w.field("speedup", event.speedup);
  if (event.migrated >= 0) w.field("migrated", event.migrated);
  if (event.replicas >= 0) w.field("replicas", event.replicas);
  if (!std::isnan(event.runtime_ms)) w.field("runtime_ms", event.runtime_ms);
  if (!std::isnan(event.queue_ms)) w.field("queue_ms", event.queue_ms);
  if (!std::isnan(event.time_to_first_feasible_ms)) {
    w.field("time_to_first_feasible_ms", event.time_to_first_feasible_ms);
  }
  if (!std::isnan(event.time_to_target_ms)) {
    w.field("time_to_target_ms", event.time_to_target_ms);
  }
  for (const auto& [key, value] : event.extra) w.field(key, value);
  w.end_object();
  return w.str();
}

EventLog::EventLog(const std::string& path, bool append)
    : out_(path, append ? std::ios::app : std::ios::trunc) {
  util::require(out_.good(), "EventLog: cannot open '" + path + "'");
}

void EventLog::log(const SolveEvent& event) {
  const std::string line = to_json_line(event);
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
  out_.flush();
  ++lines_;
}

std::uint64_t EventLog::lines_written() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

}  // namespace qulrb::obs
