#include "obs/event_log.hpp"

#include <cmath>
#include <cstdio>

#include "io/json.hpp"
#include "util/error.hpp"

namespace qulrb::obs {

std::string to_json_line(const SolveEvent& event) {
  io::JsonWriter w;
  w.begin_object();
  w.field("source", event.source);
  if (event.request_id != 0) {
    w.field("request_id", static_cast<std::int64_t>(event.request_id));
  }
  if (!event.solver.empty()) w.field("solver", event.solver);
  if (!event.outcome.empty()) w.field("outcome", event.outcome);
  w.field("feasible", event.feasible);
  if (!std::isnan(event.r_imb_before)) {
    w.field("r_imb_before", event.r_imb_before);
  }
  if (!std::isnan(event.r_imb_after)) {
    w.field("r_imb_after", event.r_imb_after);
  }
  if (!std::isnan(event.speedup)) w.field("speedup", event.speedup);
  if (event.migrated >= 0) w.field("migrated", event.migrated);
  if (event.replicas >= 0) w.field("replicas", event.replicas);
  if (!std::isnan(event.runtime_ms)) w.field("runtime_ms", event.runtime_ms);
  if (!std::isnan(event.queue_ms)) w.field("queue_ms", event.queue_ms);
  if (!std::isnan(event.time_to_first_feasible_ms)) {
    w.field("time_to_first_feasible_ms", event.time_to_first_feasible_ms);
  }
  if (!std::isnan(event.time_to_target_ms)) {
    w.field("time_to_target_ms", event.time_to_target_ms);
  }
  for (const auto& [key, value] : event.extra) w.field(key, value);
  w.end_object();
  return w.str();
}

EventLog::EventLog(const std::string& path, bool append,
                   std::uint64_t max_bytes)
    : path_(path),
      max_bytes_(max_bytes),
      out_(path, append ? std::ios::app | std::ios::ate : std::ios::trunc) {
  util::require(out_.good(), "EventLog: cannot open '" + path + "'");
  const std::streampos pos = out_.tellp();
  if (pos > 0) bytes_ = static_cast<std::uint64_t>(pos);
}

void EventLog::log(const SolveEvent& event) {
  const std::string line = to_json_line(event);
  std::lock_guard<std::mutex> lock(mutex_);
  if (max_bytes_ > 0 && bytes_ > 0 &&
      bytes_ + line.size() + 1 > max_bytes_) {
    rotate_locked();
  }
  out_ << line << '\n';
  out_.flush();
  bytes_ += line.size() + 1;
  ++lines_;
}

void EventLog::rotate_locked() {
  out_.close();
  // One atomic rename: the previous generation is complete at `path.1` the
  // instant the live path disappears — no window where half a log exists.
  std::rename(path_.c_str(), (path_ + ".1").c_str());
  out_.open(path_, std::ios::trunc);
  bytes_ = 0;
  ++rotations_;
}

std::uint64_t EventLog::lines_written() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

std::uint64_t EventLog::rotations() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return rotations_;
}

}  // namespace qulrb::obs
