#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>

namespace qulrb::obs {

/// One process-wide monotonic timebase for every obs component.
///
/// Before PR 10 the Recorder, the FlightRecorder and the SloEngine each ran
/// on their own epoch (object construction time), so a profiler sample, a
/// flight record and a span from the same incident could not be compared
/// without knowing three different zero points. Everything now stamps
/// against a single steady-clock epoch latched on first use, which makes
/// timestamps from different components directly subtractable inside one
/// incident bundle. Components that used to expose "since construction"
/// semantics (ConvergenceDiagnostics' time-to-first-feasible) keep them by
/// remembering their own creation stamp and normalizing on read.
namespace clock {

namespace detail {
inline std::chrono::steady_clock::time_point epoch() noexcept {
  static const std::chrono::steady_clock::time_point e =
      std::chrono::steady_clock::now();
  return e;
}
inline std::atomic<double>& watermark() noexcept {
  static std::atomic<double> w{0.0};
  return w;
}
}  // namespace detail

/// Microseconds since the process obs epoch. Non-decreasing (steady_clock),
/// but reads from racing threads can tie — use strict_us() when the caller
/// needs an ordering-unique stamp. This is the cheap form the profiler's
/// signal handler uses (one clock read, no CAS loop).
inline double raw_us() noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - detail::epoch())
      .count();
}

inline double raw_ms() noexcept { return raw_us() / 1000.0; }

/// Strictly monotonic stamp: two calls never return the same value, and a
/// call that happens-after another (even on a different thread) always
/// reads a larger one. steady_clock alone only guarantees non-decreasing
/// reads that can tie or interleave with the stamp ordering under
/// contention, so we serialize through one process-wide atomic
/// high-watermark: anything at or below the last issued stamp is bumped to
/// the next representable double. Without this, Perfetto renders racing
/// begin/end pairs as negative-duration spans. Shared by Recorder and
/// FlightRecorder so their stamps interleave consistently too.
inline double strict_us() noexcept {
  const double t = raw_us();
  std::atomic<double>& last = detail::watermark();
  double prev = last.load(std::memory_order_relaxed);
  double next;
  do {
    next = t > prev
               ? t
               : std::nextafter(prev, std::numeric_limits<double>::infinity());
  } while (!last.compare_exchange_weak(prev, next,
                                       std::memory_order_acq_rel));
  return next;
}

/// Latch the epoch from a known-safe (non-signal) context. The function-
/// local static in detail::epoch() is guarded by a lock on first
/// initialization, which is not async-signal-safe, so the profiler calls
/// this before arming its timer.
inline void touch() noexcept { (void)raw_us(); }

}  // namespace clock
}  // namespace qulrb::obs
