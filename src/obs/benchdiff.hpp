#pragma once

#include <map>
#include <string>
#include <vector>

#include "io/json_value.hpp"

namespace qulrb::obs {

/// Comparison knobs for the BENCH_*.json regression gate.
struct BenchDiffOptions {
  /// A benchmark regresses when its candidate time exceeds the baseline by
  /// more than this many percent.
  double threshold_pct = 10.0;
  /// Per-benchmark overrides (exact benchmark name -> percent). Lets noisy
  /// microbenchmarks carry a looser bar without loosening the whole gate.
  std::map<std::string, double> per_benchmark_pct;
  /// Benchmarks whose baseline is faster than this many nanoseconds are
  /// reported but never gate — below the noise floor a relative threshold
  /// is meaningless.
  double min_time_ns = 0.0;
};

/// One compared benchmark.
struct BenchEntry {
  std::string name;
  double baseline_ns = 0.0;
  double candidate_ns = 0.0;  ///< min over the candidate runs
  double ratio = 0.0;         ///< candidate / baseline
  double threshold_pct = 0.0;
  bool below_noise_floor = false;
  bool regression = false;
};

struct BenchDiffReport {
  std::vector<BenchEntry> entries;              ///< sorted by name
  std::vector<std::string> missing_in_candidate;
  std::vector<std::string> missing_in_baseline;

  bool has_regression() const noexcept {
    for (const auto& e : entries) {
      if (e.regression) return true;
    }
    return false;
  }

  /// Machine-readable report (uploaded as the CI artifact).
  std::string to_json() const;
  /// Human-readable table for the job log.
  std::string to_text() const;
};

/// Extract benchmark name -> real time in nanoseconds from any of the three
/// BENCH_*.json flavors this repo exports:
///   - BENCH_kernel.json:  benchmarks.{name}.after.real_time_ns
///   - BENCH_service.json / BENCH_obs.json:
///                         benchmarks.{name}.real_time (+ time_unit)
/// plus raw google-benchmark output (benchmarks as an array). Throws
/// util::InvalidArgument when no benchmark times can be found.
std::map<std::string, double> parse_bench_times(const io::JsonValue& doc);

/// Compare a baseline document against one or more candidate runs of the
/// same benchmark suite. Noise-aware by construction: the candidate time per
/// benchmark is the minimum across the candidate documents (min-of-N — the
/// minimum of a latency measurement estimates the noise-free cost), and the
/// regression predicate is relative with per-benchmark thresholds.
BenchDiffReport bench_diff(const io::JsonValue& baseline,
                           const std::vector<io::JsonValue>& candidates,
                           const BenchDiffOptions& options = BenchDiffOptions());

}  // namespace qulrb::obs
