#include "obs/recorder.hpp"

#include <algorithm>
#include <set>

#include "obs/trace_writer.hpp"

namespace qulrb::obs {

std::string to_perfetto_json(const Recorder& recorder) {
  constexpr std::int64_t kPid = 1;
  TraceWriter writer;
  writer.process_name(kPid, recorder.name());

  auto spans = recorder.spans();
  auto samples = recorder.samples();
  auto owned = recorder.owned_samples();
  const auto track_names = recorder.track_names();

  // Label every track that carries data, preferring explicit names.
  std::set<std::uint32_t> tracks;
  for (const auto& s : spans) tracks.insert(s.track);
  for (const auto& s : samples) tracks.insert(s.track);
  for (const auto& s : owned) tracks.insert(s.track);
  for (const std::uint32_t track : tracks) {
    std::string label = track == 0 ? "main" : "track " + std::to_string(track);
    for (const auto& [t, name] : track_names) {
      if (t == track) label = name;
    }
    writer.thread_name(kPid, static_cast<std::int64_t>(track), label);
  }

  // The viewers tolerate unsorted events but render sorted ones faster, and
  // sorted output makes the document diffable in tests.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start_us < b.start_us;
                   });
  std::stable_sort(samples.begin(), samples.end(),
                   [](const TraceSample& a, const TraceSample& b) {
                     return a.t_us < b.t_us;
                   });
  std::stable_sort(owned.begin(), owned.end(),
                   [](const OwnedSample& a, const OwnedSample& b) {
                     return a.t_us < b.t_us;
                   });

  for (const auto& s : spans) {
    writer.complete(s.name, s.category, kPid,
                    static_cast<std::int64_t>(s.track), s.start_us, s.dur_us);
  }
  for (const auto& s : samples) {
    std::string series = s.series;
    if (s.track != 0) series += "/t" + std::to_string(s.track);
    writer.counter(series, kPid, s.t_us, s.value);
  }
  for (const auto& s : owned) {
    std::string series = s.series;
    if (s.track != 0) series += "/t" + std::to_string(s.track);
    writer.counter(series, kPid, s.t_us, s.value);
  }

  for (const auto& [key, value] : recorder.annotations()) {
    writer.metadata(key, value);
  }
  writer.metadata("recorder", recorder.name());
  writer.metadata("spans", static_cast<std::int64_t>(spans.size()));
  writer.metadata("samples",
                  static_cast<std::int64_t>(samples.size() + owned.size()));
  return writer.finish();
}

}  // namespace qulrb::obs
