#include "obs/build_info.hpp"

#include <utility>

#ifndef QULRB_VERSION_STRING
#define QULRB_VERSION_STRING "0.0.0"
#endif
#ifndef QULRB_GIT_SHA
#define QULRB_GIT_SHA "unknown"
#endif
#ifndef QULRB_BUILD_TYPE
#define QULRB_BUILD_TYPE "unspecified"
#endif

namespace qulrb::obs {

BuildInfo build_info(std::string simd_level) {
  BuildInfo info;
  info.version = QULRB_VERSION_STRING;
  info.revision = QULRB_GIT_SHA;
  info.build_type = QULRB_BUILD_TYPE;
  if (info.build_type.empty()) info.build_type = "unspecified";
  info.simd_level = std::move(simd_level);
  return info;
}

void register_build_info(MetricsRegistry& registry, const BuildInfo& info,
                         const std::string& role) {
  MetricsRegistry::Labels labels{{"version", info.version},
                                 {"revision", info.revision},
                                 {"build", info.build_type},
                                 {"qulrb_simd_level", info.simd_level},
                                 {"role", role}};
  registry
      .gauge("qulrb_build_info",
             "Build identity (value is always 1; the identity is the labels)",
             labels)
      .set(1.0);
}

}  // namespace qulrb::obs
