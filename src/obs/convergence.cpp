#include "obs/convergence.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <vector>

namespace qulrb::obs {

namespace {

/// One paired incumbent observation reassembled from the recorded
/// "incumbent_energy" / "incumbent_violation" counter tracks.
struct Point {
  double t_us = 0.0;
  double objective = 0.0;
  double violation = 0.0;
};

/// Feasibility-first incumbent ordering, mirroring the samplers' own
/// Sample::better_than: a feasible point beats any infeasible one; among
/// feasible points lower objective wins; among infeasible ones lower
/// violation (objective as tiebreak).
bool better(const Point& a, const Point& b, double tol) {
  const bool a_feasible = a.violation <= tol;
  const bool b_feasible = b.violation <= tol;
  if (a_feasible != b_feasible) return a_feasible;
  if (a_feasible) return a.objective < b.objective;
  if (a.violation != b.violation) return a.violation < b.violation;
  return a.objective < b.objective;
}

/// Reassemble the per-track incumbent timelines into one time-sorted list.
/// The samplers push "incumbent_energy" (objective + violation) and
/// "incumbent_violation" back to back for each sampled sweep, so within a
/// track the i-th point of each series describes the same incumbent.
std::vector<Point> collect_points(const Recorder& recorder,
                                  std::size_t* tracks_seen) {
  std::map<std::uint32_t,
           std::pair<std::vector<TraceSample>, std::vector<TraceSample>>>
      by_track;
  for (const auto& s : recorder.samples()) {
    if (std::strcmp(s.series, "incumbent_energy") == 0) {
      by_track[s.track].first.push_back(s);
    } else if (std::strcmp(s.series, "incumbent_violation") == 0) {
      by_track[s.track].second.push_back(s);
    }
  }

  std::vector<Point> points;
  for (const auto& [track, series] : by_track) {
    const auto& [energies, violations] = series;
    const std::size_t n = std::min(energies.size(), violations.size());
    for (std::size_t i = 0; i < n; ++i) {
      Point p;
      p.t_us = std::max(energies[i].t_us, violations[i].t_us);
      p.violation = violations[i].value;
      p.objective = energies[i].value - violations[i].value;
      points.push_back(p);
    }
  }
  if (tracks_seen != nullptr) *tracks_seen = by_track.size();
  std::stable_sort(points.begin(), points.end(),
                   [](const Point& a, const Point& b) {
                     return a.t_us < b.t_us;
                   });
  return points;
}

}  // namespace

ConvergenceReport ConvergenceDiagnostics::analyze(
    const Recorder& recorder) const {
  ConvergenceReport report;
  const std::vector<Point> points =
      collect_points(recorder, &report.tracks_seen);
  report.samples_seen = points.size();
  if (points.empty()) return report;

  const double tol = config_.feasibility_tol;
  Point best = points.front();
  double last_improve_us = points.front().t_us;
  double longest_us = 0.0;

  auto score = [](const Point& p) { return p.objective + p.violation; };

  for (const Point& p : points) {
    // Sample stamps are on the process-wide obs timebase; subtracting the
    // recorder's creation stamp recovers "ms into this solve".
    if (report.time_to_first_feasible_ms < 0.0 && p.violation <= tol) {
      report.time_to_first_feasible_ms =
          (p.t_us - recorder.epoch_us()) / 1000.0;
    }
    if (report.time_to_target_ms < 0.0 && p.violation <= tol &&
        !std::isnan(config_.target_objective) &&
        p.objective <= config_.target_objective) {
      report.time_to_target_ms = (p.t_us - recorder.epoch_us()) / 1000.0;
    }
    if (better(p, best, tol)) {
      // A feasibility flip always counts as progress; otherwise demand a
      // relative score improvement so float noise doesn't mask stagnation.
      const bool flipped =
          (p.violation <= tol) != (best.violation <= tol);
      const double drop = score(best) - score(p);
      const bool meaningful =
          flipped ||
          drop > config_.improvement_epsilon *
                     std::max(1.0, std::fabs(score(best)));
      if (meaningful) {
        longest_us = std::max(longest_us, p.t_us - last_improve_us);
        last_improve_us = p.t_us;
      }
      best = p;
    }
  }
  longest_us = std::max(longest_us, points.back().t_us - last_improve_us);

  report.longest_stagnation_ms = longest_us / 1000.0;
  report.final_objective = best.objective;
  report.final_violation = best.violation;
  return report;
}

ConvergenceReport ConvergenceDiagnostics::annotate(Recorder& recorder) const {
  const ConvergenceReport report = analyze(recorder);
  if (report.samples_seen == 0) return report;

  // Replay the merged best-so-far envelope onto the main row so the trace
  // viewer shows one global convergence curve next to the per-restart ones.
  std::size_t tracks = 0;
  const std::vector<Point> points = collect_points(recorder, &tracks);
  const double tol = config_.feasibility_tol;
  Point best;
  bool have = false;
  bool was_feasible = false;
  for (const Point& p : points) {
    if (!have || better(p, best, tol)) {
      best = p;
      have = true;
      recorder.sample_at("best_objective", 0, p.t_us, best.objective);
      recorder.sample_at("best_violation", 0, p.t_us, best.violation);
      const bool feasible = best.violation <= tol;
      if (feasible != was_feasible) {
        recorder.sample_at("feasible", 0, p.t_us, feasible ? 1.0 : 0.0);
        was_feasible = feasible;
      }
    }
  }

  auto fmt_ms = [](double ms) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", ms);
    return std::string(buf);
  };
  if (report.reached_feasible()) {
    recorder.annotate("time_to_first_feasible_ms",
                      fmt_ms(report.time_to_first_feasible_ms));
  }
  if (report.reached_target()) {
    recorder.annotate("time_to_target_ms", fmt_ms(report.time_to_target_ms));
  }
  recorder.annotate("longest_stagnation_ms",
                    fmt_ms(report.longest_stagnation_ms));
  return report;
}

}  // namespace qulrb::obs
