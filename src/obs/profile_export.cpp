#include "obs/profile_export.hpp"

#include <cstdint>
#include <map>
#include <utility>

#include "io/json.hpp"

namespace qulrb::obs {
namespace {

/// Build the folded key for one sample: source, then the rid/phase
/// attribution roots, then the symbolized frames root-to-leaf. pcs[0] is
/// the exact interrupted pc; deeper entries are return addresses and
/// resolve to their call site (pc - 1).
std::string folded_key(const ProfileSample& s, prof::Symbolizer& symbolizer,
                       const std::string& source) {
  std::string key = source;
  if (s.rid != 0) {
    key += ";rid:";
    key += std::to_string(s.rid);
  }
  if (s.phase != nullptr) {
    key += ";phase:";
    key += s.phase;
  }
  for (int i = s.depth - 1; i >= 0; --i) {
    key += ';';
    key += i == 0 ? symbolizer.resolve(s.pcs[i])
                  : symbolizer.resolve_return_address(s.pcs[i]);
  }
  if (s.depth == 0) key += ";[unwound:none]";
  return key;
}

struct Attribution {
  std::string phase;
  std::uint64_t rid = 0;
  bool operator<(const Attribution& o) const {
    return phase != o.phase ? phase < o.phase : rid < o.rid;
  }
};

}  // namespace

std::string profile_to_folded(const std::vector<ProfileSample>& samples,
                              prof::Symbolizer& symbolizer,
                              const ProfileExportOptions& options) {
  std::map<std::string, std::uint64_t> stacks;
  for (const ProfileSample& s : samples) {
    ++stacks[folded_key(s, symbolizer, options.source)];
  }
  std::string out;
  for (const auto& [key, count] : stacks) {
    out += key;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string profile_to_json(const std::vector<ProfileSample>& samples,
                            prof::Symbolizer& symbolizer,
                            const ProfileExportOptions& options) {
  std::map<std::string, std::uint64_t> stacks;
  std::map<Attribution, std::uint64_t> phases;
  for (const ProfileSample& s : samples) {
    ++stacks[folded_key(s, symbolizer, options.source)];
    Attribution a;
    a.phase = s.phase != nullptr ? s.phase : "";
    a.rid = s.rid;
    ++phases[a];
  }

  std::string folded;
  for (const auto& [key, count] : stacks) {
    folded += key;
    folded += ' ';
    folded += std::to_string(count);
    folded += '\n';
  }

  io::JsonWriter w;
  w.begin_object();
  w.field("source", options.source);
  w.field("hz", options.hz);
  w.field("window_s", options.window_s);
  w.field("samples", samples.size());
  w.field("distinct_stacks", stacks.size());
  w.key("phases").begin_array();
  for (const auto& [a, count] : phases) {
    w.begin_object();
    w.field("phase", a.phase);
    w.field("rid", static_cast<std::int64_t>(a.rid));
    w.field("samples", static_cast<std::int64_t>(count));
    w.end_object();
  }
  w.end_array();
  w.field("folded", folded);
  w.end_object();
  return w.str();
}

std::string folded_with_instance(const std::string& folded,
                                 const std::string& instance) {
  std::string out;
  out.reserve(folded.size() + instance.size() * 8);
  std::size_t pos = 0;
  while (pos < folded.size()) {
    std::size_t eol = folded.find('\n', pos);
    if (eol == std::string::npos) eol = folded.size();
    if (eol > pos) {
      out += "instance:";
      out += instance;
      out += ';';
      out.append(folded, pos, eol - pos);
      out += '\n';
    }
    pos = eol + 1;
  }
  return out;
}

}  // namespace qulrb::obs
