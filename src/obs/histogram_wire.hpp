#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace qulrb::io {
class JsonWriter;
class JsonValue;
}  // namespace qulrb::io

namespace qulrb::obs {

/// Wire codec for LogHistogram and whole metric registries, so the router
/// can federate per-backend metrics with exact bucket-wise merges. The wire
/// form is stripe-agnostic (stripes are a writer-side concurrency detail):
///
///   {"layout": {"lo": 0.001, "buckets": 58, "per_octave": 2},
///    "counts": [[b, c], ...],        // sparse: only non-zero buckets
///    "sum": S}
///
/// Deserialize-and-merge is plain addition (LogHistogram::add_bucket /
/// add_sum), so merging M backends' serialized histograms into one is
/// bit-identical to merging the live histograms — the federation exactness
/// guarantee rests on this.

/// Serialize one histogram as the wire object (written as the next value).
void write_histogram_json(const LogHistogram& h, io::JsonWriter& w);
std::string histogram_to_json(const LogHistogram& h);

/// Read the layout of a serialized histogram. Returns false when the doc is
/// not a histogram wire object.
bool histogram_layout_from_json(const io::JsonValue& doc,
                                HistogramLayout& out);

/// Fold a serialized histogram into `target`. Returns false (target
/// untouched) on malformed input or layout mismatch.
bool merge_histogram_json(const io::JsonValue& doc, LogHistogram& target);

/// Serialize a whole registry for the {"op":"obs"} protocol op: counters and
/// gauges as {"name","labels","value"} entries, histograms in the wire form
/// above. Written as the next value (an object with "counters", "gauges",
/// "histograms" arrays).
void write_registry_obs_json(const MetricsRegistry& registry,
                             io::JsonWriter& w);

}  // namespace qulrb::obs
