#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.hpp"
#include "obs/phase.hpp"

namespace qulrb::obs {

/// One closed span on a trace track (durations/timestamps in microseconds
/// since the recorder's epoch).
struct TraceSpan {
  std::string name;
  const char* category = "solve";  ///< must point at a static string
  std::uint32_t track = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
};

/// One point on a counter timeline (e.g. incumbent energy over time).
struct TraceSample {
  const char* series = "";  ///< must point at a static string
  std::uint32_t track = 0;
  double t_us = 0.0;
  double value = 0.0;
};

/// A counter point whose series name is owned (dynamic) and whose timestamp
/// may be backdated — the cold-path variant used by post-hoc analyses
/// (convergence envelopes, per-constraint violation attribution) where the
/// series name is built at runtime. Never used from sweep loops.
struct OwnedSample {
  std::string series;
  std::uint32_t track = 0;
  double t_us = 0.0;
  double value = 0.0;
};

/// Per-solve trace collector: spans (phases) on numbered tracks plus sampled
/// counter timelines, all timestamped against one steady-clock epoch so
/// concurrent restart tracks line up in the viewer.
///
/// Null-object discipline — identical to util::CancelToken: solver params
/// carry a `Recorder*` that is nullptr when tracing is off, and every call
/// site guards with `if (recorder != nullptr)`. The guard is a single
/// perfectly-predicted branch, the recorder consumes no RNG, and it never
/// changes control flow, so sampler output is bitwise identical either way.
///
/// Recording methods take a mutex; they are called per phase or per sampled
/// sweep batch, never per flip, so the lock is off the hot path.
class Recorder {
 public:
  explicit Recorder(std::string name = "solve") : name_(std::move(name)) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Microseconds on the process-wide obs timebase (obs::clock), strictly
  /// monotonic across threads: two calls never return the same value, and a
  /// call that happens-after another (e.g. a span's end after its begin,
  /// even when the begin ran on a different thread) always reads a larger
  /// one — the CAS high-watermark lives in obs::clock::strict_us(). Sharing
  /// the timebase with the FlightRecorder and the profiler is what makes
  /// spans, flight records and CPU samples directly comparable in one
  /// incident bundle. Callers that need "since this solve started" subtract
  /// epoch_us().
  double now_us() const noexcept { return clock::strict_us(); }

  /// The timebase reading when this recorder was constructed — the zero
  /// point for "how long into the solve" analyses (ConvergenceDiagnostics'
  /// time-to-first-feasible subtracts this).
  double epoch_us() const noexcept { return epoch_us_; }

  const std::string& name() const noexcept { return name_; }

  void span(std::string name, const char* category, std::uint32_t track,
            double start_us, double end_us) {
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(TraceSpan{std::move(name), category, track, start_us,
                               end_us > start_us ? end_us - start_us : 0.0});
  }

  void sample(const char* series, std::uint32_t track, double value) {
    const double t = now_us();
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(TraceSample{series, track, t, value});
  }

  /// Cold-path counter point with an owned series name and an explicit
  /// (possibly backdated) timestamp — used by post-hoc analyses that replay
  /// derived timelines (convergence envelopes, per-constraint violations)
  /// into the trace. `t_us` is on this recorder's epoch, i.e. a value
  /// obtained from now_us() or from another sample's timestamp.
  void sample_at(std::string series, std::uint32_t track, double t_us,
                 double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    owned_samples_.push_back(
        OwnedSample{std::move(series), track, t_us, value});
  }

  /// sample_at() stamped with the current time.
  void sample_named(std::string series, std::uint32_t track, double value) {
    sample_at(std::move(series), track, now_us(), value);
  }

  /// Human-readable label for a track row in the viewer (track 0 is labelled
  /// automatically from the recorder name).
  void name_track(std::uint32_t track, std::string label) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [t, l] : track_names_) {
      if (t == track) {
        l = std::move(label);
        return;
      }
    }
    track_names_.emplace_back(track, std::move(label));
  }

  /// Free-form annotation exported into the trace's metadata object.
  void annotate(const std::string& key, std::string value) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [k, v] : annotations_) {
      if (k == key) {
        v = std::move(value);
        return;
      }
    }
    annotations_.emplace_back(key, std::move(value));
  }

  std::vector<TraceSpan> spans() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
  }
  std::vector<TraceSample> samples() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_;
  }
  std::vector<OwnedSample> owned_samples() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return owned_samples_;
  }
  std::vector<std::pair<std::uint32_t, std::string>> track_names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return track_names_;
  }
  std::vector<std::pair<std::string, std::string>> annotations() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return annotations_;
  }

  /// RAII phase scope: records a span from construction to destruction (or
  /// close()). Safe to construct with a null recorder — then it does
  /// nothing, which is how the zero-cost disabled path reads at call sites:
  ///
  ///   obs::Recorder::Span phase(params.recorder, "presolve", "hybrid", 0);
  ///
  /// When a recorder is attached the span also pushes its name onto the
  /// thread's prof phase stack, so CPU samples taken inside a traced phase
  /// are attributed to it without separate instrumentation. The disabled
  /// path stays one pointer test (always-on serving phases come from
  /// explicit prof::PhaseScope sites in the solvers instead).
  class Span {
   public:
    Span(Recorder* recorder, const char* name, const char* category,
         std::uint32_t track) noexcept
        : recorder_(recorder), name_(name), category_(category), track_(track) {
      if (recorder_ != nullptr) {
        start_us_ = recorder_->now_us();
        prof::push_phase(name_);
      }
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    ~Span() { close(); }

    void close() noexcept {
      if (recorder_ == nullptr) return;
      prof::pop_phase();
      try {
        recorder_->span(name_, category_, track_, start_us_,
                        recorder_->now_us());
      } catch (...) {
        // Allocation failure while tracing must not take down the solve.
      }
      recorder_ = nullptr;
    }

   private:
    Recorder* recorder_;
    const char* name_;
    const char* category_;
    std::uint32_t track_;
    double start_us_ = 0.0;
  };

 private:
  std::string name_;
  /// Timebase reading at construction; see epoch_us().
  double epoch_us_ = clock::raw_us();
  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceSample> samples_;
  std::vector<OwnedSample> owned_samples_;
  std::vector<std::pair<std::uint32_t, std::string>> track_names_;
  std::vector<std::pair<std::string, std::string>> annotations_;
};

/// Perfetto/Chrome-trace JSON for one recorded solve: spans become complete
/// events (track = tid), counter timelines become counter events (the series
/// of track t > 0 are suffixed "/t<t>" so restart timelines stay separate),
/// track labels become thread-name metadata, annotations land in the
/// document's metadata object. Defined in recorder.cpp (export side only —
/// the recording side above stays header-only so the samplers need no link
/// dependency on qulrb_obs).
std::string to_perfetto_json(const Recorder& recorder);

}  // namespace qulrb::obs
