#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "io/json.hpp"
#include "util/error.hpp"

namespace qulrb::obs {

const char* to_string(TriggerKind kind) {
  switch (kind) {
    case TriggerKind::kSloBurn: return "slo_burn";
    case TriggerKind::kDeadlineMissBurst: return "deadline_miss_burst";
    case TriggerKind::kBackendMarkDown: return "backend_mark_down";
    case TriggerKind::kQueueDepthHwm: return "queue_depth_hwm";
  }
  return "unknown";
}

std::string to_json(const SloTrigger& trigger) {
  io::JsonWriter w;
  w.begin_object();
  w.field("kind", to_string(trigger.kind));
  w.field("priority", trigger.priority);
  w.field("rid", static_cast<std::int64_t>(trigger.rid));
  w.field("now_ms", trigger.now_ms);
  w.field("fast_burn", trigger.fast_burn);
  w.field("slow_burn", trigger.slow_burn);
  w.field("detail", trigger.detail);
  w.end_object();
  return w.str();
}

SloEngine::SloEngine(Params params, TriggerHandler handler)
    : params_(params), handler_(std::move(handler)) {
  util::require(params_.num_classes >= 1 && params_.fast_window_s > 0.0 &&
                    params_.slow_window_s >= params_.fast_window_s &&
                    params_.target > 0.0 && params_.target < 1.0,
                "SloEngine: need >=1 class, fast <= slow windows, "
                "target in (0,1)");
  // The ring covers the slow window at fast-window/4 granularity (at least
  // 1 s per bucket), so the fast window always spans >= 4 live buckets and
  // rotating one bucket forgets at most a quarter of the fast window.
  bucket_ms_ = std::max(params_.fast_window_s / 4.0, 1.0) * 1000.0;
  const auto ring_len = static_cast<std::size_t>(
      std::ceil(params_.slow_window_s * 1000.0 / bucket_ms_)) + 1;
  classes_.resize(params_.num_classes);
  for (ClassState& cls : classes_) {
    cls.ring.reserve(ring_len);
    for (std::size_t i = 0; i < ring_len; ++i) {
      cls.ring.push_back(std::make_unique<Bucket>(params_.layout));
    }
  }
  last_trigger_ms_.assign(4 * (params_.num_classes + 1),
                          -std::numeric_limits<double>::infinity());
}

std::size_t SloEngine::clamp_class(int priority) const noexcept {
  if (priority < 0) return 0;
  const auto p = static_cast<std::size_t>(priority);
  return p < params_.num_classes ? p : params_.num_classes - 1;
}

SloEngine::Bucket& SloEngine::bucket_for(ClassState& cls, double now_ms) {
  const auto index = static_cast<std::int64_t>(std::floor(now_ms / bucket_ms_));
  const std::size_t slot = static_cast<std::size_t>(
      index % static_cast<std::int64_t>(cls.ring.size()));
  Bucket& b = *cls.ring[slot];
  if (b.index != index) {  // lazily rotate: reclaim the expired slot
    b.index = index;
    b.total = 0;
    b.good = 0;
    b.deadline_missed = 0;
    b.hist.reset();  // owner-synchronized: engine mutex is held
  }
  return b;
}

void SloEngine::window_totals(const ClassState& cls, double window_s,
                              double now_ms, std::uint64_t& total,
                              std::uint64_t& good,
                              std::uint64_t& missed) const {
  total = good = missed = 0;
  const double cutoff_ms = now_ms - window_s * 1000.0;
  for (const auto& b : cls.ring) {
    if (b->index < 0) continue;
    // A bucket is in the window when any part of it overlaps (cutoff, now].
    const double b_end = static_cast<double>(b->index + 1) * bucket_ms_;
    const double b_start = static_cast<double>(b->index) * bucket_ms_;
    if (b_end <= cutoff_ms || b_start > now_ms) continue;
    total += b->total;
    good += b->good;
    missed += b->deadline_missed;
  }
}

double SloEngine::burn_locked(const ClassState& cls, double window_s,
                              double now_ms) const {
  std::uint64_t total = 0, good = 0, missed = 0;
  window_totals(cls, window_s, now_ms, total, good, missed);
  if (total == 0) return 0.0;
  const double bad_fraction =
      1.0 - static_cast<double>(good) / static_cast<double>(total);
  return bad_fraction / (1.0 - params_.target);
}

void SloEngine::arm_trigger(std::vector<SloTrigger>& pending,
                            SloTrigger trigger) {
  const std::size_t cls_col =
      trigger.priority < 0 ? params_.num_classes : clamp_class(trigger.priority);
  const std::size_t row = static_cast<std::size_t>(trigger.kind);
  double& last = last_trigger_ms_[row * (params_.num_classes + 1) + cls_col];
  if (trigger.now_ms - last < params_.cooldown_s * 1000.0) return;
  last = trigger.now_ms;
  pending.push_back(std::move(trigger));
}

void SloEngine::record(int priority, double latency_ms, bool ok,
                       bool deadline_missed, std::uint64_t rid,
                       double now_ms) {
  std::vector<SloTrigger> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t c = clamp_class(priority);
    ClassState& cls = classes_[c];
    Bucket& b = bucket_for(cls, now_ms);
    b.total += 1;
    if (ok && latency_ms <= params_.latency_slo_ms) b.good += 1;
    if (deadline_missed) b.deadline_missed += 1;
    b.hist.observe(latency_ms);

    const double fast = burn_locked(cls, params_.fast_window_s, now_ms);
    const double slow = burn_locked(cls, params_.slow_window_s, now_ms);
    if (fast >= params_.burn_threshold && slow >= params_.burn_threshold) {
      SloTrigger t;
      t.kind = TriggerKind::kSloBurn;
      t.priority = static_cast<int>(c);
      t.rid = rid;
      t.now_ms = now_ms;
      t.fast_burn = fast;
      t.slow_burn = slow;
      std::ostringstream detail;
      detail << "class " << c << " burn " << fast << "x/" << slow
             << "x (threshold " << params_.burn_threshold << "x, slo "
             << params_.latency_slo_ms << " ms)";
      t.detail = detail.str();
      arm_trigger(pending, std::move(t));
    }
    if (deadline_missed) {
      std::uint64_t total = 0, good = 0, missed = 0;
      window_totals(cls, params_.fast_window_s, now_ms, total, good, missed);
      if (missed >= params_.deadline_burst) {
        SloTrigger t;
        t.kind = TriggerKind::kDeadlineMissBurst;
        t.priority = static_cast<int>(c);
        t.rid = rid;
        t.now_ms = now_ms;
        t.fast_burn = burn_locked(cls, params_.fast_window_s, now_ms);
        t.slow_burn = burn_locked(cls, params_.slow_window_s, now_ms);
        std::ostringstream detail;
        detail << missed << " deadline misses in class " << c
               << " inside the fast window (burst threshold "
               << params_.deadline_burst << ")";
        t.detail = detail.str();
        arm_trigger(pending, std::move(t));
      }
    }
  }
  if (handler_) {
    for (const SloTrigger& t : pending) handler_(t);
  }
}

void SloEngine::note_queue_depth(std::size_t depth, std::uint64_t rid,
                                 double now_ms) {
  if (params_.queue_hwm == 0 || depth <= params_.queue_hwm) return;
  std::vector<SloTrigger> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SloTrigger t;
    t.kind = TriggerKind::kQueueDepthHwm;
    t.rid = rid;
    t.now_ms = now_ms;
    std::ostringstream detail;
    detail << "queue depth " << depth << " breached high-watermark "
           << params_.queue_hwm;
    t.detail = detail.str();
    arm_trigger(pending, std::move(t));
  }
  if (handler_) {
    for (const SloTrigger& t : pending) handler_(t);
  }
}

void SloEngine::note_backend_down(const std::string& label, double now_ms) {
  std::vector<SloTrigger> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SloTrigger t;
    t.kind = TriggerKind::kBackendMarkDown;
    t.now_ms = now_ms;
    t.detail = "backend " + label + " marked down";
    arm_trigger(pending, std::move(t));
  }
  if (handler_) {
    for (const SloTrigger& t : pending) handler_(t);
  }
}

double SloEngine::burn_rate(int priority, double window_s,
                            double now_ms) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return burn_locked(classes_[clamp_class(priority)], window_s, now_ms);
}

void SloEngine::merged_window(int priority, double window_s, double now_ms,
                              LogHistogram& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const ClassState& cls = classes_[clamp_class(priority)];
  const double cutoff_ms = now_ms - window_s * 1000.0;
  for (const auto& b : cls.ring) {
    if (b->index < 0) continue;
    const double b_end = static_cast<double>(b->index + 1) * bucket_ms_;
    const double b_start = static_cast<double>(b->index) * bucket_ms_;
    if (b_end <= cutoff_ms || b_start > now_ms) continue;
    out.merge(b->hist);
  }
}

void SloEngine::write_json(io::JsonWriter& w, double now_ms) const {
  std::lock_guard<std::mutex> lock(mutex_);
  w.begin_object();
  w.field("latency_slo_ms", params_.latency_slo_ms);
  w.field("target", params_.target);
  w.field("fast_window_s", params_.fast_window_s);
  w.field("slow_window_s", params_.slow_window_s);
  w.field("burn_threshold", params_.burn_threshold);
  w.key("classes").begin_array();
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const ClassState& cls = classes_[c];
    std::uint64_t f_total = 0, f_good = 0, f_missed = 0;
    window_totals(cls, params_.fast_window_s, now_ms, f_total, f_good,
                  f_missed);
    std::uint64_t s_total = 0, s_good = 0, s_missed = 0;
    window_totals(cls, params_.slow_window_s, now_ms, s_total, s_good,
                  s_missed);
    LogHistogram merged(params_.layout);
    const double cutoff_ms = now_ms - params_.fast_window_s * 1000.0;
    for (const auto& b : cls.ring) {
      if (b->index < 0) continue;
      const double b_end = static_cast<double>(b->index + 1) * bucket_ms_;
      const double b_start = static_cast<double>(b->index) * bucket_ms_;
      if (b_end <= cutoff_ms || b_start > now_ms) continue;
      merged.merge(b->hist);
    }
    w.begin_object();
    w.field("class", c);
    w.field("fast_total", static_cast<std::int64_t>(f_total));
    w.field("fast_good", static_cast<std::int64_t>(f_good));
    w.field("fast_deadline_missed", static_cast<std::int64_t>(f_missed));
    w.field("slow_total", static_cast<std::int64_t>(s_total));
    w.field("slow_good", static_cast<std::int64_t>(s_good));
    w.field("fast_burn", burn_locked(cls, params_.fast_window_s, now_ms));
    w.field("slow_burn", burn_locked(cls, params_.slow_window_s, now_ms));
    w.field("fast_p50_ms", merged.quantile(0.5));
    w.field("fast_p99_ms", merged.quantile(0.99));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string SloEngine::to_json(double now_ms) const {
  io::JsonWriter w;
  write_json(w, now_ms);
  return w.str();
}

}  // namespace qulrb::obs
