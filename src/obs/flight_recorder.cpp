#include "obs/flight_recorder.hpp"

#include <unordered_map>

#include "io/json.hpp"

namespace qulrb::obs {

std::string flight_to_perfetto_json(const FlightRecorder& recorder,
                                    double window_s, std::uint64_t trigger_rid,
                                    const std::string& trigger_kind,
                                    const std::string& source) {
  const std::vector<FlightRecord> records =
      recorder.snapshot(window_s > 0.0 ? window_s * 1e6 : -1.0);

  // Resolve the interned names once; the table is tiny.
  std::unordered_map<std::uint16_t, std::string> names;
  for (const FlightRecord& r : records) {
    if (names.find(r.name) == names.end()) {
      names.emplace(r.name, recorder.name_of(r.name));
    }
  }

  io::JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const FlightRecord& r : records) {
    w.begin_object();
    const std::string& name = names[r.name];
    switch (r.kind) {
      case FlightKind::kSpan:
        w.field("name", name)
            .field("ph", "X")
            .field("ts", r.t_us - r.dur_us)
            .field("dur", r.dur_us);
        break;
      case FlightKind::kInstant:
        w.field("name", name).field("ph", "i").field("ts", r.t_us);
        w.field("s", "t");
        break;
      case FlightKind::kCounter:
        w.field("name", name).field("ph", "C").field("ts", r.t_us);
        break;
    }
    w.field("pid", 1).field("tid", static_cast<std::int64_t>(r.track));
    w.field("cat", "flight");
    w.key("args").begin_object();
    w.field("rid", static_cast<std::int64_t>(r.rid));
    w.field("ticket", static_cast<std::int64_t>(r.ticket));
    if (r.kind == FlightKind::kCounter) {
      w.field(name, r.value);
    } else if (r.value != 0.0) {
      w.field("value", r.value);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("metadata").begin_object();
  w.field("source", source);
  w.field("trigger_rid", static_cast<std::int64_t>(trigger_rid));
  w.field("trigger", trigger_kind);
  w.field("window_s", window_s);
  w.field("records", records.size());
  w.field("total_records", static_cast<std::int64_t>(
                               recorder.total_records()));
  w.field("capacity", recorder.capacity());
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace qulrb::obs
