#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace qulrb::io {
class JsonWriter;
}  // namespace qulrb::io

namespace qulrb::obs {

/// Structured anomaly taxonomy — these are the flight recorder's dump
/// signals. Every trigger kind maps to one stable wire string (to_string)
/// used in incident bundles, event-log lines and CI assertions.
enum class TriggerKind : std::uint8_t {
  kSloBurn = 0,           ///< multi-window burn-rate breach for a class
  kDeadlineMissBurst = 1, ///< deadline misses clustered in the fast window
  kBackendMarkDown = 2,   ///< a fleet member went down (router-side)
  kQueueDepthHwm = 3,     ///< admission queue crossed its high-watermark
};

const char* to_string(TriggerKind kind);

/// One emitted anomaly trigger.
struct SloTrigger {
  TriggerKind kind = TriggerKind::kSloBurn;
  int priority = -1;        ///< priority class, -1 = not class-scoped
  std::uint64_t rid = 0;    ///< request whose observation tripped the wire
  double now_ms = 0.0;      ///< engine clock at emission
  double fast_burn = 0.0;   ///< burn rate over the fast window
  double slow_burn = 0.0;   ///< burn rate over the slow window
  std::string detail;       ///< human-readable one-liner
};

/// Serialize a trigger as one JSON object string.
std::string to_json(const SloTrigger& trigger);

/// Rolling-window SLO engine: per priority class it keeps a time-bucketed
/// ring of LogHistograms plus good/total/deadline counters, merges the live
/// buckets into fast (default 5 min) and slow (default 1 h) windows, and
/// computes multi-window burn rates
///
///   burn = (1 - good/total) / (1 - target)
///
/// (burn 1.0 = exactly consuming the error budget; the engine pages when
/// BOTH windows exceed `burn_threshold`, the standard multi-window guard
/// against paging on a blip or on long-stale history). Triggers are
/// delivered through the handler passed at construction, rate-limited by a
/// per-(kind, class) cooldown.
///
/// The clock is explicit — every mutating call takes `now_ms` on the
/// caller's epoch — so tests drive it deterministically and the service
/// feeds it the same epoch it stamps requests with. All state is guarded by
/// one mutex; callers are request-completion paths (per solve, not per
/// sweep), so the lock is off every hot loop. Handlers run outside the lock.
class SloEngine {
 public:
  struct Params {
    double latency_slo_ms = 50.0;  ///< a request is "good" iff total <= this
    double target = 0.99;          ///< objective fraction of good requests
    double fast_window_s = 300.0;  ///< fast burn window (5 m)
    double slow_window_s = 3600.0; ///< slow burn window (1 h)
    double burn_threshold = 2.0;   ///< page when both windows >= this
    double cooldown_s = 30.0;      ///< per-(kind, class) trigger spacing
    std::size_t num_classes = 4;   ///< priority classes tracked separately
    /// Deadline-miss burst: this many misses inside the fast window.
    std::uint64_t deadline_burst = 8;
    /// Queue-depth high-watermark; 0 disables the kQueueDepthHwm trigger.
    std::size_t queue_hwm = 0;
    /// Histogram layout for the window buckets (must match any histogram
    /// the windows are compared against).
    HistogramLayout layout;
  };

  using TriggerHandler = std::function<void(const SloTrigger&)>;

  explicit SloEngine(Params params, TriggerHandler handler = nullptr);

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  const Params& params() const noexcept { return params_; }

  /// Record one finished request. `priority` is clamped into
  /// [0, num_classes); a request is "good" iff `ok` (it produced a usable
  /// answer) AND its latency met the objective; `deadline_missed` feeds the
  /// burst trigger independently of the latency objective.
  void record(int priority, double latency_ms, bool ok, bool deadline_missed,
              std::uint64_t rid, double now_ms);

  /// Admission-side queue depth observation (kQueueDepthHwm source).
  void note_queue_depth(std::size_t depth, std::uint64_t rid, double now_ms);

  /// Fleet-membership observation (kBackendMarkDown source, router-side).
  void note_backend_down(const std::string& label, double now_ms);

  /// Burn rate of one class over the trailing `window_s` (0 when the window
  /// holds no requests).
  double burn_rate(int priority, double window_s, double now_ms) const;

  /// Merge the live buckets of one class's trailing window into `out`
  /// (layouts must match; `out` is NOT cleared first). This is the "merged
  /// LogHistogram windows" the engine's quantiles are built on, exposed so
  /// tests can assert window algebra directly.
  void merged_window(int priority, double window_s, double now_ms,
                     LogHistogram& out) const;

  /// Current SLO view (per class: totals, burn rates, latency quantiles)
  /// written as the next JSON value.
  void write_json(io::JsonWriter& w, double now_ms) const;
  std::string to_json(double now_ms) const;

 private:
  struct Bucket {
    std::int64_t index = -1;  ///< absolute time-bucket index, -1 = empty
    std::uint64_t total = 0;
    std::uint64_t good = 0;
    std::uint64_t deadline_missed = 0;
    LogHistogram hist;
    explicit Bucket(const HistogramLayout& layout) : hist(layout) {}
  };
  struct ClassState {
    std::vector<std::unique_ptr<Bucket>> ring;
  };

  std::size_t clamp_class(int priority) const noexcept;
  Bucket& bucket_for(ClassState& cls, double now_ms);
  /// Sum of (total, good, missed) over the trailing window. Lock held.
  void window_totals(const ClassState& cls, double window_s, double now_ms,
                     std::uint64_t& total, std::uint64_t& good,
                     std::uint64_t& missed) const;
  double burn_locked(const ClassState& cls, double window_s,
                     double now_ms) const;
  /// Emit through the handler if the (kind, class) cooldown allows. Must be
  /// called with the lock held; the actual handler runs after unlock (the
  /// caller drains `pending`).
  void arm_trigger(std::vector<SloTrigger>& pending, SloTrigger trigger);

  Params params_;
  TriggerHandler handler_;
  double bucket_ms_ = 0.0;
  mutable std::mutex mutex_;
  std::vector<ClassState> classes_;
  /// last trigger time per kind (rows) and class (+1 column for classless).
  std::vector<double> last_trigger_ms_;
};

}  // namespace qulrb::obs
