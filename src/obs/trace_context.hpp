#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "obs/recorder.hpp"

namespace qulrb::obs {

/// Request-scoped trace identity, minted once at service admission (or by the
/// CLI) and threaded by value through every layer a request touches: the
/// service queue, the session cache, the hybrid solver's restart pool and the
/// simulated/live MPI ranks. All layers append to the same Recorder, so one
/// Perfetto document shows the request end-to-end, and the request id minted
/// here lands in the document's metadata.
///
/// A default-constructed context is inactive: recorder() is nullptr and every
/// call site falls back to the established null-recorder discipline, so the
/// zero-cost-off contract is untouched.
///
/// Track allocation: each layer that needs its own rows calls
/// claim_tracks(n) and gets a contiguous, process-unique block of track ids.
/// This is what keeps solver restart rows and BSP rank rows from colliding
/// when both record into one request trace. Track 0 is never handed out — it
/// stays the request's "main" row (queue/session/presolve spans).
class TraceContext {
 public:
  TraceContext() = default;  ///< inactive — recorder() == nullptr

  /// Mint a fresh context (and its Recorder) for one request. The request id
  /// is annotated into the recorder so it survives into the exported trace.
  static TraceContext mint(std::uint64_t request_id, std::string name) {
    return adopt(request_id,
                 std::make_shared<Recorder>(std::move(name)));
  }

  /// Wrap an existing recorder (e.g. one the CLI owns) in a context.
  static TraceContext adopt(std::uint64_t request_id,
                            std::shared_ptr<Recorder> recorder) {
    TraceContext ctx;
    if (recorder != nullptr) {
      ctx.shared_ = std::make_shared<Shared>();
      ctx.shared_->request_id = request_id;
      ctx.shared_->recorder = std::move(recorder);
      ctx.shared_->recorder->annotate("request_id",
                                      std::to_string(request_id));
    }
    return ctx;
  }

  bool active() const noexcept { return shared_ != nullptr; }

  Recorder* recorder() const noexcept {
    return shared_ != nullptr ? shared_->recorder.get() : nullptr;
  }

  /// Shared ownership of the recorder (the service hands this to whoever
  /// serializes the trace after the request callback has run).
  std::shared_ptr<Recorder> recorder_ptr() const {
    return shared_ != nullptr ? shared_->recorder : nullptr;
  }

  std::uint64_t request_id() const noexcept {
    return shared_ != nullptr ? shared_->request_id : 0;
  }

  /// Reserve `n` consecutive track ids for one layer's rows and return the
  /// first. Thread-safe; ids are unique for the lifetime of the context.
  /// Inactive contexts return 0 (callers are already guarding on recorder()).
  std::uint32_t claim_tracks(std::uint32_t n) const {
    if (shared_ == nullptr || n == 0) return 0;
    return shared_->next_track.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  struct Shared {
    std::uint64_t request_id = 0;
    std::shared_ptr<Recorder> recorder;
    std::atomic<std::uint32_t> next_track{1};  ///< 0 is the main row
  };
  std::shared_ptr<Shared> shared_;
};

}  // namespace qulrb::obs
