#pragma once

#include <atomic>
#include <cstdint>

namespace qulrb::obs::prof {

/// Thread-local phase/rid attribution state shared between the solver hot
/// paths (writers) and the sampling profiler's SIGPROF handler (reader on
/// the same thread, asynchronously).
///
/// Signal-safety rules, which every member of this header obeys:
///  - the handler only ever reads the state of the thread it interrupted,
///    so plain same-thread ordering via std::atomic_signal_fence suffices —
///    no cross-thread synchronization, no locks, no allocation;
///  - labels must point at static strings (same contract as the Recorder's
///    span names), so the handler can stash the pointer and the exporter
///    can read it later without lifetime questions;
///  - push writes the label slot *before* publishing the new depth, and the
///    handler reads depth first, so a sample taken mid-push sees either the
///    old phase or the complete new one, never a torn entry.
///
/// Overflow past kMaxPhaseDepth keeps counting depth but stops storing
/// labels; samples taken there attribute to the deepest stored label, and
/// pops unwind symmetrically. State is all trivially-initializable, so the
/// thread_local lives in static TLS and touching it from a signal handler
/// never allocates.
inline constexpr int kMaxPhaseDepth = 16;

struct ThreadPhaseState {
  const char* labels[kMaxPhaseDepth] = {};
  std::atomic<std::uint64_t> rid{0};
  std::atomic<int> depth{0};
};

inline ThreadPhaseState& thread_phase_state() noexcept {
  thread_local ThreadPhaseState state;
  return state;
}

inline void push_phase(const char* label) noexcept {
  ThreadPhaseState& s = thread_phase_state();
  const int d = s.depth.load(std::memory_order_relaxed);
  if (d >= 0 && d < kMaxPhaseDepth) s.labels[d] = label;
  std::atomic_signal_fence(std::memory_order_release);
  s.depth.store(d + 1, std::memory_order_relaxed);
}

inline void pop_phase() noexcept {
  ThreadPhaseState& s = thread_phase_state();
  const int d = s.depth.load(std::memory_order_relaxed);
  if (d > 0) s.depth.store(d - 1, std::memory_order_relaxed);
}

/// The innermost phase label of the calling thread (nullptr when outside
/// every phase). Async-signal-safe; this is what the SIGPROF handler calls.
inline const char* current_phase() noexcept {
  ThreadPhaseState& s = thread_phase_state();
  int d = s.depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  if (d <= 0) return nullptr;
  if (d > kMaxPhaseDepth) d = kMaxPhaseDepth;
  return s.labels[d - 1];
}

inline void set_rid(std::uint64_t rid) noexcept {
  thread_phase_state().rid.store(rid, std::memory_order_relaxed);
}

inline std::uint64_t current_rid() noexcept {
  return thread_phase_state().rid.load(std::memory_order_relaxed);
}

/// RAII phase label. Unconditional and allocation-free (two TLS stores), so
/// it is safe to put directly in solver hot paths regardless of whether a
/// profiler, a Recorder or neither is attached — it consumes no RNG and
/// never branches on observability state, preserving the bitwise-identical
/// output contract.
class PhaseScope {
 public:
  explicit PhaseScope(const char* label) noexcept { push_phase(label); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope() { pop_phase(); }
};

/// RAII request-id attribution for the calling thread; restores the
/// previous rid on exit so nested scopes (retry paths, inline sub-solves)
/// compose.
class RidScope {
 public:
  explicit RidScope(std::uint64_t rid) noexcept : saved_(current_rid()) {
    set_rid(rid);
  }
  RidScope(const RidScope&) = delete;
  RidScope& operator=(const RidScope&) = delete;
  ~RidScope() { set_rid(saved_); }

 private:
  std::uint64_t saved_;
};

}  // namespace qulrb::obs::prof
