#pragma once

#include <cstdint>
#include <vector>

#include "classical/partition.hpp"
#include "classical/proactlb.hpp"
#include "lrp/problem.hpp"

namespace qulrb::lrp {

/// Rebalancing solution in the paper's output format (Appendix B, Table VII):
/// an M x M matrix where entry (i, j) is the number of tasks residing on
/// process i that originated on process j. The diagonal holds retained tasks;
/// column j always sums to the original task count of process j ("no task is
/// lost"). Migrated tasks keep their origin's per-task load.
class MigrationPlan {
 public:
  explicit MigrationPlan(std::size_t num_processes);

  /// Plan that migrates nothing: diag(i) = n_i.
  static MigrationPlan identity(const LrpProblem& problem);

  /// Build from a from-scratch partitioning: bin b becomes process b's new
  /// task set (the naive bin-to-process mapping Greedy/KK use, which is what
  /// makes them migrate ~N(M-1)/M tasks).
  static MigrationPlan from_partition(const LrpProblem& problem,
                                      const classical::PartitionResult& partition);

  /// Build from a ProactLB transfer list.
  static MigrationPlan from_transfers(const LrpProblem& problem,
                                      const std::vector<classical::Transfer>& transfers);

  std::size_t num_processes() const noexcept { return m_; }

  std::int64_t count(std::size_t to, std::size_t from) const {
    return x_.at(to * m_ + from);
  }
  void set_count(std::size_t to, std::size_t from, std::int64_t value) {
    x_.at(to * m_ + from) = value;
  }
  void add_count(std::size_t to, std::size_t from, std::int64_t delta) {
    x_.at(to * m_ + from) += delta;
  }

  /// Throws InvalidArgument when the plan is inconsistent with the problem
  /// (negative entries, column sums != origin task counts).
  void validate(const LrpProblem& problem) const;
  bool is_valid(const LrpProblem& problem) const noexcept;

  /// Total number of migrated tasks (off-diagonal sum).
  std::int64_t total_migrated() const noexcept;
  /// Tasks leaving process j (column j minus the diagonal).
  std::int64_t migrated_from(std::size_t j) const;
  /// Tasks arriving at process i (row i minus the diagonal).
  std::int64_t migrated_to(std::size_t i) const;

  /// New per-process loads L'_i = sum_j w_j * x(i, j).
  std::vector<double> new_loads(const LrpProblem& problem) const;
  /// Tasks now hosted by process i (row sum).
  std::int64_t tasks_hosted(std::size_t i) const;

 private:
  std::size_t m_;
  std::vector<std::int64_t> x_;  // row-major: x_[to * m_ + from]
};

}  // namespace qulrb::lrp
