#pragma once

#include <cstdint>
#include <vector>

namespace qulrb::lrp {

/// Load Rebalancing Problem instance (Aggarwal et al. 2006, in the paper's
/// task-parallel setting): M processes, process i initially holds
/// `num_tasks[i]` tasks that each cost `task_load[i]` (uniform load per
/// process — the paper's experimental assumption; different processes may
/// have very different task costs, which is where the imbalance comes from).
class LrpProblem {
 public:
  /// General constructor: per-process task load w_i and count n_i.
  LrpProblem(std::vector<double> task_load, std::vector<std::int64_t> num_tasks);

  /// Paper setting: every process holds exactly n tasks.
  static LrpProblem uniform(std::vector<double> task_load, std::int64_t tasks_per_process);

  std::size_t num_processes() const noexcept { return task_load_.size(); }
  std::int64_t tasks_on(std::size_t i) const { return num_tasks_.at(i); }
  double task_load(std::size_t i) const { return task_load_.at(i); }

  const std::vector<double>& task_loads() const noexcept { return task_load_; }
  const std::vector<std::int64_t>& task_counts() const noexcept { return num_tasks_; }

  /// True when every process holds the same number of tasks (required by the
  /// paper's CQM formulations).
  bool has_equal_task_counts() const noexcept;

  double load(std::size_t i) const {
    return task_load_.at(i) * static_cast<double>(num_tasks_.at(i));
  }
  std::int64_t total_tasks() const noexcept;
  double total_load() const noexcept;
  double average_load() const noexcept;   ///< L_avg
  double max_load() const noexcept;       ///< L_max
  /// R_imb = (L_max - L_avg) / L_avg  (Menon & Kale 2013). 0 for empty/zero.
  double imbalance_ratio() const noexcept;

  /// Flattened task list (item index -> load), grouped by origin process in
  /// process order; used by the partition-based classical baselines.
  std::vector<double> flatten_tasks() const;
  /// Origin process of flattened item index t.
  std::size_t origin_of(std::size_t item_index) const;

 private:
  std::vector<double> task_load_;
  std::vector<std::int64_t> num_tasks_;
};

}  // namespace qulrb::lrp
