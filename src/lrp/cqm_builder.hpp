#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lrp/plan.hpp"
#include "lrp/problem.hpp"
#include "model/cqm.hpp"

namespace qulrb::lrp {

/// The paper's two CQM formulations of the LRP.
enum class CqmVariant {
  /// Q_CQM1: qubit-reduced. Diagonal counts x_{j,j} are inferred from the
  /// off-diagonal outflow, leaving (M-1)^2 * (floor(log2 n) + 1) binary
  /// variables per the paper's formula; every constraint becomes an
  /// inequality.
  kReduced,
  /// Q_CQM2: full. All M^2 counts are encoded, M equality ("no task lost")
  /// constraints plus M + 1 inequalities; M^2 * (floor(log2 n) + 1) vars.
  kFull,
};

const char* to_string(CqmVariant variant);

struct CqmBuildOptions {
  /// Use the paper's coefficient set (default) or plain binary (ablation).
  bool use_paper_coefficient_set = true;
};

/// A built LRP CQM plus the bookkeeping needed to decode solver samples back
/// into migration plans.
///
/// Extension over the paper: per-process task counts need not be equal. Each
/// source column j gets its own coefficient set C_j built from n_j, so the
/// model stays exact for the unequal post-migration states that arise in
/// periodic (dynamic) rebalancing.
class LrpCqm {
 public:
  LrpCqm(const LrpProblem& problem, CqmVariant variant, std::int64_t k,
         const CqmBuildOptions& options = {});

  const model::CqmModel& cqm() const noexcept { return cqm_; }
  CqmVariant variant() const noexcept { return variant_; }
  std::int64_t k() const noexcept { return k_; }

  /// Coefficient set used for counts whose *source* is process j (empty when
  /// process j holds no tasks).
  std::span<const std::int64_t> coefficients(std::size_t source) const;

  std::size_t num_processes() const noexcept { return m_; }
  std::int64_t tasks_on(std::size_t j) const { return counts_.at(j); }
  std::size_t num_binary_variables() const noexcept { return cqm_.num_variables(); }

  /// Variable id of bit l of count x_{to,from}. For kReduced, to == from is
  /// invalid (the diagonal is inferred); sources with zero tasks have no bits.
  model::VarId var(std::size_t to, std::size_t from, std::size_t bit) const;

  /// Number of bits encoding count x_{*,from}.
  std::size_t bits_for_source(std::size_t from) const {
    return coeffs_.at(from).size();
  }

  /// Decode a solver state into an M x M count matrix; for kReduced the
  /// diagonal is filled in as n_j - outflow_j (which may be negative if the
  /// state violates the outflow constraints — validate the plan after).
  MigrationPlan decode(std::span<const std::uint8_t> state) const;

  /// Re-point the built model at new task loads without rebuilding it. Valid
  /// when `problem` has the same topology as the build-time instance: same
  /// task counts (hence same variables and coefficient sets) and the same
  /// set of zero-load processes (hence the same sparsity pattern). Only the
  /// objective groups and capacity constraints depend on the loads — their
  /// coefficients, constants, and rhs are rewritten in place, patching the
  /// model's CSR caches without rebuilding them. The load-independent
  /// conservation / outflow / migration-bound constraints are untouched.
  /// Returns false, with the model unchanged, when the topology differs
  /// (callers should fall back to a cold build).
  bool retarget(const LrpProblem& problem);

  /// Predicted qubit counts from Table I (the paper's stated formulas, for
  /// the equal-n setting).
  static std::size_t predicted_qubits(CqmVariant variant, std::size_t num_processes,
                                      std::int64_t tasks_per_process);

 private:
  static constexpr model::VarId kInvalid = static_cast<model::VarId>(-1);

  /// Terms of the new load L'_i of process i, appended to `expr` (uses the
  /// current loads_).
  void append_load_terms(model::LinearExpr& expr, std::size_t i) const;

  model::CqmModel cqm_;
  CqmVariant variant_;
  std::int64_t k_;
  std::size_t m_;
  std::vector<std::int64_t> counts_;                ///< n_j per process
  std::vector<double> loads_;                       ///< w_j per process
  std::vector<std::vector<std::int64_t>> coeffs_;   ///< C_j per source
  std::vector<model::VarId> pair_base_;             ///< first bit of (to, from)
  std::size_t capacity_base_ = 0;                   ///< index of capacity[0]
};

/// Convenience wrapper.
LrpCqm build_lrp_cqm(const LrpProblem& problem, CqmVariant variant, std::int64_t k,
                     const CqmBuildOptions& options = {});

}  // namespace qulrb::lrp
