#pragma once

#include <memory>
#include <string>
#include <vector>

#include "classical/proactlb.hpp"
#include "lrp/metrics.hpp"
#include "lrp/plan.hpp"
#include "lrp/problem.hpp"

namespace qulrb::lrp {

/// Outcome of one rebalancing run.
struct SolveOutput {
  explicit SolveOutput(MigrationPlan p) : plan(std::move(p)) {}

  MigrationPlan plan;
  double cpu_ms = 0.0;   ///< classical algorithm / solver time
  double qpu_ms = 0.0;   ///< simulated QPU access share (quantum methods only)
  bool feasible = true;  ///< false when the solver could not satisfy its constraints
  std::string notes;
};

/// Common interface for every rebalancing method compared in the paper.
class RebalanceSolver {
 public:
  virtual ~RebalanceSolver() = default;
  virtual std::string name() const = 0;
  virtual SolveOutput solve(const LrpProblem& problem) = 0;
};

/// Greedy / LPT baseline: flattens all tasks, re-partitions from scratch with
/// Graham's rule, maps bin b to process b. Balance-optimal in practice but
/// placement-oblivious, so ~N(M-1)/M tasks end up migrating.
class GreedySolver final : public RebalanceSolver {
 public:
  std::string name() const override { return "Greedy"; }
  SolveOutput solve(const LrpProblem& problem) override;
};

/// Karmarkar-Karp baseline, same placement-oblivious protocol as Greedy.
class KkSolver final : public RebalanceSolver {
 public:
  std::string name() const override { return "KK"; }
  SolveOutput solve(const LrpProblem& problem) override;
};

/// ProactLB baseline (placement-aware, migration-frugal).
class ProactLbSolver final : public RebalanceSolver {
 public:
  explicit ProactLbSolver(classical::ProactLbParams params = {}) : params_(params) {}
  std::string name() const override { return "ProactLB"; }
  SolveOutput solve(const LrpProblem& problem) override;

 private:
  classical::ProactLbParams params_;
};

/// Convenience: run a solver and evaluate its plan in one call.
struct SolverReport {
  std::string name;
  SolveOutput output;
  RebalanceMetrics metrics;
};

SolverReport run_and_evaluate(RebalanceSolver& solver, const LrpProblem& problem);

}  // namespace qulrb::lrp
