#pragma once

#include <cstdint>

#include "lrp/plan.hpp"
#include "lrp/problem.hpp"

namespace qulrb::lrp {

/// The paper's evaluation metrics for one rebalancing solution.
struct RebalanceMetrics {
  double imbalance_before = 0.0;   ///< R_imb of the input
  double imbalance_after = 0.0;    ///< R_imb of the plan's new loads
  double max_load_before = 0.0;    ///< L_max baseline
  double max_load_after = 0.0;     ///< L_max after rebalancing
  /// speedup = L_max(before) / L_max(after); 1.0 when nothing changes.
  double speedup = 1.0;
  std::int64_t total_migrated = 0;
  double migrated_per_process = 0.0;  ///< total_migrated / M
};

RebalanceMetrics evaluate_plan(const LrpProblem& problem, const MigrationPlan& plan);

/// R_imb of an explicit load vector (helper shared with the runtime sim).
double imbalance_ratio(const std::vector<double>& loads);

}  // namespace qulrb::lrp
