#pragma once

#include <cstdint>

#include "lrp/plan.hpp"
#include "lrp/problem.hpp"

namespace qulrb::lrp {

/// The paper's evaluation metrics for one rebalancing solution.
struct RebalanceMetrics {
  double imbalance_before = 0.0;   ///< R_imb of the input
  double imbalance_after = 0.0;    ///< R_imb of the plan's new loads
  double max_load_before = 0.0;    ///< L_max baseline
  double max_load_after = 0.0;     ///< L_max after rebalancing
  /// speedup = L_max(before) / L_max(after); 1.0 when nothing changes.
  double speedup = 1.0;
  std::int64_t total_migrated = 0;
  double migrated_per_process = 0.0;  ///< total_migrated / M
};

RebalanceMetrics evaluate_plan(const LrpProblem& problem, const MigrationPlan& plan);

/// R_imb of an explicit load vector (helper shared with the runtime sim).
double imbalance_ratio(const std::vector<double>& loads);

/// Objective threshold for the CQM formulations that guarantees
/// R_imb <= r_imb_target. Both Q_CQM1 and Q_CQM2 minimize
/// sum_i (L'_i - L_avg)^2, so any state with objective E has every process
/// within sqrt(E) of L_avg, i.e. L_max <= L_avg + sqrt(E); demanding
/// E <= (r * L_avg)^2 therefore bounds R_imb = L_max/L_avg - 1 by r.
/// (Conservative: the converse does not hold.) Feeds
/// obs::ConvergenceConfig::target_objective for time-to-target-quality.
double objective_target_for_imbalance(const LrpProblem& problem,
                                      double r_imb_target);

}  // namespace qulrb::lrp
