#include "lrp/iterative.hpp"

#include <cmath>

#include "lrp/metrics.hpp"
#include "util/rng.hpp"

namespace qulrb::lrp {

LrpProblem IterativeRebalancer::apply_and_uniformize(const LrpProblem& problem,
                                                     const MigrationPlan& plan) {
  plan.validate(problem);
  const std::vector<double> loads = plan.new_loads(problem);
  const std::size_t m = problem.num_processes();
  std::vector<double> task_load(m, 0.0);
  std::vector<std::int64_t> num_tasks(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    num_tasks[i] = plan.tasks_hosted(i);
    task_load[i] =
        num_tasks[i] > 0 ? loads[i] / static_cast<double>(num_tasks[i]) : 0.0;
  }
  return LrpProblem(std::move(task_load), std::move(num_tasks));
}

IterativeResult IterativeRebalancer::run(LrpProblem problem,
                                         std::size_t epochs) const {
  IterativeResult result;
  util::Rng rng(drift_.seed);

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    const SolveOutput output = solver_->solve(problem);
    output.plan.validate(problem);
    const RebalanceMetrics metrics = evaluate_plan(problem, output.plan);

    result.epochs.push_back({metrics.imbalance_before, metrics.imbalance_after,
                             metrics.speedup, metrics.total_migrated});
    result.total_migrated += metrics.total_migrated;

    LrpProblem next = apply_and_uniformize(problem, output.plan);

    // Cost drift: the load predictor is wrong again by the next epoch.
    std::vector<double> drifted(next.num_processes());
    for (std::size_t i = 0; i < next.num_processes(); ++i) {
      drifted[i] =
          next.task_load(i) * std::exp(drift_.relative_sigma * rng.next_normal());
    }
    problem = LrpProblem(std::move(drifted),
                         std::vector<std::int64_t>(next.task_counts()));
  }

  if (!result.epochs.empty()) {
    double sum = 0.0;
    for (const auto& e : result.epochs) sum += e.imbalance_after;
    result.mean_imbalance_after = sum / static_cast<double>(result.epochs.size());
  }
  return result;
}

}  // namespace qulrb::lrp
