#include "lrp/solver.hpp"

#include "classical/greedy.hpp"
#include "classical/kk.hpp"
#include "util/timer.hpp"

namespace qulrb::lrp {

SolveOutput GreedySolver::solve(const LrpProblem& problem) {
  util::WallTimer timer;
  // An exactly balanced instance cannot be improved; the from-scratch
  // partitioning below would still permute tasks across processes for
  // nothing, so short-circuit to the migration-free plan.
  if (problem.imbalance_ratio() == 0.0) {
    SolveOutput out(MigrationPlan::identity(problem));
    out.cpu_ms = timer.elapsed_ms();
    return out;
  }
  const std::vector<double> items = problem.flatten_tasks();
  const auto partition = classical::greedy_partition(items, problem.num_processes());
  SolveOutput out(MigrationPlan::from_partition(problem, partition));
  out.cpu_ms = timer.elapsed_ms();
  return out;
}

SolveOutput KkSolver::solve(const LrpProblem& problem) {
  util::WallTimer timer;
  if (problem.imbalance_ratio() == 0.0) {
    SolveOutput out(MigrationPlan::identity(problem));
    out.cpu_ms = timer.elapsed_ms();
    return out;
  }
  const std::vector<double> items = problem.flatten_tasks();
  const auto partition = classical::kk_partition(items, problem.num_processes());
  SolveOutput out(MigrationPlan::from_partition(problem, partition));
  out.cpu_ms = timer.elapsed_ms();
  return out;
}

SolveOutput ProactLbSolver::solve(const LrpProblem& problem) {
  util::WallTimer timer;
  classical::UniformLoads input{problem.task_loads(), problem.task_counts()};
  const auto result = classical::proactlb(input, params_);
  SolveOutput out(MigrationPlan::from_transfers(problem, result.transfers));
  out.cpu_ms = timer.elapsed_ms();
  return out;
}

SolverReport run_and_evaluate(RebalanceSolver& solver, const LrpProblem& problem) {
  SolverReport report{solver.name(), solver.solve(problem), {}};
  report.output.plan.validate(problem);
  report.metrics = evaluate_plan(problem, report.output.plan);
  return report;
}

}  // namespace qulrb::lrp
