#include "lrp/plan.hpp"

#include <string>

#include "util/error.hpp"

namespace qulrb::lrp {

MigrationPlan::MigrationPlan(std::size_t num_processes)
    : m_(num_processes), x_(num_processes * num_processes, 0) {
  util::require(num_processes > 0, "MigrationPlan: need at least one process");
}

MigrationPlan MigrationPlan::identity(const LrpProblem& problem) {
  MigrationPlan plan(problem.num_processes());
  for (std::size_t i = 0; i < problem.num_processes(); ++i) {
    plan.set_count(i, i, problem.tasks_on(i));
  }
  return plan;
}

MigrationPlan MigrationPlan::from_partition(
    const LrpProblem& problem, const classical::PartitionResult& partition) {
  util::require(partition.bins.size() == problem.num_processes(),
                "MigrationPlan::from_partition: bin count != process count");
  MigrationPlan plan(problem.num_processes());
  for (std::size_t b = 0; b < partition.bins.size(); ++b) {
    for (std::size_t item : partition.bins[b]) {
      plan.add_count(b, problem.origin_of(item), 1);
    }
  }
  return plan;
}

MigrationPlan MigrationPlan::from_transfers(
    const LrpProblem& problem, const std::vector<classical::Transfer>& transfers) {
  MigrationPlan plan = identity(problem);
  for (const auto& t : transfers) {
    util::require(t.from < plan.num_processes() && t.to < plan.num_processes(),
                  "MigrationPlan::from_transfers: process index out of range");
    util::require(t.count >= 0, "MigrationPlan::from_transfers: negative count");
    plan.add_count(t.from, t.from, -t.count);
    plan.add_count(t.to, t.from, t.count);
  }
  return plan;
}

void MigrationPlan::validate(const LrpProblem& problem) const {
  util::require(problem.num_processes() == m_,
                "MigrationPlan::validate: process count mismatch");
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < m_; ++j) {
      util::require(count(i, j) >= 0,
                    "MigrationPlan::validate: negative entry at (" +
                        std::to_string(i) + "," + std::to_string(j) + ")");
    }
  }
  for (std::size_t j = 0; j < m_; ++j) {
    std::int64_t column = 0;
    for (std::size_t i = 0; i < m_; ++i) column += count(i, j);
    util::require(column == problem.tasks_on(j),
                  "MigrationPlan::validate: column " + std::to_string(j) +
                      " sums to " + std::to_string(column) + ", expected " +
                      std::to_string(problem.tasks_on(j)) + " (task lost/duplicated)");
  }
}

bool MigrationPlan::is_valid(const LrpProblem& problem) const noexcept {
  try {
    validate(problem);
    return true;
  } catch (const util::InvalidArgument&) {
    return false;
  }
}

std::int64_t MigrationPlan::total_migrated() const noexcept {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < m_; ++j) {
      if (i != j) total += x_[i * m_ + j];
    }
  }
  return total;
}

std::int64_t MigrationPlan::migrated_from(std::size_t j) const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < m_; ++i) {
    if (i != j) total += count(i, j);
  }
  return total;
}

std::int64_t MigrationPlan::migrated_to(std::size_t i) const {
  std::int64_t total = 0;
  for (std::size_t j = 0; j < m_; ++j) {
    if (i != j) total += count(i, j);
  }
  return total;
}

std::vector<double> MigrationPlan::new_loads(const LrpProblem& problem) const {
  util::require(problem.num_processes() == m_,
                "MigrationPlan::new_loads: process count mismatch");
  std::vector<double> loads(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < m_; ++j) {
      loads[i] += problem.task_load(j) * static_cast<double>(count(i, j));
    }
  }
  return loads;
}

std::int64_t MigrationPlan::tasks_hosted(std::size_t i) const {
  std::int64_t total = 0;
  for (std::size_t j = 0; j < m_; ++j) total += count(i, j);
  return total;
}

}  // namespace qulrb::lrp
