#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lrp/solver.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_context.hpp"

namespace qulrb::lrp {

/// Declarative solver selection, used by the CLI and by configuration-driven
/// experiments. `k < 0` requests automatic selection: k1 (ProactLB's count)
/// for frugal methods, k2 (Greedy's count) when `relaxed_k` is set.
struct SolverSpec {
  std::string name;        ///< greedy | kk | proactlb | qcqm1 | qcqm2 | qubo | qaoa
  std::int64_t k = -1;     ///< migration bound for the quantum methods
  bool relaxed_k = false;  ///< auto-k picks k2 instead of k1
  std::uint64_t seed = 2024;
  std::size_t sweeps = 2000;     ///< anneal budget (quantum methods)
  std::size_t restarts = 3;
  /// Optional observability sinks, threaded into the sampler-backed solvers
  /// (null for the classical heuristics, which have nothing to record).
  obs::Recorder* recorder = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Request-scoped trace context (request id + shared track allocation);
  /// forwarded to the hybrid solver alongside `recorder`.
  obs::TraceContext trace;
};

/// All names accepted by make_solver.
std::vector<std::string> solver_names();

/// Instantiate a solver by name. `problem` is needed when k is automatic.
/// Throws InvalidArgument for unknown names.
std::unique_ptr<RebalanceSolver> make_solver(const SolverSpec& spec,
                                             const LrpProblem& problem);

}  // namespace qulrb::lrp
