#pragma once

#include <cstdint>

#include "lrp/problem.hpp"

namespace qulrb::lrp {

/// The paper's protocol for choosing the migration bound k: run the classical
/// methods first, then bound the quantum methods by their migration counts.
struct KSelection {
  std::int64_t k1 = 0;  ///< ProactLB's migration count (the frugal bound)
  std::int64_t k2 = 0;  ///< Greedy/KK's migration count (the relaxed bound)
};

KSelection select_k(const LrpProblem& problem);

}  // namespace qulrb::lrp
