#include "lrp/quantum_solver.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/timer.hpp"

namespace qulrb::lrp {

std::string QcqmSolver::name() const {
  return std::string(to_string(options_.variant));
}

bool repair_plan(const LrpProblem& problem, MigrationPlan& plan) {
  bool changed = false;
  const std::size_t m = problem.num_processes();

  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (plan.count(i, j) < 0) {
        plan.set_count(i, j, 0);
        changed = true;
      }
    }
  }

  for (std::size_t j = 0; j < m; ++j) {
    std::int64_t off_diag = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (i != j) off_diag += plan.count(i, j);
    }
    const std::int64_t target_diag = problem.tasks_on(j) - off_diag;
    if (target_diag >= 0) {
      if (plan.count(j, j) != target_diag) {
        plan.set_count(j, j, target_diag);
        changed = true;
      }
      continue;
    }
    // Too many tasks emigrated on paper: return the excess to the diagonal,
    // trimming the largest recipients first.
    std::int64_t excess = -target_diag;
    plan.set_count(j, j, 0);
    changed = true;
    while (excess > 0) {
      std::size_t biggest = m;
      std::int64_t biggest_count = 0;
      for (std::size_t i = 0; i < m; ++i) {
        if (i != j && plan.count(i, j) > biggest_count) {
          biggest_count = plan.count(i, j);
          biggest = i;
        }
      }
      if (biggest == m) break;  // nothing left to trim (shouldn't happen)
      const std::int64_t take = std::min(excess, biggest_count);
      plan.add_count(biggest, j, -take);
      excess -= take;
    }
  }
  return changed;
}

SolveOutput solve_lrp_cqm(const LrpProblem& problem, const LrpCqm& lrp_cqm,
                          const anneal::HybridSolverParams& hybrid_params,
                          QcqmDiagnostics* diagnostics) {
  util::WallTimer timer;

  const anneal::HybridCqmSolver hybrid(hybrid_params);
  const anneal::HybridSolveResult result = hybrid.solve(lrp_cqm.cqm());

  obs::Recorder::Span decode_span(hybrid_params.recorder, "decode-and-repair",
                                  "lrp", 0);
  MigrationPlan plan = lrp_cqm.decode(result.best.state);
  const bool repaired = repair_plan(problem, plan);
  decode_span.close();
  if (repaired && hybrid_params.metrics != nullptr) {
    hybrid_params.metrics
        ->counter("qulrb_solver_plans_repaired_total",
                  "Decoded plans needing a conservation repair")
        .inc();
  }

  if (diagnostics != nullptr) {
    diagnostics->num_variables = lrp_cqm.num_binary_variables();
    diagnostics->num_constraints = lrp_cqm.cqm().num_constraints();
    diagnostics->objective = result.best.energy;
    diagnostics->violation = result.best.violation;
    diagnostics->sample_feasible = result.best.feasible;
    diagnostics->plan_repaired = repaired;
    diagnostics->hybrid_stats = result.stats;
    diagnostics->best_state = result.best.state;
  }

  SolveOutput out(std::move(plan));
  out.cpu_ms = timer.elapsed_ms();
  out.qpu_ms = result.stats.simulated_qpu_ms;
  out.feasible = result.best.feasible;
  if (repaired) out.notes = "plan repaired after decode";
  return out;
}

SolveOutput QcqmSolver::solve(const LrpProblem& problem) {
  util::WallTimer timer;

  obs::Recorder::Span build_span(options_.hybrid.recorder, "cqm-build", "lrp", 0);
  const LrpCqm lrp_cqm(problem, options_.variant, options_.k, options_.build);
  build_span.close();
  QcqmDiagnostics diag;
  SolveOutput out = solve_lrp_cqm(problem, lrp_cqm, options_.hybrid, &diag);
  diagnostics_ = diag;
  out.cpu_ms = timer.elapsed_ms();  // include the model build
  return out;
}

}  // namespace qulrb::lrp
