#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "anneal/hybrid.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/solver.hpp"

namespace qulrb::lrp {

struct QcqmOptions {
  CqmVariant variant = CqmVariant::kReduced;
  std::int64_t k = 0;  ///< migration bound
  CqmBuildOptions build;
  anneal::HybridSolverParams hybrid;
};

/// Extra diagnostics for the quantum-path solver.
struct QcqmDiagnostics {
  std::size_t num_variables = 0;   ///< logical qubits of the CQM
  std::size_t num_constraints = 0;
  double objective = 0.0;          ///< CQM objective of the returned sample
  double violation = 0.0;
  bool sample_feasible = false;
  bool plan_repaired = false;      ///< decode needed a conservation repair
  anneal::HybridSolveStats hybrid_stats;
  /// Raw best CQM state (pre-decode) — session caches keep it as the
  /// warm-start hint for the next solve on the same topology.
  model::State best_state;
};

/// The paper's hybrid classical-quantum method (Q_CQM1 / Q_CQM2 with a bound
/// k): builds the CQM, sends it to the hybrid solver (our D-Wave Leap
/// stand-in), decodes the best sample into a migration plan, and — mirroring
/// how a production pipeline must treat a heuristic sampler — repairs any
/// residual conservation violation so the returned plan is always valid.
class QcqmSolver final : public RebalanceSolver {
 public:
  explicit QcqmSolver(QcqmOptions options) : options_(std::move(options)) {}

  std::string name() const override;
  SolveOutput solve(const LrpProblem& problem) override;

  /// Diagnostics of the most recent solve() call.
  const std::optional<QcqmDiagnostics>& last_diagnostics() const noexcept {
    return diagnostics_;
  }

  const QcqmOptions& options() const noexcept { return options_; }

 private:
  QcqmOptions options_;
  std::optional<QcqmDiagnostics> diagnostics_;
};

/// Make a plan consistent with the problem: clamp negative entries and adjust
/// diagonals so every column sums to its origin count; if a diagonal would go
/// negative, trims that column's largest off-diagonal entries. Returns true
/// when anything was changed.
bool repair_plan(const LrpProblem& problem, MigrationPlan& plan);

/// Core of QcqmSolver::solve against a caller-owned model: run the hybrid
/// solver on `lrp_cqm`, decode, repair, report. `lrp_cqm` must have been
/// built (or retargeted) for exactly `problem` — this is the entry point the
/// service's session cache uses to reuse one built model across requests.
SolveOutput solve_lrp_cqm(const LrpProblem& problem, const LrpCqm& lrp_cqm,
                          const anneal::HybridSolverParams& hybrid_params,
                          QcqmDiagnostics* diagnostics = nullptr);

}  // namespace qulrb::lrp
