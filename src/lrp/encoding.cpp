#include "lrp/encoding.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/math.hpp"

namespace qulrb::lrp {

std::vector<std::int64_t> coefficient_set(std::int64_t n) {
  util::require(n >= 1, "coefficient_set: n must be >= 1");
  const int f = util::ilog2_floor(static_cast<std::uint64_t>(n));
  std::vector<std::int64_t> coeffs;
  coeffs.reserve(static_cast<std::size_t>(f) + 1);
  // Powers 2^0 .. 2^(f-1); empty when n == 1.
  for (int l = 0; l < f; ++l) coeffs.push_back(std::int64_t{1} << l);
  // Residual coefficient so the set sums to exactly n.
  coeffs.push_back(n - (std::int64_t{1} << f) + 1);
  return coeffs;
}

std::size_t bits_per_count(std::int64_t n) {
  util::require(n >= 1, "bits_per_count: n must be >= 1");
  return static_cast<std::size_t>(util::ilog2_floor(static_cast<std::uint64_t>(n))) + 1;
}

std::vector<std::int64_t> standard_binary_set(std::int64_t n) {
  util::require(n >= 1, "standard_binary_set: n must be >= 1");
  std::vector<std::int64_t> coeffs;
  std::int64_t remaining = n;
  std::int64_t bit = 1;
  while (remaining > 0) {
    const std::int64_t value = std::min(bit, remaining);
    coeffs.push_back(value);
    remaining -= value;
    bit <<= 1;
  }
  return coeffs;
}

std::int64_t decode_count(std::span<const std::uint8_t> bits,
                          std::span<const std::int64_t> coeffs) {
  util::require(bits.size() == coeffs.size(), "decode_count: size mismatch");
  std::int64_t value = 0;
  for (std::size_t l = 0; l < bits.size(); ++l) {
    if (bits[l]) value += coeffs[l];
  }
  return value;
}

std::vector<std::uint8_t> encode_count(std::int64_t count,
                                       std::span<const std::int64_t> coeffs) {
  const std::int64_t total = std::accumulate(coeffs.begin(), coeffs.end(), std::int64_t{0});
  util::require(count >= 0 && count <= total,
                "encode_count: count outside representable range");

  std::vector<std::uint8_t> bits(coeffs.size(), 0);
  std::int64_t remaining = count;
  // Largest coefficients first: for both the paper set and the standard set
  // this greedy choice always succeeds, because after removing the largest
  // feasible coefficient the remaining prefix covers a contiguous range.
  std::vector<std::size_t> order(coeffs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return coeffs[a] > coeffs[b];
  });
  for (std::size_t l : order) {
    if (remaining >= coeffs[l]) {
      bits[l] = 1;
      remaining -= coeffs[l];
    }
  }
  util::ensure(remaining == 0, "encode_count: greedy encoding failed");
  return bits;
}

bool covers_range(std::span<const std::int64_t> coeffs, std::int64_t n) {
  // Subset-sum reachability over [0, n] with a bitset-like DP.
  std::vector<std::uint8_t> reachable(static_cast<std::size_t>(n) + 1, 0);
  reachable[0] = 1;
  for (std::int64_t c : coeffs) {
    if (c < 0) return false;
    for (std::int64_t v = n; v >= c; --v) {
      if (reachable[static_cast<std::size_t>(v - c)]) {
        reachable[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  return std::all_of(reachable.begin(), reachable.end(),
                     [](std::uint8_t r) { return r == 1; });
}

}  // namespace qulrb::lrp
