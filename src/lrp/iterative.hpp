#pragma once

#include <cstdint>
#include <vector>

#include "lrp/problem.hpp"
#include "lrp/solver.hpp"

namespace qulrb::lrp {

/// Epoch-level drift of per-process task costs: after each rebalancing epoch,
/// every process's (uniformized) task cost is multiplied by
/// exp(sigma * N(0,1)) — the "incorrect cost model" situation that motivates
/// *re*-balancing in the paper (sam(oa)^2's predictor drifting as the mesh
/// adapts).
struct DriftModel {
  double relative_sigma = 0.15;
  std::uint64_t seed = 1;
};

struct EpochReport {
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
  double speedup = 1.0;
  std::int64_t migrated = 0;
};

struct IterativeResult {
  std::vector<EpochReport> epochs;
  std::int64_t total_migrated = 0;
  double mean_imbalance_after = 0.0;
};

/// Periodic (dynamic) rebalancing loop: solve -> apply -> drift -> repeat.
///
/// After a plan is applied, a process hosts tasks of mixed origin; for the
/// next epoch the problem is re-uniformized (the paper's input format only
/// carries per-process uniform costs): process i's n'_i tasks each cost
/// L'_i / n'_i. This keeps every epoch a valid paper-style LRP instance while
/// carrying the aggregate load forward exactly.
class IterativeRebalancer {
 public:
  IterativeRebalancer(RebalanceSolver& solver, DriftModel drift)
      : solver_(&solver), drift_(drift) {}

  IterativeResult run(LrpProblem problem, std::size_t epochs) const;

  /// The re-uniformization step, exposed for tests: apply `plan` to `problem`
  /// and return the next epoch's uniform instance.
  static LrpProblem apply_and_uniformize(const LrpProblem& problem,
                                         const MigrationPlan& plan);

 private:
  RebalanceSolver* solver_;
  DriftModel drift_;
};

}  // namespace qulrb::lrp
