#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "anneal/sa.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/solver.hpp"
#include "model/cqm_to_qubo.hpp"

namespace qulrb::lrp {

struct QuboSolverOptions {
  CqmVariant variant = CqmVariant::kReduced;
  std::int64_t k = 0;
  model::PenaltyOptions penalty;  ///< slack bits by default (exact)
  anneal::SaParams sa;
};

struct QuboSolverDiagnostics {
  std::size_t qubo_variables = 0;
  std::size_t slack_variables = 0;
  double lambda_used = 0.0;
  bool sample_feasible = false;
  bool plan_repaired = false;
};

/// The fully-unconstrained path (the paper's qubo/ work-in-progress folder):
/// LRP -> CQM -> penalty QUBO (Glover et al.) -> plain simulated annealing.
/// Exact with slack bits, ancilla-free with unbalanced penalization. Best for
/// small/medium instances — the expanded QUBO materializes the dense
/// objective, unlike the structured CQM annealer.
class QuboAnnealSolver final : public RebalanceSolver {
 public:
  explicit QuboAnnealSolver(QuboSolverOptions options) : options_(std::move(options)) {}

  std::string name() const override { return "Q_QUBO(SA)"; }
  SolveOutput solve(const LrpProblem& problem) override;

  const std::optional<QuboSolverDiagnostics>& last_diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  QuboSolverOptions options_;
  std::optional<QuboSolverDiagnostics> diagnostics_;
};

}  // namespace qulrb::lrp
