#include "lrp/problem.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace qulrb::lrp {

LrpProblem::LrpProblem(std::vector<double> task_load,
                       std::vector<std::int64_t> num_tasks)
    : task_load_(std::move(task_load)), num_tasks_(std::move(num_tasks)) {
  util::require(task_load_.size() == num_tasks_.size(),
                "LrpProblem: task_load / num_tasks size mismatch");
  util::require(!task_load_.empty(), "LrpProblem: need at least one process");
  for (std::size_t i = 0; i < task_load_.size(); ++i) {
    util::require(task_load_[i] >= 0.0, "LrpProblem: negative task load");
    util::require(num_tasks_[i] >= 0, "LrpProblem: negative task count");
  }
}

LrpProblem LrpProblem::uniform(std::vector<double> task_load,
                               std::int64_t tasks_per_process) {
  util::require(tasks_per_process >= 0, "LrpProblem: negative tasks_per_process");
  std::vector<std::int64_t> counts(task_load.size(), tasks_per_process);
  return LrpProblem(std::move(task_load), std::move(counts));
}

bool LrpProblem::has_equal_task_counts() const noexcept {
  return std::all_of(num_tasks_.begin(), num_tasks_.end(),
                     [&](std::int64_t n) { return n == num_tasks_.front(); });
}

std::int64_t LrpProblem::total_tasks() const noexcept {
  std::int64_t total = 0;
  for (std::int64_t n : num_tasks_) total += n;
  return total;
}

double LrpProblem::total_load() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < task_load_.size(); ++i) total += load(i);
  return total;
}

double LrpProblem::average_load() const noexcept {
  return total_load() / static_cast<double>(num_processes());
}

double LrpProblem::max_load() const noexcept {
  double m = 0.0;
  for (std::size_t i = 0; i < task_load_.size(); ++i) m = std::max(m, load(i));
  return m;
}

double LrpProblem::imbalance_ratio() const noexcept {
  const double avg = average_load();
  if (avg <= 0.0) return 0.0;
  return (max_load() - avg) / avg;
}

std::vector<double> LrpProblem::flatten_tasks() const {
  std::vector<double> items;
  items.reserve(static_cast<std::size_t>(total_tasks()));
  for (std::size_t i = 0; i < num_processes(); ++i) {
    for (std::int64_t t = 0; t < num_tasks_[i]; ++t) items.push_back(task_load_[i]);
  }
  return items;
}

std::size_t LrpProblem::origin_of(std::size_t item_index) const {
  std::size_t cursor = item_index;
  for (std::size_t i = 0; i < num_processes(); ++i) {
    const auto n = static_cast<std::size_t>(num_tasks_[i]);
    if (cursor < n) return i;
    cursor -= n;
  }
  throw util::InvalidArgument("LrpProblem::origin_of: item index out of range");
}

}  // namespace qulrb::lrp
