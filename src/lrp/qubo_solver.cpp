#include "lrp/qubo_solver.hpp"

#include "lrp/quantum_solver.hpp"
#include "util/timer.hpp"

namespace qulrb::lrp {

SolveOutput QuboAnnealSolver::solve(const LrpProblem& problem) {
  util::WallTimer timer;

  const LrpCqm lrp_cqm(problem, options_.variant, options_.k);
  const model::QuboConversion conv =
      model::cqm_to_qubo(lrp_cqm.cqm(), options_.penalty);

  const anneal::SampleSet set = anneal::SimulatedAnnealer(options_.sa).sample(conv.qubo);

  // Best CQM-feasible read wins; fall back to the lowest-energy read.
  model::State projected(lrp_cqm.num_binary_variables(), 0);
  bool have_feasible = false;
  double best_objective = 0.0;
  double best_energy = 0.0;
  bool have_any = false;
  for (std::size_t s = 0; s < set.size(); ++s) {
    const model::State candidate = conv.project(set.at(s).state);
    const bool feasible = lrp_cqm.cqm().is_feasible(candidate, 1e-6);
    if (feasible) {
      const double objective = lrp_cqm.cqm().objective_value(candidate);
      if (!have_feasible || objective < best_objective) {
        have_feasible = true;
        best_objective = objective;
        projected = candidate;
      }
    } else if (!have_feasible) {
      if (!have_any || set.at(s).energy < best_energy) {
        have_any = true;
        best_energy = set.at(s).energy;
        projected = candidate;
      }
    }
  }

  MigrationPlan plan = lrp_cqm.decode(projected);
  const bool repaired = repair_plan(problem, plan);

  QuboSolverDiagnostics diag;
  diag.qubo_variables = conv.qubo.num_variables();
  diag.slack_variables = conv.num_slack_variables;
  diag.lambda_used = conv.lambda_used;
  diag.sample_feasible = have_feasible;
  diag.plan_repaired = repaired;
  diagnostics_ = diag;

  SolveOutput out(std::move(plan));
  out.cpu_ms = timer.elapsed_ms();
  out.feasible = have_feasible;
  if (repaired) out.notes = "plan repaired after decode";
  return out;
}

}  // namespace qulrb::lrp
