#include "lrp/kselect.hpp"

#include "lrp/solver.hpp"

namespace qulrb::lrp {

KSelection select_k(const LrpProblem& problem) {
  KSelection selection;
  ProactLbSolver proactlb;
  GreedySolver greedy;
  selection.k1 = proactlb.solve(problem).plan.total_migrated();
  selection.k2 = greedy.solve(problem).plan.total_migrated();
  return selection;
}

}  // namespace qulrb::lrp
