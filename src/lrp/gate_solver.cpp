#include "lrp/gate_solver.hpp"

#include "lrp/quantum_solver.hpp"
#include "util/timer.hpp"

namespace qulrb::lrp {

SolveOutput GateQaoaSolver::solve(const LrpProblem& problem) {
  util::WallTimer timer;

  const LrpCqm lrp_cqm(problem, options_.variant, options_.k);
  const model::QuboConversion conv =
      model::cqm_to_qubo(lrp_cqm.cqm(), options_.penalty);

  const quantum::QaoaSolver qaoa(options_.qaoa);
  const quantum::QaoaResult result = qaoa.solve_qubo(conv.qubo);

  // Pick the best *CQM-feasible* measured bitstring; the raw QUBO minimizer
  // can sit outside the feasible region when penalties are soft (the
  // unbalanced method trades exactness for qubit count).
  model::State projected = conv.project(result.best.state);
  {
    bool have_feasible = false;
    double best_objective = 0.0;
    for (std::size_t s = 0; s < result.samples.size(); ++s) {
      const model::State candidate = conv.project(result.samples.at(s).state);
      if (!lrp_cqm.cqm().is_feasible(candidate, 1e-6)) continue;
      const double objective = lrp_cqm.cqm().objective_value(candidate);
      if (!have_feasible || objective < best_objective) {
        have_feasible = true;
        best_objective = objective;
        projected = candidate;
      }
    }
  }
  MigrationPlan plan = lrp_cqm.decode(projected);
  const bool repaired = repair_plan(problem, plan);

  GateSolverDiagnostics diag;
  diag.num_qubits = conv.qubo.num_variables();
  diag.qaoa_expectation = result.expectation;
  diag.circuit_evaluations = result.circuit_evaluations;
  diag.sample_feasible = lrp_cqm.cqm().is_feasible(projected, 1e-6);
  diag.plan_repaired = repaired;
  diagnostics_ = diag;

  SolveOutput out(std::move(plan));
  out.cpu_ms = timer.elapsed_ms();
  out.feasible = diag.sample_feasible;
  if (repaired) out.notes = "plan repaired after decode";
  return out;
}

}  // namespace qulrb::lrp
