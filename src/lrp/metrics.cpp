#include "lrp/metrics.hpp"

#include <algorithm>

namespace qulrb::lrp {

double imbalance_ratio(const std::vector<double>& loads) {
  if (loads.empty()) return 0.0;
  double total = 0.0;
  double max_load = 0.0;
  for (double l : loads) {
    total += l;
    max_load = std::max(max_load, l);
  }
  const double avg = total / static_cast<double>(loads.size());
  if (avg <= 0.0) return 0.0;
  return (max_load - avg) / avg;
}

double objective_target_for_imbalance(const LrpProblem& problem,
                                      double r_imb_target) {
  if (r_imb_target < 0.0) r_imb_target = 0.0;
  const double avg = problem.average_load();
  const double bound = r_imb_target * avg;
  return bound * bound;
}

RebalanceMetrics evaluate_plan(const LrpProblem& problem, const MigrationPlan& plan) {
  RebalanceMetrics metrics;
  metrics.imbalance_before = problem.imbalance_ratio();
  metrics.max_load_before = problem.max_load();

  const std::vector<double> after = plan.new_loads(problem);
  metrics.imbalance_after = imbalance_ratio(after);
  metrics.max_load_after = after.empty() ? 0.0 : *std::max_element(after.begin(), after.end());
  metrics.speedup = metrics.max_load_after > 0.0
                        ? metrics.max_load_before / metrics.max_load_after
                        : 1.0;
  metrics.total_migrated = plan.total_migrated();
  metrics.migrated_per_process =
      static_cast<double>(metrics.total_migrated) /
      static_cast<double>(problem.num_processes());
  return metrics;
}

}  // namespace qulrb::lrp
