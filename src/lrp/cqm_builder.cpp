#include "lrp/cqm_builder.hpp"

#include <string>

#include "lrp/encoding.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace qulrb::lrp {

using model::LinearExpr;
using model::Sense;
using model::VarId;

const char* to_string(CqmVariant variant) {
  return variant == CqmVariant::kReduced ? "Q_CQM1" : "Q_CQM2";
}

std::size_t LrpCqm::predicted_qubits(CqmVariant variant, std::size_t num_processes,
                                     std::int64_t tasks_per_process) {
  const std::size_t bits = bits_per_count(tasks_per_process);
  const std::size_t m = num_processes;
  return variant == CqmVariant::kReduced ? (m - 1) * (m - 1) * bits : m * m * bits;
}

LrpCqm::LrpCqm(const LrpProblem& problem, CqmVariant variant, std::int64_t k,
               const CqmBuildOptions& options)
    : variant_(variant), k_(k) {
  util::require(k >= 0, "LrpCqm: migration bound k must be non-negative");

  m_ = problem.num_processes();
  counts_ = problem.task_counts();
  loads_ = problem.task_loads();

  // Per-source coefficient sets (empty for task-less sources).
  coeffs_.resize(m_);
  for (std::size_t j = 0; j < m_; ++j) {
    if (counts_[j] >= 1) {
      coeffs_[j] = options.use_paper_coefficient_set
                       ? coefficient_set(counts_[j])
                       : standard_binary_set(counts_[j]);
    }
  }

  const double l_avg = problem.average_load();
  const double l_max = problem.max_load();

  // --- variables -----------------------------------------------------------
  pair_base_.assign(m_ * m_, kInvalid);
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < m_; ++j) {
      if (variant_ == CqmVariant::kReduced && i == j) continue;
      if (coeffs_[j].empty()) continue;  // nothing can come from process j
      pair_base_[i * m_ + j] = static_cast<VarId>(cqm_.num_variables());
      for (std::size_t l = 0; l < coeffs_[j].size(); ++l) {
        cqm_.add_variable("x[" + std::to_string(i) + "][" + std::to_string(j) +
                          "][" + std::to_string(l) + "]");
      }
    }
  }

  // --- objective: sum_i (L'_i - L_avg)^2 ------------------------------------
  for (std::size_t i = 0; i < m_; ++i) {
    LinearExpr load_i;
    append_load_terms(load_i, i);
    load_i.add_constant(-l_avg);
    cqm_.add_squared_group(std::move(load_i), 1.0);
  }

  // --- constraints ----------------------------------------------------------
  if (variant_ == CqmVariant::kFull) {
    // Conservation: column j sums to exactly n_j ("no task is lost").
    for (std::size_t j = 0; j < m_; ++j) {
      if (coeffs_[j].empty()) continue;
      LinearExpr column;
      for (std::size_t i = 0; i < m_; ++i) {
        for (std::size_t l = 0; l < coeffs_[j].size(); ++l) {
          column.add_term(var(i, j, l), static_cast<double>(coeffs_[j][l]));
        }
      }
      cqm_.add_constraint(std::move(column), Sense::EQ,
                          static_cast<double>(counts_[j]),
                          "conserve[" + std::to_string(j) + "]");
    }
  } else {
    // Reduced form: the inferred diagonal n_j - outflow_j must stay >= 0,
    // i.e. outflow_j <= n_j. Equalities become inequalities, as the paper
    // notes.
    for (std::size_t j = 0; j < m_; ++j) {
      if (coeffs_[j].empty()) continue;
      LinearExpr outflow;
      for (std::size_t i = 0; i < m_; ++i) {
        if (i == j) continue;
        for (std::size_t l = 0; l < coeffs_[j].size(); ++l) {
          outflow.add_term(var(i, j, l), static_cast<double>(coeffs_[j][l]));
        }
      }
      cqm_.add_constraint(std::move(outflow), Sense::LE,
                          static_cast<double>(counts_[j]),
                          "outflow[" + std::to_string(j) + "]");
    }
  }

  // Capacity: no process may end above the baseline maximum load.
  capacity_base_ = cqm_.num_constraints();
  for (std::size_t i = 0; i < m_; ++i) {
    LinearExpr load_i;
    append_load_terms(load_i, i);
    cqm_.add_constraint(std::move(load_i), Sense::LE, l_max,
                        "capacity[" + std::to_string(i) + "]");
  }

  // Migration bound: at most k tasks may move in total.
  LinearExpr migration;
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < m_; ++j) {
      if (i == j) continue;
      for (std::size_t l = 0; l < coeffs_[j].size(); ++l) {
        migration.add_term(var(i, j, l), static_cast<double>(coeffs_[j][l]));
      }
    }
  }
  cqm_.add_constraint(std::move(migration), Sense::LE, static_cast<double>(k_),
                      "migration_bound");
}

void LrpCqm::append_load_terms(LinearExpr& expr, std::size_t i) const {
  if (variant_ == CqmVariant::kFull) {
    for (std::size_t j = 0; j < m_; ++j) {
      const double w = loads_[j];
      for (std::size_t l = 0; l < coeffs_[j].size(); ++l) {
        expr.add_term(var(i, j, l), w * static_cast<double>(coeffs_[j][l]));
      }
    }
    return;
  }
  // Reduced: L'_i = w_i * (n_i - outflow_i) + inflow.
  expr.add_constant(loads_[i] * static_cast<double>(counts_[i]));
  for (std::size_t j = 0; j < m_; ++j) {
    if (j == i) continue;
    const double w_in = loads_[j];
    const double w_out = loads_[i];
    for (std::size_t l = 0; l < coeffs_[j].size(); ++l) {
      expr.add_term(var(i, j, l), w_in * static_cast<double>(coeffs_[j][l]));
    }
    for (std::size_t l = 0; l < coeffs_[i].size(); ++l) {
      expr.add_term(var(j, i, l), -w_out * static_cast<double>(coeffs_[i][l]));
    }
  }
}

bool LrpCqm::retarget(const LrpProblem& problem) {
  if (problem.num_processes() != m_) return false;
  if (problem.task_counts() != counts_) return false;
  // Zero task loads drop their terms at normalization, so a changed zero
  // pattern means a changed sparsity pattern — cold rebuild territory.
  for (std::size_t j = 0; j < m_; ++j) {
    if ((problem.task_load(j) == 0.0) != (loads_[j] == 0.0)) return false;
  }
  loads_ = problem.task_loads();
  const double l_avg = problem.average_load();
  const double l_max = problem.max_load();
  for (std::size_t i = 0; i < m_; ++i) {
    LinearExpr load_i;
    append_load_terms(load_i, i);
    LinearExpr group = load_i;
    group.add_constant(-l_avg);
    // The checks above pin the pattern, so these rewrites cannot fail.
    util::ensure(cqm_.reset_group_expr(i, std::move(group)),
                 "LrpCqm::retarget: group pattern drifted");
    util::ensure(cqm_.reset_constraint(capacity_base_ + i, std::move(load_i), l_max),
                 "LrpCqm::retarget: capacity pattern drifted");
  }
  return true;
}

std::span<const std::int64_t> LrpCqm::coefficients(std::size_t source) const {
  util::require(source < m_, "LrpCqm::coefficients: source out of range");
  return coeffs_[source];
}

VarId LrpCqm::var(std::size_t to, std::size_t from, std::size_t bit) const {
  util::require(to < m_ && from < m_, "LrpCqm::var: process index out of range");
  util::require(bit < coeffs_[from].size(), "LrpCqm::var: bit index out of range");
  const VarId base = pair_base_[to * m_ + from];
  util::require(base != kInvalid,
                "LrpCqm::var: diagonal counts are inferred in Q_CQM1");
  return base + static_cast<VarId>(bit);
}

MigrationPlan LrpCqm::decode(std::span<const std::uint8_t> state) const {
  util::require(state.size() == cqm_.num_variables(),
                "LrpCqm::decode: state size mismatch");
  MigrationPlan plan(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < m_; ++j) {
      if (variant_ == CqmVariant::kReduced && i == j) continue;
      std::int64_t count = 0;
      for (std::size_t l = 0; l < coeffs_[j].size(); ++l) {
        if (state[var(i, j, l)]) count += coeffs_[j][l];
      }
      plan.set_count(i, j, count);
    }
  }
  if (variant_ == CqmVariant::kReduced) {
    for (std::size_t j = 0; j < m_; ++j) {
      std::int64_t outflow = 0;
      for (std::size_t i = 0; i < m_; ++i) {
        if (i != j) outflow += plan.count(i, j);
      }
      plan.set_count(j, j, counts_[j] - outflow);
    }
  }
  return plan;
}

LrpCqm build_lrp_cqm(const LrpProblem& problem, CqmVariant variant, std::int64_t k,
                     const CqmBuildOptions& options) {
  return LrpCqm(problem, variant, k, options);
}

}  // namespace qulrb::lrp
