#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "lrp/cqm_builder.hpp"
#include "lrp/solver.hpp"
#include "model/cqm_to_qubo.hpp"
#include "quantum/qaoa.hpp"

namespace qulrb::lrp {

struct GateSolverOptions {
  CqmVariant variant = CqmVariant::kReduced;
  std::int64_t k = 0;
  /// Unbalanced penalization keeps the QUBO at the CQM's variable count — the
  /// property the paper cites (Montañez-Barrera et al.) as what makes the
  /// gate-based path viable without slack ancillas.
  model::PenaltyOptions penalty{.inequality = model::InequalityMethod::kUnbalanced};
  quantum::QaoaParams qaoa;
};

struct GateSolverDiagnostics {
  std::size_t num_qubits = 0;
  double qaoa_expectation = 0.0;
  std::size_t circuit_evaluations = 0;
  bool sample_feasible = false;
  bool plan_repaired = false;
};

/// Gate-based variant of the paper's pipeline (its Section VI extension):
/// LRP -> CQM -> penalty QUBO (no ancillas) -> QAOA on a state-vector
/// simulator -> decode. Limited to tiny instances (<= 20 qubits), i.e.
/// M in {2, 3} with small n — exactly the regime where gate hardware and
/// simulators currently operate.
class GateQaoaSolver final : public RebalanceSolver {
 public:
  explicit GateQaoaSolver(GateSolverOptions options) : options_(std::move(options)) {}

  std::string name() const override { return "Q_GATE(QAOA)"; }
  SolveOutput solve(const LrpProblem& problem) override;

  const std::optional<GateSolverDiagnostics>& last_diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  GateSolverOptions options_;
  std::optional<GateSolverDiagnostics> diagnostics_;
};

}  // namespace qulrb::lrp
