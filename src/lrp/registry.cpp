#include "lrp/registry.hpp"

#include "lrp/gate_solver.hpp"
#include "lrp/kselect.hpp"
#include "lrp/quantum_solver.hpp"
#include "lrp/qubo_solver.hpp"
#include "util/error.hpp"

namespace qulrb::lrp {

std::vector<std::string> solver_names() {
  return {"greedy", "kk", "proactlb", "qcqm1", "qcqm2", "qubo", "qaoa"};
}

namespace {

std::int64_t resolve_k(const SolverSpec& spec, const LrpProblem& problem) {
  if (spec.k >= 0) return spec.k;
  const KSelection selection = select_k(problem);
  return spec.relaxed_k ? selection.k2 : selection.k1;
}

}  // namespace

std::unique_ptr<RebalanceSolver> make_solver(const SolverSpec& spec,
                                             const LrpProblem& problem) {
  if (spec.name == "greedy") return std::make_unique<GreedySolver>();
  if (spec.name == "kk") return std::make_unique<KkSolver>();
  if (spec.name == "proactlb") return std::make_unique<ProactLbSolver>();

  if (spec.name == "qcqm1" || spec.name == "qcqm2") {
    QcqmOptions options;
    options.variant = spec.name == "qcqm1" ? CqmVariant::kReduced : CqmVariant::kFull;
    options.k = resolve_k(spec, problem);
    options.hybrid.seed = spec.seed;
    options.hybrid.sweeps = spec.sweeps;
    options.hybrid.num_restarts = spec.restarts;
    options.hybrid.recorder = spec.recorder;
    options.hybrid.metrics = spec.metrics;
    options.hybrid.trace = spec.trace;
    return std::make_unique<QcqmSolver>(options);
  }
  if (spec.name == "qubo") {
    QuboSolverOptions options;
    options.k = resolve_k(spec, problem);
    options.sa.seed = spec.seed;
    options.sa.sweeps = spec.sweeps;
    options.sa.num_reads = spec.restarts * 2;
    options.sa.recorder = spec.recorder;
    if (spec.metrics != nullptr) {
      options.sa.sweep_counter = &spec.metrics->counter(
          "qulrb_solver_sweeps_total",
          "Sampler sweeps executed across all portfolio members");
    }
    return std::make_unique<QuboAnnealSolver>(options);
  }
  if (spec.name == "qaoa") {
    GateSolverOptions options;
    options.k = resolve_k(spec, problem);
    options.qaoa.seed = spec.seed;
    options.qaoa.layers = 3;
    return std::make_unique<GateQaoaSolver>(options);
  }
  throw util::InvalidArgument("make_solver: unknown solver name '" + spec.name +
                              "' (expected one of greedy, kk, proactlb, qcqm1, "
                              "qcqm2, qubo, qaoa)");
}

}  // namespace qulrb::lrp
