#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace qulrb::lrp {

/// The paper's non-standard binary coefficient set for encoding a task count
/// in [0, n]:
///   C = {2^0, 2^1, ..., 2^(floor(log2 n) - 1)} ∪ {n - 2^floor(log2 n) + 1}.
/// The coefficients sum to exactly n, so "all bits set" means "all n tasks";
/// every integer in [0, n] is representable (the power prefix covers
/// [0, 2^f - 1] and the top coefficient shifts that window to [r, n]).
/// |C| = floor(log2 n) + 1 — this is the per-count qubit cost in Table I.
std::vector<std::int64_t> coefficient_set(std::int64_t n);

/// Number of bits the paper's formulas use per (i, j) count.
std::size_t bits_per_count(std::int64_t n);

/// Standard binary encoding {1, 2, 4, ..., 2^(ceil(log2(n+1)) - 1)} with the
/// top coefficient clamped so the maximum representable value is exactly n.
/// Used by the encoding ablation bench as the conventional alternative.
std::vector<std::int64_t> standard_binary_set(std::int64_t n);

/// Value of a bit pattern under a coefficient set.
std::int64_t decode_count(std::span<const std::uint8_t> bits,
                          std::span<const std::int64_t> coeffs);

/// A bit pattern representing `count` (greedy: top coefficient first, then
/// binary remainder). Throws InvalidArgument when count is out of [0, sum C].
std::vector<std::uint8_t> encode_count(std::int64_t count,
                                       std::span<const std::int64_t> coeffs);

/// True if every value in [0, n] is representable under the set (test aid).
bool covers_range(std::span<const std::int64_t> coeffs, std::int64_t n);

}  // namespace qulrb::lrp
