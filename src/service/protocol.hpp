#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/rebalance_service.hpp"
#include "service/request.hpp"

namespace qulrb::service {

/// JSON-lines wire protocol of qulrb_serve: one JSON object per line in, one
/// per line out. Requests:
///
///   {"op":"solve","id":7,"loads":[10,2,2,2],"counts":[8,8,8,8],
///    "variant":"qcqm1","k":4,"priority":0,"deadline_ms":50,
///    "sweeps":400,"restarts":2,"seed":1,"time_limit_ms":0,"plan":false}
///     (+ optional "rid": upstream trace id a router forwards so the
///        backend's trace correlates with the routed request, and
///        "router_ms": time spent in the router before forwarding)
///   {"op":"cancel","id":7}
///   {"op":"stats"}
///   {"op":"health"}
///   {"op":"metrics"}
///   {"op":"trace","n":4}
///   {"op":"obs"}
///   {"op":"flight_dump","window_s":30,"rid":42}
///   {"op":"profile","seconds":2}
///   {"op":"shutdown"}
///
/// `id` is the client's correlation id (echoed verbatim); responses may
/// arrive out of submission order. Responses:
///
///   {"id":7,"outcome":"ok","feasible":true,...}
///   {"stats":{...}}
///   {"metrics":"<prometheus text>"}
///   {"traces":[{...perfetto doc...},...]}
///   {"obs":{"role":...,"counters":[...],"gauges":[...],
///           "histograms":[...],"slo":{...}}}
///   {"flight":{...perfetto doc of the recent flight ring...}}
///   {"profile":{"source":...,"hz":...,"samples":N,"phases":[...],
///               "folded":"<collapsed stacks>"}}
///   {"error":"...","id":7}
///
/// `obs` is the federation pull: the process's whole metric registry in the
/// stripe-agnostic wire form of obs/histogram_wire.hpp (so the router can
/// merge histograms bucket-wise, exactly), plus its SLO view. `flight_dump`
/// snapshots the last `window_s` seconds of the flight-recorder ring as a
/// Perfetto document tagged with the triggering request's `rid`; both
/// fields are optional (0 = everything in the ring / no rid). `profile`
/// exports the last `seconds` of the continuous sampling profiler's ring
/// (obs::Profiler) as folded stacks plus a {rid, phase} sample breakdown —
/// `{"profile":null}` when the process runs with profiling disabled.
///
/// `health` is the high-frequency probe variant of `stats`: a three-field
/// {"stats":{"queue_depth","inflight","cache_hit_rate"}} answered from
/// relaxed atomics, so a router polling N backends every few milliseconds
/// never contends with the request-path lock the full stats snapshot takes.
enum class OpKind : std::uint8_t {
  kSolve, kCancel, kStats, kHealth, kMetrics, kTrace, kObs, kFlightDump,
  kProfile, kShutdown
};

struct ProtocolRequest {
  OpKind op = OpKind::kSolve;
  std::uint64_t client_id = 0;
  RebalanceRequest request;   ///< populated for kSolve
  bool include_plan = false;  ///< echo the migration matrix in the response
  std::size_t trace_count = 8;  ///< "n" of a trace op
  double window_s = 0.0;        ///< "window_s" of a flight_dump op (0 = all)
  std::uint64_t flight_rid = 0; ///< "rid" tag of a flight_dump op
  double profile_seconds = 0.0; ///< "seconds" of a profile op (0 = whole ring)
};

/// Parse one request line; throws util::InvalidArgument with a message fit
/// for an {"error":...} reply on malformed input.
ProtocolRequest parse_request_line(const std::string& line);

/// Canonical wire form of a solve request (no trailing newline): exactly the
/// fields parse_request_line understands, defaults omitted, deterministic
/// field order. Both halves of the sharded tier depend on this canonicality:
/// qulrb_loadgen emits requests through it, and qulrb_router re-encodes
/// parsed requests so that two byte-identical canonical bodies (id/rid
/// stripped) are the same solve — the coalescer's equality check is a string
/// compare, not a field-by-field diff. Round-trips through
/// parse_request_line for every wire-representable field.
std::string encode_solve_request(const RebalanceRequest& request,
                                 std::uint64_t client_id, bool include_plan);

/// One response line (no trailing newline).
std::string encode_response(std::uint64_t client_id,
                            const RebalanceResponse& response,
                            bool include_plan);

std::string encode_stats(const ServiceStats& stats);

/// The `health` probe response: the shortest-queue routing fields only, in
/// the same {"stats":{...}} envelope (a prober parses both shapes alike).
std::string encode_health(std::size_t queue_depth, std::size_t inflight,
                          double cache_hit_rate);

/// {"metrics":"..."} — the Prometheus exposition text as one JSON string.
std::string encode_metrics(const std::string& prometheus_text);

/// {"traces":[...]} — each element is a Perfetto JSON document, spliced in
/// verbatim (they are already serialized JSON objects).
std::string encode_traces(const std::vector<std::string>& traces);

/// {"op":"obs","id":N} — federation pull of a process's metric registry.
std::string encode_obs_request(std::uint64_t client_id);

/// {"id":N,"obs":...} — `obs_json` is the pre-serialized obs object (built
/// with obs::write_registry_obs_json plus role/build/slo fields), spliced in
/// verbatim.
std::string encode_obs_response(std::uint64_t client_id,
                                const std::string& obs_json);

/// {"op":"flight_dump","id":N,...} — snapshot request toward a backend.
std::string encode_flight_dump_request(std::uint64_t client_id,
                                       double window_s, std::uint64_t rid);

/// {"id":N,"flight":...} — `flight_json` is a Perfetto document
/// (obs::flight_to_perfetto_json), spliced in verbatim.
std::string encode_flight_response(std::uint64_t client_id,
                                   const std::string& flight_json);

/// {"op":"profile","id":N,"seconds":S} — profile capture toward a backend.
std::string encode_profile_request(std::uint64_t client_id, double seconds);

/// {"id":N,"profile":...} — `profile_json` is a profile document
/// (obs::profile_to_json) or the literal "null" when profiling is off,
/// spliced in verbatim.
std::string encode_profile_response(std::uint64_t client_id,
                                    const std::string& profile_json);

std::string encode_error(const std::string& message, std::uint64_t client_id);

}  // namespace qulrb::service
