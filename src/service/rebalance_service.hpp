#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/clock.hpp"
#include "obs/convergence.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/process_metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/slo.hpp"
#include "obs/trace_context.hpp"
#include "service/request.hpp"
#include "service/session_cache.hpp"
#include "util/cancel.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qulrb::service {

struct ServiceParams {
  /// Worker threads draining the queue. 0 = hardware_concurrency().
  std::size_t num_workers = 0;
  /// Admission bound: submissions beyond this many pending requests are
  /// rejected immediately (backpressure, never unbounded growth).
  std::size_t max_pending = 256;
  /// Reject a request at admission when the EWMA-predicted queue wait alone
  /// already exceeds its deadline. Saves the queue slot for work that can
  /// still make it.
  bool admission_deadline_check = true;
  /// Drop (shed) dequeued requests whose deadline has already passed instead
  /// of solving them — a late answer to a rebalancing question is worthless,
  /// the load snapshot has moved on.
  bool shed_expired = true;
  /// Deadline applied when a request carries none. 0 = none.
  double default_deadline_ms = 0.0;
  /// Sessions kept across requests (LRU). 0 disables caching.
  std::size_t cache_capacity = 16;
  /// Restart-parallelism granted to one solve when the request leaves
  /// hybrid.threads at 0. Kept at 1: the worker pool provides the
  /// concurrency, individual solves should not each fan out machine-wide.
  std::size_t solver_threads = 1;
  /// Range of the latency histograms ([0, hi] ms).
  double latency_hist_max_ms = 250.0;
  std::size_t latency_hist_bins = 50;
  /// Record a Perfetto trace per request (queue wait, session checkout,
  /// solver phase spans, incumbent timelines), keeping the most recent
  /// `trace_keep` completed requests for the `trace` op. Off by default —
  /// the registry-backed metrics are always on.
  bool record_traces = false;
  std::size_t trace_keep = 8;
  /// Structured JSONL sink: one SolveEvent line per finished request. Not
  /// owned; must outlive the service. Null = off.
  obs::EventLog* event_log = nullptr;
  /// `source` field stamped on emitted events.
  std::string event_source = "qulrb_serve";
  /// Always-on flight ring: per-request admission/solve/finish records plus
  /// the solver engines' per-call spans, all stamped with the request's rid.
  /// Not owned; must outlive the service. Null = off (and the zero-cost-OFF
  /// contract holds — no branch beyond the null test, no RNG).
  obs::FlightRecorder* flight = nullptr;
  /// Rolling-window SLO engine fed one observation per finished request
  /// (latency vs objective, deadline outcome) and the admission queue depth.
  /// Its triggers are the flight recorder's dump signals. Not owned; must
  /// outlive the service. Null = off.
  obs::SloEngine* slo = nullptr;
  /// Continuous sampling CPU profiler the serve shell answers the `profile`
  /// op from. The service itself never reads it (samples land via the
  /// process-wide SIGPROF timer; solve threads only tag themselves with
  /// prof phase/rid scopes) — this pointer just rides along so protocol
  /// handlers reach the profiler the same way they reach the flight ring.
  /// Not owned; must outlive the service. Null = profiling off.
  obs::Profiler* profiler = nullptr;
};

/// Aggregated service telemetry; a consistent snapshot from stats().
struct ServiceStats {
  explicit ServiceStats(double hist_max_ms = 250.0, std::size_t hist_bins = 50)
      : solve_hist(0.0, hist_max_ms, hist_bins),
        total_hist(0.0, hist_max_ms, hist_bins) {}

  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;            ///< kOk responses
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t shed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_met = 0;     ///< kOk within the deadline
  std::uint64_t deadline_missed = 0;  ///< kOk but past the deadline
  std::uint64_t budget_expired = 0;   ///< solves truncated by their budget

  SessionCache::Stats cache;
  /// (exact + retarget hits) / lookups, 0 when no lookup happened yet.
  double cache_hit_rate = 0.0;

  util::RunningStats queue_ms;
  util::RunningStats solve_ms;
  util::RunningStats total_ms;
  util::Histogram solve_hist;  ///< solve_ms distribution
  util::Histogram total_hist;  ///< total_ms distribution

  double ewma_solve_ms = 0.0;  ///< the admission controller's wait predictor
  std::size_t pending = 0;
  std::size_t running = 0;
  std::size_t queue_depth_hwm = 0;  ///< most requests ever pending at once
};

/// In-process asynchronous rebalancing service: bounded priority queue,
/// deadline-aware admission control, a worker pool layered on
/// util::ThreadPool, cooperative cancellation threaded into the solvers, and
/// a session cache that reuses built models across requests sharing a
/// problem topology.
///
/// Requests are solved in (priority desc, deadline asc, arrival asc) order.
/// Callbacks run on worker threads (or on the submitting thread for
/// synchronous rejections) and must not block for long — they are the
/// response path.
class RebalanceService {
 public:
  using Callback = std::function<void(RebalanceResponse)>;

  explicit RebalanceService(ServiceParams params = {});
  ~RebalanceService();

  RebalanceService(const RebalanceService&) = delete;
  RebalanceService& operator=(const RebalanceService&) = delete;

  /// Submit a request; the callback fires exactly once with the response.
  /// Returns the request id (usable with cancel()). Admission rejections
  /// invoke the callback synchronously before returning.
  std::uint64_t submit(RebalanceRequest request, Callback callback);

  /// Future-returning convenience wrapper over the callback form.
  std::future<RebalanceResponse> submit(RebalanceRequest request);

  /// Cancel a request. Pending: it is removed and answered kCancelled.
  /// Running: its CancelToken is tripped — the solve stops at the next sweep
  /// and the response (kCancelled) carries the incumbent plan. Returns false
  /// when the id is unknown or already answered.
  bool cancel(std::uint64_t id);

  /// Block until no request is pending or running.
  void drain();

  /// Cancel everything still queued (running solves keep going) — the
  /// graceful-shutdown path: shed the backlog, then drain() the in-flight
  /// work. Each shed request is answered kCancelled through the normal
  /// finish path. Returns how many requests were shed.
  std::size_t shed_pending();

  ServiceStats stats() const;

  /// Queue depth / in-flight solves / cache hit rate right now, from relaxed
  /// atomics — no lock, no histogram copies. This is the health-probe path
  /// (the `{"op":"health"}` protocol op): a router polling N backends every
  /// few milliseconds must not contend with the request path the way the
  /// full stats() snapshot does.
  std::size_t queue_depth() const noexcept {
    return queue_depth_relaxed_.load(std::memory_order_relaxed);
  }
  std::size_t inflight() const noexcept {
    return running_relaxed_.load(std::memory_order_relaxed);
  }
  double cache_hit_rate() const noexcept {
    const std::uint64_t lookups =
        cache_lookups_relaxed_.load(std::memory_order_relaxed);
    if (lookups == 0) return 0.0;
    return static_cast<double>(
               cache_hits_relaxed_.load(std::memory_order_relaxed)) /
           static_cast<double>(lookups);
  }

  const ServiceParams& params() const noexcept { return params_; }

  /// The registry every component of this service reports into (solver,
  /// session cache, queue). Scrape via metrics_text().
  obs::MetricsRegistry& metrics_registry() noexcept { return registry_; }

  /// Prometheus text exposition of the registry, with the point-in-time
  /// gauges (queue depth, running, EWMA) refreshed first.
  std::string metrics_text();

  /// Milliseconds on the process-wide obs timebase — the clock the SLO
  /// engine's observations are stamped with (callers feeding the same engine
  /// from outside, e.g. the serve shell, use the same obs::clock), and the
  /// same timebase profiler samples and flight records carry.
  double now_ms() const noexcept { return obs::clock::raw_ms(); }

  /// Perfetto JSON documents of the most recently finished requests (oldest
  /// first, at most `n`). Empty unless params.record_traces.
  std::vector<std::string> last_traces(std::size_t n) const;

 private:
  struct Pending {
    std::uint64_t id = 0;
    RebalanceRequest request;
    Callback callback;
    util::WallTimer queued;        ///< started at admission
    double deadline_ms = 0.0;      ///< effective (request or default), 0 = none
    util::CancelToken token;       ///< created at admission so cancel() works
    /// Per-request trace identity (owns the recorder when tracing is on);
    /// inactive otherwise.
    obs::TraceContext trace;
    /// Objective threshold implied by the request's target_r_imb (NaN when
    /// none) — feeds the convergence analysis at finish.
    double target_objective = std::numeric_limits<double>::quiet_NaN();
  };

  /// Queue order: priority desc, deadline asc (none = last), arrival asc.
  struct PendingKey {
    int priority;
    double deadline_ms;  ///< +inf when none
    std::uint64_t seq;

    bool operator<(const PendingKey& other) const noexcept {
      if (priority != other.priority) return priority > other.priority;
      if (deadline_ms != other.deadline_ms) return deadline_ms < other.deadline_ms;
      return seq < other.seq;
    }
  };

  /// Registry handles resolved once at construction — the request path pays
  /// relaxed atomics, never a registry lookup.
  struct MetricHandles {
    obs::Counter* submitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* rejected_queue_full = nullptr;
    obs::Counter* rejected_deadline = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* deadline_met = nullptr;
    obs::Counter* deadline_missed = nullptr;
    obs::Counter* budget_expired = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* queue_depth_hwm = nullptr;
    obs::Gauge* running = nullptr;
    obs::Gauge* ewma_solve_ms = nullptr;
    obs::LogHistogram* queue_ms = nullptr;
    obs::LogHistogram* solve_ms = nullptr;
    obs::LogHistogram* total_ms = nullptr;
  };

  /// Flight-ring name codes, interned once at construction.
  struct FlightNames {
    std::uint16_t request = 0;
    std::uint16_t deadline_miss = 0;
    std::uint16_t queue_depth = 0;
  };

  void run_one();
  void finish(Pending item, RebalanceResponse response);
  RebalanceResponse solve_item(Pending& item);

  ServiceParams params_;
  // Declared before everything that records into it (destruction is reverse
  // order: the registry must outlive the cache and the worker pool).
  obs::MetricsRegistry registry_;
  MetricHandles h_;
  FlightNames f_;
  /// Standard process self-metrics (CPU, RSS, fds, start time), refreshed
  /// at exposition time.
  obs::ProcessMetrics proc_metrics_{registry_};
  SessionCache cache_;
  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::map<PendingKey, Pending> pending_;
  std::unordered_map<std::uint64_t, PendingKey> pending_index_;
  std::unordered_map<std::uint64_t, util::CancelToken> running_;
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;
  /// Mirrors of pending_.size() / running_.size(), maintained under mutex_
  /// but readable without it (queue_depth() / inflight()).
  std::atomic<std::size_t> queue_depth_relaxed_{0};
  std::atomic<std::size_t> running_relaxed_{0};
  /// Relaxed mirror of the session-cache hit counters (cache_hit_rate()) —
  /// the authoritative counts stay in SessionCache behind its own mutex.
  std::atomic<std::uint64_t> cache_lookups_relaxed_{0};
  std::atomic<std::uint64_t> cache_hits_relaxed_{0};

  // Telemetry (guarded by mutex_). The event counters live in registry_
  // (h_.*); this holds only the moment statistics, histograms, and EWMA that
  // need a consistent mutex-guarded update.
  ServiceStats stats_;
  std::deque<std::string> traces_;  ///< last params_.trace_keep Perfetto docs

  // Last: workers must die before the state they touch.
  util::ThreadPool pool_;
};

}  // namespace qulrb::service
