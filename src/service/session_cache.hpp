#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "anneal/cqm_anneal.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/problem.hpp"
#include "model/presolve.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_context.hpp"

namespace qulrb::service {

/// What a cache lookup found.
enum class CacheHit : std::uint8_t {
  kMiss,      ///< cold build: model, presolve, and pair index from scratch
  kRetarget,  ///< topology matched; coefficients rewritten in place
  kExact,     ///< loads matched too; everything reused, warm start available
};

/// Everything load-rebalancing solves can share across requests on one
/// problem topology: the built CQM (variables, constraints, CSR incidence
/// layout), the presolve fixings, the pair-move index, and the best state of
/// the previous solve as a warm-start hint.
///
/// Invariant on every checkout: `model` is targeted at exactly the loads of
/// the request's problem, and `presolve` / `pairs` describe that targeted
/// model (both are load-dependent — capacity rhs moves with L_max and pair
/// classes key on |coefficient| — so a retarget recomputes them while still
/// keeping the expensive model build and CSR layout).
struct Session {
  Session(const lrp::LrpProblem& problem, lrp::CqmVariant variant,
          std::int64_t k, const lrp::CqmBuildOptions& options);

  /// Re-point at new loads (same topology) and refresh the derived state.
  /// Returns false when the topology differs after all (caller rebuilds).
  bool retarget(const lrp::LrpProblem& problem);

  lrp::LrpCqm model;
  model::PresolveResult presolve;
  anneal::PairMoveIndex pairs;
  std::vector<double> loads;  ///< loads the model is currently targeted at
  model::State warm_hint;     ///< best state of the previous solve (may be empty)
};

/// Keyed, LRU-bounded store of Sessions. Checkout removes the session from
/// the cache (no locks are held during a solve; two concurrent requests on
/// the same key simply build two sessions) and give_back() reinserts it,
/// evicting the least-recently-used entry when over capacity.
class SessionCache {
 public:
  struct Key {
    std::vector<std::int64_t> task_counts;
    lrp::CqmVariant variant;
    std::int64_t k;
    bool paper_coefficients;

    bool operator==(const Key&) const = default;
  };

  struct Stats {
    std::uint64_t exact_hits = 0;
    std::uint64_t retarget_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  struct Checkout {
    std::unique_ptr<Session> session;
    Key key;
    CacheHit hit = CacheHit::kMiss;
  };

  explicit SessionCache(std::size_t capacity = 16) : capacity_(capacity) {}

  /// Session ready to solve `problem` (model targeted, presolve/pairs
  /// consistent). Never returns null; builds cold on a miss. When `trace`
  /// is active, the expensive paths (cold build, retarget refresh) are
  /// recorded as spans on the request's main track.
  Checkout checkout(const lrp::LrpProblem& problem, lrp::CqmVariant variant,
                    std::int64_t k, const lrp::CqmBuildOptions& options,
                    const obs::TraceContext& trace = {});

  /// Return a session after a solve (typically with a fresh warm_hint).
  /// If the slot was refilled meanwhile, the newer-returned session wins.
  void give_back(Checkout checkout);

  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

  /// Mirror hit/miss/eviction counts into `registry` (qulrb_cache_*) in
  /// addition to the local Stats. Call once, before serving traffic.
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };

  struct Slot {
    std::unique_ptr<Session> session;
    std::list<Key>::iterator lru_it;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::unordered_map<Key, Slot, KeyHash> slots_;
  std::list<Key> lru_;  ///< front = most recently used
  Stats stats_;

  // Optional registry mirrors (null until attach_metrics()).
  obs::Counter* m_exact_hits_ = nullptr;
  obs::Counter* m_retarget_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
};

}  // namespace qulrb::service
