#include "service/protocol.hpp"

#include <utility>

#include "io/json.hpp"
#include "io/json_value.hpp"
#include "util/error.hpp"

namespace qulrb::service {

using io::JsonValue;
using io::JsonWriter;

ProtocolRequest parse_request_line(const std::string& line) {
  const JsonValue doc = JsonValue::parse(line);
  util::require(doc.is_object(), "request must be a JSON object");

  ProtocolRequest out;
  const std::string op = doc.string_or("op", "solve");
  if (op == "cancel") {
    out.op = OpKind::kCancel;
  } else if (op == "stats") {
    out.op = OpKind::kStats;
  } else if (op == "health") {
    out.op = OpKind::kHealth;
  } else if (op == "metrics") {
    out.op = OpKind::kMetrics;
  } else if (op == "trace") {
    out.op = OpKind::kTrace;
    const std::int64_t n = doc.int_or("n", 8);
    util::require(n > 0, "trace 'n' must be positive");
    out.trace_count = static_cast<std::size_t>(n);
  } else if (op == "obs") {
    out.op = OpKind::kObs;
  } else if (op == "flight_dump") {
    out.op = OpKind::kFlightDump;
    out.window_s = doc.number_or("window_s", 0.0);
    out.flight_rid = static_cast<std::uint64_t>(doc.int_or("rid", 0));
  } else if (op == "profile") {
    out.op = OpKind::kProfile;
    out.profile_seconds = doc.number_or("seconds", 0.0);
    util::require(out.profile_seconds >= 0.0,
                  "profile 'seconds' must be non-negative");
  } else if (op == "shutdown") {
    out.op = OpKind::kShutdown;
  } else if (op == "solve") {
    out.op = OpKind::kSolve;
  } else {
    throw util::InvalidArgument("unknown op '" + op + "'");
  }
  out.client_id = static_cast<std::uint64_t>(doc.int_or("id", 0));
  if (out.op != OpKind::kSolve) return out;

  const JsonValue* loads = doc.find("loads");
  const JsonValue* counts = doc.find("counts");
  util::require(loads != nullptr && counts != nullptr,
                "solve needs 'loads' and 'counts' arrays");
  for (const JsonValue& v : loads->as_array()) {
    out.request.task_loads.push_back(v.as_number());
  }
  for (const JsonValue& v : counts->as_array()) {
    out.request.task_counts.push_back(v.as_int());
  }

  const std::string variant = doc.string_or("variant", "qcqm1");
  if (variant == "qcqm1") {
    out.request.variant = lrp::CqmVariant::kReduced;
  } else if (variant == "qcqm2") {
    out.request.variant = lrp::CqmVariant::kFull;
  } else {
    throw util::InvalidArgument("unknown variant '" + variant +
                                "' (want qcqm1 or qcqm2)");
  }
  out.request.k = doc.int_or("k", 0);
  out.request.build.use_paper_coefficient_set =
      doc.bool_or("paper_coefficients", true);
  out.request.priority = static_cast<int>(doc.int_or("priority", 0));
  out.request.deadline_ms = doc.number_or("deadline_ms", 0.0);

  auto& hybrid = out.request.hybrid;
  hybrid.sweeps = static_cast<std::size_t>(
      doc.int_or("sweeps", static_cast<std::int64_t>(hybrid.sweeps)));
  hybrid.num_restarts = static_cast<std::size_t>(doc.int_or(
      "restarts", static_cast<std::int64_t>(hybrid.num_restarts)));
  hybrid.seed = static_cast<std::uint64_t>(
      doc.int_or("seed", static_cast<std::int64_t>(hybrid.seed)));
  hybrid.time_limit_ms = doc.number_or("time_limit_ms", hybrid.time_limit_ms);

  out.request.target_r_imb = doc.number_or("target_rimb", 0.0);
  out.request.simulate = doc.bool_or("simulate", false);
  const std::int64_t sim_iters = doc.int_or(
      "sim_iterations", static_cast<std::int64_t>(out.request.sim_iterations));
  util::require(sim_iters > 0, "'sim_iterations' must be positive");
  out.request.sim_iterations = static_cast<std::size_t>(sim_iters);
  const std::int64_t sim_threads = doc.int_or(
      "sim_threads", static_cast<std::int64_t>(out.request.sim_comp_threads));
  util::require(sim_threads > 0, "'sim_threads' must be positive");
  out.request.sim_comp_threads = static_cast<std::size_t>(sim_threads);

  out.request.trace_id = static_cast<std::uint64_t>(doc.int_or("rid", 0));
  out.request.router_ms = doc.number_or("router_ms", 0.0);

  out.include_plan = doc.bool_or("plan", false);
  return out;
}

std::string encode_solve_request(const RebalanceRequest& request,
                                 std::uint64_t client_id, bool include_plan) {
  static const RebalanceRequest defaults;
  JsonWriter w;
  w.begin_object();
  w.field("op", "solve");
  w.field("id", static_cast<std::int64_t>(client_id));
  w.key("loads");
  w.begin_array();
  for (const double v : request.task_loads) w.value(v);
  w.end_array();
  w.key("counts");
  w.begin_array();
  for (const std::int64_t v : request.task_counts) w.value(v);
  w.end_array();
  w.field("variant",
          request.variant == lrp::CqmVariant::kReduced ? "qcqm1" : "qcqm2");
  w.field("k", request.k);
  if (!request.build.use_paper_coefficient_set) {
    w.field("paper_coefficients", false);
  }
  if (request.priority != 0) w.field("priority", request.priority);
  if (request.deadline_ms > 0.0) w.field("deadline_ms", request.deadline_ms);
  w.field("sweeps", request.hybrid.sweeps);
  w.field("restarts", request.hybrid.num_restarts);
  w.field("seed", static_cast<std::int64_t>(request.hybrid.seed));
  if (request.hybrid.time_limit_ms != defaults.hybrid.time_limit_ms) {
    w.field("time_limit_ms", request.hybrid.time_limit_ms);
  }
  if (request.target_r_imb > 0.0) w.field("target_rimb", request.target_r_imb);
  if (request.simulate) {
    w.field("simulate", true);
    w.field("sim_iterations", request.sim_iterations);
    w.field("sim_threads", request.sim_comp_threads);
  }
  if (request.trace_id != 0) {
    w.field("rid", static_cast<std::int64_t>(request.trace_id));
  }
  if (request.router_ms > 0.0) w.field("router_ms", request.router_ms);
  if (include_plan) w.field("plan", true);
  w.end_object();
  return w.str();
}

std::string encode_response(std::uint64_t client_id,
                            const RebalanceResponse& response,
                            bool include_plan) {
  JsonWriter w;
  w.begin_object();
  w.field("id", static_cast<std::int64_t>(client_id));
  w.field("outcome", to_string(response.outcome));
  if (!response.error.empty()) w.field("error", response.error);
  if (response.plan.has_value()) {
    w.field("feasible", response.feasible);
    w.field("budget_expired", response.budget_expired);
    w.field("cache_hit", response.cache_hit);
    w.field("retargeted", response.cache_retargeted);
    if (response.replica_lanes > 0) {
      w.field("replicas", response.replica_lanes);
    }
    w.field("imbalance_before", response.metrics.imbalance_before);
    w.field("imbalance_after", response.metrics.imbalance_after);
    w.field("speedup", response.metrics.speedup);
    w.field("migrated", response.metrics.total_migrated);
    if (include_plan) {
      const lrp::MigrationPlan& plan = *response.plan;
      w.key("plan");
      w.begin_array();
      for (std::size_t i = 0; i < plan.num_processes(); ++i) {
        w.begin_array();
        for (std::size_t j = 0; j < plan.num_processes(); ++j) {
          w.value(plan.count(i, j));
        }
        w.end_array();
      }
      w.end_array();
    }
  }
  if (response.time_to_first_feasible_ms >= 0.0) {
    w.field("time_to_first_feasible_ms", response.time_to_first_feasible_ms);
  }
  if (response.time_to_target_ms >= 0.0) {
    w.field("time_to_target_ms", response.time_to_target_ms);
  }
  if (response.simulated) {
    w.key("sim");
    w.begin_object();
    w.field("first_iteration_ms", response.sim_first_iteration_ms);
    w.field("steady_iteration_ms", response.sim_steady_iteration_ms);
    w.field("migration_overhead_ms", response.sim_migration_overhead_ms);
    w.field("compute_imbalance", response.sim_compute_imbalance);
    w.field("parallel_efficiency", response.sim_parallel_efficiency);
    w.end_object();
  }
  w.field("queue_ms", response.queue_ms);
  w.field("solve_ms", response.solve_ms);
  w.field("total_ms", response.total_ms);
  w.end_object();
  return w.str();
}

std::string encode_stats(const ServiceStats& stats) {
  JsonWriter w;
  w.begin_object();
  w.key("stats");
  w.begin_object();
  w.field("submitted", stats.submitted);
  w.field("completed", stats.completed);
  w.field("rejected_queue_full", stats.rejected_queue_full);
  w.field("rejected_deadline", stats.rejected_deadline);
  w.field("shed", stats.shed);
  w.field("cancelled", stats.cancelled);
  w.field("failed", stats.failed);
  w.field("deadline_met", stats.deadline_met);
  w.field("deadline_missed", stats.deadline_missed);
  w.field("budget_expired", stats.budget_expired);
  w.field("pending", stats.pending);
  w.field("running", stats.running);
  // Router-facing health fields: a front-end probing N backends keys its
  // shortest-queue decisions on these.
  w.field("queue_depth", stats.pending);
  w.field("inflight", stats.running);
  w.field("cache_hit_rate", stats.cache_hit_rate);
  w.field("queue_depth_hwm", stats.queue_depth_hwm);
  w.field("ewma_solve_ms", stats.ewma_solve_ms);
  w.key("cache");
  w.begin_object();
  w.field("exact_hits", stats.cache.exact_hits);
  w.field("retarget_hits", stats.cache.retarget_hits);
  w.field("misses", stats.cache.misses);
  w.field("evictions", stats.cache.evictions);
  w.end_object();
  w.key("solve_ms");
  w.begin_object();
  w.field("count", stats.solve_ms.count());
  w.field("mean", stats.solve_ms.mean());
  w.field("min", stats.solve_ms.min());
  w.field("max", stats.solve_ms.max());
  w.end_object();
  w.key("total_ms");
  w.begin_object();
  w.field("count", stats.total_ms.count());
  w.field("mean", stats.total_ms.mean());
  w.field("min", stats.total_ms.min());
  w.field("max", stats.total_ms.max());
  w.end_object();
  w.end_object();
  w.end_object();
  return w.str();
}

std::string encode_health(std::size_t queue_depth, std::size_t inflight,
                          double cache_hit_rate) {
  JsonWriter w;
  w.begin_object();
  w.key("stats");
  w.begin_object();
  w.field("queue_depth", queue_depth);
  w.field("inflight", inflight);
  w.field("cache_hit_rate", cache_hit_rate);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string encode_metrics(const std::string& prometheus_text) {
  JsonWriter w;
  w.begin_object();
  w.field("metrics", prometheus_text);
  w.end_object();
  return w.str();
}

std::string encode_traces(const std::vector<std::string>& traces) {
  JsonWriter w;
  w.begin_object();
  w.key("traces");
  w.begin_array();
  for (const std::string& t : traces) w.raw_value(t);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string encode_obs_request(std::uint64_t client_id) {
  JsonWriter w;
  w.begin_object();
  w.field("op", "obs");
  w.field("id", static_cast<std::int64_t>(client_id));
  w.end_object();
  return w.str();
}

std::string encode_obs_response(std::uint64_t client_id,
                                const std::string& obs_json) {
  JsonWriter w;
  w.begin_object();
  w.field("id", static_cast<std::int64_t>(client_id));
  w.key("obs");
  w.raw_value(obs_json);
  w.end_object();
  return w.str();
}

std::string encode_flight_dump_request(std::uint64_t client_id,
                                       double window_s, std::uint64_t rid) {
  JsonWriter w;
  w.begin_object();
  w.field("op", "flight_dump");
  w.field("id", static_cast<std::int64_t>(client_id));
  if (window_s > 0.0) w.field("window_s", window_s);
  if (rid != 0) w.field("rid", static_cast<std::int64_t>(rid));
  w.end_object();
  return w.str();
}

std::string encode_flight_response(std::uint64_t client_id,
                                   const std::string& flight_json) {
  JsonWriter w;
  w.begin_object();
  w.field("id", static_cast<std::int64_t>(client_id));
  w.key("flight");
  w.raw_value(flight_json);
  w.end_object();
  return w.str();
}

std::string encode_profile_request(std::uint64_t client_id, double seconds) {
  JsonWriter w;
  w.begin_object();
  w.field("op", "profile");
  w.field("id", static_cast<std::int64_t>(client_id));
  if (seconds > 0.0) w.field("seconds", seconds);
  w.end_object();
  return w.str();
}

std::string encode_profile_response(std::uint64_t client_id,
                                    const std::string& profile_json) {
  JsonWriter w;
  w.begin_object();
  w.field("id", static_cast<std::int64_t>(client_id));
  w.key("profile");
  w.raw_value(profile_json);
  w.end_object();
  return w.str();
}

std::string encode_error(const std::string& message, std::uint64_t client_id) {
  JsonWriter w;
  w.begin_object();
  w.field("error", message);
  w.field("id", static_cast<std::int64_t>(client_id));
  w.end_object();
  return w.str();
}

}  // namespace qulrb::service
