#include "service/rebalance_service.hpp"

#include <exception>
#include <limits>
#include <utility>
#include <vector>

#include "lrp/quantum_solver.hpp"
#include "util/error.hpp"

namespace qulrb::service {

const char* to_string(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk: return "ok";
    case RequestOutcome::kRejected: return "rejected";
    case RequestOutcome::kShed: return "shed";
    case RequestOutcome::kCancelled: return "cancelled";
    case RequestOutcome::kFailed: return "failed";
  }
  return "?";
}

RebalanceService::RebalanceService(ServiceParams params)
    : params_(params),
      cache_(params.cache_capacity),
      stats_(params.latency_hist_max_ms, params.latency_hist_bins),
      pool_(params.num_workers) {}

RebalanceService::~RebalanceService() {
  std::vector<Pending> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (auto& [key, item] : pending_) orphaned.push_back(std::move(item));
    pending_.clear();
    pending_index_.clear();
    // Trip running solves so shutdown is prompt; they answer kCancelled with
    // their incumbent through the normal finish path.
    for (auto& [id, token] : running_) token.cancel();
  }
  for (auto& item : orphaned) {
    RebalanceResponse response;
    response.id = item.id;
    response.outcome = RequestOutcome::kCancelled;
    response.error = "service shutting down";
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cancelled;
    }
    if (item.callback) item.callback(std::move(response));
  }
  // ~ThreadPool (first member destroyed) drains the remaining drain-one
  // tasks, which find the queue empty, and waits out the cancelled solves.
}

std::uint64_t RebalanceService::submit(RebalanceRequest request, Callback callback) {
  RebalanceResponse rejection;
  std::uint64_t id = 0;
  bool admitted = false;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    ++stats_.submitted;

    double deadline_ms = request.deadline_ms > 0.0 ? request.deadline_ms
                                                   : params_.default_deadline_ms;
    if (stopping_) {
      rejection.outcome = RequestOutcome::kRejected;
      rejection.error = "service shutting down";
      ++stats_.rejected_queue_full;
    } else if (pending_.size() >= params_.max_pending) {
      rejection.outcome = RequestOutcome::kRejected;
      rejection.error = "queue full";
      ++stats_.rejected_queue_full;
    } else if (params_.admission_deadline_check && deadline_ms > 0.0 &&
               stats_.ewma_solve_ms > 0.0 &&
               static_cast<double>(pending_.size()) * stats_.ewma_solve_ms /
                       static_cast<double>(pool_.size()) >
                   deadline_ms) {
      // The queue wait alone is predicted to consume the whole budget; the
      // honest answer is an immediate rejection, not a future shed.
      rejection.outcome = RequestOutcome::kRejected;
      rejection.error = "deadline unattainable at current backlog";
      ++stats_.rejected_deadline;
    } else {
      Pending item;
      item.id = id;
      item.request = std::move(request);
      item.callback = std::move(callback);
      item.deadline_ms = deadline_ms;
      item.token = util::CancelToken::cancellable();
      if (deadline_ms > 0.0) {
        // Anchored at admission: queue time spends the same budget.
        item.token = item.token.with_deadline_ms(deadline_ms);
      }
      const PendingKey key{item.request.priority,
                           deadline_ms > 0.0
                               ? deadline_ms
                               : std::numeric_limits<double>::infinity(),
                           id};
      pending_index_.emplace(id, key);
      pending_.emplace(key, std::move(item));
      admitted = true;
    }
  }

  if (!admitted) {
    rejection.id = id;
    if (callback) callback(std::move(rejection));
    return id;
  }
  pool_.submit([this] { run_one(); });
  return id;
}

std::future<RebalanceResponse> RebalanceService::submit(RebalanceRequest request) {
  auto promise = std::make_shared<std::promise<RebalanceResponse>>();
  auto future = promise->get_future();
  submit(std::move(request), [promise](RebalanceResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

bool RebalanceService::cancel(std::uint64_t id) {
  Pending item;
  bool was_pending = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto idx = pending_index_.find(id);
    if (idx != pending_index_.end()) {
      auto it = pending_.find(idx->second);
      item = std::move(it->second);
      pending_.erase(it);
      pending_index_.erase(idx);
      // Count as running until finish() has delivered the callback, so
      // drain() cannot return under it.
      running_.emplace(item.id, item.token);
      was_pending = true;
    } else {
      auto run = running_.find(id);
      if (run == running_.end()) return false;
      run->second.cancel();
      return true;
    }
  }
  RebalanceResponse response;
  response.id = item.id;
  response.outcome = RequestOutcome::kCancelled;
  response.queue_ms = item.queued.elapsed_ms();
  response.total_ms = response.queue_ms;
  finish(std::move(item), std::move(response));
  return was_pending;
}

void RebalanceService::run_one() {
  Pending item;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.empty()) {
      idle_cv_.notify_all();
      return;  // drained by a cancel or shutdown
    }
    auto it = pending_.begin();
    item = std::move(it->second);
    pending_.erase(it);
    pending_index_.erase(item.id);
    running_.emplace(item.id, item.token);
  }

  RebalanceResponse response;
  response.id = item.id;
  response.queue_ms = item.queued.elapsed_ms();

  if (item.token.cancel_requested()) {
    response.outcome = RequestOutcome::kCancelled;
    response.total_ms = item.queued.elapsed_ms();
  } else if (params_.shed_expired && item.deadline_ms > 0.0 &&
             response.queue_ms > item.deadline_ms) {
    response.outcome = RequestOutcome::kShed;
    response.error = "deadline passed while queued";
    response.total_ms = item.queued.elapsed_ms();
  } else {
    response = solve_item(item);
  }
  finish(std::move(item), std::move(response));
}

RebalanceResponse RebalanceService::solve_item(Pending& item) {
  RebalanceResponse response;
  response.id = item.id;
  response.queue_ms = item.queued.elapsed_ms();
  try {
    const lrp::LrpProblem problem(item.request.task_loads,
                                  item.request.task_counts);
    auto checkout = cache_.checkout(problem, item.request.variant,
                                    item.request.k, item.request.build);
    response.cache_hit = checkout.hit != CacheHit::kMiss;
    response.cache_retargeted = checkout.hit == CacheHit::kRetarget;

    anneal::HybridSolverParams hybrid = item.request.hybrid;
    if (hybrid.threads == 0) hybrid.threads = params_.solver_threads;
    hybrid.cancel = item.token;
    hybrid.reuse_presolve = &checkout.session->presolve;
    hybrid.reuse_pairs = &checkout.session->pairs;
    if (hybrid.initial_hint.empty() && !checkout.session->warm_hint.empty()) {
      hybrid.initial_hint = checkout.session->warm_hint;
    }

    util::WallTimer solve_timer;
    lrp::QcqmDiagnostics diag;
    lrp::SolveOutput out =
        lrp::solve_lrp_cqm(problem, checkout.session->model, hybrid, &diag);
    response.solve_ms = solve_timer.elapsed_ms();

    checkout.session->warm_hint = std::move(diag.best_state);
    cache_.give_back(std::move(checkout));

    response.metrics = lrp::evaluate_plan(problem, out.plan);
    response.feasible = out.feasible;
    response.budget_expired = diag.hybrid_stats.budget_expired;
    response.plan = std::move(out.plan);
    response.outcome = item.token.cancel_requested()
                           ? RequestOutcome::kCancelled
                           : RequestOutcome::kOk;
  } catch (const std::exception& e) {
    response.outcome = RequestOutcome::kFailed;
    response.error = e.what();
  }
  response.total_ms = item.queued.elapsed_ms();
  return response;
}

void RebalanceService::finish(Pending item, RebalanceResponse response) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    switch (response.outcome) {
      case RequestOutcome::kOk:
        ++stats_.completed;
        if (item.deadline_ms > 0.0) {
          if (response.total_ms <= item.deadline_ms) {
            ++stats_.deadline_met;
          } else {
            ++stats_.deadline_missed;
          }
        }
        break;
      case RequestOutcome::kShed: ++stats_.shed; break;
      case RequestOutcome::kCancelled: ++stats_.cancelled; break;
      case RequestOutcome::kFailed: ++stats_.failed; break;
      case RequestOutcome::kRejected: break;  // counted at admission
    }
    if (response.budget_expired) ++stats_.budget_expired;
    if (response.solve_ms > 0.0) {
      stats_.ewma_solve_ms = stats_.ewma_solve_ms == 0.0
                                 ? response.solve_ms
                                 : 0.8 * stats_.ewma_solve_ms +
                                       0.2 * response.solve_ms;
      stats_.solve_ms.add(response.solve_ms);
      stats_.solve_hist.add(response.solve_ms);
    }
    stats_.queue_ms.add(response.queue_ms);
    stats_.total_ms.add(response.total_ms);
    stats_.total_hist.add(response.total_ms);
  }
  if (item.callback) item.callback(std::move(response));
  // Only now is the request truly finished: drain() must not return while a
  // callback is still writing (e.g. to a connection about to be closed).
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_.erase(item.id);
    idle_cv_.notify_all();
  }
}

void RebalanceService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_.empty() && running_.empty(); });
}

ServiceStats RebalanceService::stats() const {
  ServiceStats snapshot(params_.latency_hist_max_ms, params_.latency_hist_bins);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = stats_;
    snapshot.pending = pending_.size();
    snapshot.running = running_.size();
  }
  snapshot.cache = cache_.stats();
  return snapshot;
}

}  // namespace qulrb::service
