#include "service/rebalance_service.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <limits>
#include <utility>
#include <vector>

#include "lrp/quantum_solver.hpp"
#include "runtime/bsp_sim.hpp"
#include "util/error.hpp"

namespace qulrb::service {

using runtime::BspSimulator;

const char* to_string(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk: return "ok";
    case RequestOutcome::kRejected: return "rejected";
    case RequestOutcome::kShed: return "shed";
    case RequestOutcome::kCancelled: return "cancelled";
    case RequestOutcome::kFailed: return "failed";
  }
  return "?";
}

RebalanceService::RebalanceService(ServiceParams params)
    : params_(params),
      cache_(params.cache_capacity),
      stats_(params.latency_hist_max_ms, params.latency_hist_bins),
      pool_(params.num_workers) {
  // Structured labels: the registry serializes and escapes the values, so
  // the exposition stays conformant even if a label ever carries quotes.
  using Labels = obs::MetricsRegistry::Labels;
  const char* outcome_help = "Finished requests by outcome";
  h_.submitted = &registry_.counter("qulrb_service_submitted_total",
                                    "Requests offered to the service");
  h_.completed = &registry_.counter("qulrb_service_requests_total",
                                    outcome_help,
                                    Labels{{"outcome", "completed"}});
  h_.rejected_queue_full =
      &registry_.counter("qulrb_service_requests_total", outcome_help,
                         Labels{{"outcome", "rejected_queue_full"}});
  h_.rejected_deadline =
      &registry_.counter("qulrb_service_requests_total", outcome_help,
                         Labels{{"outcome", "rejected_deadline"}});
  h_.shed = &registry_.counter("qulrb_service_requests_total", outcome_help,
                               Labels{{"outcome", "shed_expired"}});
  h_.cancelled = &registry_.counter("qulrb_service_requests_total",
                                    outcome_help,
                                    Labels{{"outcome", "cancelled"}});
  h_.failed = &registry_.counter("qulrb_service_requests_total", outcome_help,
                                 Labels{{"outcome", "failed"}});
  h_.deadline_met =
      &registry_.counter("qulrb_service_deadline_total",
                         "Completed requests vs their deadline",
                         Labels{{"result", "met"}});
  h_.deadline_missed =
      &registry_.counter("qulrb_service_deadline_total",
                         "Completed requests vs their deadline",
                         Labels{{"result", "missed"}});
  h_.budget_expired =
      &registry_.counter("qulrb_service_budget_expired_total",
                         "Solves truncated by their time budget");
  h_.queue_depth = &registry_.gauge("qulrb_service_queue_depth",
                                    "Requests pending right now");
  h_.queue_depth_hwm =
      &registry_.gauge("qulrb_service_queue_depth_hwm",
                       "Most requests ever pending at once");
  h_.running = &registry_.gauge("qulrb_service_running",
                                "Requests being solved right now");
  h_.ewma_solve_ms =
      &registry_.gauge("qulrb_service_ewma_solve_ms",
                       "Admission controller's solve-time predictor (ms)");
  h_.queue_ms = &registry_.histogram("qulrb_service_queue_ms",
                                     "Time spent queued before a worker (ms)");
  h_.solve_ms = &registry_.histogram("qulrb_service_solve_ms",
                                     "Solver wall time per request (ms)");
  h_.total_ms = &registry_.histogram("qulrb_service_total_ms",
                                     "Admission-to-response wall time (ms)");
  cache_.attach_metrics(registry_);
  if (params_.flight != nullptr) {
    f_.request = params_.flight->intern("request");
    f_.deadline_miss = params_.flight->intern("deadline-miss");
    f_.queue_depth = params_.flight->intern("queue-depth");
  }
}

RebalanceService::~RebalanceService() {
  std::vector<Pending> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (auto& [key, item] : pending_) orphaned.push_back(std::move(item));
    pending_.clear();
    pending_index_.clear();
    queue_depth_relaxed_.store(0, std::memory_order_relaxed);
    // Trip running solves so shutdown is prompt; they answer kCancelled with
    // their incumbent through the normal finish path.
    for (auto& [id, token] : running_) token.cancel();
  }
  for (auto& item : orphaned) {
    RebalanceResponse response;
    response.id = item.id;
    response.outcome = RequestOutcome::kCancelled;
    response.error = "service shutting down";
    h_.cancelled->inc();
    if (item.callback) item.callback(std::move(response));
  }
  // ~ThreadPool (first member destroyed) drains the remaining drain-one
  // tasks, which find the queue empty, and waits out the cancelled solves.
}

std::uint64_t RebalanceService::submit(RebalanceRequest request, Callback callback) {
  RebalanceResponse rejection;
  std::uint64_t id = 0;
  bool admitted = false;

  h_.submitted->inc();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;

    double deadline_ms = request.deadline_ms > 0.0 ? request.deadline_ms
                                                   : params_.default_deadline_ms;
    if (stopping_) {
      rejection.outcome = RequestOutcome::kRejected;
      rejection.error = "service shutting down";
      h_.rejected_queue_full->inc();
    } else if (pending_.size() >= params_.max_pending) {
      rejection.outcome = RequestOutcome::kRejected;
      rejection.error = "queue full";
      h_.rejected_queue_full->inc();
    } else if (params_.admission_deadline_check && deadline_ms > 0.0 &&
               stats_.ewma_solve_ms > 0.0 &&
               static_cast<double>(pending_.size()) * stats_.ewma_solve_ms /
                       static_cast<double>(pool_.size()) >
                   deadline_ms) {
      // The queue wait alone is predicted to consume the whole budget; the
      // honest answer is an immediate rejection, not a future shed.
      rejection.outcome = RequestOutcome::kRejected;
      rejection.error = "deadline unattainable at current backlog";
      h_.rejected_deadline->inc();
    } else {
      Pending item;
      item.id = id;
      item.request = std::move(request);
      item.callback = std::move(callback);
      item.deadline_ms = deadline_ms;
      item.token = util::CancelToken::cancellable();
      if (deadline_ms > 0.0) {
        // Anchored at admission: queue time spends the same budget.
        item.token = item.token.with_deadline_ms(deadline_ms);
      }
      if (params_.record_traces) {
        // Epoch = admission, so the trace's t=0 is when the request entered
        // the service and the queue wait is visible as a span from 0. The
        // context carries the request id into every layer the solve touches.
        // A router-forwarded request supplies its own id ("rid"), so the
        // exported document correlates with the router's books rather than
        // this backend's local sequence.
        const std::uint64_t rid =
            item.request.trace_id != 0 ? item.request.trace_id : id;
        item.trace = obs::TraceContext::mint(rid, "req-" + std::to_string(rid));
        item.trace.recorder()->annotate(
            "priority", std::to_string(item.request.priority));
        if (item.request.router_ms > 0.0) {
          // The routed hop happened before this recorder's epoch; render it
          // as a span at t=0 so the document still reads router -> queue ->
          // solve left to right.
          item.trace.recorder()->span("router-admission", "router", 0, 0.0,
                                      item.request.router_ms * 1000.0);
        }
      }
      const PendingKey key{item.request.priority,
                           deadline_ms > 0.0
                               ? deadline_ms
                               : std::numeric_limits<double>::infinity(),
                           id};
      pending_index_.emplace(id, key);
      pending_.emplace(key, std::move(item));
      admitted = true;
      queue_depth_relaxed_.store(pending_.size(), std::memory_order_relaxed);
      const auto depth = static_cast<double>(pending_.size());
      h_.queue_depth->set(depth);
      h_.queue_depth_hwm->update_max(depth);
    }
  }

  if (!admitted) {
    rejection.id = id;
    if (callback) callback(std::move(rejection));
    return id;
  }
  if (params_.flight != nullptr) {
    params_.flight->counter(f_.queue_depth, 0, id,
                            static_cast<double>(queue_depth()));
  }
  if (params_.slo != nullptr) {
    params_.slo->note_queue_depth(queue_depth(), id, now_ms());
  }
  pool_.submit([this] { run_one(); });
  return id;
}

std::future<RebalanceResponse> RebalanceService::submit(RebalanceRequest request) {
  auto promise = std::make_shared<std::promise<RebalanceResponse>>();
  auto future = promise->get_future();
  submit(std::move(request), [promise](RebalanceResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

bool RebalanceService::cancel(std::uint64_t id) {
  Pending item;
  bool was_pending = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto idx = pending_index_.find(id);
    if (idx != pending_index_.end()) {
      auto it = pending_.find(idx->second);
      item = std::move(it->second);
      pending_.erase(it);
      pending_index_.erase(idx);
      queue_depth_relaxed_.store(pending_.size(), std::memory_order_relaxed);
      h_.queue_depth->set(static_cast<double>(pending_.size()));
      // Count as running until finish() has delivered the callback, so
      // drain() cannot return under it.
      running_.emplace(item.id, item.token);
      running_relaxed_.store(running_.size(), std::memory_order_relaxed);
      was_pending = true;
    } else {
      auto run = running_.find(id);
      if (run == running_.end()) return false;
      run->second.cancel();
      return true;
    }
  }
  RebalanceResponse response;
  response.id = item.id;
  response.outcome = RequestOutcome::kCancelled;
  response.queue_ms = item.queued.elapsed_ms();
  response.total_ms = response.queue_ms;
  finish(std::move(item), std::move(response));
  return was_pending;
}

void RebalanceService::run_one() {
  Pending item;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.empty()) {
      idle_cv_.notify_all();
      return;  // drained by a cancel or shutdown
    }
    auto it = pending_.begin();
    item = std::move(it->second);
    pending_.erase(it);
    pending_index_.erase(item.id);
    running_.emplace(item.id, item.token);
    queue_depth_relaxed_.store(pending_.size(), std::memory_order_relaxed);
    running_relaxed_.store(running_.size(), std::memory_order_relaxed);
    h_.queue_depth->set(static_cast<double>(pending_.size()));
    h_.running->set(static_cast<double>(running_.size()));
  }

  RebalanceResponse response;
  response.id = item.id;
  response.queue_ms = item.queued.elapsed_ms();
  if (obs::Recorder* rec = item.trace.recorder()) {
    rec->span("queue-wait", "service", 0, 0.0, rec->now_us());
  }

  if (item.token.cancel_requested()) {
    response.outcome = RequestOutcome::kCancelled;
    response.total_ms = item.queued.elapsed_ms();
  } else if (params_.shed_expired && item.deadline_ms > 0.0 &&
             response.queue_ms > item.deadline_ms) {
    response.outcome = RequestOutcome::kShed;
    response.error = "deadline passed while queued";
    response.total_ms = item.queued.elapsed_ms();
  } else {
    response = solve_item(item);
  }
  finish(std::move(item), std::move(response));
}

RebalanceResponse RebalanceService::solve_item(Pending& item) {
  RebalanceResponse response;
  response.id = item.id;
  response.queue_ms = item.queued.elapsed_ms();
  // Tag this worker thread (and, via HybridSolverParams::flight_rid, the
  // solver pool threads) so CPU samples taken during the solve attribute to
  // this request. Unconditional and allocation-free: bitwise-identical
  // output with or without a profiler attached.
  obs::prof::RidScope rid_scope(item.request.trace_id != 0
                                    ? item.request.trace_id
                                    : item.id);
  obs::prof::PhaseScope solve_phase("solve");
  obs::Recorder* rec = item.trace.recorder();
  try {
    const lrp::LrpProblem problem(item.request.task_loads,
                                  item.request.task_counts);
    if (item.request.target_r_imb > 0.0) {
      item.target_objective = lrp::objective_target_for_imbalance(
          problem, item.request.target_r_imb);
    }
    obs::Recorder::Span checkout_span(rec, "session-checkout", "service", 0);
    auto checkout = cache_.checkout(problem, item.request.variant,
                                    item.request.k, item.request.build,
                                    item.trace);
    checkout_span.close();
    response.cache_hit = checkout.hit != CacheHit::kMiss;
    response.cache_retargeted = checkout.hit == CacheHit::kRetarget;
    cache_lookups_relaxed_.fetch_add(1, std::memory_order_relaxed);
    if (response.cache_hit) {
      cache_hits_relaxed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (rec != nullptr) {
      rec->annotate("cache", checkout.hit == CacheHit::kExact ? "exact"
                             : checkout.hit == CacheHit::kRetarget
                                 ? "retarget"
                                 : "miss");
    }

    anneal::HybridSolverParams hybrid = item.request.hybrid;
    if (hybrid.threads == 0) hybrid.threads = params_.solver_threads;
    hybrid.cancel = item.token;
    hybrid.reuse_presolve = &checkout.session->presolve;
    hybrid.reuse_pairs = &checkout.session->pairs;
    hybrid.recorder = rec;
    hybrid.trace = item.trace;
    hybrid.metrics = &registry_;
    hybrid.flight = params_.flight;
    hybrid.flight_rid =
        item.request.trace_id != 0 ? item.request.trace_id : item.id;
    if (hybrid.initial_hint.empty() && !checkout.session->warm_hint.empty()) {
      hybrid.initial_hint = checkout.session->warm_hint;
    }

    util::WallTimer solve_timer;
    lrp::QcqmDiagnostics diag;
    lrp::SolveOutput out =
        lrp::solve_lrp_cqm(problem, checkout.session->model, hybrid, &diag);
    response.solve_ms = solve_timer.elapsed_ms();

    checkout.session->warm_hint = std::move(diag.best_state);
    cache_.give_back(std::move(checkout));

    response.metrics = lrp::evaluate_plan(problem, out.plan);
    response.feasible = out.feasible;
    response.budget_expired = diag.hybrid_stats.budget_expired;
    response.replica_lanes = diag.hybrid_stats.replica_lanes;
    response.outcome = item.token.cancel_requested()
                           ? RequestOutcome::kCancelled
                           : RequestOutcome::kOk;

    if (item.request.simulate) {
      // Drive the BSP simulator on the plan we just produced; with tracing
      // on, its per-rank tracks land in this request's document right after
      // the solver spans.
      obs::Recorder::Span sim_span(rec, "bsp-sim", "service", 0);
      runtime::BspConfig sim;
      sim.iterations = std::max<std::size_t>(1, item.request.sim_iterations);
      sim.comp_threads =
          std::max<std::size_t>(1, item.request.sim_comp_threads);
      sim.trace = item.trace;
      const runtime::BspResult bsp = BspSimulator(sim).run(problem, out.plan);
      response.simulated = true;
      response.sim_first_iteration_ms = bsp.first_iteration_ms;
      response.sim_steady_iteration_ms = bsp.steady_iteration_ms;
      response.sim_migration_overhead_ms = bsp.migration_overhead_ms;
      response.sim_compute_imbalance = bsp.compute_imbalance;
      response.sim_parallel_efficiency = bsp.parallel_efficiency;
    }
    response.plan = std::move(out.plan);
  } catch (const std::exception& e) {
    response.outcome = RequestOutcome::kFailed;
    response.error = e.what();
  }
  response.total_ms = item.queued.elapsed_ms();
  return response;
}

void RebalanceService::finish(Pending item, RebalanceResponse response) {
  switch (response.outcome) {
    case RequestOutcome::kOk:
      h_.completed->inc();
      if (item.deadline_ms > 0.0) {
        if (response.total_ms <= item.deadline_ms) {
          h_.deadline_met->inc();
        } else {
          h_.deadline_missed->inc();
        }
      }
      break;
    case RequestOutcome::kShed: h_.shed->inc(); break;
    case RequestOutcome::kCancelled: h_.cancelled->inc(); break;
    case RequestOutcome::kFailed: h_.failed->inc(); break;
    case RequestOutcome::kRejected: break;  // counted at admission
  }
  if (response.budget_expired) h_.budget_expired->inc();
  if (response.solve_ms > 0.0) h_.solve_ms->observe(response.solve_ms);
  h_.queue_ms->observe(response.queue_ms);
  h_.total_ms->observe(response.total_ms);

  const bool deadline_missed = response.outcome == RequestOutcome::kOk &&
                               item.deadline_ms > 0.0 &&
                               response.total_ms > item.deadline_ms;
  const std::uint64_t rid =
      item.request.trace_id != 0 ? item.request.trace_id : item.id;
  if (params_.flight != nullptr) {
    const double end_us = params_.flight->now_us();
    params_.flight->record(f_.request, obs::FlightKind::kSpan, 0, rid, end_us,
                           response.total_ms * 1000.0, response.total_ms);
    if (deadline_missed) {
      params_.flight->instant(f_.deadline_miss, 0, rid,
                              response.total_ms - item.deadline_ms);
    }
  }
  if (params_.slo != nullptr &&
      response.outcome != RequestOutcome::kCancelled) {
    // Cancelled requests are the client's choice, not a service failure;
    // everything else (ok, shed, failed) counts against the objective. A
    // non-ok outcome is never "good" regardless of how fast it failed.
    params_.slo->record(item.request.priority, response.total_ms,
                        response.outcome == RequestOutcome::kOk,
                        deadline_missed, rid, now_ms());
  }

  // Convergence analysis + trace serialization outside the lock — both are
  // pure computation over the request's private recorder.
  std::string trace;
  if (obs::Recorder* rec = item.trace.recorder()) {
    obs::ConvergenceConfig conv;
    conv.target_objective = item.target_objective;
    const obs::ConvergenceReport report =
        obs::ConvergenceDiagnostics(conv).annotate(*rec);
    response.time_to_first_feasible_ms = report.time_to_first_feasible_ms;
    response.time_to_target_ms = report.time_to_target_ms;
    rec->annotate("outcome", to_string(response.outcome));
    trace = obs::to_perfetto_json(*rec);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (response.solve_ms > 0.0) {
      stats_.ewma_solve_ms = stats_.ewma_solve_ms == 0.0
                                 ? response.solve_ms
                                 : 0.8 * stats_.ewma_solve_ms +
                                       0.2 * response.solve_ms;
      h_.ewma_solve_ms->set(stats_.ewma_solve_ms);
      stats_.solve_ms.add(response.solve_ms);
      stats_.solve_hist.add(response.solve_ms);
    }
    stats_.queue_ms.add(response.queue_ms);
    stats_.total_ms.add(response.total_ms);
    stats_.total_hist.add(response.total_ms);
    if (!trace.empty()) {
      traces_.push_back(std::move(trace));
      while (traces_.size() > params_.trace_keep) traces_.pop_front();
    }
  }
  if (params_.event_log != nullptr) {
    obs::SolveEvent event;
    event.source = params_.event_source;
    event.request_id = item.id;
    event.solver = lrp::to_string(item.request.variant);
    event.outcome = to_string(response.outcome);
    event.feasible = response.feasible;
    if (response.plan.has_value()) {
      event.r_imb_before = response.metrics.imbalance_before;
      event.r_imb_after = response.metrics.imbalance_after;
      event.speedup = response.metrics.speedup;
      event.migrated = response.metrics.total_migrated;
    }
    if (response.replica_lanes > 0) {
      event.replicas = static_cast<std::int64_t>(response.replica_lanes);
    }
    event.runtime_ms = response.solve_ms;
    event.queue_ms = response.queue_ms;
    if (response.time_to_first_feasible_ms >= 0.0) {
      event.time_to_first_feasible_ms = response.time_to_first_feasible_ms;
    }
    if (response.time_to_target_ms >= 0.0) {
      event.time_to_target_ms = response.time_to_target_ms;
    }
    if (response.cache_hit) event.extra.emplace_back("cache", "hit");
    if (response.simulated) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f",
                    response.sim_steady_iteration_ms);
      event.extra.emplace_back("sim_steady_iteration_ms", buf);
    }
    params_.event_log->log(event);
  }

  if (item.callback) item.callback(std::move(response));
  // Only now is the request truly finished: drain() must not return while a
  // callback is still writing (e.g. to a connection about to be closed).
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_.erase(item.id);
    running_relaxed_.store(running_.size(), std::memory_order_relaxed);
    h_.running->set(static_cast<double>(running_.size()));
    idle_cv_.notify_all();
  }
}

std::size_t RebalanceService::shed_pending() {
  std::vector<Pending> shed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, item] : pending_) {
      // Count as running until finish() has delivered the callback, so a
      // following drain() cannot return under the delivery.
      running_.emplace(item.id, item.token);
      shed.push_back(std::move(item));
    }
    pending_.clear();
    pending_index_.clear();
    queue_depth_relaxed_.store(0, std::memory_order_relaxed);
    running_relaxed_.store(running_.size(), std::memory_order_relaxed);
    h_.queue_depth->set(0.0);
    h_.running->set(static_cast<double>(running_.size()));
  }
  for (auto& item : shed) {
    RebalanceResponse response;
    response.id = item.id;
    response.outcome = RequestOutcome::kCancelled;
    response.error = "shed at shutdown";
    response.queue_ms = item.queued.elapsed_ms();
    response.total_ms = response.queue_ms;
    finish(std::move(item), std::move(response));
  }
  return shed.size();
}

void RebalanceService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_.empty() && running_.empty(); });
}

ServiceStats RebalanceService::stats() const {
  ServiceStats snapshot(params_.latency_hist_max_ms, params_.latency_hist_bins);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = stats_;
    snapshot.pending = pending_.size();
    snapshot.running = running_.size();
  }
  // The event counters live in the registry; the snapshot mirrors them so the
  // ServiceStats API is unchanged for callers.
  snapshot.submitted = h_.submitted->value();
  snapshot.completed = h_.completed->value();
  snapshot.rejected_queue_full = h_.rejected_queue_full->value();
  snapshot.rejected_deadline = h_.rejected_deadline->value();
  snapshot.shed = h_.shed->value();
  snapshot.cancelled = h_.cancelled->value();
  snapshot.failed = h_.failed->value();
  snapshot.deadline_met = h_.deadline_met->value();
  snapshot.deadline_missed = h_.deadline_missed->value();
  snapshot.budget_expired = h_.budget_expired->value();
  snapshot.queue_depth_hwm =
      static_cast<std::size_t>(h_.queue_depth_hwm->value());
  snapshot.cache = cache_.stats();
  const std::uint64_t hits =
      snapshot.cache.exact_hits + snapshot.cache.retarget_hits;
  const std::uint64_t lookups = hits + snapshot.cache.misses;
  snapshot.cache_hit_rate =
      lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups)
                  : 0.0;
  return snapshot;
}

std::string RebalanceService::metrics_text() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    h_.queue_depth->set(static_cast<double>(pending_.size()));
    h_.running->set(static_cast<double>(running_.size()));
    h_.ewma_solve_ms->set(stats_.ewma_solve_ms);
  }
  proc_metrics_.update();
  return registry_.to_prometheus();
}

std::vector<std::string> RebalanceService::last_traces(std::size_t n) const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t count = std::min(n, traces_.size());
  out.reserve(count);
  for (std::size_t i = traces_.size() - count; i < traces_.size(); ++i) {
    out.push_back(traces_[i]);
  }
  return out;
}

}  // namespace qulrb::service
