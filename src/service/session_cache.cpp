#include "service/session_cache.hpp"

#include <utility>

namespace qulrb::service {

Session::Session(const lrp::LrpProblem& problem, lrp::CqmVariant variant,
                 std::int64_t k, const lrp::CqmBuildOptions& options)
    : model(problem, variant, k, options),
      presolve(model::presolve(model.cqm())),
      pairs(anneal::PairMoveIndex::build(model.cqm())),
      loads(problem.task_loads()) {}

bool Session::retarget(const lrp::LrpProblem& problem) {
  if (!model.retarget(problem)) return false;
  // Presolve fixings and pair classes follow the coefficients, so they must
  // track the retarget. The CSR incidence layout inside the model does not —
  // that reuse is the point of the session.
  presolve = model::presolve(model.cqm());
  pairs = anneal::PairMoveIndex::build(model.cqm());
  loads = problem.task_loads();
  return true;
}

std::size_t SessionCache::KeyHash::operator()(const Key& key) const noexcept {
  std::size_t h = std::hash<std::int64_t>{}(key.k);
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::size_t>(key.variant));
  mix(key.paper_coefficients ? 1u : 2u);
  for (const std::int64_t c : key.task_counts) {
    mix(std::hash<std::int64_t>{}(c));
  }
  return h;
}

SessionCache::Checkout SessionCache::checkout(const lrp::LrpProblem& problem,
                                              lrp::CqmVariant variant,
                                              std::int64_t k,
                                              const lrp::CqmBuildOptions& options,
                                              const obs::TraceContext& trace) {
  obs::Recorder* const rec = trace.recorder();
  Checkout out;
  out.key = Key{problem.task_counts(), variant, k,
                options.use_paper_coefficient_set};

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(out.key);
    if (it != slots_.end()) {
      out.session = std::move(it->second.session);
      lru_.erase(it->second.lru_it);
      slots_.erase(it);
    }
  }

  if (out.session != nullptr) {
    if (out.session->loads == problem.task_loads()) {
      out.hit = CacheHit::kExact;
      if (m_exact_hits_ != nullptr) m_exact_hits_->inc();
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.exact_hits;
      return out;
    }
    bool retargeted = false;
    {
      obs::Recorder::Span span(rec, "session-retarget", "cache", 0);
      retargeted = out.session->retarget(problem);
    }
    if (retargeted) {
      out.hit = CacheHit::kRetarget;
      if (m_retarget_hits_ != nullptr) m_retarget_hits_->inc();
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.retarget_hits;
      return out;
    }
    out.session.reset();  // zero-load pattern changed: rebuild cold
  }

  {
    obs::Recorder::Span span(rec, "session-build", "cache", 0);
    out.session = std::make_unique<Session>(problem, variant, k, options);
  }
  out.hit = CacheHit::kMiss;
  if (m_misses_ != nullptr) m_misses_->inc();
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  return out;
}

void SessionCache::give_back(Checkout checkout) {
  if (checkout.session == nullptr || capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(checkout.key);
  if (it != slots_.end()) {
    // Latest return wins: its warm hint is the freshest.
    it->second.session = std::move(checkout.session);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(checkout.key);
  slots_.emplace(std::move(checkout.key),
                 Slot{std::move(checkout.session), lru_.begin()});
  while (slots_.size() > capacity_) {
    slots_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    if (m_evictions_ != nullptr) m_evictions_->inc();
  }
}

void SessionCache::attach_metrics(obs::MetricsRegistry& registry) {
  using Labels = obs::MetricsRegistry::Labels;
  m_exact_hits_ = &registry.counter("qulrb_cache_hits_total",
                                    "Session-cache hits by kind",
                                    Labels{{"kind", "exact"}});
  m_retarget_hits_ = &registry.counter("qulrb_cache_hits_total",
                                       "Session-cache hits by kind",
                                       Labels{{"kind", "retarget"}});
  m_misses_ = &registry.counter("qulrb_cache_misses_total",
                                "Session-cache cold builds");
  m_evictions_ = &registry.counter("qulrb_cache_evictions_total",
                                   "Session-cache LRU evictions");
}

SessionCache::Stats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SessionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

}  // namespace qulrb::service
