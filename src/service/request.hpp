#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "anneal/hybrid.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/metrics.hpp"
#include "lrp/plan.hpp"

namespace qulrb::service {

/// One rebalancing request as submitted to the service. The instance is
/// carried as raw vectors (not an LrpProblem) so requests are cheap to stage
/// on queues and straight to parse off the wire; the service validates and
/// materialises the problem when the request is picked up.
struct RebalanceRequest {
  std::vector<double> task_loads;        ///< w_i per process
  std::vector<std::int64_t> task_counts; ///< n_i per process
  lrp::CqmVariant variant = lrp::CqmVariant::kReduced;
  std::int64_t k = 0;                    ///< migration bound
  lrp::CqmBuildOptions build;

  /// Higher runs first; ties break by (deadline, arrival order).
  int priority = 0;
  /// Wall-clock budget from submission, 0 = none. Enforced three times:
  /// at admission (reject when the queue wait alone would blow it), at
  /// dispatch (shed if already late), and inside the solve (the worker's
  /// CancelToken carries the remaining budget into every sweep loop).
  double deadline_ms = 0.0;

  /// Solver knobs. threads == 0 is rewritten to the service's per-solve
  /// thread count (the pool provides the concurrency; individual solves
  /// should not each claim the whole machine).
  anneal::HybridSolverParams hybrid;

  /// Target quality for the convergence telemetry: when > 0 the service
  /// reports time-to-target as the moment the solver's incumbent guaranteed
  /// R_imb <= target_r_imb (via lrp::objective_target_for_imbalance). Only
  /// meaningful when the request is traced.
  double target_r_imb = 0.0;

  /// Drive the BSP simulator on the solved plan and report the simulated
  /// execution alongside the solve — with tracing on, the per-rank tracks
  /// land in the same Perfetto document as the solver spans.
  bool simulate = false;
  std::size_t sim_iterations = 10;    ///< BSP outer time steps
  std::size_t sim_comp_threads = 1;   ///< task-executing threads per process

  /// Upstream-assigned trace identity (wire field "rid"). When a front-end
  /// router fans requests across backends, it mints one globally unique id
  /// per routed request and forwards it here, so the backend's Perfetto
  /// document carries the router's request id in its metadata instead of the
  /// backend-local sequence number — one routed request, one correlated
  /// trace. 0 = none; the service uses its own id.
  std::uint64_t trace_id = 0;
  /// Time the request spent in the upstream router before it was forwarded
  /// (wire field "router_ms"). Recorded as a "router-admission" span at the
  /// start of the trace so the routed hop is visible in the same document.
  double router_ms = 0.0;
};

enum class RequestOutcome : std::uint8_t {
  kOk,         ///< solved (possibly on a truncated budget — see budget_expired)
  kRejected,   ///< refused at admission: queue full or deadline unattainable
  kShed,       ///< dequeued after its deadline had already passed; not solved
  kCancelled,  ///< cancelled; a running solve still reports its incumbent plan
  kFailed,     ///< invalid instance or internal solver error
};

const char* to_string(RequestOutcome outcome);

struct RebalanceResponse {
  std::uint64_t id = 0;
  RequestOutcome outcome = RequestOutcome::kFailed;
  std::string error;  ///< set for kRejected / kShed / kFailed

  /// Present for kOk and for kCancelled when the solve was already running.
  std::optional<lrp::MigrationPlan> plan;
  lrp::RebalanceMetrics metrics;
  bool feasible = false;
  bool budget_expired = false;  ///< solve returned an incumbent at the deadline
  bool cache_hit = false;       ///< session cache reused a built model
  bool cache_retargeted = false;///< hit required re-pointing at new loads
  /// Replica-bank width the solve's sampling portfolio ran with
  /// (HybridSolveStats::replica_lanes); 0 = never reached the portfolio.
  std::size_t replica_lanes = 0;

  double queue_ms = 0.0;  ///< admission -> dispatch
  double solve_ms = 0.0;  ///< dispatch -> solver done
  double total_ms = 0.0;  ///< admission -> response

  /// Convergence telemetry (traced requests only; -1 = not observed).
  double time_to_first_feasible_ms = -1.0;
  double time_to_target_ms = -1.0;

  /// BSP simulation results (present when the request asked to simulate).
  bool simulated = false;
  double sim_first_iteration_ms = 0.0;
  double sim_steady_iteration_ms = 0.0;
  double sim_migration_overhead_ms = 0.0;
  double sim_compute_imbalance = 0.0;
  double sim_parallel_efficiency = 0.0;
};

}  // namespace qulrb::service
