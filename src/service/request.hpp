#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "anneal/hybrid.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/metrics.hpp"
#include "lrp/plan.hpp"

namespace qulrb::service {

/// One rebalancing request as submitted to the service. The instance is
/// carried as raw vectors (not an LrpProblem) so requests are cheap to stage
/// on queues and straight to parse off the wire; the service validates and
/// materialises the problem when the request is picked up.
struct RebalanceRequest {
  std::vector<double> task_loads;        ///< w_i per process
  std::vector<std::int64_t> task_counts; ///< n_i per process
  lrp::CqmVariant variant = lrp::CqmVariant::kReduced;
  std::int64_t k = 0;                    ///< migration bound
  lrp::CqmBuildOptions build;

  /// Higher runs first; ties break by (deadline, arrival order).
  int priority = 0;
  /// Wall-clock budget from submission, 0 = none. Enforced three times:
  /// at admission (reject when the queue wait alone would blow it), at
  /// dispatch (shed if already late), and inside the solve (the worker's
  /// CancelToken carries the remaining budget into every sweep loop).
  double deadline_ms = 0.0;

  /// Solver knobs. threads == 0 is rewritten to the service's per-solve
  /// thread count (the pool provides the concurrency; individual solves
  /// should not each claim the whole machine).
  anneal::HybridSolverParams hybrid;
};

enum class RequestOutcome : std::uint8_t {
  kOk,         ///< solved (possibly on a truncated budget — see budget_expired)
  kRejected,   ///< refused at admission: queue full or deadline unattainable
  kShed,       ///< dequeued after its deadline had already passed; not solved
  kCancelled,  ///< cancelled; a running solve still reports its incumbent plan
  kFailed,     ///< invalid instance or internal solver error
};

const char* to_string(RequestOutcome outcome);

struct RebalanceResponse {
  std::uint64_t id = 0;
  RequestOutcome outcome = RequestOutcome::kFailed;
  std::string error;  ///< set for kRejected / kShed / kFailed

  /// Present for kOk and for kCancelled when the solve was already running.
  std::optional<lrp::MigrationPlan> plan;
  lrp::RebalanceMetrics metrics;
  bool feasible = false;
  bool budget_expired = false;  ///< solve returned an incumbent at the deadline
  bool cache_hit = false;       ///< session cache reused a built model
  bool cache_retargeted = false;///< hit required re-pointing at new loads

  double queue_ms = 0.0;  ///< admission -> dispatch
  double solve_ms = 0.0;  ///< dispatch -> solver done
  double total_ms = 0.0;  ///< admission -> response
};

}  // namespace qulrb::service
