#include "model/cqm.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qulrb::model {

std::string to_string(Sense s) {
  switch (s) {
    case Sense::LE: return "<=";
    case Sense::GE: return ">=";
    case Sense::EQ: return "==";
  }
  return "?";
}

VarId CqmModel::add_variable(std::string name) {
  const auto id = static_cast<VarId>(var_names_.size());
  var_names_.push_back(std::move(name));
  linear_.push_back(0.0);
  invalidate_incidence();
  return id;
}

void CqmModel::add_objective_linear(VarId v, double coeff) {
  util::require(v < num_variables(), "CqmModel: objective variable out of range");
  linear_[v] += coeff;
}

void CqmModel::add_objective_quadratic(VarId i, VarId j, double coeff) {
  util::require(i < num_variables() && j < num_variables(),
                "CqmModel: objective variable out of range");
  if (i == j) {
    linear_[i] += coeff;  // x^2 == x
    return;
  }
  if (i > j) std::swap(i, j);
  quadratic_.push_back({i, j, coeff});
  invalidate_incidence();
}

std::size_t CqmModel::add_squared_group(LinearExpr expr, double weight) {
  expr.normalize();
  for (const auto& t : expr.terms()) {
    util::require(t.var < num_variables(), "CqmModel: group variable out of range");
  }
  groups_.push_back({std::move(expr), weight});
  invalidate_incidence();
  return groups_.size() - 1;
}

std::size_t CqmModel::add_constraint(LinearExpr lhs, Sense sense, double rhs,
                                     std::string label) {
  lhs.normalize();
  for (const auto& t : lhs.terms()) {
    util::require(t.var < num_variables(), "CqmModel: constraint variable out of range");
  }
  rhs -= lhs.constant();
  lhs.add_constant(-lhs.constant());
  constraints_.push_back({std::move(lhs), sense, rhs, std::move(label)});
  invalidate_incidence();
  return constraints_.size() - 1;
}

namespace {

/// Same variables in the same order (both exprs normalized).
bool same_pattern(const LinearExpr& a, const LinearExpr& b) {
  const auto ta = a.terms();
  const auto tb = b.terms();
  if (ta.size() != tb.size()) return false;
  for (std::size_t t = 0; t < ta.size(); ++t) {
    if (ta[t].var != tb[t].var) return false;
  }
  return true;
}

/// Entry for `index` in a CSR row that is ascending by index.
template <typename Entry>
Entry* find_in_row(std::span<Entry> row, std::uint32_t index) {
  auto it = std::lower_bound(
      row.begin(), row.end(), index,
      [](const Entry& e, std::uint32_t idx) { return e.index < idx; });
  return (it != row.end() && it->index == index) ? &*it : nullptr;
}

}  // namespace

bool CqmModel::reset_group_expr(std::size_t g, LinearExpr expr) {
  util::require(g < groups_.size(), "CqmModel: group index out of range");
  expr.normalize();
  auto& group = groups_[g];
  if (!same_pattern(group.expr, expr)) return false;
  group.expr = std::move(expr);
  if (!incidence_valid_) return true;

  const auto gid = static_cast<std::uint32_t>(g);
  const double w = group.weight;
  for (const auto& t : group.expr.terms()) {
    auto* inc = find_in_row(group_incidence_.mutable_row(t.var), gid);
    auto* ker = find_in_row(group_kernel_.mutable_row(t.var), gid);
    util::ensure(inc != nullptr && ker != nullptr,
                 "CqmModel: incidence cache out of sync with group pattern");
    inc->coeff = t.coeff;
    ker->alpha = 2.0 * w * t.coeff;
    ker->beta = w * t.coeff * t.coeff;
    ker->coeff = t.coeff;
  }
  return true;
}

bool CqmModel::reset_constraint(std::size_t c, LinearExpr lhs, double rhs) {
  util::require(c < constraints_.size(), "CqmModel: constraint index out of range");
  lhs.normalize();
  rhs -= lhs.constant();
  lhs.add_constant(-lhs.constant());
  auto& con = constraints_[c];
  if (!same_pattern(con.lhs, lhs)) return false;
  con.lhs = std::move(lhs);
  con.rhs = rhs;
  if (!incidence_valid_) return true;

  const auto cid = static_cast<std::uint32_t>(c);
  for (const auto& t : con.lhs.terms()) {
    auto* inc = find_in_row(constraint_incidence_.mutable_row(t.var), cid);
    util::ensure(inc != nullptr,
                 "CqmModel: incidence cache out of sync with constraint pattern");
    inc->coeff = t.coeff;
  }
  rhs_flat_[c] = rhs;
  return true;
}

std::size_t CqmModel::num_equality_constraints() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(constraints_.begin(), constraints_.end(),
                    [](const Constraint& c) { return c.sense == Sense::EQ; }));
}

std::size_t CqmModel::num_inequality_constraints() const noexcept {
  return constraints_.size() - num_equality_constraints();
}

double CqmModel::objective_value(std::span<const std::uint8_t> state) const {
  util::require(state.size() == num_variables(), "CqmModel: state size mismatch");
  double e = objective_offset_;
  for (std::size_t i = 0; i < linear_.size(); ++i) {
    if (state[i]) e += linear_[i];
  }
  for (const auto& q : quadratic_) {
    if (state[q.i] && state[q.j]) e += q.coeff;
  }
  for (const auto& g : groups_) {
    const double v = g.expr.evaluate(state);
    e += g.weight * v * v;
  }
  return e;
}

double CqmModel::constraint_activity(std::size_t c,
                                     std::span<const std::uint8_t> state) const {
  util::require(c < constraints_.size(), "CqmModel: constraint index out of range");
  return constraints_[c].lhs.evaluate(state);
}

double CqmModel::constraint_violation(std::size_t c,
                                      std::span<const std::uint8_t> state) const {
  const auto& con = constraints_.at(c);
  return violation_of(con.sense, con.lhs.evaluate(state), con.rhs);
}

double CqmModel::total_violation(std::span<const std::uint8_t> state) const {
  double v = 0.0;
  for (std::size_t c = 0; c < constraints_.size(); ++c) {
    v += constraint_violation(c, state);
  }
  return v;
}

bool CqmModel::is_feasible(std::span<const std::uint8_t> state, double tol) const {
  for (std::size_t c = 0; c < constraints_.size(); ++c) {
    if (constraint_violation(c, state) > tol) return false;
  }
  return true;
}

void CqmModel::build_incidence() const {
  const std::size_t n = num_variables();
  // Rows come out ascending by group / constraint index because the fill
  // callbacks iterate those containers in index order (CsrRows::build keeps
  // per-row emission order). This ordering is what makes the flip kernels
  // and pair-move merges deterministic across platforms.
  group_incidence_ = CsrRows<Incidence>::build(n, [&](auto&& emit) {
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      for (const auto& t : groups_[g].expr.terms()) {
        emit(t.var, Incidence{static_cast<std::uint32_t>(g), t.coeff});
      }
    }
  });
  group_kernel_ = CsrRows<GroupKernelTerm>::build(n, [&](auto&& emit) {
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      const double w = groups_[g].weight;
      for (const auto& t : groups_[g].expr.terms()) {
        emit(t.var, GroupKernelTerm{static_cast<std::uint32_t>(g),
                                    2.0 * w * t.coeff, w * t.coeff * t.coeff,
                                    t.coeff});
      }
    }
  });
  constraint_incidence_ = CsrRows<Incidence>::build(n, [&](auto&& emit) {
    for (std::size_t c = 0; c < constraints_.size(); ++c) {
      for (const auto& t : constraints_[c].lhs.terms()) {
        emit(t.var, Incidence{static_cast<std::uint32_t>(c), t.coeff});
      }
    }
  });
  // Quadratic rows ascending by `other`: emit from terms sorted by (i, j).
  std::vector<QuadraticTerm> sorted = quadratic_;
  std::sort(sorted.begin(), sorted.end(),
            [](const QuadraticTerm& a, const QuadraticTerm& b) {
              return a.i != b.i ? a.i < b.i : a.j < b.j;
            });
  quadratic_incidence_ = CsrRows<QuadNeighbor>::build(n, [&](auto&& emit) {
    for (const auto& q : sorted) {
      emit(q.i, QuadNeighbor{q.j, q.coeff});
      emit(q.j, QuadNeighbor{q.i, q.coeff});
    }
  });
  sense_flat_.resize(constraints_.size());
  rhs_flat_.resize(constraints_.size());
  for (std::size_t c = 0; c < constraints_.size(); ++c) {
    sense_flat_[c] = constraints_[c].sense;
    rhs_flat_[c] = constraints_[c].rhs;
  }
  group_weight_flat_.resize(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    group_weight_flat_[g] = groups_[g].weight;
  }
  incidence_valid_ = true;
}

const CsrRows<CqmModel::Incidence>& CqmModel::group_incidence() const {
  if (!incidence_valid_) build_incidence();
  return group_incidence_;
}

const CsrRows<CqmModel::Incidence>& CqmModel::constraint_incidence() const {
  if (!incidence_valid_) build_incidence();
  return constraint_incidence_;
}

const CsrRows<CqmModel::QuadNeighbor>& CqmModel::quadratic_incidence() const {
  if (!incidence_valid_) build_incidence();
  return quadratic_incidence_;
}

const CsrRows<CqmModel::GroupKernelTerm>& CqmModel::group_kernel() const {
  if (!incidence_valid_) build_incidence();
  return group_kernel_;
}

std::span<const Sense> CqmModel::constraint_sense_flat() const {
  if (!incidence_valid_) build_incidence();
  return sense_flat_;
}

std::span<const double> CqmModel::constraint_rhs_flat() const {
  if (!incidence_valid_) build_incidence();
  return rhs_flat_;
}

std::span<const double> CqmModel::group_weight_flat() const {
  if (!incidence_valid_) build_incidence();
  return group_weight_flat_;
}

double CqmModel::objective_scale() const {
  double scale = 0.0;
  for (double a : linear_) scale = std::max(scale, std::abs(a));
  for (const auto& q : quadratic_) scale = std::max(scale, std::abs(q.coeff));
  for (const auto& g : groups_) {
    const double span =
        std::max(std::abs(g.expr.min_value()), std::abs(g.expr.max_value()));
    scale = std::max(scale, std::abs(g.weight) * span * span);
  }
  return scale > 0.0 ? scale : 1.0;
}

}  // namespace qulrb::model
