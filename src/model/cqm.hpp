#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/csr.hpp"
#include "model/expr.hpp"

namespace qulrb::model {

enum class Sense : std::uint8_t { LE, GE, EQ };

std::string to_string(Sense s);

/// Constrained Quadratic Model over binary variables, mirroring the model
/// class consumed by D-Wave's Leap hybrid CQM solver:
///
///   minimize   f(x) = linear + quadratic + sum_g weight_g * (expr_g(x))^2
///   subject to lhs_c(x) {<=,>=,==} rhs_c   for every constraint c
///
/// The *squared-linear-group* objective form is first-class (rather than
/// pre-expanded into quadratic terms) so that solvers can maintain each
/// group's running value and evaluate single-bit flips in O(groups touched).
/// The LRP objective  sum_i (L'_i - L_avg)^2  uses exactly this form; at
/// M = 64 processes its dense quadratic expansion would hold ~10^7 terms,
/// while the grouped form holds ~M^2 |C| linear terms.
class CqmModel {
 public:
  struct Constraint {
    LinearExpr lhs;       ///< normalized expression (constant folded into rhs by add_constraint)
    Sense sense;
    double rhs;
    std::string label;
  };

  struct SquaredGroup {
    LinearExpr expr;  ///< contributes weight * expr(x)^2 to the objective
    double weight;
  };

  struct QuadraticTerm {
    VarId i, j;  ///< i < j
    double coeff;
  };

  CqmModel() = default;

  // --- construction -------------------------------------------------------

  VarId add_variable(std::string name = {});
  std::size_t num_variables() const noexcept { return var_names_.size(); }
  const std::string& variable_name(VarId v) const { return var_names_.at(v); }

  void add_objective_linear(VarId v, double coeff);
  void add_objective_quadratic(VarId i, VarId j, double coeff);
  void add_objective_offset(double c) noexcept { objective_offset_ += c; }

  /// Adds weight * (expr)^2 to the objective. The expression is normalized.
  std::size_t add_squared_group(LinearExpr expr, double weight);

  /// Adds `lhs sense rhs`; any constant inside lhs is folded into rhs.
  std::size_t add_constraint(LinearExpr lhs, Sense sense, double rhs,
                             std::string label = {});

  // --- in-place retargeting -----------------------------------------------
  // Session caches reuse one built model across solve requests that differ
  // only in coefficient values (same variables, same sparsity pattern). The
  // reset_* calls rewrite coefficients in place and patch the flat CSR
  // incidence caches without rebuilding them — offsets, orderings, and all
  // borrowed spans stay valid.

  /// Replace squared group g's expression. The normalized replacement must
  /// touch exactly the variables the current expression touches (in the same
  /// order); only coefficients and the constant may differ. Returns false —
  /// with the model untouched — when the sparsity pattern differs.
  bool reset_group_expr(std::size_t g, LinearExpr expr);

  /// Replace constraint c's lhs and rhs (sense and label are kept); any
  /// constant in lhs is folded into rhs. Same same-pattern contract and
  /// false-on-mismatch behaviour as reset_group_expr.
  bool reset_constraint(std::size_t c, LinearExpr lhs, double rhs);

  // --- introspection ------------------------------------------------------

  std::span<const Constraint> constraints() const noexcept { return constraints_; }
  std::span<const SquaredGroup> squared_groups() const noexcept { return groups_; }
  std::span<const QuadraticTerm> objective_quadratic() const noexcept {
    return quadratic_;
  }
  std::span<const double> objective_linear() const noexcept { return linear_; }
  double objective_offset() const noexcept { return objective_offset_; }

  std::size_t num_constraints() const noexcept { return constraints_.size(); }
  std::size_t num_equality_constraints() const noexcept;
  std::size_t num_inequality_constraints() const noexcept;

  // --- evaluation ---------------------------------------------------------

  double objective_value(std::span<const std::uint8_t> state) const;

  /// lhs value of constraint c under the assignment.
  double constraint_activity(std::size_t c, std::span<const std::uint8_t> state) const;

  /// Non-negative amount by which constraint c is violated (0 if satisfied).
  double constraint_violation(std::size_t c, std::span<const std::uint8_t> state) const;

  /// Sum of violations across all constraints.
  double total_violation(std::span<const std::uint8_t> state) const;

  bool is_feasible(std::span<const std::uint8_t> state, double tol = 1e-9) const;

  /// Violation implied by a raw activity value (no state needed). Inline:
  /// this is the innermost operation of every penalty-annealing kernel.
  static double violation_of(Sense sense, double activity, double rhs) noexcept {
    switch (sense) {
      case Sense::LE: return activity > rhs ? activity - rhs : 0.0;
      case Sense::GE: return rhs > activity ? rhs - activity : 0.0;
      case Sense::EQ: return activity > rhs ? activity - rhs : rhs - activity;
    }
    return 0.0;
  }

  // --- incidence (solver support) -----------------------------------------

  struct Incidence {
    std::uint32_t index;  ///< group or constraint index
    double coeff;         ///< this variable's coefficient there
  };

  /// For each variable, the squared groups it appears in, ascending by group
  /// index. Flat CSR; built lazily.
  const CsrRows<Incidence>& group_incidence() const;
  /// For each variable, the constraints it appears in, ascending by
  /// constraint index. Flat CSR; built lazily.
  const CsrRows<Incidence>& constraint_incidence() const;
  /// For each variable, objective quadratic neighbours, ascending by `other`.
  /// Flat CSR; built lazily.
  struct QuadNeighbor {
    VarId other;
    double coeff;
  };
  const CsrRows<QuadNeighbor>& quadratic_incidence() const;

  // --- flip kernel (solver hot path) ---------------------------------------

  /// Per-variable squared-group incidence with the flip arithmetic
  /// pre-baked: flipping v with sign s changes group g's contribution by
  ///   w * ((G + s*a)^2 - G^2) = s * alpha * G + beta,
  /// with alpha = 2*w*a and beta = w*a^2. Stored alongside group_incidence()
  /// so the annealing kernel reads one contiguous row per variable and does
  /// one fused multiply-add per incidence.
  struct GroupKernelTerm {
    std::uint32_t index;  ///< group index
    double alpha;         ///< 2 * weight * coeff
    double beta;          ///< weight * coeff^2
    double coeff;         ///< raw coefficient (for the group-value update)
  };
  const CsrRows<GroupKernelTerm>& group_kernel() const;

  /// Constraint senses / right-hand sides / group weights as tight flat
  /// arrays (indexable by constraint or group id) so penalty and pair-move
  /// evaluation never strides over the full Constraint / SquaredGroup structs
  /// (LinearExpr + label) in the hot loop.
  std::span<const Sense> constraint_sense_flat() const;
  std::span<const double> constraint_rhs_flat() const;
  std::span<const double> group_weight_flat() const;

  /// Rough magnitude of the objective (used to auto-scale penalties):
  /// max over groups of weight * (max|expr|)^2, plus max |linear|.
  double objective_scale() const;

 private:
  void invalidate_incidence() noexcept { incidence_valid_ = false; }
  void build_incidence() const;

  std::vector<std::string> var_names_;
  std::vector<double> linear_;
  std::vector<QuadraticTerm> quadratic_;
  std::vector<SquaredGroup> groups_;
  std::vector<Constraint> constraints_;
  double objective_offset_ = 0.0;

  mutable CsrRows<Incidence> group_incidence_;
  mutable CsrRows<Incidence> constraint_incidence_;
  mutable CsrRows<QuadNeighbor> quadratic_incidence_;
  mutable CsrRows<GroupKernelTerm> group_kernel_;
  mutable std::vector<Sense> sense_flat_;
  mutable std::vector<double> rhs_flat_;
  mutable std::vector<double> group_weight_flat_;
  mutable bool incidence_valid_ = false;
};

}  // namespace qulrb::model
