#pragma once

#include <iosfwd>
#include <string>

#include "model/cqm.hpp"

namespace qulrb::model {

/// Render a CQM in a human-readable LP-like text format (CPLEX-LP flavoured;
/// squared groups are written as `[expr]^2` comments since LP files cannot
/// express them natively). Primarily a debugging/inspection aid — the same
/// role `print(cqm)` plays in quantum-SDK notebooks.
///
///   Minimize
///     obj: 2 x0 - 1 x1 + [ 1 x0 + 1 x1 - 3 ]^2
///   Subject To
///     capacity: 1 x0 + 1 x1 <= 2
///   Binary
///     x0 x1
void write_lp(std::ostream& out, const CqmModel& cqm);
std::string to_lp_string(const CqmModel& cqm);

}  // namespace qulrb::model
