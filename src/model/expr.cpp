#include "model/expr.hpp"

#include <algorithm>

namespace qulrb::model {

void LinearExpr::normalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const LinearTerm& a, const LinearTerm& b) { return a.var < b.var; });
  std::vector<LinearTerm> merged;
  merged.reserve(terms_.size());
  for (const auto& t : terms_) {
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(t);
    }
  }
  std::erase_if(merged, [](const LinearTerm& t) { return t.coeff == 0.0; });
  terms_ = std::move(merged);
}

double LinearExpr::evaluate(std::span<const std::uint8_t> state) const noexcept {
  double v = constant_;
  for (const auto& t : terms_) {
    if (state[t.var]) v += t.coeff;
  }
  return v;
}

double LinearExpr::min_value() const noexcept {
  double v = constant_;
  for (const auto& t : terms_) {
    if (t.coeff < 0.0) v += t.coeff;
  }
  return v;
}

double LinearExpr::max_value() const noexcept {
  double v = constant_;
  for (const auto& t : terms_) {
    if (t.coeff > 0.0) v += t.coeff;
  }
  return v;
}

LinearExpr& LinearExpr::operator+=(const LinearExpr& other) {
  terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
  constant_ += other.constant_;
  normalize();
  return *this;
}

LinearExpr& LinearExpr::operator*=(double scale) {
  for (auto& t : terms_) t.coeff *= scale;
  constant_ *= scale;
  if (scale == 0.0) terms_.clear();
  return *this;
}

}  // namespace qulrb::model
