#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/csr.hpp"
#include "model/expr.hpp"
#include "model/qubo.hpp"

namespace qulrb::model {

/// Ising spin model:
///   E(s) = offset + sum_i h_i s_i + sum_{i<j} J_ij s_i s_j,  s in {-1,+1}^n.
/// Used by the path-integral Monte-Carlo (simulated quantum annealing)
/// sampler, which is naturally expressed over spins.
///
/// Couplings use the same flat sorted-CSR storage as QuboModel: appends go to
/// a pending COO buffer, folded into a key-sorted array on first read, with a
/// packed symmetric adjacency for the local-field kernels. Iteration order is
/// ascending (i, j).
class IsingModel {
 public:
  explicit IsingModel(std::size_t num_spins = 0);

  std::size_t num_spins() const noexcept { return h_.size(); }

  void add_field(VarId i, double h);
  void add_coupling(VarId i, VarId j, double J);
  void add_offset(double c) noexcept { offset_ += c; }

  double field(VarId i) const { return h_.at(i); }
  double coupling(VarId i, VarId j) const;  ///< 0.0 if absent
  double offset() const noexcept { return offset_; }

  /// spins[i] in {-1, +1}.
  double energy(std::span<const std::int8_t> spins) const;

  struct Neighbor {
    VarId other;
    double coupling;
  };
  const CsrRows<Neighbor>& adjacency() const;

  /// Local field acting on spin v: h_v + sum_j J_vj s_j.
  double local_field(std::span<const std::int8_t> spins, VarId v) const;

  template <typename F>
  void for_each_coupling(F&& f) const {
    ensure_finalized();
    for (const auto& t : terms_) {
      f(static_cast<VarId>(t.key >> 32), static_cast<VarId>(t.key & 0xFFFFFFFFu),
        t.coeff);
    }
  }

 private:
  struct Term {
    std::uint64_t key;  ///< (i << 32) | j with i < j
    double coeff;
  };

  static std::uint64_t key_of(VarId i, VarId j) noexcept {
    return (static_cast<std::uint64_t>(i) << 32) | j;
  }

  void merge_pending() const;
  void ensure_finalized() const { merge_pending(); }

  std::vector<double> h_;
  mutable std::vector<Term> pending_;
  mutable std::vector<Term> terms_;  ///< merged, sorted by key
  double offset_ = 0.0;

  mutable CsrRows<Neighbor> adjacency_;
  mutable bool adjacency_valid_ = false;
};

/// QUBO -> Ising under x = (1 + s) / 2; energies match exactly:
/// E_qubo(x) == E_ising(s) for corresponding assignments.
IsingModel qubo_to_ising(const QuboModel& qubo);

/// Ising -> QUBO under s = 2x - 1; exact energy correspondence.
QuboModel ising_to_qubo(const IsingModel& ising);

/// Convert a binary state to spins (0 -> -1, 1 -> +1) and back.
std::vector<std::int8_t> state_to_spins(std::span<const std::uint8_t> state);
State spins_to_state(std::span<const std::int8_t> spins);

}  // namespace qulrb::model
