#include "model/cqm_to_qubo.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace qulrb::model {

namespace {

/// Append binary slack bits whose weighted sum covers [0, range] with the
/// given resolution. Returns the slack terms to splice into the penalty
/// expression. Standard binary encoding with a clamped top coefficient so the
/// reachable maximum is exactly `range` (up to resolution).
std::vector<LinearTerm> make_slack_bits(QuboModel& qubo, double range,
                                        double resolution) {
  std::vector<LinearTerm> slack;
  if (range <= 0.0) return slack;
  const auto levels = static_cast<std::uint64_t>(std::floor(range / resolution));
  if (levels == 0) return slack;
  std::uint64_t remaining = levels;
  std::uint64_t bit = 1;
  while (remaining > 0) {
    const std::uint64_t value = std::min(bit, remaining);
    const auto var = static_cast<VarId>(qubo.num_variables());
    qubo.add_variable();
    slack.push_back({var, static_cast<double>(value) * resolution});
    remaining -= value;
    bit <<= 1;
  }
  return slack;
}

}  // namespace

State QuboConversion::project(std::span<const std::uint8_t> qubo_state) const {
  util::require(qubo_state.size() == qubo.num_variables(),
                "QuboConversion::project: state size mismatch");
  return State(qubo_state.begin(),
               qubo_state.begin() + static_cast<std::ptrdiff_t>(num_original_variables));
}

QuboConversion cqm_to_qubo(const CqmModel& cqm, const PenaltyOptions& options) {
  QuboConversion out;
  out.num_original_variables = cqm.num_variables();
  QuboModel& qubo = out.qubo;
  qubo = QuboModel(cqm.num_variables());

  // Objective: linear + quadratic + expanded squared groups.
  qubo.add_offset(cqm.objective_offset());
  const auto linear = cqm.objective_linear();
  for (VarId v = 0; v < linear.size(); ++v) {
    if (linear[v] != 0.0) qubo.add_linear(v, linear[v]);
  }
  for (const auto& q : cqm.objective_quadratic()) {
    qubo.add_quadratic(q.i, q.j, q.coeff);
  }
  for (const auto& g : cqm.squared_groups()) {
    qubo.add_squared_expr(g.expr, g.weight);
  }

  const double lambda =
      options.lambda > 0.0 ? options.lambda
                           : options.penalty_factor * cqm.objective_scale();
  out.lambda_used = lambda;

  for (const auto& con : cqm.constraints()) {
    // Work with g(x) = rhs - lhs(x) for LE (feasible iff g >= 0),
    // g(x) = lhs(x) - rhs for GE; EQ penalizes (lhs - rhs)^2 directly.
    if (con.sense == Sense::EQ) {
      LinearExpr residual = con.lhs;
      residual.add_constant(-con.rhs);
      qubo.add_squared_expr(residual, lambda);
      continue;
    }

    // Orient as `expr(x) <= 0` with expr = lhs - rhs (LE) or rhs - lhs (GE).
    LinearExpr expr = con.lhs;
    expr.add_constant(-con.rhs);
    if (con.sense == Sense::GE) expr *= -1.0;

    if (options.inequality == InequalityMethod::kUnbalanced) {
      // g = -expr >= 0 when feasible; penalty = -l1 * g + l2 * g^2
      //                              = l1 * expr + l2 * expr^2.
      const double l2 = lambda;
      const double l1 = options.unbalanced_linear_ratio * lambda;
      for (const auto& t : expr.terms()) qubo.add_linear(t.var, l1 * t.coeff);
      qubo.add_offset(l1 * expr.constant());
      qubo.add_squared_expr(expr, l2);
      continue;
    }

    // Slack bits: expr(x) + s == 0 with s in [0, -min expr], penalize square.
    const double range = -expr.min_value();
    if (range < 0.0) {
      // Constraint can never be satisfied; keep the raw square so the solver
      // at least minimizes the violation.
      qubo.add_squared_expr(expr, lambda);
      continue;
    }
    LinearExpr residual = expr;
    const auto slack = make_slack_bits(qubo, range, options.slack_resolution);
    out.num_slack_variables += slack.size();
    for (const auto& s : slack) residual.add_term(s.var, s.coeff);
    residual.normalize();
    qubo.add_squared_expr(residual, lambda);
  }

  return out;
}

}  // namespace qulrb::model
