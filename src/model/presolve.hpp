#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "model/cqm.hpp"

namespace qulrb::model {

/// Result of a presolve pass: variables provably fixed in every feasible
/// assignment. value is 0 or 1; unset means free.
struct PresolveResult {
  std::vector<std::optional<std::uint8_t>> fixed;
  std::size_t num_fixed = 0;
  bool proven_infeasible = false;
};

/// Cheap bound-based variable fixing, iterated to a fixed point:
///  * For `lhs <= rhs`: if min(lhs | x_v = 1) > rhs, then x_v = 0 in every
///    feasible solution (symmetrically for GE / the 0 branch).
///  * If even min(lhs) > rhs the model is infeasible.
/// This mirrors the classical presolve layer of hybrid CQM services; it is
/// deliberately conservative (never cuts optimal solutions).
PresolveResult presolve(const CqmModel& cqm);

}  // namespace qulrb::model
