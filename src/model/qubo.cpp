#include "model/qubo.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace qulrb::model {

QuboModel::QuboModel(std::size_t num_variables) : linear_(num_variables, 0.0) {}

void QuboModel::add_variable() {
  linear_.push_back(0.0);
  adjacency_valid_ = false;
}

void QuboModel::add_linear(VarId i, double coeff) {
  util::require(i < linear_.size(), "QuboModel::add_linear: variable out of range");
  linear_[i] += coeff;
}

void QuboModel::add_quadratic(VarId i, VarId j, double coeff) {
  util::require(i < linear_.size() && j < linear_.size(),
                "QuboModel::add_quadratic: variable out of range");
  if (i == j) {
    // x^2 == x for binary variables.
    linear_[i] += coeff;
    return;
  }
  if (i > j) std::swap(i, j);
  quadratic_[key_of(i, j)] += coeff;
  adjacency_valid_ = false;
}

void QuboModel::add_squared_expr(const LinearExpr& expr, double weight) {
  const auto terms = expr.terms();
  const double b = expr.constant();
  add_offset(weight * b * b);
  for (std::size_t p = 0; p < terms.size(); ++p) {
    const auto& tp = terms[p];
    // a_p^2 x_p^2 = a_p^2 x_p, plus the 2 a_p b x_p cross term.
    add_linear(tp.var, weight * (tp.coeff * tp.coeff + 2.0 * tp.coeff * b));
    for (std::size_t q = p + 1; q < terms.size(); ++q) {
      const auto& tq = terms[q];
      add_quadratic(tp.var, tq.var, weight * 2.0 * tp.coeff * tq.coeff);
    }
  }
}

double QuboModel::quadratic(VarId i, VarId j) const {
  if (i == j) return 0.0;
  if (i > j) std::swap(i, j);
  const auto it = quadratic_.find(key_of(i, j));
  return it == quadratic_.end() ? 0.0 : it->second;
}

double QuboModel::energy(std::span<const std::uint8_t> state) const {
  util::require(state.size() == linear_.size(),
                "QuboModel::energy: state size mismatch");
  double e = offset_;
  for (std::size_t i = 0; i < linear_.size(); ++i) {
    if (state[i]) e += linear_[i];
  }
  for (const auto& [key, coeff] : quadratic_) {
    const auto i = static_cast<VarId>(key >> 32);
    const auto j = static_cast<VarId>(key & 0xFFFFFFFFu);
    if (state[i] && state[j]) e += coeff;
  }
  return e;
}

const std::vector<std::vector<QuboModel::Neighbor>>& QuboModel::adjacency() const {
  if (!adjacency_valid_) {
    adjacency_.assign(linear_.size(), {});
    for (const auto& [key, coeff] : quadratic_) {
      const auto i = static_cast<VarId>(key >> 32);
      const auto j = static_cast<VarId>(key & 0xFFFFFFFFu);
      adjacency_[i].push_back({j, coeff});
      adjacency_[j].push_back({i, coeff});
    }
    adjacency_valid_ = true;
  }
  return adjacency_;
}

double QuboModel::flip_delta(std::span<const std::uint8_t> state, VarId v) const {
  const auto& adj = adjacency();
  double delta = linear_[v];
  for (const auto& nb : adj[v]) {
    if (state[nb.other]) delta += nb.coeff;
  }
  // Turning the bit on adds `delta`; turning it off removes it.
  return state[v] ? -delta : delta;
}

double QuboModel::max_abs_coefficient() const noexcept {
  double m = 0.0;
  for (double a : linear_) m = std::max(m, std::abs(a));
  for (const auto& [key, coeff] : quadratic_) {
    (void)key;
    m = std::max(m, std::abs(coeff));
  }
  return m;
}

}  // namespace qulrb::model
