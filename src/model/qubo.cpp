#include "model/qubo.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace qulrb::model {

namespace {

/// Pending appends are folded eagerly once the buffer grows past this many
/// entries, so bulk construction with heavy duplicate accumulation (e.g.
/// expanding M squared groups over the same variable pairs) stays bounded by
/// the distinct-term count instead of the append count.
constexpr std::size_t kCompactThreshold = 1u << 16;

}  // namespace

QuboModel::QuboModel(std::size_t num_variables) : linear_(num_variables, 0.0) {}

void QuboModel::add_variable() {
  linear_.push_back(0.0);
  adjacency_valid_ = false;
}

void QuboModel::add_linear(VarId i, double coeff) {
  util::require(i < linear_.size(), "QuboModel::add_linear: variable out of range");
  linear_[i] += coeff;
}

void QuboModel::add_quadratic(VarId i, VarId j, double coeff) {
  util::require(i < linear_.size() && j < linear_.size(),
                "QuboModel::add_quadratic: variable out of range");
  if (i == j) {
    // x^2 == x for binary variables.
    linear_[i] += coeff;
    return;
  }
  if (i > j) std::swap(i, j);
  pending_.push_back({key_of(i, j), coeff});
  adjacency_valid_ = false;
  if (pending_.size() >= kCompactThreshold &&
      pending_.size() >= 2 * terms_.size()) {
    merge_pending();
  }
}

void QuboModel::add_squared_expr(const LinearExpr& expr, double weight) {
  const auto terms = expr.terms();
  const double b = expr.constant();
  add_offset(weight * b * b);
  for (std::size_t p = 0; p < terms.size(); ++p) {
    const auto& tp = terms[p];
    // a_p^2 x_p^2 = a_p^2 x_p, plus the 2 a_p b x_p cross term.
    add_linear(tp.var, weight * (tp.coeff * tp.coeff + 2.0 * tp.coeff * b));
    for (std::size_t q = p + 1; q < terms.size(); ++q) {
      const auto& tq = terms[q];
      add_quadratic(tp.var, tq.var, weight * 2.0 * tp.coeff * tq.coeff);
    }
  }
}

void QuboModel::merge_pending() const {
  if (pending_.empty()) return;
  std::sort(pending_.begin(), pending_.end(),
            [](const Term& a, const Term& b) { return a.key < b.key; });
  // Fold duplicate keys within pending, then merge-join with the sorted terms.
  std::vector<Term> merged;
  merged.reserve(terms_.size() + pending_.size());
  std::size_t t = 0;
  std::size_t p = 0;
  while (t < terms_.size() || p < pending_.size()) {
    if (p == pending_.size() ||
        (t < terms_.size() && terms_[t].key < pending_[p].key)) {
      merged.push_back(terms_[t++]);
      continue;
    }
    Term next = pending_[p++];
    while (p < pending_.size() && pending_[p].key == next.key) {
      next.coeff += pending_[p++].coeff;
    }
    if (t < terms_.size() && terms_[t].key == next.key) {
      next.coeff += terms_[t++].coeff;
    }
    merged.push_back(next);
  }
  terms_ = std::move(merged);
  pending_.clear();
}

void QuboModel::ensure_finalized() const { merge_pending(); }

std::size_t QuboModel::num_interactions() const {
  ensure_finalized();
  return terms_.size();
}

double QuboModel::quadratic(VarId i, VarId j) const {
  if (i == j) return 0.0;
  if (i > j) std::swap(i, j);
  ensure_finalized();
  const std::uint64_t key = key_of(i, j);
  const auto it = std::lower_bound(
      terms_.begin(), terms_.end(), key,
      [](const Term& t, std::uint64_t k) { return t.key < k; });
  return (it != terms_.end() && it->key == key) ? it->coeff : 0.0;
}

double QuboModel::energy(std::span<const std::uint8_t> state) const {
  util::require(state.size() == linear_.size(),
                "QuboModel::energy: state size mismatch");
  ensure_finalized();
  double e = offset_;
  for (std::size_t i = 0; i < linear_.size(); ++i) {
    if (state[i]) e += linear_[i];
  }
  for (const auto& t : terms_) {
    const auto i = static_cast<VarId>(t.key >> 32);
    const auto j = static_cast<VarId>(t.key & 0xFFFFFFFFu);
    if (state[i] && state[j]) e += t.coeff;
  }
  return e;
}

const CsrRows<QuboModel::Neighbor>& QuboModel::adjacency() const {
  if (!adjacency_valid_) {
    ensure_finalized();
    // terms_ is sorted by (i, j), so rows come out sorted by `other`: row i
    // receives its j-neighbours in ascending key order, and row j receives
    // its i-neighbours in the order the (sorted) i's appear.
    adjacency_ = CsrRows<Neighbor>::build(linear_.size(), [&](auto&& emit) {
      for (const auto& t : terms_) {
        const auto i = static_cast<VarId>(t.key >> 32);
        const auto j = static_cast<VarId>(t.key & 0xFFFFFFFFu);
        emit(i, Neighbor{j, t.coeff});
        emit(j, Neighbor{i, t.coeff});
      }
    });
    adjacency_valid_ = true;
  }
  return adjacency_;
}

double QuboModel::flip_delta(std::span<const std::uint8_t> state, VarId v) const {
  double delta = linear_[v];
  for (const auto& nb : adjacency()[v]) {
    if (state[nb.other]) delta += nb.coeff;
  }
  // Turning the bit on adds `delta`; turning it off removes it.
  return state[v] ? -delta : delta;
}

double QuboModel::max_abs_coefficient() const {
  ensure_finalized();
  double m = 0.0;
  for (double a : linear_) m = std::max(m, std::abs(a));
  for (const auto& t : terms_) m = std::max(m, std::abs(t.coeff));
  return m;
}

}  // namespace qulrb::model
