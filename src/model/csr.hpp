#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace qulrb::model {

/// Compressed-sparse-row container: `rows` contiguous rows of `Entry` packed
/// into one flat array with an offsets table. Replaces vector<vector<Entry>>
/// in every solver hot path — one pointer indirection instead of two, rows
/// laid out back-to-back so a sweep over a variable's incidences is a single
/// contiguous scan, and iteration order is a deterministic function of the
/// build input (no hash-map ordering).
template <typename Entry>
class CsrRows {
 public:
  CsrRows() = default;

  std::size_t size() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  bool empty() const noexcept { return size() == 0; }

  std::span<const Entry> operator[](std::size_t row) const noexcept {
    return {entries_.data() + offsets_[row], offsets_[row + 1] - offsets_[row]};
  }
  std::span<const Entry> row(std::size_t r) const noexcept { return (*this)[r]; }

  /// Writable view of one row, for in-place coefficient rewrites that keep
  /// the sparsity pattern (offsets) intact. Callers must not change any key
  /// an ordered consumer relies on (e.g. the ascending index fields).
  std::span<Entry> mutable_row(std::size_t r) noexcept {
    return {entries_.data() + offsets_[r], offsets_[r + 1] - offsets_[r]};
  }

  std::size_t num_entries() const noexcept { return entries_.size(); }
  std::span<const Entry> entries() const noexcept { return entries_; }

  /// Counting-sort build: `fill` is invoked twice with a callback
  /// `emit(row, entry)` — first pass counts entries per row, second pass
  /// places them. Entries within a row keep their emission order, so the
  /// result is fully deterministic.
  template <typename FillFn>
  static CsrRows build(std::size_t rows, FillFn&& fill) {
    CsrRows csr;
    csr.offsets_.assign(rows + 1, 0);
    fill([&](std::size_t row, const Entry&) { ++csr.offsets_[row + 1]; });
    for (std::size_t r = 0; r < rows; ++r) csr.offsets_[r + 1] += csr.offsets_[r];
    csr.entries_.resize(csr.offsets_[rows]);
    std::vector<std::size_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
    fill([&](std::size_t row, const Entry& e) { csr.entries_[cursor[row]++] = e; });
    return csr;
  }

 private:
  std::vector<std::size_t> offsets_;  ///< size rows+1
  std::vector<Entry> entries_;
};

}  // namespace qulrb::model
