#include "model/lp_format.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace qulrb::model {

namespace {

std::string var_name(const CqmModel& cqm, VarId v) {
  const std::string& name = cqm.variable_name(v);
  return name.empty() ? "v" + std::to_string(v) : name;
}

std::string format_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

void write_term(std::ostream& out, bool& first, double coeff,
                const std::string& symbol) {
  if (coeff == 0.0) return;
  if (first) {
    if (coeff < 0.0) out << "- ";
    first = false;
  } else {
    out << (coeff < 0.0 ? " - " : " + ");
  }
  out << format_number(std::abs(coeff));
  if (!symbol.empty()) out << ' ' << symbol;
}

void write_expr(std::ostream& out, const CqmModel& cqm, const LinearExpr& expr) {
  bool first = true;
  for (const auto& t : expr.terms()) {
    write_term(out, first, t.coeff, var_name(cqm, t.var));
  }
  if (expr.constant() != 0.0 || first) {
    write_term(out, first, expr.constant(), "");
  }
}

}  // namespace

void write_lp(std::ostream& out, const CqmModel& cqm) {
  out << "Minimize\n  obj: ";
  bool first = true;
  const auto linear = cqm.objective_linear();
  for (VarId v = 0; v < linear.size(); ++v) {
    write_term(out, first, linear[v], var_name(cqm, v));
  }
  for (const auto& q : cqm.objective_quadratic()) {
    write_term(out, first, q.coeff, var_name(cqm, q.i) + " * " + var_name(cqm, q.j));
  }
  if (cqm.objective_offset() != 0.0) {
    write_term(out, first, cqm.objective_offset(), "");
  }
  for (const auto& g : cqm.squared_groups()) {
    if (!first) out << " + ";
    first = false;
    if (g.weight != 1.0) out << format_number(g.weight) << ' ';
    out << "[ ";
    write_expr(out, cqm, g.expr);
    out << " ]^2";
  }
  if (first) out << "0";
  out << "\n";

  out << "Subject To\n";
  std::size_t anonymous = 0;
  for (const auto& con : cqm.constraints()) {
    const std::string label =
        con.label.empty() ? "c" + std::to_string(anonymous++) : con.label;
    out << "  " << label << ": ";
    write_expr(out, cqm, con.lhs);
    out << ' ' << to_string(con.sense) << ' ' << format_number(con.rhs) << "\n";
  }

  out << "Binary\n ";
  for (VarId v = 0; v < cqm.num_variables(); ++v) {
    out << ' ' << var_name(cqm, v);
  }
  out << "\nEnd\n";
}

std::string to_lp_string(const CqmModel& cqm) {
  std::ostringstream os;
  write_lp(os, cqm);
  return os.str();
}

}  // namespace qulrb::model
