#pragma once

#include <cstddef>
#include <vector>

#include "model/cqm.hpp"
#include "model/qubo.hpp"

namespace qulrb::model {

/// How inequality constraints are folded into the unconstrained objective.
enum class InequalityMethod {
  /// Classic: introduce binary slack bits s so that `lhs + s == rhs`, then
  /// square-penalize. Exact, but each inequality costs ceil(log2(range))+1
  /// ancilla qubits.
  kSlackBits,
  /// Unbalanced penalization (Montañez-Barrera et al. 2024): penalize
  /// `-lambda1 * g + lambda2 * g^2` with g = slack of the inequality. Needs
  /// no ancillas (the qubit count the paper assumes), at the cost of a small
  /// bias that slightly rewards tight constraints.
  kUnbalanced,
};

struct PenaltyOptions {
  InequalityMethod inequality = InequalityMethod::kSlackBits;
  /// Penalty weight for squared constraint terms; <= 0 selects
  /// `penalty_factor * objective_scale` automatically.
  double lambda = 0.0;
  double penalty_factor = 10.0;
  /// Unbalanced method's linear reward coefficient (lambda1 = ratio * lambda).
  double unbalanced_linear_ratio = 0.1;
  /// Resolution used to discretize slack for constraints with non-integer
  /// coefficients. Integer-coefficient constraints use resolution 1 exactly.
  double slack_resolution = 1.0;
};

struct QuboConversion {
  QuboModel qubo;
  std::size_t num_original_variables = 0;  ///< prefix of the QUBO variable space
  std::size_t num_slack_variables = 0;
  double lambda_used = 0.0;

  /// Truncate a QUBO state back to an assignment of the original CQM vars.
  State project(std::span<const std::uint8_t> qubo_state) const;
};

/// Expand a CQM into a penalty-form QUBO. Squared objective groups are
/// expanded exactly (O(|expr|^2) terms each), so this is intended for small
/// and medium models; large structured models should be solved with the
/// native CQM annealer instead.
QuboConversion cqm_to_qubo(const CqmModel& cqm, const PenaltyOptions& options = {});

}  // namespace qulrb::model
