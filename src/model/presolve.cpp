#include "model/presolve.hpp"

#include <cmath>

namespace qulrb::model {

namespace {

constexpr double kTol = 1e-9;

struct Bounds {
  double lo = 0.0;  ///< min achievable lhs given current fixings
  double hi = 0.0;  ///< max achievable lhs given current fixings
};

Bounds constraint_bounds(const CqmModel::Constraint& con,
                         const std::vector<std::optional<std::uint8_t>>& fixed) {
  Bounds b{con.lhs.constant(), con.lhs.constant()};
  for (const auto& t : con.lhs.terms()) {
    if (fixed[t.var].has_value()) {
      const double v = *fixed[t.var] ? t.coeff : 0.0;
      b.lo += v;
      b.hi += v;
    } else if (t.coeff < 0.0) {
      b.lo += t.coeff;
    } else {
      b.hi += t.coeff;
    }
  }
  return b;
}

}  // namespace

PresolveResult presolve(const CqmModel& cqm) {
  PresolveResult result;
  result.fixed.assign(cqm.num_variables(), std::nullopt);

  bool changed = true;
  while (changed && !result.proven_infeasible) {
    changed = false;
    for (const auto& con : cqm.constraints()) {
      const Bounds b = constraint_bounds(con, result.fixed);

      // Infeasibility checks on the whole constraint.
      if ((con.sense == Sense::LE && b.lo > con.rhs + kTol) ||
          (con.sense == Sense::GE && b.hi < con.rhs - kTol) ||
          (con.sense == Sense::EQ &&
           (b.lo > con.rhs + kTol || b.hi < con.rhs - kTol))) {
        result.proven_infeasible = true;
        break;
      }

      for (const auto& t : con.lhs.terms()) {
        if (result.fixed[t.var].has_value()) continue;
        // Bounds of lhs with x_v forced to 1 / 0.
        const double lo_if_one = b.lo + (t.coeff > 0.0 ? t.coeff : 0.0);
        const double hi_if_one = b.hi + (t.coeff < 0.0 ? t.coeff : 0.0);
        const double lo_if_zero = b.lo - (t.coeff < 0.0 ? t.coeff : 0.0);
        const double hi_if_zero = b.hi - (t.coeff > 0.0 ? t.coeff : 0.0);

        const bool one_impossible =
            (con.sense == Sense::LE && lo_if_one > con.rhs + kTol) ||
            (con.sense == Sense::GE && hi_if_one < con.rhs - kTol) ||
            (con.sense == Sense::EQ &&
             (lo_if_one > con.rhs + kTol || hi_if_one < con.rhs - kTol));
        const bool zero_impossible =
            (con.sense == Sense::LE && lo_if_zero > con.rhs + kTol) ||
            (con.sense == Sense::GE && hi_if_zero < con.rhs - kTol) ||
            (con.sense == Sense::EQ &&
             (lo_if_zero > con.rhs + kTol || hi_if_zero < con.rhs - kTol));

        if (one_impossible && zero_impossible) {
          result.proven_infeasible = true;
          break;
        }
        if (one_impossible) {
          result.fixed[t.var] = 0;
          ++result.num_fixed;
          changed = true;
        } else if (zero_impossible) {
          result.fixed[t.var] = 1;
          ++result.num_fixed;
          changed = true;
        }
      }
      if (result.proven_infeasible) break;
    }
  }
  return result;
}

}  // namespace qulrb::model
