#include "model/ising.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace qulrb::model {

IsingModel::IsingModel(std::size_t num_spins) : h_(num_spins, 0.0) {}

void IsingModel::add_field(VarId i, double h) {
  util::require(i < h_.size(), "IsingModel::add_field: spin out of range");
  h_[i] += h;
}

void IsingModel::add_coupling(VarId i, VarId j, double J) {
  util::require(i < h_.size() && j < h_.size(),
                "IsingModel::add_coupling: spin out of range");
  util::require(i != j, "IsingModel::add_coupling: self-coupling (s_i^2 == 1 is a constant)");
  if (i > j) std::swap(i, j);
  pending_.push_back({key_of(i, j), J});
  adjacency_valid_ = false;
}

void IsingModel::merge_pending() const {
  if (pending_.empty()) return;
  std::sort(pending_.begin(), pending_.end(),
            [](const Term& a, const Term& b) { return a.key < b.key; });
  std::vector<Term> merged;
  merged.reserve(terms_.size() + pending_.size());
  std::size_t t = 0;
  std::size_t p = 0;
  while (t < terms_.size() || p < pending_.size()) {
    if (p == pending_.size() ||
        (t < terms_.size() && terms_[t].key < pending_[p].key)) {
      merged.push_back(terms_[t++]);
      continue;
    }
    Term next = pending_[p++];
    while (p < pending_.size() && pending_[p].key == next.key) {
      next.coeff += pending_[p++].coeff;
    }
    if (t < terms_.size() && terms_[t].key == next.key) {
      next.coeff += terms_[t++].coeff;
    }
    merged.push_back(next);
  }
  terms_ = std::move(merged);
  pending_.clear();
}

double IsingModel::coupling(VarId i, VarId j) const {
  if (i == j) return 0.0;
  if (i > j) std::swap(i, j);
  ensure_finalized();
  const std::uint64_t key = key_of(i, j);
  const auto it = std::lower_bound(
      terms_.begin(), terms_.end(), key,
      [](const Term& t, std::uint64_t k) { return t.key < k; });
  return (it != terms_.end() && it->key == key) ? it->coeff : 0.0;
}

double IsingModel::energy(std::span<const std::int8_t> spins) const {
  util::require(spins.size() == h_.size(), "IsingModel::energy: spin count mismatch");
  ensure_finalized();
  double e = offset_;
  for (std::size_t i = 0; i < h_.size(); ++i) e += h_[i] * spins[i];
  for (const auto& t : terms_) {
    const auto i = static_cast<VarId>(t.key >> 32);
    const auto j = static_cast<VarId>(t.key & 0xFFFFFFFFu);
    e += t.coeff * spins[i] * spins[j];
  }
  return e;
}

const CsrRows<IsingModel::Neighbor>& IsingModel::adjacency() const {
  if (!adjacency_valid_) {
    ensure_finalized();
    adjacency_ = CsrRows<Neighbor>::build(h_.size(), [&](auto&& emit) {
      for (const auto& t : terms_) {
        const auto i = static_cast<VarId>(t.key >> 32);
        const auto j = static_cast<VarId>(t.key & 0xFFFFFFFFu);
        emit(i, Neighbor{j, t.coeff});
        emit(j, Neighbor{i, t.coeff});
      }
    });
    adjacency_valid_ = true;
  }
  return adjacency_;
}

double IsingModel::local_field(std::span<const std::int8_t> spins, VarId v) const {
  double f = h_[v];
  for (const auto& nb : adjacency()[v]) f += nb.coupling * spins[nb.other];
  return f;
}

IsingModel qubo_to_ising(const QuboModel& qubo) {
  // x_i = (1 + s_i)/2:
  //   a_i x_i            -> a_i/2 s_i + a_i/2
  //   b_ij x_i x_j       -> b_ij/4 (s_i s_j + s_i + s_j + 1)
  IsingModel ising(qubo.num_variables());
  ising.add_offset(qubo.offset());
  for (VarId i = 0; i < qubo.num_variables(); ++i) {
    const double a = qubo.linear(i);
    ising.add_field(i, a / 2.0);
    ising.add_offset(a / 2.0);
  }
  qubo.for_each_quadratic([&](VarId i, VarId j, double b) {
    ising.add_coupling(i, j, b / 4.0);
    ising.add_field(i, b / 4.0);
    ising.add_field(j, b / 4.0);
    ising.add_offset(b / 4.0);
  });
  return ising;
}

QuboModel ising_to_qubo(const IsingModel& ising) {
  // s_i = 2 x_i - 1:
  //   h_i s_i      -> 2 h_i x_i - h_i
  //   J_ij s_i s_j -> 4 J_ij x_i x_j - 2 J_ij x_i - 2 J_ij x_j + J_ij
  QuboModel qubo(ising.num_spins());
  qubo.add_offset(ising.offset());
  for (VarId i = 0; i < ising.num_spins(); ++i) {
    const double h = ising.field(i);
    qubo.add_linear(i, 2.0 * h);
    qubo.add_offset(-h);
  }
  ising.for_each_coupling([&](VarId i, VarId j, double J) {
    qubo.add_quadratic(i, j, 4.0 * J);
    qubo.add_linear(i, -2.0 * J);
    qubo.add_linear(j, -2.0 * J);
    qubo.add_offset(J);
  });
  return qubo;
}

std::vector<std::int8_t> state_to_spins(std::span<const std::uint8_t> state) {
  std::vector<std::int8_t> spins(state.size());
  for (std::size_t i = 0; i < state.size(); ++i) {
    spins[i] = state[i] ? std::int8_t{1} : std::int8_t{-1};
  }
  return spins;
}

State spins_to_state(std::span<const std::int8_t> spins) {
  State state(spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i) {
    state[i] = spins[i] > 0 ? std::uint8_t{1} : std::uint8_t{0};
  }
  return state;
}

}  // namespace qulrb::model
