#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace qulrb::model {

/// Index of a binary decision variable within a model.
using VarId = std::uint32_t;

/// Binary assignment: state[v] in {0, 1}.
using State = std::vector<std::uint8_t>;

/// One linear term `coeff * x[var]`.
struct LinearTerm {
  VarId var;
  double coeff;

  friend bool operator==(const LinearTerm&, const LinearTerm&) = default;
};

/// Sparse affine expression `sum_i coeff_i * x_i + constant` over binary
/// variables. Terms are kept sorted by variable id with duplicates merged
/// (see normalize()).
class LinearExpr {
 public:
  LinearExpr() = default;
  explicit LinearExpr(double constant) : constant_(constant) {}

  /// Append a term; call normalize() once after bulk construction.
  void add_term(VarId var, double coeff) { terms_.push_back({var, coeff}); }
  void add_constant(double c) { constant_ += c; }

  /// Sort terms by variable, merge duplicates, drop exact zeros.
  void normalize();

  std::span<const LinearTerm> terms() const noexcept { return terms_; }
  double constant() const noexcept { return constant_; }

  bool empty() const noexcept { return terms_.empty(); }
  std::size_t size() const noexcept { return terms_.size(); }

  /// Value of the expression under a full assignment.
  double evaluate(std::span<const std::uint8_t> state) const noexcept;

  /// Smallest / largest achievable value over all binary assignments.
  double min_value() const noexcept;
  double max_value() const noexcept;

  LinearExpr& operator+=(const LinearExpr& other);
  LinearExpr& operator*=(double scale);

 private:
  std::vector<LinearTerm> terms_;
  double constant_ = 0.0;
};

}  // namespace qulrb::model
