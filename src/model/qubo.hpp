#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/csr.hpp"
#include "model/expr.hpp"

namespace qulrb::model {

/// Sparse Quadratic Unconstrained Binary Optimization model:
///   E(x) = offset + sum_i a_i x_i + sum_{i<j} b_ij x_i x_j,  x in {0,1}^n.
///
/// Quadratic terms are stored upper-triangular (i < j); adding (j, i) or a
/// diagonal term folds into the canonical place (x_i^2 == x_i folds into the
/// linear part).
///
/// Storage is a flat, sorted CSR structure rather than a hash map: mutations
/// append to a pending COO buffer which is merged (sort + duplicate fold)
/// into a key-sorted term array on first read, and the symmetric adjacency
/// used by the annealing kernels is packed offsets + {other, coeff} arrays.
/// Term iteration order is therefore ascending (i, j) — deterministic across
/// platforms and insertion orders.
class QuboModel {
 public:
  explicit QuboModel(std::size_t num_variables = 0);

  std::size_t num_variables() const noexcept { return linear_.size(); }
  std::size_t num_interactions() const;

  void add_variable();  ///< appends one variable with zero bias

  void add_linear(VarId i, double coeff);
  void add_quadratic(VarId i, VarId j, double coeff);
  void add_offset(double c) noexcept { offset_ += c; }

  /// Adds weight * (expr)^2 expanded into linear/quadratic/offset terms.
  /// The expression must be normalized. Cost: O(|expr|^2) — intended for
  /// small/medium expressions; large structured objectives should stay in
  /// CqmModel form instead (see CqmModel::SquaredGroup).
  void add_squared_expr(const LinearExpr& expr, double weight);

  double linear(VarId i) const { return linear_.at(i); }
  double quadratic(VarId i, VarId j) const;  ///< 0.0 if absent
  double offset() const noexcept { return offset_; }

  /// Full energy evaluation, O(n + m).
  double energy(std::span<const std::uint8_t> state) const;

  /// Neighbour list: for each variable, the (other, coeff) quadratic terms it
  /// participates in, sorted by `other`. Built lazily; invalidated by further
  /// mutation.
  struct Neighbor {
    VarId other;
    double coeff;
  };
  const CsrRows<Neighbor>& adjacency() const;

  /// Energy change of flipping variable v in `state`, O(deg(v)).
  double flip_delta(std::span<const std::uint8_t> state, VarId v) const;

  /// Largest |coefficient| over linear+quadratic terms (penalty scaling aid).
  double max_abs_coefficient() const;

  /// Iterate quadratic terms: f(i, j, coeff) with i < j, ascending (i, j).
  template <typename F>
  void for_each_quadratic(F&& f) const {
    ensure_finalized();
    for (const auto& t : terms_) {
      f(static_cast<VarId>(t.key >> 32), static_cast<VarId>(t.key & 0xFFFFFFFFu),
        t.coeff);
    }
  }

 private:
  struct Term {
    std::uint64_t key;  ///< (i << 32) | j with i < j
    double coeff;
  };

  static std::uint64_t key_of(VarId i, VarId j) noexcept {
    return (static_cast<std::uint64_t>(i) << 32) | j;
  }

  /// Sort + fold `pending_` into the key-sorted `terms_` array. Called when
  /// the pending buffer grows past a threshold (bounding memory during bulk
  /// construction, e.g. cqm_to_qubo's squared-group expansion) and on first
  /// read after a mutation.
  void merge_pending() const;
  void ensure_finalized() const;

  std::vector<double> linear_;
  mutable std::vector<Term> pending_;  ///< unmerged COO appends
  mutable std::vector<Term> terms_;    ///< merged, sorted by key
  double offset_ = 0.0;

  mutable CsrRows<Neighbor> adjacency_;
  mutable bool adjacency_valid_ = false;
};

}  // namespace qulrb::model
