#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "model/expr.hpp"

namespace qulrb::model {

/// Sparse Quadratic Unconstrained Binary Optimization model:
///   E(x) = offset + sum_i a_i x_i + sum_{i<j} b_ij x_i x_j,  x in {0,1}^n.
///
/// Quadratic terms are stored upper-triangular (i < j); adding (j, i) or a
/// diagonal term folds into the canonical place (x_i^2 == x_i folds into the
/// linear part).
class QuboModel {
 public:
  explicit QuboModel(std::size_t num_variables = 0);

  std::size_t num_variables() const noexcept { return linear_.size(); }
  std::size_t num_interactions() const noexcept { return quadratic_.size(); }

  void add_variable();  ///< appends one variable with zero bias

  void add_linear(VarId i, double coeff);
  void add_quadratic(VarId i, VarId j, double coeff);
  void add_offset(double c) noexcept { offset_ += c; }

  /// Adds weight * (expr)^2 expanded into linear/quadratic/offset terms.
  /// The expression must be normalized. Cost: O(|expr|^2) — intended for
  /// small/medium expressions; large structured objectives should stay in
  /// CqmModel form instead (see CqmModel::SquaredGroup).
  void add_squared_expr(const LinearExpr& expr, double weight);

  double linear(VarId i) const { return linear_.at(i); }
  double quadratic(VarId i, VarId j) const;  ///< 0.0 if absent
  double offset() const noexcept { return offset_; }

  /// Full energy evaluation, O(n + m).
  double energy(std::span<const std::uint8_t> state) const;

  /// Neighbour list: for each variable, the (other, coeff) quadratic terms it
  /// participates in. Built lazily; invalidated by further mutation.
  struct Neighbor {
    VarId other;
    double coeff;
  };
  const std::vector<std::vector<Neighbor>>& adjacency() const;

  /// Energy change of flipping variable v in `state`, O(deg(v)).
  /// Requires adjacency() to have been built (done on first call).
  double flip_delta(std::span<const std::uint8_t> state, VarId v) const;

  /// Largest |coefficient| over linear+quadratic terms (penalty scaling aid).
  double max_abs_coefficient() const noexcept;

  /// Iterate quadratic terms: f(i, j, coeff) with i < j.
  template <typename F>
  void for_each_quadratic(F&& f) const {
    for (const auto& [key, coeff] : quadratic_) {
      f(static_cast<VarId>(key >> 32), static_cast<VarId>(key & 0xFFFFFFFFu), coeff);
    }
  }

 private:
  static std::uint64_t key_of(VarId i, VarId j) noexcept {
    return (static_cast<std::uint64_t>(i) << 32) | j;
  }

  std::vector<double> linear_;
  std::unordered_map<std::uint64_t, double> quadratic_;  // key: (min,max) packed
  double offset_ = 0.0;

  mutable std::vector<std::vector<Neighbor>> adjacency_;
  mutable bool adjacency_valid_ = false;
};

}  // namespace qulrb::model
