#pragma once

#include <cstdint>

namespace qulrb::runtime {

/// Latency/bandwidth cost model for task migration messages, in the spirit of
/// the interconnect of the paper's CoolMUC2 testbed (FDR14 Infiniband).
/// Tasks in one (from -> to) edge are batched into a single message.
struct CommModel {
  double latency_ms = 0.05;                 ///< per-message startup cost
  double bytes_per_task = 1.0 * (1 << 20);  ///< serialized task payload
  double bandwidth_bytes_per_ms = 1.5e6;    ///< ~12 Gbit/s effective

  /// Wall time to transfer `count` tasks in one message.
  double transfer_ms(std::int64_t count) const noexcept {
    if (count <= 0) return 0.0;
    return latency_ms +
           static_cast<double>(count) * bytes_per_task / bandwidth_bytes_per_ms;
  }
};

}  // namespace qulrb::runtime
