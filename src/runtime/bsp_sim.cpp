#include "runtime/bsp_sim.hpp"

#include <algorithm>
#include <cstdio>
#include <queue>
#include <string>
#include <vector>

#include "lrp/metrics.hpp"
#include "util/error.hpp"

namespace qulrb::runtime {

namespace {

/// One executable task instance at a host process.
struct SimTask {
  double load_ms;
  double available_ms;  ///< 0 for local tasks, message arrival for migrated
};

/// Schedule `tasks` onto `threads` workers (earliest-free-worker, tasks in
/// availability order, ties by longer task first). Returns the makespan and
/// total busy time.
struct ScheduleResult {
  double makespan = 0.0;
  double busy = 0.0;
};

ScheduleResult schedule_tasks(std::vector<SimTask> tasks, std::size_t threads,
                              double workers_start) {
  ScheduleResult result;
  if (tasks.empty()) {
    result.makespan = workers_start;
    return result;
  }
  std::stable_sort(tasks.begin(), tasks.end(), [](const SimTask& a, const SimTask& b) {
    if (a.available_ms != b.available_ms) return a.available_ms < b.available_ms;
    return a.load_ms > b.load_ms;
  });

  using Worker = double;  // next free time
  std::priority_queue<Worker, std::vector<Worker>, std::greater<>> workers;
  for (std::size_t t = 0; t < threads; ++t) workers.push(workers_start);

  double makespan = workers_start;
  for (const auto& task : tasks) {
    const double free_at = workers.top();
    workers.pop();
    const double start = std::max(free_at, task.available_ms);
    const double finish = start + task.load_ms;
    workers.push(finish);
    makespan = std::max(makespan, finish);
    result.busy += task.load_ms;
  }
  result.makespan = makespan;
  return result;
}

}  // namespace

BspResult BspSimulator::run(const lrp::LrpProblem& problem,
                            const lrp::MigrationPlan& plan) const {
  plan.validate(problem);
  util::require(config_.comp_threads >= 1, "BspSimulator: need >= 1 compute thread");
  util::require(config_.iterations >= 1, "BspSimulator: need >= 1 iteration");

  const std::size_t m = problem.num_processes();
  BspResult result;
  result.processes.resize(m);

  // --- migration phase ------------------------------------------------------
  // Each sender's comm thread serializes its outgoing edges sequentially
  // (destination order); the arrival time of an edge is its send completion
  // (one-sided put: receive costs no receiver CPU).
  std::vector<std::vector<double>> arrival(m, std::vector<double>(m, 0.0));
  std::vector<double> send_done(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {  // j = sender (origin)
    double clock = 0.0;
    for (std::size_t i = 0; i < m; ++i) {  // i = destination
      if (i == j) continue;
      const std::int64_t count = plan.count(i, j);
      if (count <= 0) continue;
      clock += config_.comm.transfer_ms(count);
      arrival[i][j] = clock;
      result.processes[j].tasks_sent += count;
      result.processes[i].tasks_received += count;
    }
    send_done[j] = clock;
    result.processes[j].send_ms = clock;
  }

  // --- first iteration (with migration in flight) ----------------------------
  double first_iter_barrier = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<SimTask> tasks;
    tasks.reserve(static_cast<std::size_t>(plan.tasks_hosted(i)));
    double last_arrival = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const std::int64_t count = plan.count(i, j);
      const double available = (i == j) ? 0.0 : arrival[i][j];
      last_arrival = std::max(last_arrival, available);
      for (std::int64_t t = 0; t < count; ++t) {
        tasks.push_back({problem.task_load(j), available});
      }
    }
    // Without a dedicated comm thread the workers cannot start until the
    // process finished serializing its own outgoing tasks.
    const double workers_start = config_.overlap_migration ? 0.0 : send_done[i];
    const ScheduleResult sched =
        schedule_tasks(std::move(tasks), config_.comp_threads, workers_start);

    auto& trace = result.processes[i];
    trace.compute_ms = sched.busy;
    trace.recv_wait_ms = last_arrival;
    trace.finish_ms = std::max(sched.makespan, send_done[i]);
    trace.tasks_executed = plan.tasks_hosted(i);
    first_iter_barrier = std::max(first_iter_barrier, trace.finish_ms);
  }
  for (auto& trace : result.processes) {
    trace.idle_ms = first_iter_barrier - trace.finish_ms;
  }
  result.first_iteration_ms = first_iter_barrier;

  // --- steady-state iterations (no traffic, everything local) ---------------
  std::vector<double> steady_compute(m, 0.0);
  double steady_barrier = 0.0;
  double steady_busy_total = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<SimTask> tasks;
    for (std::size_t j = 0; j < m; ++j) {
      for (std::int64_t t = 0; t < plan.count(i, j); ++t) {
        tasks.push_back({problem.task_load(j), 0.0});
      }
    }
    const ScheduleResult sched = schedule_tasks(std::move(tasks), config_.comp_threads, 0.0);
    steady_compute[i] = sched.makespan;
    steady_busy_total += sched.busy;
    steady_barrier = std::max(steady_barrier, sched.makespan);
  }
  result.steady_iteration_ms = steady_barrier;
  result.total_ms = result.first_iteration_ms +
                    static_cast<double>(config_.iterations - 1) * steady_barrier;
  result.migration_overhead_ms = result.first_iteration_ms - steady_barrier;
  result.compute_imbalance = lrp::imbalance_ratio(steady_compute);
  const double capacity = steady_barrier * static_cast<double>(m) *
                          static_cast<double>(config_.comp_threads);
  result.parallel_efficiency = capacity > 0.0 ? steady_busy_total / capacity : 1.0;

  // --- trace replay ----------------------------------------------------------
  // Render the simulated first iteration as per-rank tracks in the request's
  // recorder: simulated milliseconds map onto the recorder's epoch starting
  // now, so the rank rows appear right after the solver spans that produced
  // the plan being simulated.
  if (config_.trace.active()) {
    obs::Recorder& rec = *config_.trace.recorder();
    const std::uint32_t base =
        config_.trace.claim_tracks(static_cast<std::uint32_t>(m));
    const double t0 = rec.now_us();
    const auto at = [&](double sim_ms) { return t0 + sim_ms * 1000.0; };
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint32_t track = base + static_cast<std::uint32_t>(i);
      rec.name_track(track, "rank " + std::to_string(i));
      const ProcessTrace& p = result.processes[i];
      if (p.send_ms > 0.0) {
        rec.span("migrate-send", "bsp", track, at(0.0), at(p.send_ms));
      }
      const double workers_start = config_.overlap_migration ? 0.0 : p.send_ms;
      rec.span("compute", "bsp", track, at(workers_start), at(p.finish_ms));
      if (p.idle_ms > 0.0) {
        rec.span("barrier-wait", "bsp", track, at(p.finish_ms),
                 at(first_iter_barrier));
      }
      rec.sample_at("steady_compute_ms", track, at(first_iter_barrier),
                    steady_compute[i]);
    }
    const auto fmt = [](double v) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.4f", v);
      return std::string(buf);
    };
    rec.annotate("bsp_first_iteration_ms", fmt(result.first_iteration_ms));
    rec.annotate("bsp_steady_iteration_ms", fmt(result.steady_iteration_ms));
    rec.annotate("bsp_compute_imbalance", fmt(result.compute_imbalance));
  }
  return result;
}

BspResult BspSimulator::run_baseline(const lrp::LrpProblem& problem) const {
  return run(problem, lrp::MigrationPlan::identity(problem));
}

}  // namespace qulrb::runtime
