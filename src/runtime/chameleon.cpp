#include "runtime/chameleon.hpp"

#include "util/error.hpp"

namespace qulrb::runtime {

MiniChameleon::MiniChameleon(std::size_t num_processes, BspConfig config)
    : config_(config), task_load_(num_processes, 0.0), num_tasks_(num_processes, 0) {
  util::require(num_processes > 0, "MiniChameleon: need at least one process");
}

void MiniChameleon::add_tasks(std::size_t process, std::int64_t count, double load_ms) {
  util::require(process < task_load_.size(), "MiniChameleon: process out of range");
  util::require(count >= 0, "MiniChameleon: negative task count");
  util::require(load_ms >= 0.0, "MiniChameleon: negative task load");
  util::require(num_tasks_[process] == 0 || task_load_[process] == load_ms,
                "MiniChameleon: per-process task load must be uniform");
  task_load_[process] = load_ms;
  num_tasks_[process] += count;
}

lrp::LrpProblem MiniChameleon::problem() const {
  return lrp::LrpProblem(task_load_, num_tasks_);
}

MiniChameleon::RunReport MiniChameleon::distributed_taskwait(
    lrp::RebalanceSolver& solver) const {
  const lrp::LrpProblem prob = problem();
  lrp::SolveOutput output = solver.solve(prob);
  output.plan.validate(prob);

  const BspSimulator sim(config_);
  RunReport report{solver.name(),
                   output.plan,
                   lrp::evaluate_plan(prob, output.plan),
                   sim.run_baseline(prob),
                   sim.run(prob, output.plan),
                   1.0};
  if (report.rebalanced.total_ms > 0.0) {
    report.simulated_speedup = report.baseline.total_ms / report.rebalanced.total_ms;
  }
  return report;
}

}  // namespace qulrb::runtime
