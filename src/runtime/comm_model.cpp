#include "runtime/comm_model.hpp"

// CommModel is header-only arithmetic; this translation unit anchors the
// library target and keeps a home for future (e.g. congestion-aware) models.
