#include "runtime/work_stealing.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "util/error.hpp"

namespace qulrb::runtime {

namespace {

struct Proc {
  std::deque<double> tasks;  ///< per-task cost (ms); back is the steal end
  double free_at = 0.0;
  double busy_ms = 0.0;
};

}  // namespace

WorkStealingResult WorkStealingSimulator::run(const lrp::LrpProblem& problem) const {
  util::require(config_.comp_threads >= 1, "WorkStealingSimulator: need >= 1 thread");
  util::require(config_.steal_fraction > 0.0 && config_.steal_fraction <= 1.0,
                "WorkStealingSimulator: steal_fraction must be in (0, 1]");

  const std::size_t m = problem.num_processes();
  const double threads = static_cast<double>(config_.comp_threads);

  std::vector<Proc> procs(m);
  for (std::size_t p = 0; p < m; ++p) {
    for (std::int64_t t = 0; t < problem.tasks_on(p); ++t) {
      procs[p].tasks.push_back(problem.task_load(p));
    }
  }

  WorkStealingResult result;
  result.process_busy_ms.assign(m, 0.0);

  // Min-heap of (time the process becomes free, process id).
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> agenda;
  for (std::size_t p = 0; p < m; ++p) agenda.emplace(0.0, p);

  auto queued_load = [&](std::size_t p) {
    double load = 0.0;
    for (double w : procs[p].tasks) load += w;
    return load;
  };

  std::int64_t steals = 0;
  double makespan = 0.0;

  while (!agenda.empty()) {
    const auto [now, p] = agenda.top();
    agenda.pop();
    Proc& self = procs[p];

    if (!self.tasks.empty()) {
      // Execute the next local task (front of the deque).
      const double w = self.tasks.front();
      self.tasks.pop_front();
      const double duration = w / threads;
      self.free_at = now + duration;
      self.busy_ms += duration;
      makespan = std::max(makespan, self.free_at);
      agenda.emplace(self.free_at, p);
      continue;
    }

    // Idle: try to steal from the process with the largest queued load.
    if (steals >= static_cast<std::int64_t>(config_.max_steals)) continue;
    std::size_t victim = m;
    double victim_load = 0.0;
    for (std::size_t q = 0; q < m; ++q) {
      if (q == p) continue;
      const double load = queued_load(q);
      if (load > victim_load) {
        victim_load = load;
        victim = q;
      }
    }
    if (victim == m || procs[victim].tasks.empty()) continue;  // all drained

    Proc& target = procs[victim];
    const auto take = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(
               config_.steal_fraction * static_cast<double>(target.tasks.size()))));
    double moved_count = 0.0;
    for (std::size_t i = 0; i < take && !target.tasks.empty(); ++i) {
      self.tasks.push_back(target.tasks.back());
      target.tasks.pop_back();
      moved_count += 1.0;
    }
    ++steals;
    result.tasks_stolen += static_cast<std::int64_t>(moved_count);

    const double wait = config_.steal_request_ms +
                        config_.comm.transfer_ms(static_cast<std::int64_t>(moved_count));
    result.total_steal_wait_ms += wait;
    self.free_at = now + wait;
    agenda.emplace(self.free_at, p);
  }

  result.total_steals = steals;
  result.makespan_ms = makespan;
  for (std::size_t p = 0; p < m; ++p) result.process_busy_ms[p] = procs[p].busy_ms;
  return result;
}

}  // namespace qulrb::runtime
