#pragma once

#include <cstdint>
#include <vector>

#include "lrp/plan.hpp"
#include "lrp/problem.hpp"
#include "obs/trace_context.hpp"
#include "runtime/comm_model.hpp"

namespace qulrb::runtime {

struct BspConfig {
  std::size_t comp_threads = 1;    ///< task-executing threads per process
  std::size_t iterations = 10;     ///< BSP outer time steps
  bool overlap_migration = true;   ///< dedicated comm thread (Chameleon style)
  CommModel comm;
  /// When active, the simulated first iteration is replayed into the
  /// request's recorder as per-rank tracks (migrate-send / compute /
  /// barrier-wait spans), claimed from the context's shared allocator so
  /// rank rows sit next to the solver-restart rows of the same request.
  /// Simulated milliseconds map onto the recorder's epoch starting at the
  /// moment run() was called.
  obs::TraceContext trace;
};

/// Per-process execution accounting for one simulated run.
struct ProcessTrace {
  double compute_ms = 0.0;    ///< busy time executing tasks (first iteration)
  double send_ms = 0.0;       ///< time spent serializing outgoing migrations
  double recv_wait_ms = 0.0;  ///< waiting for the last inbound migration
  double finish_ms = 0.0;     ///< when this process reached the first barrier
  double idle_ms = 0.0;       ///< first-iteration barrier wait
  std::int64_t tasks_executed = 0;
  std::int64_t tasks_sent = 0;
  std::int64_t tasks_received = 0;
};

struct BspResult {
  std::vector<ProcessTrace> processes;
  double first_iteration_ms = 0.0;   ///< includes migration traffic
  double steady_iteration_ms = 0.0;  ///< post-rebalance iteration time
  double total_ms = 0.0;             ///< first + (iterations-1) * steady
  double migration_overhead_ms = 0.0;  ///< first - steady
  double compute_imbalance = 0.0;    ///< R_imb of steady compute times
  /// Average busy fraction across processes in steady state.
  double parallel_efficiency = 0.0;
};

/// Event-driven simulator of a bulk-synchronous task-parallel application
/// (Figure 1 of the paper): each process executes its tasks on
/// `comp_threads` workers, migrated tasks travel as batched messages whose
/// arrival gates their execution, and every iteration ends with a barrier.
/// Migration happens once, before the first iteration — the paper's
/// rebalancing scenario. With `overlap_migration`, a dedicated communication
/// thread sends while workers compute (Chameleon's design); otherwise the
/// send time blocks the workers.
class BspSimulator {
 public:
  explicit BspSimulator(BspConfig config = {}) : config_(config) {}

  /// Simulate `problem` executed under `plan`. The plan must be valid.
  BspResult run(const lrp::LrpProblem& problem, const lrp::MigrationPlan& plan) const;

  /// Baseline convenience: simulate with no migration.
  BspResult run_baseline(const lrp::LrpProblem& problem) const;

  const BspConfig& config() const noexcept { return config_; }

 private:
  BspConfig config_;
};

}  // namespace qulrb::runtime
