#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lrp/metrics.hpp"
#include "lrp/solver.hpp"
#include "runtime/bsp_sim.hpp"

namespace qulrb::runtime {

/// Thin facade over the simulator that mirrors how a Chameleon-style
/// task-parallel application is driven (Figure 2 of the paper): processes
/// declare their tasks, then a `distributed_taskwait` executes an iteration —
/// here with an optional rebalancing solver deciding the migrations first.
class MiniChameleon {
 public:
  explicit MiniChameleon(std::size_t num_processes, BspConfig config = {});

  /// Declare `count` tasks of `load_ms` each on `process`. The paper's
  /// setting has uniform load per process; repeated calls on one process must
  /// use the same load.
  void add_tasks(std::size_t process, std::int64_t count, double load_ms);

  std::size_t num_processes() const noexcept { return task_load_.size(); }
  lrp::LrpProblem problem() const;

  struct RunReport {
    std::string solver_name;
    lrp::MigrationPlan plan;
    lrp::RebalanceMetrics metrics;   ///< analytic (solution-level) metrics
    BspResult baseline;              ///< simulated run without rebalancing
    BspResult rebalanced;            ///< simulated run under the plan
    /// End-to-end speedup including migration overhead (total/total).
    double simulated_speedup = 1.0;
  };

  /// Rebalance with `solver`, then simulate both the baseline and the
  /// rebalanced execution.
  RunReport distributed_taskwait(lrp::RebalanceSolver& solver) const;

 private:
  BspConfig config_;
  std::vector<double> task_load_;
  std::vector<std::int64_t> num_tasks_;
};

}  // namespace qulrb::runtime
