#pragma once

#include <string>

#include "lrp/plan.hpp"
#include "lrp/problem.hpp"
#include "runtime/bsp_sim.hpp"

namespace qulrb::runtime {

/// Export one simulated BSP run as a Chrome-tracing JSON document
/// (chrome://tracing or https://ui.perfetto.dev): one row per process with
/// complete events for migration send, compute, and barrier-wait (idle)
/// phases of the first iteration. The visual counterpart of Figure 1.
std::string to_chrome_trace(const lrp::LrpProblem& problem,
                            const lrp::MigrationPlan& plan, const BspResult& result);

void write_chrome_trace_file(const std::string& path, const lrp::LrpProblem& problem,
                             const lrp::MigrationPlan& plan, const BspResult& result);

}  // namespace qulrb::runtime
