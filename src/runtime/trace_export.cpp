#include "runtime/trace_export.hpp"

#include <fstream>

#include "io/json.hpp"
#include "util/error.hpp"

namespace qulrb::runtime {

namespace {

/// Emit one complete ("X") event; Chrome tracing uses microseconds.
void emit_event(io::JsonWriter& json, const std::string& name, std::size_t process,
                double start_ms, double duration_ms, const char* category) {
  if (duration_ms <= 0.0) return;
  json.begin_object();
  json.field("name", name);
  json.field("cat", category);
  json.field("ph", "X");
  json.field("ts", start_ms * 1e3);
  json.field("dur", duration_ms * 1e3);
  json.field("pid", 1);
  json.field("tid", static_cast<std::int64_t>(process));
  json.end_object();
}

}  // namespace

std::string to_chrome_trace(const lrp::LrpProblem& problem,
                            const lrp::MigrationPlan& plan, const BspResult& result) {
  util::require(result.processes.size() == problem.num_processes(),
                "to_chrome_trace: result does not match the problem");

  io::JsonWriter json;
  json.begin_object();
  json.key("traceEvents");
  json.begin_array();

  for (std::size_t p = 0; p < result.processes.size(); ++p) {
    const ProcessTrace& trace = result.processes[p];
    double cursor = 0.0;
    if (trace.send_ms > 0.0) {
      emit_event(json, "migrate-send (" + std::to_string(trace.tasks_sent) + " tasks)",
                 p, cursor, trace.send_ms, "comm");
    }
    if (trace.recv_wait_ms > 0.0) {
      emit_event(json,
                 "await-inbound (" + std::to_string(trace.tasks_received) + " tasks)",
                 p, cursor, trace.recv_wait_ms, "comm");
    }
    // Compute is rendered as one block ending at the process's finish time.
    const double compute_start = trace.finish_ms - trace.compute_ms < 0.0
                                     ? 0.0
                                     : trace.finish_ms - trace.compute_ms;
    emit_event(json,
               "compute (" + std::to_string(trace.tasks_executed) + " tasks)", p,
               compute_start, trace.compute_ms, "compute");
    cursor = trace.finish_ms;
    emit_event(json, "barrier-wait", p, cursor, trace.idle_ms, "sync");
  }

  json.end_array();
  json.key("metadata");
  json.begin_object();
  json.field("processes", problem.num_processes());
  json.field("migrated_tasks", plan.total_migrated());
  json.field("first_iteration_ms", result.first_iteration_ms);
  json.field("steady_iteration_ms", result.steady_iteration_ms);
  json.end_object();
  json.end_object();
  return json.str();
}

void write_chrome_trace_file(const std::string& path, const lrp::LrpProblem& problem,
                             const lrp::MigrationPlan& plan,
                             const BspResult& result) {
  std::ofstream out(path);
  util::require(out.good(), "write_chrome_trace_file: cannot open '" + path + "'");
  out << to_chrome_trace(problem, plan, result) << '\n';
}

}  // namespace qulrb::runtime
