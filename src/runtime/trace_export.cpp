#include "runtime/trace_export.hpp"

#include <fstream>

#include "obs/trace_writer.hpp"
#include "util/error.hpp"

namespace qulrb::runtime {

std::string to_chrome_trace(const lrp::LrpProblem& problem,
                            const lrp::MigrationPlan& plan, const BspResult& result) {
  util::require(result.processes.size() == problem.num_processes(),
                "to_chrome_trace: result does not match the problem");

  constexpr std::int64_t kPid = 1;
  obs::TraceWriter writer;
  writer.process_name(kPid, "bsp-sim");

  for (std::size_t p = 0; p < result.processes.size(); ++p) {
    const ProcessTrace& trace = result.processes[p];
    const auto tid = static_cast<std::int64_t>(p);
    writer.thread_name(kPid, tid, "rank " + std::to_string(p));
    if (trace.send_ms > 0.0) {
      writer.complete("migrate-send (" + std::to_string(trace.tasks_sent) +
                          " tasks)",
                      "comm", kPid, tid, 0.0, trace.send_ms * 1e3);
    }
    if (trace.recv_wait_ms > 0.0) {
      writer.complete("await-inbound (" + std::to_string(trace.tasks_received) +
                          " tasks)",
                      "comm", kPid, tid, 0.0, trace.recv_wait_ms * 1e3);
    }
    // Compute is rendered as one block ending at the process's finish time.
    const double compute_start = trace.finish_ms - trace.compute_ms < 0.0
                                     ? 0.0
                                     : trace.finish_ms - trace.compute_ms;
    writer.complete("compute (" + std::to_string(trace.tasks_executed) +
                        " tasks)",
                    "compute", kPid, tid, compute_start * 1e3,
                    trace.compute_ms * 1e3);
    writer.complete("barrier-wait", "sync", kPid, tid, trace.finish_ms * 1e3,
                    trace.idle_ms * 1e3);
  }

  writer.metadata("processes", problem.num_processes());
  writer.metadata("migrated_tasks", plan.total_migrated());
  writer.metadata("first_iteration_ms", result.first_iteration_ms);
  writer.metadata("steady_iteration_ms", result.steady_iteration_ms);
  return writer.finish();
}

void write_chrome_trace_file(const std::string& path, const lrp::LrpProblem& problem,
                             const lrp::MigrationPlan& plan,
                             const BspResult& result) {
  std::ofstream out(path);
  util::require(out.good(), "write_chrome_trace_file: cannot open '" + path + "'");
  out << to_chrome_trace(problem, plan, result) << '\n';
}

}  // namespace qulrb::runtime
