#pragma once

#include <cstdint>
#include <vector>

#include "lrp/problem.hpp"
#include "runtime/comm_model.hpp"

namespace qulrb::runtime {

struct WorkStealingConfig {
  std::size_t comp_threads = 1;
  CommModel comm;
  /// One-way request latency: an idle process must ask before it can steal
  /// (the delay that Samfass et al. identify as the weakness of reactive
  /// stealing on distributed memory).
  double steal_request_ms = 0.1;
  /// Fraction of the victim's remaining queue taken per steal (steal-half is
  /// the classic policy).
  double steal_fraction = 0.5;
  std::size_t max_steals = 100000;  ///< safety valve
};

struct WorkStealingResult {
  double makespan_ms = 0.0;
  std::int64_t total_steals = 0;       ///< steal transactions
  std::int64_t tasks_stolen = 0;       ///< tasks moved in total
  double total_steal_wait_ms = 0.0;    ///< time thieves spent waiting
  std::vector<double> process_busy_ms;
};

/// Reactive work stealing over one BSP iteration (Blumofe-Leiserson style,
/// adapted to distributed memory): processes execute their local queues;
/// when a process drains its queue it requests work from the currently
/// busiest process, pays the request latency plus the batched task transfer
/// time, and continues. This is the classical *dynamic* baseline the paper's
/// related-work section contrasts with plan-based rebalancing: it needs no
/// load model, but every steal pays communication on the critical path.
class WorkStealingSimulator {
 public:
  explicit WorkStealingSimulator(WorkStealingConfig config = {}) : config_(config) {}

  WorkStealingResult run(const lrp::LrpProblem& problem) const;

 private:
  WorkStealingConfig config_;
};

}  // namespace qulrb::runtime
