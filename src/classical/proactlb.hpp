#pragma once

#include <cstdint>
#include <vector>

namespace qulrb::classical {

/// LRP input as seen by ProactLB: per-process uniform task load and task
/// count (the paper's experimental setting: every task on process i costs
/// w_i, process i initially holds n_i tasks).
struct UniformLoads {
  std::vector<double> task_load;       ///< w_i
  std::vector<std::int64_t> num_tasks; ///< n_i

  std::size_t num_processes() const noexcept { return task_load.size(); }
  double load_of(std::size_t i) const {
    return task_load[i] * static_cast<double>(num_tasks[i]);
  }
  double total_load() const;
  double average_load() const;
};

struct Transfer {
  std::size_t from = 0;
  std::size_t to = 0;
  std::int64_t count = 0;  ///< number of tasks moved (tasks keep `from`'s load)
};

struct ProactLbParams {
  /// Search-space bound K from the ProactLB paper (complexity O(M^2 K)):
  /// at most this many tasks are considered for migration per process.
  /// 0 = unbounded (K = n_i).
  std::int64_t max_tasks_per_process = 0;
};

struct ProactLbResult {
  std::vector<Transfer> transfers;
  std::vector<double> new_loads;
  std::int64_t total_migrated = 0;
};

/// Proactive load balancing (Chung, Weidendorfer, Fürlinger, Kranzlmüller
/// 2023): processes are split into overloaded/underloaded against L_avg;
/// the most overloaded sheds round(surplus / w) tasks toward the most
/// underloaded processes, bounded by each receiver's deficit. Unlike
/// Greedy/KK it is placement-aware, so it migrates roughly the *minimum*
/// number of tasks needed to balance — the property the paper uses to set
/// the CQM bound k1.
ProactLbResult proactlb(const UniformLoads& input, const ProactLbParams& params = {});

}  // namespace qulrb::classical
