#pragma once

#include <cstdint>
#include <span>

#include "classical/partition.hpp"

namespace qulrb::classical {

struct RnpParams {
  /// Node budget of each 2-way CKK call (anytime: larger = better splits).
  std::uint64_t ckk_node_limit = 200'000;
};

/// Recursive Number Partitioning for a power-of-two number of bins: split the
/// item set into two halves with (complete) Karmarkar-Karp, then recurse on
/// each half. This is the scheme Rathore et al. (the related-work quantum
/// load-balancing study) use to map workloads onto 2^k processors; included
/// as the classical reference for that lineage. Requires num_bins = 2^k.
PartitionResult rnp_partition(std::span<const double> items, std::size_t num_bins,
                              const RnpParams& params = {});

}  // namespace qulrb::classical
