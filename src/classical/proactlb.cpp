#include "classical/proactlb.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qulrb::classical {

double UniformLoads::total_load() const {
  double total = 0.0;
  for (std::size_t i = 0; i < task_load.size(); ++i) total += load_of(i);
  return total;
}

double UniformLoads::average_load() const {
  return task_load.empty() ? 0.0
                           : total_load() / static_cast<double>(task_load.size());
}

ProactLbResult proactlb(const UniformLoads& input, const ProactLbParams& params) {
  const std::size_t m = input.num_processes();
  util::require(input.num_tasks.size() == m,
                "proactlb: task_load / num_tasks size mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    util::require(input.task_load[i] >= 0.0, "proactlb: negative task load");
    util::require(input.num_tasks[i] >= 0, "proactlb: negative task count");
  }

  ProactLbResult result;
  result.new_loads.resize(m);
  for (std::size_t i = 0; i < m; ++i) result.new_loads[i] = input.load_of(i);
  if (m == 0) return result;

  const double avg = input.average_load();

  struct Giver {
    std::size_t proc;
    std::int64_t tasks_to_shed;  ///< round(surplus / w), capped by K and n
  };
  std::vector<Giver> givers;
  std::vector<std::size_t> takers;
  for (std::size_t i = 0; i < m; ++i) {
    const double surplus = result.new_loads[i] - avg;
    if (surplus > 0.0 && input.task_load[i] > 0.0) {
      auto shed = static_cast<std::int64_t>(std::llround(surplus / input.task_load[i]));
      shed = std::min(shed, input.num_tasks[i]);
      if (params.max_tasks_per_process > 0) {
        shed = std::min(shed, params.max_tasks_per_process);
      }
      if (shed > 0) givers.push_back({i, shed});
    } else if (surplus < 0.0) {
      takers.push_back(i);
    }
  }

  // Most overloaded first; receivers re-sorted by current deficit each round.
  std::stable_sort(givers.begin(), givers.end(), [&](const Giver& a, const Giver& b) {
    return result.new_loads[a.proc] > result.new_loads[b.proc];
  });

  for (auto& giver : givers) {
    const double w = input.task_load[giver.proc];
    while (giver.tasks_to_shed > 0) {
      // Pick the receiver with the largest remaining deficit.
      std::size_t best_taker = m;
      double best_deficit = 0.0;
      for (std::size_t t : takers) {
        const double deficit = avg - result.new_loads[t];
        if (deficit > best_deficit) {
          best_deficit = deficit;
          best_taker = t;
        }
      }
      if (best_taker == m) break;

      // Don't push the receiver above average: cap by floor(deficit / w),
      // but always allow a single task if the deficit covers most of it
      // (otherwise big-task processes could never shed anything).
      auto fit = static_cast<std::int64_t>(std::floor(best_deficit / w));
      std::int64_t count = std::min(giver.tasks_to_shed, fit);
      if (count == 0) {
        if (best_deficit >= 0.5 * w) {
          count = 1;
        } else {
          break;  // nothing productive left for this giver
        }
      }

      result.transfers.push_back({giver.proc, best_taker, count});
      const double moved = static_cast<double>(count) * w;
      result.new_loads[giver.proc] -= moved;
      result.new_loads[best_taker] += moved;
      result.total_migrated += count;
      giver.tasks_to_shed -= count;
    }
  }
  return result;
}

}  // namespace qulrb::classical
