#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace qulrb::classical {

/// Result of a multiway number-partitioning algorithm: `bins[b]` holds the
/// indices (into the input item array) assigned to bin b.
struct PartitionResult {
  std::vector<std::vector<std::size_t>> bins;
  std::vector<double> bin_sums;

  double makespan() const noexcept;   ///< max bin sum
  double min_sum() const noexcept;
  double spread() const noexcept { return makespan() - min_sum(); }

  /// Every input index appears in exactly one bin.
  bool is_valid(std::size_t num_items) const;
};

/// Recompute bin_sums from bins and items (defensive helper).
std::vector<double> compute_bin_sums(
    const std::vector<std::vector<std::size_t>>& bins, std::span<const double> items);

}  // namespace qulrb::classical
