#include "classical/local_search.hpp"

#include <algorithm>

#include "classical/greedy.hpp"
#include "util/error.hpp"

namespace qulrb::classical {

namespace {

std::size_t argmax_bin(const std::vector<double>& sums) {
  return static_cast<std::size_t>(
      std::max_element(sums.begin(), sums.end()) - sums.begin());
}

}  // namespace

PartitionResult local_search_partition(std::span<const double> items,
                                       std::size_t num_bins,
                                       const LocalSearchParams& params) {
  util::require(num_bins > 0, "local_search_partition: need at least one bin");

  PartitionResult result = greedy_partition(items, num_bins);
  if (items.empty() || num_bins == 1) return result;

  for (std::size_t round = 0; round < params.max_rounds; ++round) {
    bool improved = false;
    const std::size_t heavy = argmax_bin(result.bin_sums);
    const double makespan = result.bin_sums[heavy];

    // Move: take an item out of the heaviest bin if some bin can host it
    // with a strictly lower resulting maximum of the two bins involved.
    for (std::size_t pos = 0; pos < result.bins[heavy].size() && !improved; ++pos) {
      const std::size_t item = result.bins[heavy][pos];
      const double w = items[item];
      for (std::size_t b = 0; b < num_bins; ++b) {
        if (b == heavy) continue;
        if (result.bin_sums[b] + w < makespan - 1e-12) {
          result.bins[heavy].erase(result.bins[heavy].begin() +
                                   static_cast<std::ptrdiff_t>(pos));
          result.bins[b].push_back(item);
          result.bin_sums[heavy] -= w;
          result.bin_sums[b] += w;
          improved = true;
          break;
        }
      }
    }
    if (improved) continue;

    // Swap: exchange one item of the heaviest bin with a smaller item of
    // another bin when that lowers the max of the pair.
    for (std::size_t pa = 0; pa < result.bins[heavy].size() && !improved; ++pa) {
      const std::size_t item_a = result.bins[heavy][pa];
      const double wa = items[item_a];
      for (std::size_t b = 0; b < num_bins && !improved; ++b) {
        if (b == heavy) continue;
        for (std::size_t pb = 0; pb < result.bins[b].size(); ++pb) {
          const std::size_t item_b = result.bins[b][pb];
          const double wb = items[item_b];
          const double delta = wa - wb;
          if (delta <= 1e-12) continue;  // must shrink the heavy bin
          const double new_heavy = result.bin_sums[heavy] - delta;
          const double new_other = result.bin_sums[b] + delta;
          if (std::max(new_heavy, new_other) < makespan - 1e-12) {
            std::swap(result.bins[heavy][pa], result.bins[b][pb]);
            result.bin_sums[heavy] = new_heavy;
            result.bin_sums[b] = new_other;
            improved = true;
            break;
          }
        }
      }
    }
    if (!improved) break;  // local optimum for both neighborhoods
  }
  return result;
}

}  // namespace qulrb::classical
