#pragma once

#include <cstdint>
#include <span>

#include "classical/partition.hpp"

namespace qulrb::classical {

struct LocalSearchParams {
  std::uint64_t seed = 1;
  std::size_t max_rounds = 64;  ///< passes over moves/swaps before giving up
};

/// Classical improvement baseline: start from an LPT (Greedy) partition and
/// descend with single-item *moves* (item to a lighter bin) and pairwise
/// *swaps* between the makespan bin and every other bin, until neither
/// improves the makespan. This is the standard polish step optimal
/// partitioning solvers use to tighten their upper bound (Schreiber, Korf &
/// Moffitt 2018) — a stronger classical reference point than plain Greedy/KK.
PartitionResult local_search_partition(std::span<const double> items,
                                       std::size_t num_bins,
                                       const LocalSearchParams& params = {});

}  // namespace qulrb::classical
