#include "classical/greedy.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/error.hpp"

namespace qulrb::classical {

PartitionResult greedy_partition(std::span<const double> items, std::size_t num_bins) {
  util::require(num_bins > 0, "greedy_partition: need at least one bin");

  PartitionResult result;
  result.bins.assign(num_bins, {});
  result.bin_sums.assign(num_bins, 0.0);

  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return items[a] > items[b]; });

  // Min-heap over (bin sum, bin index); ties resolved by lower index so the
  // result is deterministic regardless of heap internals.
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t b = 0; b < num_bins; ++b) heap.emplace(0.0, b);

  for (std::size_t idx : order) {
    auto [sum, b] = heap.top();
    heap.pop();
    result.bins[b].push_back(idx);
    result.bin_sums[b] = sum + items[idx];
    heap.emplace(result.bin_sums[b], b);
  }
  return result;
}

}  // namespace qulrb::classical
