#include "classical/kk.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <utility>

#include "util/error.hpp"

namespace qulrb::classical {

namespace {

/// Partial partition: `sums` sorted descending, bin p holds `members[p]`.
struct Tuple {
  std::vector<double> sums;
  std::vector<std::vector<std::size_t>> members;
  std::uint64_t id = 0;  ///< creation order, for deterministic tie-breaking

  double spread() const noexcept { return sums.front() - sums.back(); }
};

struct SpreadLess {
  bool operator()(const Tuple& a, const Tuple& b) const noexcept {
    if (a.spread() != b.spread()) return a.spread() < b.spread();
    return a.id > b.id;  // older tuple wins ties
  }
};

}  // namespace

PartitionResult kk_partition(std::span<const double> items, std::size_t num_bins) {
  util::require(num_bins > 0, "kk_partition: need at least one bin");

  PartitionResult result;
  result.bins.assign(num_bins, {});
  result.bin_sums.assign(num_bins, 0.0);
  if (items.empty()) return result;

  std::priority_queue<Tuple, std::vector<Tuple>, SpreadLess> heap;
  std::uint64_t next_id = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    Tuple t;
    t.sums.assign(num_bins, 0.0);
    t.members.assign(num_bins, {});
    t.sums[0] = items[i];
    t.members[0] = {i};
    t.id = next_id++;
    heap.push(std::move(t));
  }

  while (heap.size() > 1) {
    Tuple a = heap.top();
    heap.pop();
    Tuple b = heap.top();
    heap.pop();

    // Combine: a's p-th largest bin with b's p-th smallest bin.
    Tuple merged;
    merged.sums.resize(num_bins);
    merged.members.resize(num_bins);
    for (std::size_t p = 0; p < num_bins; ++p) {
      const std::size_t q = num_bins - 1 - p;
      merged.sums[p] = a.sums[p] + b.sums[q];
      merged.members[p] = std::move(a.members[p]);
      merged.members[p].insert(merged.members[p].end(), b.members[q].begin(),
                               b.members[q].end());
    }
    // Restore descending order of (sum, members) pairs.
    std::vector<std::size_t> order(num_bins);
    for (std::size_t p = 0; p < num_bins; ++p) order[p] = p;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return merged.sums[x] > merged.sums[y];
    });
    Tuple sorted;
    sorted.sums.resize(num_bins);
    sorted.members.resize(num_bins);
    for (std::size_t p = 0; p < num_bins; ++p) {
      sorted.sums[p] = merged.sums[order[p]];
      sorted.members[p] = std::move(merged.members[order[p]]);
    }
    sorted.id = next_id++;
    heap.push(std::move(sorted));
  }

  Tuple final_tuple = heap.top();
  for (std::size_t p = 0; p < num_bins; ++p) {
    result.bins[p] = std::move(final_tuple.members[p]);
    result.bin_sums[p] = final_tuple.sums[p];
  }
  return result;
}

}  // namespace qulrb::classical
