#include "classical/partition.hpp"

#include <algorithm>
#include <cstdint>

namespace qulrb::classical {

double PartitionResult::makespan() const noexcept {
  double m = 0.0;
  for (double s : bin_sums) m = std::max(m, s);
  return m;
}

double PartitionResult::min_sum() const noexcept {
  if (bin_sums.empty()) return 0.0;
  return *std::min_element(bin_sums.begin(), bin_sums.end());
}

bool PartitionResult::is_valid(std::size_t num_items) const {
  std::vector<std::uint8_t> seen(num_items, 0);
  for (const auto& bin : bins) {
    for (std::size_t idx : bin) {
      if (idx >= num_items || seen[idx]) return false;
      seen[idx] = 1;
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](std::uint8_t s) { return s == 1; });
}

std::vector<double> compute_bin_sums(
    const std::vector<std::vector<std::size_t>>& bins, std::span<const double> items) {
  std::vector<double> sums(bins.size(), 0.0);
  for (std::size_t b = 0; b < bins.size(); ++b) {
    for (std::size_t idx : bins[b]) sums[b] += items[idx];
  }
  return sums;
}

}  // namespace qulrb::classical
