#pragma once

#include <cstdint>
#include <span>

#include "classical/partition.hpp"

namespace qulrb::classical {

struct ExactResult {
  PartitionResult partition;
  bool proven_optimal = false;
  std::uint64_t nodes_explored = 0;
};

/// Exact minimum-makespan multiway partitioning by depth-first branch-and-
/// bound: items sorted descending, each assigned to every non-symmetric bin,
/// pruned against the incumbent makespan and the L_avg lower bound.
/// Exponential — intended as a small-instance oracle for tests and for
/// validating that quantum/classical heuristics reach the true optimum.
ExactResult exact_partition(std::span<const double> items, std::size_t num_bins,
                            std::uint64_t node_limit = 5'000'000);

}  // namespace qulrb::classical
