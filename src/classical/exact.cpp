#include "classical/exact.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "classical/greedy.hpp"
#include "util/error.hpp"

namespace qulrb::classical {

namespace {

struct Search {
  std::span<const double> items;        // sorted descending via order
  std::vector<std::size_t> order;
  std::size_t num_bins;
  std::vector<double> suffix_sum;       // suffix_sum[d] = sum of items[d..]
  double lower_bound;

  std::vector<double> bin_sums;
  std::vector<std::size_t> assignment;  // assignment[d] = bin of order[d]

  double best_makespan;
  std::vector<std::size_t> best_assignment;
  std::uint64_t nodes = 0;
  std::uint64_t node_limit;
  bool truncated = false;

  void dfs(std::size_t depth) {
    if (best_makespan <= lower_bound) return;  // already optimal
    if (++nodes > node_limit) {
      truncated = true;
      return;
    }
    if (depth == order.size()) {
      const double makespan = *std::max_element(bin_sums.begin(), bin_sums.end());
      if (makespan < best_makespan) {
        best_makespan = makespan;
        best_assignment = assignment;
      }
      return;
    }

    const double item = items[order[depth]];
    double prev_sum = -1.0;
    for (std::size_t b = 0; b < num_bins; ++b) {
      // Symmetry pruning: bins with the same current sum are interchangeable.
      if (bin_sums[b] == prev_sum) continue;
      prev_sum = bin_sums[b];
      // Bound pruning against incumbent.
      if (bin_sums[b] + item >= best_makespan) continue;

      bin_sums[b] += item;
      assignment[depth] = b;
      dfs(depth + 1);
      bin_sums[b] -= item;
      if (truncated) return;
    }
  }
};

}  // namespace

ExactResult exact_partition(std::span<const double> items, std::size_t num_bins,
                            std::uint64_t node_limit) {
  util::require(num_bins > 0, "exact_partition: need at least one bin");

  ExactResult result;

  Search search;
  search.items = items;
  search.num_bins = num_bins;
  search.node_limit = node_limit;
  search.order.resize(items.size());
  std::iota(search.order.begin(), search.order.end(), std::size_t{0});
  std::stable_sort(search.order.begin(), search.order.end(),
                   [&](std::size_t a, std::size_t b) { return items[a] > items[b]; });

  double total = 0.0;
  double max_item = 0.0;
  for (double w : items) {
    util::require(w >= 0.0, "exact_partition: items must be non-negative");
    total += w;
    max_item = std::max(max_item, w);
  }
  search.lower_bound = std::max(total / static_cast<double>(num_bins), max_item);

  // Seed the incumbent with Greedy so pruning bites immediately.
  const PartitionResult seed = greedy_partition(items, num_bins);
  search.best_makespan = seed.makespan();
  search.best_assignment.assign(items.size(), 0);
  {
    std::vector<std::size_t> item_to_bin(items.size(), 0);
    for (std::size_t b = 0; b < seed.bins.size(); ++b) {
      for (std::size_t idx : seed.bins[b]) item_to_bin[idx] = b;
    }
    for (std::size_t d = 0; d < search.order.size(); ++d) {
      search.best_assignment[d] = item_to_bin[search.order[d]];
    }
  }

  search.bin_sums.assign(num_bins, 0.0);
  search.assignment.assign(items.size(), 0);
  search.dfs(0);

  result.partition.bins.assign(num_bins, {});
  for (std::size_t d = 0; d < search.order.size(); ++d) {
    result.partition.bins[search.best_assignment[d]].push_back(search.order[d]);
  }
  result.partition.bin_sums = compute_bin_sums(result.partition.bins, items);
  result.proven_optimal = !search.truncated;
  result.nodes_explored = search.nodes;
  return result;
}

}  // namespace qulrb::classical
