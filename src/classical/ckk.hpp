#pragma once

#include <cstdint>
#include <span>

#include "classical/partition.hpp"

namespace qulrb::classical {

struct CkkResult {
  PartitionResult partition;
  double difference = 0.0;   ///< |sum(bin 0) - sum(bin 1)|
  bool proven_optimal = false;
  std::uint64_t nodes_explored = 0;
};

/// Complete Karmarkar-Karp for 2-way partitioning (Korf 1998): depth-first
/// branch-and-bound where the left branch *differences* the two largest
/// numbers (the KK move) and the right branch *sums* them. Anytime: stops at
/// `node_limit` and reports whether optimality was proven. Used as the
/// optimal-baseline oracle in tests and the encoding ablation.
CkkResult ckk_two_way(std::span<const double> items,
                      std::uint64_t node_limit = 1'000'000);

}  // namespace qulrb::classical
