#pragma once

#include <span>

#include "classical/partition.hpp"

namespace qulrb::classical {

/// Karmarkar-Karp largest differencing method, multiway generalisation
/// (Karmarkar & Karp 1983): every item starts as an M-tuple of subset sums;
/// the two tuples with the largest spread are repeatedly combined so that the
/// largest sums of one meet the smallest sums of the other. Produces better
/// balance than Greedy on adversarial inputs at O(N (log N + M log M)).
PartitionResult kk_partition(std::span<const double> items, std::size_t num_bins);

}  // namespace qulrb::classical
