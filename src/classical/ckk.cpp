#include "classical/ckk.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace qulrb::classical {

namespace {

/// A signed combination of original items: value == |sum of +items - sum of
/// -items| with the convention that the combination's value is non-negative.
struct Node {
  double value;
  std::vector<std::pair<std::size_t, std::int8_t>> signs;  // (item, +1/-1)
};

struct Search {
  double best_diff;
  std::vector<std::pair<std::size_t, std::int8_t>> best_signs;
  std::uint64_t nodes = 0;
  std::uint64_t node_limit;
  bool truncated = false;

  void dfs(std::vector<Node>& nodes_list) {
    if (best_diff == 0.0) return;  // perfect partition found
    if (++nodes > node_limit) {
      truncated = true;
      return;
    }

    // Keep descending by value.
    std::sort(nodes_list.begin(), nodes_list.end(),
              [](const Node& a, const Node& b) { return a.value > b.value; });

    if (nodes_list.size() == 1) {
      if (nodes_list[0].value < best_diff) {
        best_diff = nodes_list[0].value;
        best_signs = nodes_list[0].signs;
      }
      return;
    }

    // Prune: if the largest dominates the rest, the best completion is
    // largest - rest; explore that single completion directly.
    double rest = 0.0;
    for (std::size_t i = 1; i < nodes_list.size(); ++i) rest += nodes_list[i].value;
    if (nodes_list[0].value >= rest) {
      const double diff = nodes_list[0].value - rest;
      if (diff < best_diff) {
        // All remaining nodes go opposite to the largest.
        std::vector<std::pair<std::size_t, std::int8_t>> signs = nodes_list[0].signs;
        for (std::size_t i = 1; i < nodes_list.size(); ++i) {
          for (auto [item, s] : nodes_list[i].signs) {
            signs.emplace_back(item, static_cast<std::int8_t>(-s));
          }
        }
        best_diff = diff;
        best_signs = std::move(signs);
      }
      return;
    }

    Node a = nodes_list[0];
    Node b = nodes_list[1];
    std::vector<Node> remainder(nodes_list.begin() + 2, nodes_list.end());

    // Branch 1 (KK move): a and b in opposite sets -> value a - b.
    {
      Node diff;
      diff.value = a.value - b.value;
      diff.signs = a.signs;
      for (auto [item, s] : b.signs) {
        diff.signs.emplace_back(item, static_cast<std::int8_t>(-s));
      }
      std::vector<Node> next = remainder;
      next.push_back(std::move(diff));
      dfs(next);
      if (best_diff == 0.0 || truncated) return;
    }

    // Branch 2: a and b in the same set -> value a + b.
    {
      Node sum;
      sum.value = a.value + b.value;
      sum.signs = a.signs;
      sum.signs.insert(sum.signs.end(), b.signs.begin(), b.signs.end());
      std::vector<Node> next = std::move(remainder);
      next.push_back(std::move(sum));
      dfs(next);
    }
  }
};

}  // namespace

CkkResult ckk_two_way(std::span<const double> items, std::uint64_t node_limit) {
  CkkResult result;
  result.partition.bins.assign(2, {});
  result.partition.bin_sums.assign(2, 0.0);
  if (items.empty()) {
    result.proven_optimal = true;
    return result;
  }

  std::vector<Node> nodes_list;
  nodes_list.reserve(items.size());
  double total = 0.0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    util::require(items[i] >= 0.0, "ckk_two_way: items must be non-negative");
    nodes_list.push_back({items[i], {{i, std::int8_t{1}}}});
    total += items[i];
  }

  Search search{.best_diff = total + 1.0, .best_signs = {}, .node_limit = node_limit};
  search.dfs(nodes_list);

  for (auto [item, sign] : search.best_signs) {
    result.partition.bins[sign > 0 ? 0 : 1].push_back(item);
  }
  result.partition.bin_sums = compute_bin_sums(result.partition.bins, items);
  result.difference = std::abs(result.partition.bin_sums[0] - result.partition.bin_sums[1]);
  result.proven_optimal = !search.truncated;
  result.nodes_explored = search.nodes;
  return result;
}

}  // namespace qulrb::classical
