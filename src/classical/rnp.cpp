#include "classical/rnp.hpp"

#include <bit>
#include <vector>

#include "classical/ckk.hpp"
#include "util/error.hpp"

namespace qulrb::classical {

namespace {

/// Recursively split `indices` (into `items`) across bins [first, last).
void split(std::span<const double> items, const std::vector<std::size_t>& indices,
           std::size_t first_bin, std::size_t num_bins, const RnpParams& params,
           PartitionResult& out) {
  if (num_bins == 1) {
    for (const std::size_t idx : indices) {
      out.bins[first_bin].push_back(idx);
      out.bin_sums[first_bin] += items[idx];
    }
    return;
  }

  // Two-way split of the current item subset by (complete) KK.
  std::vector<double> values;
  values.reserve(indices.size());
  for (const std::size_t idx : indices) values.push_back(items[idx]);
  const CkkResult ckk = ckk_two_way(values, params.ckk_node_limit);

  std::vector<std::size_t> left, right;
  left.reserve(indices.size());
  right.reserve(indices.size());
  for (const std::size_t local : ckk.partition.bins[0]) left.push_back(indices[local]);
  for (const std::size_t local : ckk.partition.bins[1]) right.push_back(indices[local]);

  const std::size_t half = num_bins / 2;
  split(items, left, first_bin, half, params, out);
  split(items, right, first_bin + half, half, params, out);
}

}  // namespace

PartitionResult rnp_partition(std::span<const double> items, std::size_t num_bins,
                              const RnpParams& params) {
  util::require(num_bins >= 1 && std::has_single_bit(num_bins),
                "rnp_partition: number of bins must be a power of two");

  PartitionResult result;
  result.bins.assign(num_bins, {});
  result.bin_sums.assign(num_bins, 0.0);

  std::vector<std::size_t> all(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) all[i] = i;
  split(items, all, 0, num_bins, params, result);
  return result;
}

}  // namespace qulrb::classical
