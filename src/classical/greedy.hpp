#pragma once

#include <span>

#include "classical/partition.hpp"

namespace qulrb::classical {

/// Greedy / Longest-Processing-Time multiway partitioning (Graham 1966): sort
/// items descending and place each into the currently lightest bin.
/// Guarantees makespan <= (4/3 - 1/(3M)) * OPT. O(N log N + N log M).
PartitionResult greedy_partition(std::span<const double> items, std::size_t num_bins);

}  // namespace qulrb::classical
