#pragma once

#include <condition_variable>
#include <optional>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace qulrb::mpirt {

/// Message payload: tagged vector of doubles (enough to serialize task
/// batches; a real implementation would be typed).
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<double> payload;
};

class Communicator;

/// Per-rank handle passed to the rank function — the MPI-like surface:
/// point-to-point send/recv (tag + source matching), barrier, and the two
/// reductions the LB driver needs. All operations are safe to call
/// concurrently from different ranks (each rank is one thread).
class RankContext {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Non-blocking enqueue to `dest`'s mailbox.
  void send(int dest, int tag, std::vector<double> payload);

  /// Block until a message with this (source, tag) arrives; FIFO per pair.
  Message recv(int source, int tag);

  /// True if a matching message is already queued (non-blocking probe).
  bool probe(int source, int tag);

  /// Take any queued message with this tag, from any source (non-blocking);
  /// empty optional when none is waiting.
  std::optional<Message> try_recv_any(int tag);

  /// Synchronize all ranks.
  void barrier();

  /// Reductions over one double per rank; every rank gets the result.
  double allreduce_sum(double value);
  double allreduce_max(double value);

 private:
  friend class Communicator;
  RankContext(Communicator* comm, int rank) : comm_(comm), rank_(rank) {}

  Communicator* comm_;
  int rank_;
};

/// In-process "MPI": N ranks as threads with mailboxes, a generation-counted
/// barrier, and tree-free (barrier-based) reductions. Substrate for running
/// the LRP migration plans with *real* messages and threads rather than the
/// discrete-event model in runtime/.
class Communicator {
 public:
  explicit Communicator(std::size_t num_ranks);

  std::size_t num_ranks() const noexcept { return num_ranks_; }

  /// Launch `fn(ctx)` on every rank and join. Exceptions thrown by rank
  /// functions are captured and rethrown (the first one) after the join.
  void run(const std::function<void(RankContext&)>& fn);

 private:
  friend class RankContext;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  void deliver(int dest, Message message);
  Message take_matching(int dest, int source, int tag);
  bool probe_matching(int dest, int source, int tag);
  std::optional<Message> take_any(int dest, int tag);
  void barrier_wait();

  std::size_t num_ranks_;
  std::vector<Mailbox> mailboxes_;

  // Barrier (generation counted so it is reusable).
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  std::size_t barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Reduction scratch (guarded by the barrier protocol around it).
  std::mutex reduce_mutex_;
  std::vector<double> reduce_slots_;
};

}  // namespace qulrb::mpirt
