#pragma once

#include <cstdint>
#include <vector>

#include "lrp/problem.hpp"

namespace qulrb::mpirt {

struct ReactiveConfig {
  /// Tasks handed over per offload reply (victims batch their tail).
  std::int64_t batch_size = 4;
  /// Real CPU spin per task (ms multiplier); 0 = accounting only.
  double work_scale = 0.0;
};

struct ReactiveResult {
  std::vector<std::int64_t> tasks_executed;  ///< per rank
  std::vector<double> compute_ms;            ///< virtual work executed per rank
  std::int64_t offload_requests = 0;         ///< REQUEST messages sent
  std::int64_t tasks_offloaded = 0;          ///< tasks that changed ranks
  double virtual_makespan_ms = 0.0;          ///< max per-rank virtual work
  double measured_imbalance = 0.0;
  double wall_ms = 0.0;
};

/// Reactive task offloading (Samfass et al. 2021 — the paper's direct
/// predecessor) executed live on the message-passing runtime:
///
///  * every rank executes its local queue, and between tasks services
///    incoming REQUEST messages by shipping a batch off its queue tail;
///  * a rank that drains its queue requests work from the (initially)
///    heaviest remaining ranks, one victim at a time;
///  * termination is detected by rank 0 collecting FINISHED notices and
///    broadcasting SHUTDOWN, after which idle ranks keep answering EMPTY so
///    no thief can block forever.
///
/// This is the *runtime* (no-plan) counterpart of the paper's plan-based
/// migration — useful to compare "decide online with messages" against
/// "decide upfront with a solver" on identical inputs.
ReactiveResult run_reactive(const lrp::LrpProblem& problem,
                            const ReactiveConfig& config = {});

}  // namespace qulrb::mpirt
