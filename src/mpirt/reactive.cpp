#include "mpirt/reactive.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <numeric>
#include <thread>

#include "lrp/metrics.hpp"
#include "mpirt/communicator.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace qulrb::mpirt {

namespace {

constexpr int kRequestTag = 21;   ///< thief -> victim: "give me work"
constexpr int kReplyTag = 22;     ///< victim -> thief: batch (possibly empty)
constexpr int kFinishedTag = 23;  ///< rank -> 0: "I am out of work"
constexpr int kShutdownTag = 24;  ///< 0 -> all: global termination

void busy_spin_ms(double ms) {
  if (ms <= 0.0) return;
  const util::WallTimer timer;
  volatile double sink = 0.0;
  while (timer.elapsed_ms() < ms) sink = sink + 1.0;
}

}  // namespace

ReactiveResult run_reactive(const lrp::LrpProblem& problem,
                            const ReactiveConfig& config) {
  util::require(config.batch_size >= 1, "run_reactive: batch_size must be >= 1");
  const std::size_t m = problem.num_processes();
  util::require(m >= 2, "run_reactive: need at least two ranks");

  ReactiveResult result;
  result.tasks_executed.assign(m, 0);
  result.compute_ms.assign(m, 0.0);

  std::vector<double> per_rank_compute(m, 0.0);
  std::vector<std::int64_t> per_rank_tasks(m, 0);
  std::atomic<std::int64_t> requests{0};
  std::atomic<std::int64_t> offloaded{0};

  // Victim preference: initially heaviest first (every rank knows the static
  // input, mirroring the status exchange of the reactive scheme).
  std::vector<std::size_t> by_load(m);
  std::iota(by_load.begin(), by_load.end(), std::size_t{0});
  std::sort(by_load.begin(), by_load.end(), [&](std::size_t a, std::size_t b) {
    return problem.load(a) > problem.load(b);
  });

  util::WallTimer wall;
  Communicator comm(m);
  comm.run([&](RankContext& ctx) {
    const auto rank = static_cast<std::size_t>(ctx.rank());
    std::deque<double> queue(static_cast<std::size_t>(problem.tasks_on(rank)),
                             problem.task_load(rank));
    double compute = 0.0;
    std::int64_t executed = 0;

    // Answer queued REQUESTs, shipping up to batch_size tasks each but never
    // dropping the local queue below `keep` (the task we are about to run).
    auto service_requests = [&](std::size_t keep) {
      while (auto request = ctx.try_recv_any(kRequestTag)) {
        std::vector<double> batch;
        while (batch.size() < static_cast<std::size_t>(config.batch_size) &&
               queue.size() > keep) {
          batch.push_back(queue.back());
          queue.pop_back();
        }
        offloaded.fetch_add(static_cast<std::int64_t>(batch.size()));
        ctx.send(request->source, kReplyTag, std::move(batch));
      }
    };

    // --- work + steal loop ---------------------------------------------------
    std::size_t next_victim = 0;
    auto pick_victim = [&]() -> int {
      while (next_victim < m && by_load[next_victim] == rank) ++next_victim;
      if (next_victim >= m) return -1;
      return static_cast<int>(by_load[next_victim++]);
    };

    int awaiting_victim = -1;
    // Initially idle ranks register their first request *before* the barrier,
    // so victims are guaranteed to see them before executing anything — this
    // makes the first offload deterministic even for zero-cost tasks.
    if (queue.empty()) {
      awaiting_victim = pick_victim();
      if (awaiting_victim >= 0) {
        requests.fetch_add(1);
        ctx.send(awaiting_victim, kRequestTag, {});
      }
    }
    ctx.barrier();

    for (;;) {
      if (!queue.empty()) {
        service_requests(/*keep=*/1);
        const double task_ms = queue.front();
        queue.pop_front();
        busy_spin_ms(task_ms * config.work_scale);
        compute += task_ms;
        ++executed;
        continue;
      }
      if (awaiting_victim >= 0) {
        // Serve others while waiting so two mutually-stealing ranks never
        // deadlock.
        if (!ctx.probe(awaiting_victim, kReplyTag)) {
          service_requests(/*keep=*/0);
          std::this_thread::yield();
          continue;
        }
        Message reply = ctx.recv(awaiting_victim, kReplyTag);
        awaiting_victim = -1;
        for (const double task_ms : reply.payload) queue.push_back(task_ms);
        continue;
      }
      awaiting_victim = pick_victim();
      if (awaiting_victim < 0) break;  // every victim tried: done
      requests.fetch_add(1);
      ctx.send(awaiting_victim, kRequestTag, {});
    }

    // --- termination ----------------------------------------------------------
    if (ctx.rank() != 0) {
      ctx.send(0, kFinishedTag, {});
      while (!ctx.probe(0, kShutdownTag)) {
        service_requests(/*keep=*/0);
        std::this_thread::yield();
      }
      (void)ctx.recv(0, kShutdownTag);
    } else {
      std::size_t finished = 0;
      while (finished + 1 < m) {
        if (auto note = ctx.try_recv_any(kFinishedTag)) {
          (void)note;
          ++finished;
        } else {
          service_requests(/*keep=*/0);
          std::this_thread::yield();
        }
      }
      for (std::size_t r = 1; r < m; ++r) {
        ctx.send(static_cast<int>(r), kShutdownTag, {});
      }
    }
    // Drain any stragglers so results are clean (no rank blocks on us now).
    service_requests(/*keep=*/0);
    ctx.barrier();

    per_rank_compute[rank] = compute;
    per_rank_tasks[rank] = executed;
  });

  result.wall_ms = wall.elapsed_ms();
  result.compute_ms = per_rank_compute;
  result.tasks_executed = per_rank_tasks;
  result.offload_requests = requests.load();
  result.tasks_offloaded = offloaded.load();
  result.virtual_makespan_ms =
      *std::max_element(per_rank_compute.begin(), per_rank_compute.end());
  result.measured_imbalance = lrp::imbalance_ratio(per_rank_compute);
  return result;
}

}  // namespace qulrb::mpirt
