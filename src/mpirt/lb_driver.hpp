#pragma once

#include <cstdint>
#include <vector>

#include "lrp/plan.hpp"
#include "lrp/problem.hpp"
#include "obs/event_log.hpp"
#include "obs/trace_context.hpp"

namespace qulrb::mpirt {

struct LiveExecConfig {
  std::size_t iterations = 3;
  /// Real CPU work per task: busy-spin for task_ms * work_scale milliseconds.
  /// 0 disables spinning (tasks are accounted but cost no wall time) — the
  /// right setting for CI; > 0 turns the driver into a genuine stress run.
  double work_scale = 0.0;
  /// When active, each rank records real-time migrate/iteration spans onto
  /// its own track in the request's recorder (tracks claimed from the
  /// context's shared allocator; the Recorder is mutex-guarded, so the rank
  /// threads append concurrently without extra plumbing).
  obs::TraceContext trace;
  /// When set, one "bsp_driver" SolveEvent line is appended per run with the
  /// measured imbalance, migration count and wall time.
  obs::EventLog* events = nullptr;
};

struct LiveExecResult {
  /// Tasks each rank executed per iteration (local + received).
  std::vector<std::int64_t> tasks_executed;
  /// Virtual compute time per rank per iteration (sum of task costs, ms).
  std::vector<double> compute_ms;
  /// max(compute) — the per-iteration makespan implied by the plan.
  double virtual_makespan_ms = 0.0;
  /// R_imb of the per-rank compute times.
  double measured_imbalance = 0.0;
  std::int64_t tasks_migrated = 0;
  double wall_ms = 0.0;
};

/// Execute an LRP instance under a migration plan on the thread-based
/// message-passing runtime: every process is a rank; migrated task batches
/// travel as real messages before the first iteration (each task serialized
/// as its cost); each BSP iteration executes the rank's task list and ends in
/// a barrier; compute times are verified with an allreduce. This is the
/// closest in-repository analogue of running the plan under Chameleon on
/// MPI — it validates plans through actual concurrency, not just arithmetic.
LiveExecResult run_live(const lrp::LrpProblem& problem, const lrp::MigrationPlan& plan,
                        const LiveExecConfig& config = {});

}  // namespace qulrb::mpirt
