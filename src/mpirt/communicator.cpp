#include "mpirt/communicator.hpp"

#include <algorithm>
#include <limits>
#include <exception>
#include <thread>

#include "util/error.hpp"

namespace qulrb::mpirt {

int RankContext::size() const noexcept {
  return static_cast<int>(comm_->num_ranks());
}

void RankContext::send(int dest, int tag, std::vector<double> payload) {
  util::require(dest >= 0 && dest < size(), "send: destination out of range");
  comm_->deliver(dest, Message{rank_, tag, std::move(payload)});
}

Message RankContext::recv(int source, int tag) {
  util::require(source >= 0 && source < size(), "recv: source out of range");
  return comm_->take_matching(rank_, source, tag);
}

bool RankContext::probe(int source, int tag) {
  util::require(source >= 0 && source < size(), "probe: source out of range");
  return comm_->probe_matching(rank_, source, tag);
}

std::optional<Message> RankContext::try_recv_any(int tag) {
  return comm_->take_any(rank_, tag);
}

void RankContext::barrier() { comm_->barrier_wait(); }

double RankContext::allreduce_sum(double value) {
  {
    std::lock_guard lock(comm_->reduce_mutex_);
    comm_->reduce_slots_[static_cast<std::size_t>(rank_)] = value;
  }
  comm_->barrier_wait();  // every slot written
  double sum = 0.0;
  {
    std::lock_guard lock(comm_->reduce_mutex_);
    for (double v : comm_->reduce_slots_) sum += v;
  }
  comm_->barrier_wait();  // everyone done reading before slots are reused
  return sum;
}

double RankContext::allreduce_max(double value) {
  {
    std::lock_guard lock(comm_->reduce_mutex_);
    comm_->reduce_slots_[static_cast<std::size_t>(rank_)] = value;
  }
  comm_->barrier_wait();
  double result = -std::numeric_limits<double>::infinity();
  {
    std::lock_guard lock(comm_->reduce_mutex_);
    for (double v : comm_->reduce_slots_) result = std::max(result, v);
  }
  comm_->barrier_wait();
  return result;
}

Communicator::Communicator(std::size_t num_ranks)
    : num_ranks_(num_ranks),
      mailboxes_(num_ranks),
      reduce_slots_(num_ranks, 0.0) {
  util::require(num_ranks >= 1, "Communicator: need at least one rank");
}

void Communicator::run(const std::function<void(RankContext&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(num_ranks_);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (std::size_t r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &fn, &error_mutex, &first_error] {
      RankContext ctx(this, static_cast<int>(r));
      try {
        fn(ctx);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void Communicator::deliver(int dest, Message message) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  box.cv.notify_all();
}

Message Communicator::take_matching(int dest, int source, int tag) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    const auto it = std::find_if(
        box.messages.begin(), box.messages.end(),
        [&](const Message& m) { return m.source == source && m.tag == tag; });
    if (it != box.messages.end()) {
      Message message = std::move(*it);
      box.messages.erase(it);
      return message;
    }
    box.cv.wait(lock);
  }
}

bool Communicator::probe_matching(int dest, int source, int tag) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
  std::lock_guard lock(box.mutex);
  return std::any_of(
      box.messages.begin(), box.messages.end(),
      [&](const Message& m) { return m.source == source && m.tag == tag; });
}

std::optional<Message> Communicator::take_any(int dest, int tag) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
  std::lock_guard lock(box.mutex);
  const auto it =
      std::find_if(box.messages.begin(), box.messages.end(),
                   [&](const Message& m) { return m.tag == tag; });
  if (it == box.messages.end()) return std::nullopt;
  Message message = std::move(*it);
  box.messages.erase(it);
  return message;
}

void Communicator::barrier_wait() {
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_waiting_ == num_ranks_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] { return barrier_generation_ != generation; });
}

}  // namespace qulrb::mpirt
