#include "mpirt/lb_driver.hpp"

#include <algorithm>
#include <atomic>
#include <string>

#include "lrp/metrics.hpp"
#include "mpirt/communicator.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace qulrb::mpirt {

namespace {

constexpr int kMigrateTag = 7;

void busy_spin_ms(double ms) {
  if (ms <= 0.0) return;
  const util::WallTimer timer;
  // Volatile sink keeps the loop from being optimized away.
  volatile double sink = 0.0;
  while (timer.elapsed_ms() < ms) {
    sink = sink + 1.0;
  }
}

}  // namespace

LiveExecResult run_live(const lrp::LrpProblem& problem, const lrp::MigrationPlan& plan,
                        const LiveExecConfig& config) {
  plan.validate(problem);
  util::require(config.iterations >= 1, "run_live: need at least one iteration");

  const std::size_t m = problem.num_processes();
  LiveExecResult result;
  result.tasks_executed.assign(m, 0);
  result.compute_ms.assign(m, 0.0);
  result.tasks_migrated = plan.total_migrated();

  std::vector<double> per_rank_compute(m, 0.0);
  std::vector<std::int64_t> per_rank_tasks(m, 0);
  std::atomic<double> makespan{0.0};

  // Per-rank trace tracks are claimed once, up front, so the rank threads
  // only append spans (the Recorder serializes internally).
  obs::Recorder* const rec = config.trace.recorder();
  const std::uint32_t track_base =
      config.trace.active()
          ? config.trace.claim_tracks(static_cast<std::uint32_t>(m))
          : 0;
  if (rec != nullptr) {
    for (std::size_t i = 0; i < m; ++i) {
      rec->name_track(track_base + static_cast<std::uint32_t>(i),
                      "live rank " + std::to_string(i));
    }
  }

  util::WallTimer wall;
  Communicator comm(m);
  comm.run([&](RankContext& ctx) {
    const auto rank = static_cast<std::size_t>(ctx.rank());
    const std::uint32_t track = track_base + static_cast<std::uint32_t>(rank);

    // --- migration phase: ship batches as real messages ---------------------
    obs::Recorder::Span migrate_span(rec, "migrate", "mpirt", track);
    // Local tasks that stay: plan.count(rank, rank) copies of w_rank.
    std::vector<double> tasks(
        static_cast<std::size_t>(plan.count(rank, rank)), problem.task_load(rank));

    for (std::size_t dest = 0; dest < m; ++dest) {
      if (dest == rank) continue;
      const std::int64_t count = plan.count(dest, rank);
      if (count <= 0) continue;
      // Serialize the batch: each entry is one task's cost.
      std::vector<double> payload(static_cast<std::size_t>(count),
                                  problem.task_load(rank));
      ctx.send(static_cast<int>(dest), kMigrateTag, std::move(payload));
    }
    for (std::size_t src = 0; src < m; ++src) {
      if (src == rank) continue;
      if (plan.count(rank, src) <= 0) continue;
      Message message = ctx.recv(static_cast<int>(src), kMigrateTag);
      util::ensure(static_cast<std::int64_t>(message.payload.size()) ==
                       plan.count(rank, src),
                   "run_live: migration batch size mismatch");
      tasks.insert(tasks.end(), message.payload.begin(), message.payload.end());
    }
    ctx.barrier();  // everyone holds their final task set
    migrate_span.close();

    // --- BSP iterations -------------------------------------------------------
    double compute_total = 0.0;
    for (std::size_t iter = 0; iter < config.iterations; ++iter) {
      obs::Recorder::Span iter_span(rec, "iteration", "mpirt", track);
      double iteration_compute = 0.0;
      for (const double task_ms : tasks) {
        busy_spin_ms(task_ms * config.work_scale);
        iteration_compute += task_ms;
      }
      compute_total += iteration_compute;
      // Iteration barrier (the synchronization phase of Figure 1).
      const double iteration_makespan = ctx.allreduce_max(iteration_compute);
      if (ctx.rank() == 0 && iteration_makespan > makespan.load()) {
        makespan.store(iteration_makespan);
      }
    }

    per_rank_compute[rank] = compute_total / static_cast<double>(config.iterations);
    per_rank_tasks[rank] = static_cast<std::int64_t>(tasks.size());
  });

  result.wall_ms = wall.elapsed_ms();
  result.compute_ms = per_rank_compute;
  result.tasks_executed = per_rank_tasks;
  result.virtual_makespan_ms = makespan.load();
  result.measured_imbalance = lrp::imbalance_ratio(per_rank_compute);

  if (config.events != nullptr) {
    obs::SolveEvent event;
    event.source = "bsp_driver";
    event.request_id = config.trace.request_id();
    event.outcome = "ok";
    event.feasible = true;
    event.r_imb_before = problem.imbalance_ratio();
    event.r_imb_after = result.measured_imbalance;
    event.migrated = result.tasks_migrated;
    event.runtime_ms = result.wall_ms;
    event.extra.emplace_back("ranks", std::to_string(m));
    config.events->log(event);
  }
  return result;
}

}  // namespace qulrb::mpirt
