#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace qulrb::io {

/// Parsed JSON document node — the read-side complement of JsonWriter, small
/// enough to stay dependency-free. Numbers are held as double (the service
/// protocol carries counts small enough for exact representation); objects
/// keep their keys in sorted order (std::map) for deterministic iteration.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;  // null

  /// Parse a complete document; throws util::InvalidArgument on malformed
  /// input or trailing garbage.
  static JsonValue parse(std::string_view text);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Typed accessors; throw util::InvalidArgument on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  ///< number that must be integral
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; null when `this` is not an object or the key is
  /// absent — lets callers chain optional lookups without try/catch.
  const JsonValue* find(const std::string& key) const noexcept;

  /// Convenience typed lookups with defaults (absent key or null -> default).
  double number_or(const std::string& key, double fallback) const;
  std::int64_t int_or(const std::string& key, std::int64_t fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
  std::string string_or(const std::string& key, std::string fallback) const;

  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(Array v);
  static JsonValue make_object(Object v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Indirect so JsonValue stays movable despite the recursive type.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

}  // namespace qulrb::io
