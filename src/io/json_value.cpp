#include "io/json_value.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace qulrb::io {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw util::InvalidArgument("JSON parse error at offset " +
                              std::to_string(pos) + ": " + what);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail(pos_, "bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail(pos_, "bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail(pos_, "bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(members));
      }
      fail(pos_, "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(items));
      }
      fail(pos_, "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail(pos_ - 1, "raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail(pos_ - 1, "bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the protocol is ASCII; reject rather than emit garbage).
          if (code >= 0xD800 && code <= 0xDFFF) fail(pos_, "surrogate pairs unsupported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail(pos_ - 1, "unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      fail(start, "malformed number");
    }
    return JsonValue::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool JsonValue::as_bool() const {
  util::require(kind_ == Kind::kBool, "JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  util::require(kind_ == Kind::kNumber, "JsonValue: not a number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  const double v = as_number();
  const auto i = static_cast<std::int64_t>(v);
  util::require(static_cast<double>(i) == v, "JsonValue: number is not integral");
  return i;
}

const std::string& JsonValue::as_string() const {
  util::require(kind_ == Kind::kString, "JsonValue: not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  util::require(kind_ == Kind::kArray, "JsonValue: not an array");
  return *array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  util::require(kind_ == Kind::kObject, "JsonValue: not an object");
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v == nullptr || v->is_null()) ? fallback : v->as_number();
}

std::int64_t JsonValue::int_or(const std::string& key, std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return (v == nullptr || v->is_null()) ? fallback : v->as_int();
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v == nullptr || v->is_null()) ? fallback : v->as_bool();
}

std::string JsonValue::string_or(const std::string& key, std::string fallback) const {
  const JsonValue* v = find(key);
  return (v == nullptr || v->is_null()) ? std::move(fallback) : v->as_string();
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(Array v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::make_shared<Array>(std::move(v));
  return out;
}

JsonValue JsonValue::make_object(Object v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::make_shared<Object>(std::move(v));
  return out;
}

}  // namespace qulrb::io
