#include "io/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace qulrb::io {

JsonWriter::JsonWriter() = default;

void JsonWriter::before_value() {
  if (stack_.empty()) return;
  if (stack_.back() == 'o') {
    util::require(pending_key_, "JsonWriter: object value requires key() first");
    pending_key_ = false;
    return;
  }
  if (has_elements_.back()) out_ << ',';
  has_elements_.back() = true;
}

void JsonWriter::append_escaped(const std::string& s) {
  out_ << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out_ << buf;
        } else {
          out_ << ch;
        }
    }
  }
  out_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back('o');
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  util::require(!stack_.empty() && stack_.back() == 'o',
                "JsonWriter: end_object without matching begin_object");
  util::require(!pending_key_, "JsonWriter: dangling key at end_object");
  stack_.pop_back();
  has_elements_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back('a');
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  util::require(!stack_.empty() && stack_.back() == 'a',
                "JsonWriter: end_array without matching begin_array");
  stack_.pop_back();
  has_elements_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  util::require(!stack_.empty() && stack_.back() == 'o',
                "JsonWriter: key() outside an object");
  util::require(!pending_key_, "JsonWriter: key() twice in a row");
  if (has_elements_.back()) out_ << ',';
  has_elements_.back() = true;
  append_escaped(name);
  out_ << ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  append_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out_ << buf;
  } else {
    out_ << "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  return *this;
}

JsonWriter& JsonWriter::raw_value(const std::string& json) {
  before_value();
  out_ << json;
  return *this;
}

std::string JsonWriter::str() const {
  util::require(stack_.empty(), "JsonWriter: unclosed containers remain");
  return out_.str();
}

}  // namespace qulrb::io
