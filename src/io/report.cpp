#include "io/report.hpp"

#include <fstream>

#include "io/json.hpp"
#include "util/error.hpp"

namespace qulrb::io {

namespace {

void emit_record(JsonWriter& json, const ExperimentRecord& record) {
  json.begin_object();
  json.field("scenario", record.scenario);
  json.field("num_processes", record.num_processes);
  json.field("tasks_per_process", record.tasks_per_process);
  json.field("baseline_imbalance", record.baseline_imbalance);
  json.key("solvers");
  json.begin_array();
  for (const auto& report : record.reports) {
    json.begin_object();
    json.field("name", report.name);
    json.field("imbalance_before", report.metrics.imbalance_before);
    json.field("imbalance_after", report.metrics.imbalance_after);
    json.field("speedup", report.metrics.speedup);
    json.field("migrated_tasks", report.metrics.total_migrated);
    json.field("migrated_per_process", report.metrics.migrated_per_process);
    json.field("cpu_ms", report.output.cpu_ms);
    json.field("qpu_ms", report.output.qpu_ms);
    json.field("feasible", report.output.feasible);
    if (!report.output.notes.empty()) json.field("notes", report.output.notes);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

ExperimentRecord make_record(std::string scenario, const lrp::LrpProblem& problem,
                             std::vector<lrp::SolverReport> reports) {
  ExperimentRecord record;
  record.scenario = std::move(scenario);
  record.num_processes = problem.num_processes();
  record.tasks_per_process = problem.tasks_on(0);
  record.baseline_imbalance = problem.imbalance_ratio();
  record.reports = std::move(reports);
  return record;
}

std::string to_json(const ExperimentRecord& record) {
  JsonWriter json;
  emit_record(json, record);
  return json.str();
}

std::string to_json(const std::vector<ExperimentRecord>& records) {
  JsonWriter json;
  json.begin_array();
  for (const auto& record : records) emit_record(json, record);
  json.end_array();
  return json.str();
}

void write_json_file(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  util::require(out.good(), "write_json_file: cannot open '" + path + "'");
  out << json << '\n';
}

}  // namespace qulrb::io
