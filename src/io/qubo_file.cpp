#include "io/qubo_file.hpp"

#include <algorithm>
#include <iomanip>
#include <fstream>
#include <tuple>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace qulrb::io {

void write_qubo(std::ostream& out, const model::QuboModel& qubo) {
  out << std::setprecision(17);  // lossless double round-trip
  const std::size_t n = qubo.num_variables();

  std::size_t diagonal_count = 0;
  for (model::VarId v = 0; v < n; ++v) {
    if (qubo.linear(v) != 0.0) ++diagonal_count;
  }

  out << "c qulrb QUBO export\n";
  if (qubo.offset() != 0.0) out << "c offset " << qubo.offset() << "\n";
  out << "p qubo 0 " << n << ' ' << diagonal_count << ' '
      << qubo.num_interactions() << "\n";
  for (model::VarId v = 0; v < n; ++v) {
    if (qubo.linear(v) != 0.0) {
      out << v << ' ' << v << ' ' << qubo.linear(v) << "\n";
    }
  }
  // Deterministic order: collect and sort couplers.
  std::vector<std::tuple<model::VarId, model::VarId, double>> couplers;
  qubo.for_each_quadratic([&](model::VarId i, model::VarId j, double w) {
    couplers.emplace_back(i, j, w);
  });
  std::sort(couplers.begin(), couplers.end());
  for (const auto& [i, j, w] : couplers) {
    out << i << ' ' << j << ' ' << w << "\n";
  }
}

void write_qubo_file(const std::string& path, const model::QuboModel& qubo) {
  std::ofstream out(path);
  util::require(out.good(), "write_qubo_file: cannot open '" + path + "'");
  write_qubo(out, qubo);
}

model::QuboModel read_qubo(std::istream& in) {
  std::string line;
  bool have_header = false;
  std::size_t num_nodes = 0;
  double offset = 0.0;
  model::QuboModel qubo(0);

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    if (line[0] == 'c') {
      std::string c_tag, key;
      fields >> c_tag >> key;
      if (key == "offset") {
        double value = 0.0;
        util::require(static_cast<bool>(fields >> value),
                      "read_qubo: malformed offset comment");
        offset = value;
      }
      continue;
    }
    if (line[0] == 'p') {
      std::string p_tag, format;
      int zero = 0;
      std::size_t max_nodes = 0, diagonals = 0, couplers = 0;
      fields >> p_tag >> format >> zero >> max_nodes >> diagonals >> couplers;
      util::require(!fields.fail() && format == "qubo",
                    "read_qubo: malformed problem line");
      num_nodes = max_nodes;
      qubo = model::QuboModel(num_nodes);
      have_header = true;
      continue;
    }
    util::require(have_header, "read_qubo: data before the problem line");
    std::size_t i = 0, j = 0;
    double w = 0.0;
    std::istringstream data(line);
    util::require(static_cast<bool>(data >> i >> j >> w),
                  "read_qubo: malformed entry '" + line + "'");
    util::require(i < num_nodes && j < num_nodes, "read_qubo: node out of range");
    if (i == j) {
      qubo.add_linear(static_cast<model::VarId>(i), w);
    } else {
      qubo.add_quadratic(static_cast<model::VarId>(i),
                         static_cast<model::VarId>(j), w);
    }
  }
  util::require(have_header, "read_qubo: missing problem line");
  qubo.add_offset(offset);
  return qubo;
}

model::QuboModel read_qubo_file(const std::string& path) {
  std::ifstream in(path);
  util::require(in.good(), "read_qubo_file: cannot open '" + path + "'");
  return read_qubo(in);
}

}  // namespace qulrb::io
