#pragma once

#include <string>
#include <vector>

#include "lrp/problem.hpp"
#include "lrp/solver.hpp"

namespace qulrb::io {

/// Machine-readable experiment record (one scenario, many solvers), for
/// downstream plotting/analysis — the role the paper repository's
/// extract_rimb_speedup.py output plays.
struct ExperimentRecord {
  std::string scenario;
  std::size_t num_processes = 0;
  std::int64_t tasks_per_process = 0;
  double baseline_imbalance = 0.0;
  std::vector<lrp::SolverReport> reports;
};

/// Serialize one record (or a batch) as JSON.
std::string to_json(const ExperimentRecord& record);
std::string to_json(const std::vector<ExperimentRecord>& records);

/// Build a record by running every report against one problem.
ExperimentRecord make_record(std::string scenario, const lrp::LrpProblem& problem,
                             std::vector<lrp::SolverReport> reports);

void write_json_file(const std::string& path, const std::string& json);

}  // namespace qulrb::io
