#include "io/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace qulrb::io {

std::size_t CsvDocument::column_index(const std::string& name) const {
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (header[c] == name) return c;
  }
  throw util::InvalidArgument("CsvDocument: no column named '" + name + "'");
}

namespace {

std::vector<std::string> parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field.push_back(ch);
      }
    } else if (ch == '"') {
      quoted = true;
    } else if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch != '\r') {
      field.push_back(ch);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

void write_field(std::ostream& out, const std::string& field) {
  if (!needs_quoting(field)) {
    out << field;
    return;
  }
  out << '"';
  for (char ch : field) {
    if (ch == '"') out << '"';
    out << ch;
  }
  out << '"';
}

}  // namespace

CsvDocument read_csv(std::istream& in) {
  CsvDocument doc;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = parse_line(line);
    if (first) {
      doc.header = std::move(fields);
      first = false;
    } else {
      util::require(fields.size() == doc.header.size(),
                    "read_csv: row width does not match header");
      doc.rows.push_back(std::move(fields));
    }
  }
  util::require(!first, "read_csv: empty document (no header)");
  return doc;
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path);
  util::require(in.good(), "read_csv_file: cannot open '" + path + "'");
  return read_csv(in);
}

void write_csv(std::ostream& out, const CsvDocument& doc) {
  for (std::size_t c = 0; c < doc.header.size(); ++c) {
    if (c) out << ',';
    write_field(out, doc.header[c]);
  }
  out << '\n';
  for (const auto& row : doc.rows) {
    util::require(row.size() == doc.header.size(),
                  "write_csv: row width does not match header");
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      write_field(out, row[c]);
    }
    out << '\n';
  }
}

void write_csv_file(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path);
  util::require(out.good(), "write_csv_file: cannot open '" + path + "'");
  write_csv(out, doc);
}

}  // namespace qulrb::io
