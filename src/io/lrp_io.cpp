#include "io/lrp_io.hpp"

#include <charconv>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace qulrb::io {

namespace {

std::string fmt(double v) {
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v,
                                    std::chars_format::fixed, 6);
  return std::string(buf, result.ptr);
}

double parse_double(const std::string& s) {
  double v = 0.0;
  const auto result = std::from_chars(s.data(), s.data() + s.size(), v);
  util::require(result.ec == std::errc{} && result.ptr == s.data() + s.size(),
                "lrp_io: malformed numeric field '" + s + "'");
  return v;
}

std::int64_t parse_int(const std::string& s) {
  std::int64_t v = 0;
  const auto result = std::from_chars(s.data(), s.data() + s.size(), v);
  util::require(result.ec == std::errc{} && result.ptr == s.data() + s.size(),
                "lrp_io: malformed integer field '" + s + "'");
  return v;
}

}  // namespace

CsvDocument to_input_table(const lrp::LrpProblem& problem) {
  const std::size_t m = problem.num_processes();
  CsvDocument doc;
  doc.header.push_back("Process");
  for (std::size_t j = 0; j < m; ++j) doc.header.push_back("P" + std::to_string(j + 1));
  doc.header.push_back("w");
  doc.header.push_back("L");
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<std::string> row;
    row.push_back("P" + std::to_string(i + 1));
    for (std::size_t j = 0; j < m; ++j) {
      row.push_back(i == j ? std::to_string(problem.tasks_on(i)) : "0");
    }
    row.push_back(fmt(problem.task_load(i)));
    row.push_back(fmt(problem.load(i)));
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

void write_input_file(const std::string& path, const lrp::LrpProblem& problem) {
  write_csv_file(path, to_input_table(problem));
}

lrp::LrpProblem from_input_table(const CsvDocument& doc) {
  const std::size_t m = doc.rows.size();
  util::require(m >= 1, "lrp_io: input table has no process rows");
  util::require(doc.header.size() == m + 3,
                "lrp_io: input table must have Process, P1..PM, w, L columns");
  const std::size_t w_col = doc.column_index("w");

  std::vector<double> task_load(m);
  std::vector<std::int64_t> num_tasks(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& row = doc.rows[i];
    for (std::size_t j = 0; j < m; ++j) {
      const std::int64_t count = parse_int(row[1 + j]);
      if (i == j) {
        num_tasks[i] = count;
      } else {
        util::require(count == 0,
                      "lrp_io: input table has off-diagonal assignments "
                      "(already rebalanced?)");
      }
    }
    task_load[i] = parse_double(row[w_col]);
  }
  return lrp::LrpProblem(std::move(task_load), std::move(num_tasks));
}

lrp::LrpProblem read_input_file(const std::string& path) {
  return from_input_table(read_csv_file(path));
}

CsvDocument to_output_table(const lrp::LrpProblem& problem,
                            const lrp::MigrationPlan& plan) {
  plan.validate(problem);
  const std::size_t m = problem.num_processes();
  CsvDocument doc;
  doc.header.push_back("Process");
  for (std::size_t j = 0; j < m; ++j) doc.header.push_back("P" + std::to_string(j + 1));
  doc.header.push_back("num_total");
  doc.header.push_back("num_local");
  doc.header.push_back("num_remote");
  doc.header.push_back("L");

  const std::vector<double> new_loads = plan.new_loads(problem);
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<std::string> row;
    row.push_back("P" + std::to_string(i + 1));
    for (std::size_t j = 0; j < m; ++j) {
      row.push_back(std::to_string(plan.count(i, j)));
    }
    row.push_back(std::to_string(plan.tasks_hosted(i)));
    row.push_back(std::to_string(plan.count(i, i)));
    row.push_back(std::to_string(plan.migrated_to(i)));
    row.push_back(fmt(new_loads[i]));
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

void write_output_file(const std::string& path, const lrp::LrpProblem& problem,
                       const lrp::MigrationPlan& plan) {
  write_csv_file(path, to_output_table(problem, plan));
}

lrp::MigrationPlan plan_from_output_table(const CsvDocument& doc) {
  const std::size_t m = doc.rows.size();
  util::require(m >= 1, "lrp_io: output table has no process rows");
  util::require(doc.header.size() >= m + 1,
                "lrp_io: output table is missing assignment columns");
  lrp::MigrationPlan plan(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      plan.set_count(i, j, parse_int(doc.rows[i][1 + j]));
    }
  }
  return plan;
}

}  // namespace qulrb::io
