#pragma once

#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

namespace qulrb::io {

/// Minimal streaming JSON writer (objects, arrays, scalars) — enough to emit
/// machine-readable experiment reports without external dependencies.
/// Usage is push-based; nesting is tracked so commas and closings are
/// automatic. Keys/values are escaped per RFC 8259.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Set the key for the next value inside an object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::size_t v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splice pre-serialized JSON in as the next value, verbatim. The caller
  /// vouches that `json` is a complete JSON value (typically another
  /// JsonWriter's str()).
  JsonWriter& raw_value(const std::string& json);

  /// Shorthand: key + scalar.
  template <typename T>
  JsonWriter& field(const std::string& name, T v) {
    key(name);
    return value(v);
  }

  /// Finished document; throws if containers are still open.
  std::string str() const;

 private:
  void before_value();
  void append_escaped(const std::string& s);

  std::ostringstream out_;
  /// Stack of container states: 'o' = object, 'a' = array; parallel flags
  /// whether the container already holds an element.
  std::vector<char> stack_;
  std::vector<bool> has_elements_;
  bool pending_key_ = false;
};

}  // namespace qulrb::io
