#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qulrb::io {

/// Minimal CSV document: first row is the header. Fields containing commas,
/// quotes, or newlines are quoted per RFC 4180 on write; quoted fields are
/// handled on read.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  std::size_t column_index(const std::string& name) const;  ///< throws if absent
};

CsvDocument read_csv(std::istream& in);
CsvDocument read_csv_file(const std::string& path);

void write_csv(std::ostream& out, const CsvDocument& doc);
void write_csv_file(const std::string& path, const CsvDocument& doc);

}  // namespace qulrb::io
