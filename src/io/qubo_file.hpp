#pragma once

#include <iosfwd>
#include <string>

#include "model/qubo.hpp"

namespace qulrb::io {

/// Read/write QUBO models in the qbsolv text format — the de-facto
/// interchange format of the annealing ecosystem, so models built here can be
/// handed to external samplers (and vice versa):
///
///   c optional comments
///   p qubo 0 <maxNodes> <nNodes> <nCouplers>
///   <i> <i> <linear_i>         (diagonal entries)
///   <i> <j> <quadratic_ij>     (i < j couplers)
///
/// The format cannot carry an offset; write_qubo_file emits it as a comment
/// (`c offset <value>`) which read_qubo recovers.
void write_qubo(std::ostream& out, const model::QuboModel& qubo);
void write_qubo_file(const std::string& path, const model::QuboModel& qubo);

model::QuboModel read_qubo(std::istream& in);
model::QuboModel read_qubo_file(const std::string& path);

}  // namespace qulrb::io
