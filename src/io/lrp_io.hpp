#pragma once

#include <iosfwd>
#include <string>

#include "io/csv.hpp"
#include "lrp/plan.hpp"
#include "lrp/problem.hpp"

namespace qulrb::io {

/// The paper's Appendix-B imbalance *input* format (Table VI): one row per
/// process with columns P1..PM (assignment matrix, diagonal = original task
/// counts), "w" (per-task load) and "L" (total load).
CsvDocument to_input_table(const lrp::LrpProblem& problem);
void write_input_file(const std::string& path, const lrp::LrpProblem& problem);

/// Parse an input table back into a problem. Off-diagonal entries must be 0
/// (pre-rebalance state); w/L inconsistencies beyond rounding are rejected.
lrp::LrpProblem from_input_table(const CsvDocument& doc);
lrp::LrpProblem read_input_file(const std::string& path);

/// The paper's *output* format (Table VII): the post-rebalance assignment
/// matrix plus num_total / num_local / num_remote cross-check columns and the
/// new load column.
CsvDocument to_output_table(const lrp::LrpProblem& problem,
                            const lrp::MigrationPlan& plan);
void write_output_file(const std::string& path, const lrp::LrpProblem& problem,
                       const lrp::MigrationPlan& plan);

/// Parse an output table back into a migration plan (for round-trip tests
/// and for consuming externally produced solutions).
lrp::MigrationPlan plan_from_output_table(const CsvDocument& doc);

}  // namespace qulrb::io
