#include <gtest/gtest.h>

#include "lrp/cqm_builder.hpp"
#include "lrp/encoding.hpp"
#include "util/error.hpp"

namespace qulrb::lrp {
namespace {

const LrpProblem kSmall = LrpProblem::uniform({2.0, 1.0, 1.0}, 4);

/// Encode a full migration plan into a CQM state.
model::State encode_plan(const LrpCqm& cqm, const MigrationPlan& plan) {
  model::State state(cqm.num_binary_variables(), 0);
  const std::size_t m = cqm.num_processes();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (cqm.variant() == CqmVariant::kReduced && i == j) continue;
      const auto bits = encode_count(plan.count(i, j), cqm.coefficients(j));
      for (std::size_t l = 0; l < bits.size(); ++l) {
        if (bits[l]) state[cqm.var(i, j, l)] = 1;
      }
    }
  }
  return state;
}

TEST(CqmBuilder, VariableCounts) {
  // M = 3, n = 4 -> bits = 3. Full: 9 * 3 = 27. Reduced drops the diagonal:
  // 6 * 3 = 18 (the paper's (M-1)^2 formula is reported by predicted_qubits).
  const LrpCqm full(kSmall, CqmVariant::kFull, 4);
  const LrpCqm reduced(kSmall, CqmVariant::kReduced, 4);
  EXPECT_EQ(full.num_binary_variables(), 27u);
  EXPECT_EQ(reduced.num_binary_variables(), 18u);
}

TEST(CqmBuilder, PredictedQubitsMatchTableOneFormulas) {
  // Table I: Q_CQM1 -> (M-1)^2 (floor(log2 n)+1); Q_CQM2 -> M^2 (...).
  EXPECT_EQ(LrpCqm::predicted_qubits(CqmVariant::kFull, 8, 50), 64u * 6u);
  EXPECT_EQ(LrpCqm::predicted_qubits(CqmVariant::kReduced, 8, 50), 49u * 6u);
  EXPECT_EQ(LrpCqm::predicted_qubits(CqmVariant::kReduced, 32, 208), 961u * 8u);
}

TEST(CqmBuilder, ConstraintStructureFull) {
  // Q_CQM2: M equality (conservation) + M capacity + 1 migration bound.
  const LrpCqm full(kSmall, CqmVariant::kFull, 4);
  EXPECT_EQ(full.cqm().num_constraints(), 7u);
  EXPECT_EQ(full.cqm().num_equality_constraints(), 3u);
  EXPECT_EQ(full.cqm().num_inequality_constraints(), 4u);
}

TEST(CqmBuilder, ConstraintStructureReduced) {
  // Q_CQM1: same count, all inequalities (as the paper notes).
  const LrpCqm reduced(kSmall, CqmVariant::kReduced, 4);
  EXPECT_EQ(reduced.cqm().num_constraints(), 7u);
  EXPECT_EQ(reduced.cqm().num_equality_constraints(), 0u);
  EXPECT_EQ(reduced.cqm().num_inequality_constraints(), 7u);
}

TEST(CqmBuilder, ObjectiveHasOneGroupPerProcess) {
  const LrpCqm cqm(kSmall, CqmVariant::kFull, 4);
  EXPECT_EQ(cqm.cqm().squared_groups().size(), 3u);
}

TEST(CqmBuilder, IdentityPlanFeasibleInReducedOnly) {
  // All-zeros state: in Q_CQM1 that decodes to the identity plan and is
  // feasible; in Q_CQM2 it violates conservation (no task is placed).
  const LrpCqm reduced(kSmall, CqmVariant::kReduced, 4);
  const LrpCqm full(kSmall, CqmVariant::kFull, 4);
  const model::State zeros_r(reduced.num_binary_variables(), 0);
  const model::State zeros_f(full.num_binary_variables(), 0);
  EXPECT_TRUE(reduced.cqm().is_feasible(zeros_r));
  EXPECT_FALSE(full.cqm().is_feasible(zeros_f));
}

TEST(CqmBuilder, DecodeZerosIsIdentityInReduced) {
  const LrpCqm reduced(kSmall, CqmVariant::kReduced, 4);
  const MigrationPlan plan = reduced.decode(model::State(reduced.num_binary_variables(), 0));
  EXPECT_NO_THROW(plan.validate(kSmall));
  EXPECT_EQ(plan.total_migrated(), 0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(plan.count(i, i), 4);
}

TEST(CqmBuilder, EncodedValidPlanIsFeasibleBothVariants) {
  // A balanced plan: move 1 task from the heavy P0 to P1 and 1 to P2.
  MigrationPlan plan = MigrationPlan::identity(kSmall);
  plan.add_count(0, 0, -2);
  plan.add_count(1, 0, 1);
  plan.add_count(2, 0, 1);
  plan.validate(kSmall);
  for (auto variant : {CqmVariant::kReduced, CqmVariant::kFull}) {
    const LrpCqm cqm(kSmall, variant, /*k=*/2);
    const model::State state = encode_plan(cqm, plan);
    EXPECT_TRUE(cqm.cqm().is_feasible(state)) << to_string(variant);
    const MigrationPlan decoded = cqm.decode(state);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(decoded.count(i, j), plan.count(i, j))
            << to_string(variant) << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(CqmBuilder, MigrationBoundViolatedWhenPlanExceedsK) {
  MigrationPlan plan = MigrationPlan::identity(kSmall);
  plan.add_count(0, 0, -2);
  plan.add_count(1, 0, 1);
  plan.add_count(2, 0, 1);
  for (auto variant : {CqmVariant::kReduced, CqmVariant::kFull}) {
    const LrpCqm cqm(kSmall, variant, /*k=*/1);  // plan migrates 2 > 1
    const model::State state = encode_plan(cqm, plan);
    EXPECT_FALSE(cqm.cqm().is_feasible(state)) << to_string(variant);
  }
}

TEST(CqmBuilder, ObjectiveValueMatchesLoadVariance) {
  // Objective = sum_i (L'_i - L_avg)^2 for the decoded plan.
  MigrationPlan plan = MigrationPlan::identity(kSmall);
  plan.add_count(0, 0, -1);
  plan.add_count(1, 0, 1);
  plan.validate(kSmall);
  for (auto variant : {CqmVariant::kReduced, CqmVariant::kFull}) {
    const LrpCqm cqm(kSmall, variant, 4);
    const model::State state = encode_plan(cqm, plan);
    const auto loads = plan.new_loads(kSmall);
    const double avg = kSmall.average_load();
    double expected = 0.0;
    for (double l : loads) expected += (l - avg) * (l - avg);
    EXPECT_NEAR(cqm.cqm().objective_value(state), expected, 1e-9)
        << to_string(variant);
  }
}

TEST(CqmBuilder, CapacityConstraintBindsAtBaselineMax) {
  // A plan that pushes any process above L_max(baseline) must be infeasible.
  MigrationPlan plan = MigrationPlan::identity(kSmall);
  // Move 2 tasks of load 1.0 from P1 onto P0 (already the heaviest: 8.0 -> 10).
  plan.add_count(1, 1, -2);
  plan.add_count(0, 1, 2);
  plan.validate(kSmall);
  const LrpCqm cqm(kSmall, CqmVariant::kFull, 10);
  const model::State state = encode_plan(cqm, plan);
  EXPECT_FALSE(cqm.cqm().is_feasible(state));
}

TEST(CqmBuilder, DecodeInfersReducedDiagonal) {
  const LrpCqm cqm(kSmall, CqmVariant::kReduced, 4);
  model::State state(cqm.num_binary_variables(), 0);
  // Migrate 1 task (coefficient bit 0 == 1) from P0 to P1.
  state[cqm.var(1, 0, 0)] = 1;
  const MigrationPlan plan = cqm.decode(state);
  EXPECT_EQ(plan.count(1, 0), 1);
  EXPECT_EQ(plan.count(0, 0), 3);  // inferred: 4 - 1
  EXPECT_NO_THROW(plan.validate(kSmall));
}

TEST(CqmBuilder, ReducedDiagonalVarAccessThrows) {
  const LrpCqm cqm(kSmall, CqmVariant::kReduced, 4);
  EXPECT_THROW(cqm.var(1, 1, 0), util::InvalidArgument);
  EXPECT_NO_THROW(cqm.var(0, 1, 0));
}

TEST(CqmBuilder, SupportsUnequalTaskCounts) {
  // Extension over the paper: each source column gets its own coefficient
  // set built from its n_j, so post-migration (unequal) states stay exact.
  const LrpProblem unequal({1.0, 2.0}, {3, 5});
  const LrpCqm cqm(unequal, CqmVariant::kFull, 2);
  EXPECT_EQ(cqm.coefficients(0).size(), bits_per_count(3));
  EXPECT_EQ(cqm.coefficients(1).size(), bits_per_count(5));
  // All-bits-set per column decodes to exactly n_j in that column.
  model::State state(cqm.num_binary_variables(), 1);
  const MigrationPlan plan = cqm.decode(state);
  std::int64_t col0 = 0, col1 = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    col0 += plan.count(i, 0);
    col1 += plan.count(i, 1);
  }
  EXPECT_EQ(col0, 2 * 3);  // both rows saturated: 2 * n_0
  EXPECT_EQ(col1, 2 * 5);
}

TEST(CqmBuilder, ZeroTaskSourceGetsNoVariables) {
  const LrpProblem lopsided({4.0, 1.0}, {6, 0});
  const LrpCqm cqm(lopsided, CqmVariant::kReduced, 3);
  // Only column 0 has bits; column 1 contributes nothing.
  EXPECT_EQ(cqm.num_binary_variables(), bits_per_count(6));
  EXPECT_TRUE(cqm.coefficients(1).empty());
  const MigrationPlan plan = cqm.decode(model::State(cqm.num_binary_variables(), 0));
  EXPECT_NO_THROW(plan.validate(lopsided));
}

TEST(CqmBuilder, RejectsNegativeK) {
  EXPECT_THROW(LrpCqm(kSmall, CqmVariant::kFull, -1), util::InvalidArgument);
}

TEST(CqmBuilder, StandardBinaryEncodingOption) {
  CqmBuildOptions options;
  options.use_paper_coefficient_set = false;
  const LrpCqm cqm(kSmall, CqmVariant::kFull, 4, options);
  // n = 4 -> standard set {1,2,1} (clamped) has 3 coefficients, same as paper.
  EXPECT_EQ(cqm.coefficients(0).size(), 3u);
  const MigrationPlan plan = cqm.decode(model::State(cqm.num_binary_variables(), 0));
  EXPECT_EQ(plan.total_migrated(), 0);
}

TEST(CqmBuilder, VariableNamesEncodePosition) {
  const LrpCqm cqm(kSmall, CqmVariant::kFull, 4);
  EXPECT_EQ(cqm.cqm().variable_name(cqm.var(1, 2, 0)), "x[1][2][0]");
}

TEST(CqmBuilder, KZeroForcesIdentity) {
  const LrpCqm cqm(kSmall, CqmVariant::kReduced, 0);
  // Any single migration bit violates the k = 0 bound.
  model::State state(cqm.num_binary_variables(), 0);
  state[cqm.var(1, 0, 0)] = 1;
  EXPECT_FALSE(cqm.cqm().is_feasible(state));
  EXPECT_TRUE(cqm.cqm().is_feasible(model::State(cqm.num_binary_variables(), 0)));
}

}  // namespace
}  // namespace qulrb::lrp
