#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "anneal/hybrid.hpp"
#include "io/json_value.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/metrics.hpp"
#include "lrp/problem.hpp"
#include "obs/convergence.hpp"
#include "obs/event_log.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_context.hpp"

namespace qulrb::obs {
namespace {

// ----------------------------------------------------- analysis mechanics ---

TEST(Convergence, EmptyRecorderYieldsEmptyReport) {
  Recorder rec;
  const ConvergenceReport report = ConvergenceDiagnostics().analyze(rec);
  EXPECT_FALSE(report.reached_feasible());
  EXPECT_FALSE(report.reached_target());
  EXPECT_EQ(report.samples_seen, 0u);
  EXPECT_EQ(report.tracks_seen, 0u);
}

TEST(Convergence, TracksFeasibilityAndTarget) {
  Recorder rec;
  // The samplers record energy (= objective + violation) and violation back
  // to back per sampled incumbent. Plant: infeasible, feasible-but-poor,
  // feasible-at-target.
  rec.sample("incumbent_energy", 1, 10.0 + 5.0);
  rec.sample("incumbent_violation", 1, 5.0);
  rec.sample("incumbent_energy", 1, 8.0);
  rec.sample("incumbent_violation", 1, 0.0);
  rec.sample("incumbent_energy", 1, 2.0);
  rec.sample("incumbent_violation", 1, 0.0);

  ConvergenceConfig config;
  config.target_objective = 4.0;
  const ConvergenceReport report = ConvergenceDiagnostics(config).analyze(rec);
  EXPECT_EQ(report.samples_seen, 3u);
  EXPECT_EQ(report.tracks_seen, 1u);
  ASSERT_TRUE(report.reached_feasible());
  ASSERT_TRUE(report.reached_target());
  // Feasibility arrived with the second incumbent, the target with the
  // third; timestamps are strictly monotonic, so the order is fixed.
  EXPECT_LT(report.time_to_first_feasible_ms, report.time_to_target_ms);
  EXPECT_DOUBLE_EQ(report.final_objective, 2.0);
  EXPECT_DOUBLE_EQ(report.final_violation, 0.0);
  EXPECT_GE(report.longest_stagnation_ms, 0.0);
}

TEST(Convergence, NeverFeasibleNeverTargets) {
  Recorder rec;
  rec.sample("incumbent_energy", 1, 9.0);
  rec.sample("incumbent_violation", 1, 3.0);

  ConvergenceConfig config;
  config.target_objective = 100.0;  // even a generous target needs feasibility
  const ConvergenceReport report = ConvergenceDiagnostics(config).analyze(rec);
  EXPECT_FALSE(report.reached_feasible());
  EXPECT_FALSE(report.reached_target());
}

TEST(Convergence, MergesAcrossRestartTracks) {
  Recorder rec;
  rec.sample("incumbent_energy", 1, 12.0);
  rec.sample("incumbent_violation", 1, 0.0);
  rec.sample("incumbent_energy", 2, 5.0);
  rec.sample("incumbent_violation", 2, 0.0);

  const ConvergenceReport report = ConvergenceDiagnostics().analyze(rec);
  EXPECT_EQ(report.tracks_seen, 2u);
  EXPECT_EQ(report.samples_seen, 2u);
  EXPECT_DOUBLE_EQ(report.final_objective, 5.0);  // best across both tracks
}

TEST(Convergence, AnnotateWritesEnvelopeAndVerdicts) {
  Recorder rec;
  rec.sample("incumbent_energy", 1, 6.0);
  rec.sample("incumbent_violation", 1, 0.0);
  rec.sample("incumbent_energy", 1, 3.0);
  rec.sample("incumbent_violation", 1, 0.0);

  ConvergenceConfig config;
  config.target_objective = 5.0;
  const ConvergenceReport report =
      ConvergenceDiagnostics(config).annotate(rec);
  ASSERT_TRUE(report.reached_target());

  bool saw_best_objective = false;
  for (const auto& s : rec.owned_samples()) {
    if (s.series == "best_objective") saw_best_objective = true;
  }
  EXPECT_TRUE(saw_best_objective);

  bool saw_ttff = false, saw_stagnation = false;
  for (const auto& [key, value] : rec.annotations()) {
    if (key == "time_to_first_feasible_ms") saw_ttff = true;
    if (key == "longest_stagnation_ms") saw_stagnation = true;
  }
  EXPECT_TRUE(saw_ttff);
  EXPECT_TRUE(saw_stagnation);
}

// ----------------------------------------------------------- trace context --

TEST(TraceContext, InactiveIsZeroCost) {
  TraceContext ctx;
  EXPECT_FALSE(ctx.active());
  EXPECT_EQ(ctx.recorder(), nullptr);
  EXPECT_EQ(ctx.claim_tracks(4), 0u);
  EXPECT_EQ(ctx.request_id(), 0u);
}

TEST(TraceContext, MintAnnotatesRequestId) {
  TraceContext ctx = TraceContext::mint(42, "req-42");
  ASSERT_TRUE(ctx.active());
  EXPECT_EQ(ctx.request_id(), 42u);
  bool saw = false;
  for (const auto& [key, value] : ctx.recorder()->annotations()) {
    if (key == "request_id" && value == "42") saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(TraceContext, ClaimedTrackBlocksNeverCollide) {
  TraceContext ctx = TraceContext::mint(1, "req");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint32_t kPerClaim = 3;
  std::vector<std::uint32_t> bases(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&ctx, &bases, t] { bases[t] = ctx.claim_tracks(kPerClaim); });
  }
  for (auto& t : threads) t.join();
  std::set<std::uint32_t> tracks;
  for (const std::uint32_t base : bases) {
    EXPECT_GE(base, 1u);  // track 0 stays the main row
    for (std::uint32_t i = 0; i < kPerClaim; ++i) tracks.insert(base + i);
  }
  EXPECT_EQ(tracks.size(), kThreads * kPerClaim);
}

// ----------------------------------------------------- zero-cost contract ---

lrp::LrpProblem skewed_problem() {
  // 6 processes, skewed loads; large enough that presolve leaves more than
  // exhaustive_max_vars would tolerate anyway (we force annealing below).
  return lrp::LrpProblem({30, 9, 8, 4, 3, 2}, {12, 12, 12, 12, 12, 12});
}

anneal::HybridSolverParams contract_params() {
  anneal::HybridSolverParams p;
  p.num_restarts = 2;
  p.sweeps = 250;
  p.seed = 123;
  p.threads = 1;
  // Force the annealing path: the exhaustive Gray-code path records no
  // incumbent timelines, so it would make this test vacuous.
  p.exhaustive_max_vars = 0;
  return p;
}

void expect_bitwise_equal(const anneal::HybridSolveResult& a,
                          const anneal::HybridSolveResult& b) {
  EXPECT_EQ(a.best.state, b.best.state);
  EXPECT_EQ(a.best.energy, b.best.energy);  // bitwise: EXPECT_EQ on doubles
  EXPECT_EQ(a.best.violation, b.best.violation);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples.at(i).state, b.samples.at(i).state);
    EXPECT_EQ(a.samples.at(i).energy, b.samples.at(i).energy);
    EXPECT_EQ(a.samples.at(i).violation, b.samples.at(i).violation);
  }
}

TEST(Convergence, TracedSolveIsBitwiseIdentical_QCQM1) {
  const lrp::LrpProblem problem = skewed_problem();
  const lrp::LrpCqm model =
      lrp::build_lrp_cqm(problem, lrp::CqmVariant::kReduced, 8, {});

  const anneal::HybridSolveResult plain =
      anneal::HybridCqmSolver(contract_params()).solve(model.cqm());

  anneal::HybridSolverParams traced_params = contract_params();
  TraceContext trace = TraceContext::mint(7, "contract-qcqm1");
  traced_params.trace = trace;
  const anneal::HybridSolveResult traced =
      anneal::HybridCqmSolver(traced_params).solve(model.cqm());

  expect_bitwise_equal(plain, traced);
  // And the traced run actually recorded incumbent timelines + restart spans.
  EXPECT_FALSE(trace.recorder()->samples().empty());
  EXPECT_FALSE(trace.recorder()->spans().empty());

  // The recorded timelines support the convergence metrics end to end.
  ConvergenceConfig config;
  config.target_objective =
      lrp::objective_target_for_imbalance(problem, 10.0);  // generous target
  const ConvergenceReport report =
      ConvergenceDiagnostics(config).analyze(*trace.recorder());
  EXPECT_GT(report.samples_seen, 0u);
  EXPECT_TRUE(report.reached_feasible());
  EXPECT_TRUE(report.reached_target());
  EXPECT_LE(report.time_to_first_feasible_ms, report.time_to_target_ms);
}

TEST(Convergence, TracedSolveIsBitwiseIdentical_QCQM2) {
  const lrp::LrpProblem problem = skewed_problem();
  const lrp::LrpCqm model =
      lrp::build_lrp_cqm(problem, lrp::CqmVariant::kFull, 8, {});

  const anneal::HybridSolveResult plain =
      anneal::HybridCqmSolver(contract_params()).solve(model.cqm());

  anneal::HybridSolverParams traced_params = contract_params();
  TraceContext trace = TraceContext::mint(8, "contract-qcqm2");
  traced_params.trace = trace;
  const anneal::HybridSolveResult traced =
      anneal::HybridCqmSolver(traced_params).solve(model.cqm());

  expect_bitwise_equal(plain, traced);
  EXPECT_FALSE(trace.recorder()->samples().empty());
}

TEST(Convergence, ObjectiveTargetMapsImbalanceConservatively) {
  const lrp::LrpProblem problem = skewed_problem();
  const double target = lrp::objective_target_for_imbalance(problem, 0.1);
  const double avg = problem.average_load();
  EXPECT_DOUBLE_EQ(target, (0.1 * avg) * (0.1 * avg));
  // Negative thresholds clamp to 0 rather than going negative-squared.
  EXPECT_DOUBLE_EQ(lrp::objective_target_for_imbalance(problem, -1.0), 0.0);
}

// -------------------------------------------------------------- event log ---

TEST(EventLog, JsonLineOmitsUnsetFields) {
  SolveEvent event;
  event.source = "qulrb_solve";
  event.request_id = 3;
  event.solver = "Q_CQM1";
  event.outcome = "ok";
  event.feasible = true;
  event.r_imb_before = 2.5;
  // r_imb_after, speedup, runtime_ms... left NaN; migrated left -1.

  const std::string line = to_json_line(event);
  const io::JsonValue doc = io::JsonValue::parse(line);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.string_or("source", ""), "qulrb_solve");
  EXPECT_EQ(doc.int_or("request_id", -1), 3);
  EXPECT_DOUBLE_EQ(doc.number_or("r_imb_before", -1.0), 2.5);
  EXPECT_EQ(doc.find("r_imb_after"), nullptr);
  EXPECT_EQ(doc.find("speedup"), nullptr);
  EXPECT_EQ(doc.find("migrated"), nullptr);
  EXPECT_EQ(doc.find("time_to_target_ms"), nullptr);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(EventLog, AppendsParsableLines) {
  const std::string path = testing::TempDir() + "qulrb_test_events.jsonl";
  std::remove(path.c_str());
  {
    EventLog log(path, /*append=*/false);
    SolveEvent event;
    event.source = "test";
    event.solver = "greedy";
    event.outcome = "ok";
    event.extra.emplace_back("note", "a \"quoted\" value");
    log.log(event);
    event.request_id = 2;
    log.log(event);
    EXPECT_EQ(log.lines_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const io::JsonValue doc = io::JsonValue::parse(line);  // throws if broken
    EXPECT_EQ(doc.string_or("source", ""), "test");
    EXPECT_EQ(doc.string_or("note", ""), "a \"quoted\" value");
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qulrb::obs
