#include <gtest/gtest.h>

#include "lrp/iterative.hpp"
#include "lrp/kselect.hpp"
#include "lrp/metrics.hpp"
#include "lrp/problem.hpp"
#include "lrp/registry.hpp"
#include "util/error.hpp"

namespace qulrb::lrp {
namespace {

SolverSpec fast_spec(const std::string& name) {
  SolverSpec spec;
  spec.name = name;
  spec.sweeps = 300;
  spec.restarts = 1;
  return spec;
}

// -------------------------------------------------------------- k = 0 -----

// A migration bound of zero admits exactly one plan: move nothing.
TEST(LrpEdges, KZeroMeansNoMigration) {
  const LrpProblem problem = LrpProblem::uniform({8.0, 1.0, 1.0, 1.0}, 6);
  for (const char* name : {"qcqm1", "qcqm2"}) {
    SolverSpec spec = fast_spec(name);
    spec.k = 0;
    const auto solver = make_solver(spec, problem);
    const SolverReport report = run_and_evaluate(*solver, problem);
    EXPECT_EQ(report.metrics.total_migrated, 0) << name;
    EXPECT_DOUBLE_EQ(report.metrics.imbalance_after,
                     report.metrics.imbalance_before)
        << name;
    EXPECT_DOUBLE_EQ(report.metrics.imbalance_before,
                     problem.imbalance_ratio())
        << name;
  }
}

// -------------------------------------------------------------- M = 1 -----

// With a single process there is nowhere to migrate to; every solver must
// return the identity plan.
TEST(LrpEdges, SingleProcessIsAlreadyBalanced) {
  const LrpProblem problem = LrpProblem::uniform({3.5}, 10);
  EXPECT_DOUBLE_EQ(problem.imbalance_ratio(), 0.0);
  for (const char* name : {"greedy", "kk", "proactlb", "qcqm1", "qcqm2"}) {
    const auto solver = make_solver(fast_spec(name), problem);
    const SolverReport report = run_and_evaluate(*solver, problem);
    EXPECT_EQ(report.metrics.total_migrated, 0) << name;
    EXPECT_DOUBLE_EQ(report.metrics.imbalance_after, 0.0) << name;
  }
}

// ------------------------------------------------------ already balanced -----

// All-equal loads: R_imb = 0, any migration can only hurt. The plan must be
// empty and the imbalance unchanged.
TEST(LrpEdges, EqualLoadsYieldEmptyPlan) {
  const LrpProblem problem = LrpProblem::uniform({2.0, 2.0, 2.0, 2.0}, 8);
  EXPECT_DOUBLE_EQ(problem.imbalance_ratio(), 0.0);
  for (const char* name : {"greedy", "kk", "proactlb", "qcqm1", "qcqm2"}) {
    const auto solver = make_solver(fast_spec(name), problem);
    const SolverReport report = run_and_evaluate(*solver, problem);
    EXPECT_EQ(report.metrics.total_migrated, 0) << name;
    EXPECT_DOUBLE_EQ(report.metrics.imbalance_after,
                     report.metrics.imbalance_before)
        << name;
  }
}

TEST(LrpEdges, KSelectOnBalancedProblemIsZero) {
  const KSelection k = select_k(LrpProblem::uniform({2.0, 2.0, 2.0}, 8));
  EXPECT_EQ(k.k1, 0);
  EXPECT_EQ(k.k2, 0);
}

// ------------------------------------------------------------ registry -----

TEST(LrpEdges, UnknownSolverNameFailsCleanly) {
  const LrpProblem problem = LrpProblem::uniform({2.0, 1.0}, 4);
  SolverSpec spec = fast_spec("leap-hybrid");  // plausible but unregistered
  EXPECT_THROW(make_solver(spec, problem), util::InvalidArgument);
  spec.name = "";
  EXPECT_THROW(make_solver(spec, problem), util::InvalidArgument);
}

// ----------------------------------------------------------- iterative -----

// The iterative rebalancer on a balanced, drift-free instance has nothing to
// do in any epoch.
TEST(LrpEdges, IterativeBalancedWithoutDriftStaysPut) {
  const LrpProblem problem = LrpProblem::uniform({2.0, 2.0, 2.0, 2.0}, 8);
  const auto solver = make_solver(fast_spec("greedy"), problem);
  DriftModel drift;
  drift.relative_sigma = 0.0;  // costs never change between epochs
  const IterativeResult result =
      IterativeRebalancer(*solver, drift).run(problem, 3);
  ASSERT_EQ(result.epochs.size(), 3u);
  for (std::size_t e = 0; e < result.epochs.size(); ++e) {
    EXPECT_EQ(result.epochs[e].migrated, 0) << "epoch " << e;
    EXPECT_DOUBLE_EQ(result.epochs[e].imbalance_after, 0.0) << "epoch " << e;
  }
  EXPECT_EQ(result.total_migrated, 0);
  EXPECT_DOUBLE_EQ(result.mean_imbalance_after, 0.0);
}

// On an imbalanced instance the aggregates must be consistent with the
// per-epoch reports, and the first epoch must actually improve.
TEST(LrpEdges, IterativeAggregatesAreConsistent) {
  const LrpProblem problem = LrpProblem::uniform({6.0, 2.0, 2.0, 2.0}, 8);
  const auto solver = make_solver(fast_spec("greedy"), problem);
  DriftModel drift;
  drift.relative_sigma = 0.0;
  const IterativeResult result =
      IterativeRebalancer(*solver, drift).run(problem, 3);
  ASSERT_EQ(result.epochs.size(), 3u);
  EXPECT_LT(result.epochs[0].imbalance_after, result.epochs[0].imbalance_before);
  std::int64_t migrated = 0;
  double sum_after = 0.0;
  for (const EpochReport& epoch : result.epochs) {
    migrated += epoch.migrated;
    sum_after += epoch.imbalance_after;
  }
  EXPECT_EQ(result.total_migrated, migrated);
  EXPECT_NEAR(result.mean_imbalance_after, sum_after / 3.0, 1e-12);
}

}  // namespace
}  // namespace qulrb::lrp
